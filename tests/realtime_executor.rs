//! Integration test of the wall-clock executor with a real shared queue:
//! the same controller/scheduler stack as the simulator, but against OS
//! threads and real time.

use realrate::core::JobSpec;
use realrate::queue::{BoundedBuffer, JobKey, Role};
use realrate::realtime::{ExecutorConfig, RealTimeExecutor, StepOutcome};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn spin_for(duration: Duration) {
    let t0 = Instant::now();
    while t0.elapsed() < duration {
        std::hint::spin_loop();
    }
}

#[test]
fn wall_clock_pipeline_makes_progress_under_the_controller() {
    let mut exec = RealTimeExecutor::new(ExecutorConfig::default());
    let queue: Arc<BoundedBuffer<u64>> = Arc::new(BoundedBuffer::new("rt-queue", 16));
    let produced = Arc::new(AtomicU64::new(0));
    let consumed = Arc::new(AtomicU64::new(0));

    // Producer: a short burst of CPU then one item.
    let q = Arc::clone(&queue);
    let p = Arc::clone(&produced);
    let producer = exec.spawn("producer", JobSpec::real_rate(), move |_quantum| {
        spin_for(Duration::from_micros(200));
        if q.try_push(1).is_ok() {
            p.fetch_add(1, Ordering::Relaxed);
        }
        StepOutcome::Continue
    });

    // Consumer: drains one item per step with a slightly larger burst.
    let q = Arc::clone(&queue);
    let c = Arc::clone(&consumed);
    let consumer = exec.spawn("consumer", JobSpec::real_rate(), move |_quantum| {
        if q.try_pop().is_some() {
            c.fetch_add(1, Ordering::Relaxed);
            spin_for(Duration::from_micros(300));
            StepOutcome::Continue
        } else {
            StepOutcome::Blocked
        }
    });

    let registry = exec.registry();
    registry.register(JobKey(producer.job.0), Role::Producer, queue.clone());
    registry.register(JobKey(consumer.job.0), Role::Consumer, queue.clone());

    exec.run_for(Duration::from_millis(400));
    exec.shutdown();

    let made = produced.load(Ordering::Relaxed);
    let eaten = consumed.load(Ordering::Relaxed);
    assert!(made > 0, "producer never ran");
    assert!(eaten > 0, "consumer never ran");
    assert!(
        eaten <= made,
        "cannot consume more than was produced ({eaten} vs {made})"
    );
    // Both ends received real CPU time.
    assert!(exec.cpu_time(producer) > Duration::ZERO);
    assert!(exec.cpu_time(consumer) > Duration::ZERO);
}
