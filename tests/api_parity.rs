//! Cross-backend parity: the same program through `realrate::api` on the
//! deterministic simulator and on real OS threads.
//!
//! This is the tentpole guarantee of the backend-agnostic host API: a
//! workload written once against `Host` produces the same *qualitative*
//! control-plane outcome on both backends — the controller classifies
//! the jobs identically, pins the reservation, and discovers a nonzero
//! grant for the adaptive stage — even though one backend finishes in
//! milliseconds of wall time and the other spends real seconds.

use realrate::api::{Backend, Host, JobClass, JobHandle, Runtime, SimTime};
use realrate::workloads::{PipelineConfig, PulsePipeline};

#[derive(Debug)]
struct Outcome {
    backend: Backend,
    producer_ppt: u32,
    consumer_ppt: u32,
    producer_class: JobClass,
    consumer_class: JobClass,
    consumer_used_us: u64,
}

fn job_class(host: &dyn Host, handle: JobHandle) -> JobClass {
    host.controller()
        .job_of(handle.slot)
        .and_then(|id| host.controller().job_class(id))
        .expect("job is registered")
}

fn run_pipeline(backend: Backend) -> Outcome {
    let mut host = Runtime::backend(backend).build();
    let handles = PulsePipeline::install(host.as_mut(), PipelineConfig::steady(2.5e-5));
    // Long enough for the controller to settle on each backend's own
    // clock: 10 simulated seconds are nearly free; 1.5 real seconds keep
    // the test suite fast.
    let duration = match backend {
        Backend::Sim => SimTime::from_secs(10),
        Backend::WallClock => SimTime::from_millis(1_500),
    };
    host.advance(duration);
    Outcome {
        backend,
        producer_ppt: host.allocation_ppt(handles.producer),
        consumer_ppt: host.allocation_ppt(handles.consumer),
        producer_class: job_class(host.as_ref(), handles.producer),
        consumer_class: job_class(host.as_ref(), handles.consumer),
        consumer_used_us: host.cpu_used(handles.consumer).as_micros(),
    }
}

#[test]
fn same_pipeline_converges_on_sim_and_wall_clock() {
    let sim = run_pipeline(Backend::Sim);
    let wall = run_pipeline(Backend::WallClock);

    for outcome in [&sim, &wall] {
        // Identical classification on both backends (Figure 2 taxonomy).
        assert_eq!(outcome.producer_class, JobClass::RealTime, "{:?}", outcome);
        assert_eq!(outcome.consumer_class, JobClass::RealRate, "{:?}", outcome);
        // The producer's reservation is pinned, never adapted.
        assert_eq!(outcome.producer_ppt, 200, "{:?}", outcome);
        // The controller reached a nonzero grant for the adaptive
        // consumer without any per-backend tuning.
        assert!(
            outcome.consumer_ppt > 0,
            "consumer grant must be nonzero on {}: {:?}",
            outcome.backend,
            outcome
        );
        // And the consumer actually consumed CPU (simulated or real).
        assert!(outcome.consumer_used_us > 0, "{:?}", outcome);
    }
}

#[test]
fn both_backends_report_through_the_same_stats_surface() {
    for backend in [Backend::Sim, Backend::WallClock] {
        let mut host = Runtime::backend(backend).build();
        let _ = PulsePipeline::install(host.as_mut(), PipelineConfig::steady(2.5e-5));
        host.advance(match backend {
            Backend::Sim => SimTime::from_secs(2),
            Backend::WallClock => SimTime::from_millis(400),
        });
        let stats = host.stats();
        assert!(stats.controller_invocations > 0, "{backend}");
        assert_eq!(stats.per_cpu.len(), 1, "{backend}");
        assert!(stats.total_used_us() > 0, "{backend}");
        assert!(host.trace().get("alloc/consumer").is_some(), "{backend}");
        assert!(host.trace().get("fill/pipeline").is_some(), "{backend}");
    }
}
