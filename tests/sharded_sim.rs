//! Sharded-simulator pins: `shards = 1` bit-for-bit equivalence and
//! multi-shard behaviour through the public `Host` surface.
//!
//! The equivalence tests drive the *same* mixed workload as
//! `sim_golden_stats.rs` — real-time spinners, greedy hogs, periodic
//! burst-sleep jobs, a mid-run removal wave — once on the plain
//! [`Simulation`] (whose output those golden blobs pin bit for bit) and
//! once on a single-shard [`ShardedSim`], and assert the two `SimStats`
//! are *equal*.  Equality here is transitively equality with the golden
//! captures: a single-shard sharded machine must be a zero-cost veneer —
//! no barriers, no rebalancer, no trace merging — over the unsharded
//! simulator.  The `ShardedSim` is constructed directly because
//! `Runtime::sim().shards(1)` deliberately builds the plain `Simulation`.
//!
//! The multi-shard tests pin the observable contract of the two-level
//! machine: global CPU indexing, job conservation under rebalancing, and
//! the rebalancer's telemetry counters.

use realrate::api::{Host, JobSpec, Period, Proportion, Runtime, SimTime};
use realrate::sim::{
    RunResult, ShardConfig, ShardedSim, SimConfig, SimStats, SteppingMode, WorkModel,
};

/// Uses every cycle offered, never blocks.
struct Spin;

impl WorkModel for Spin {
    fn run(&mut self, _now: u64, quantum_us: u64, _hz: f64) -> RunResult {
        RunResult::ran(quantum_us)
    }
}

/// Runs `burst_us`, then blocks until `now + sleep_us` (same model as the
/// golden-stats workload).
struct BurstSleep {
    burst_us: u64,
    sleep_us: u64,
    wake_at_us: u64,
}

impl WorkModel for BurstSleep {
    fn run(&mut self, now_us: u64, quantum_us: u64, _hz: f64) -> RunResult {
        let used = self.burst_us.min(quantum_us);
        if used < quantum_us {
            self.wake_at_us = now_us + used + self.sleep_us;
            RunResult::blocked_after(used)
        } else {
            RunResult::ran(used)
        }
    }

    fn poll_unblock(&mut self, now_us: u64) -> bool {
        now_us >= self.wake_at_us
    }

    fn next_transition(&self, _now: SimTime) -> Option<SimTime> {
        Some(SimTime::from_micros(self.wake_at_us))
    }
}

/// The golden-stats mixed workload, driven through the `Host` trait so
/// both backends run the identical call sequence.  `rt_jobs` is separate
/// from `cpus` because on a sharded host every reservation anchors to
/// shard 0 — admission is bounded by that shard's capacity, not the
/// machine's.
fn drive_mixed_workload(host: &mut dyn Host, cpus: usize, rt_jobs: u64) {
    let n = cpus as u64;
    for i in 0..rt_jobs {
        host.add_job(
            &format!("rt{i}"),
            JobSpec::real_time(Proportion::from_ppt(250), Period::from_millis(10)),
            Box::new(Spin),
        )
        .unwrap();
    }
    let mut hogs = Vec::new();
    for i in 0..2 * n {
        hogs.push(
            host.add_job(&format!("hog{i}"), JobSpec::miscellaneous(), Box::new(Spin))
                .unwrap(),
        );
    }
    for i in 0..2 * n {
        host.add_job(
            &format!("io{i}"),
            JobSpec::miscellaneous(),
            Box::new(BurstSleep {
                burst_us: 300 + 70 * i,
                sleep_us: 2_000 + 500 * i,
                wake_at_us: 0,
            }),
        )
        .unwrap();
    }
    host.advance(SimTime::from_secs_f64(1.5));
    for h in hogs.iter().step_by(2) {
        host.remove_job(*h);
    }
    host.advance(SimTime::from_secs_f64(1.5));
}

fn plain_stats(cpus: usize, stepping: SteppingMode) -> SimStats {
    let config = SimConfig {
        stepping,
        ..SimConfig::default().with_cpus(cpus)
    };
    let mut host = Runtime::sim().cpus(cpus).sim_config(config).build();
    drive_mixed_workload(host.as_mut(), cpus, cpus as u64);
    host.as_sim().expect("plain simulation").stats()
}

fn sharded_one_stats(cpus: usize, stepping: SteppingMode) -> SimStats {
    let config = SimConfig {
        stepping,
        ..SimConfig::default().with_cpus(cpus)
    };
    let mut host: Box<dyn Host> = Box::new(ShardedSim::new(
        config,
        ShardConfig::default().with_shards(1),
    ));
    drive_mixed_workload(host.as_mut(), cpus, cpus as u64);
    host.as_sharded_sim().expect("sharded simulation").stats()
}

fn check_equivalence(cpus: usize, stepping: SteppingMode) {
    let plain = plain_stats(cpus, stepping);
    let sharded = sharded_one_stats(cpus, stepping);
    assert_eq!(
        sharded, plain,
        "shards=1 must reproduce the unsharded SimStats bit for bit \
         at {cpus} cpu(s), {stepping:?} (the golden-pinned workload)"
    );
}

#[test]
fn single_shard_matches_golden_lockstep_1cpu() {
    check_equivalence(1, SteppingMode::Lockstep);
}

#[test]
fn single_shard_matches_golden_lockstep_8cpu() {
    check_equivalence(8, SteppingMode::Lockstep);
}

#[test]
fn single_shard_matches_golden_calendar_1cpu() {
    check_equivalence(1, SteppingMode::Calendar);
}

#[test]
fn single_shard_matches_golden_calendar_8cpu() {
    check_equivalence(8, SteppingMode::Calendar);
}

/// `Runtime::sim().shards(n)` builds the sharded backend for `n > 1` and
/// the plain simulation otherwise — the documented builder mapping.
#[test]
fn runtime_builder_shard_mapping() {
    let host = Runtime::sim().cpus(4).shards(1).build();
    assert!(
        host.as_sim().is_some(),
        "shards<=1 builds the plain Simulation"
    );
    let host = Runtime::sim().cpus(8).shards(4).build();
    let sharded = host
        .as_sharded_sim()
        .expect("shards>1 builds the ShardedSim");
    assert_eq!(sharded.shard_count(), 4);
    assert_eq!(host.cpu_count(), 8);
}

/// The full mixed workload on a 4-shard machine through the `Host`
/// surface: jobs conserved, global CPU indexing consistent, rebalancer
/// running at its cadence and reported in telemetry.
#[test]
fn multi_shard_runs_the_mixed_workload() {
    let cpus = 8;
    let mut host = Runtime::sim().cpus(cpus).shards(4).build();
    // 4 reservations of 250 ppt fit the 2-CPU anchor shard's capacity.
    drive_mixed_workload(host.as_mut(), cpus, 4);

    let stats = host.stats();
    assert_eq!(
        stats.per_cpu.len(),
        cpus,
        "per-CPU stats concatenate across shards"
    );
    assert!(stats.total_used_us() > 0);
    assert!(host.now() >= SimTime::from_secs(3));

    let snap = host.telemetry();
    let sharded = host.as_sharded_sim().expect("sharded backend");
    let (cycles, migrations) = sharded.rebalance_counts();
    assert!(
        cycles >= 25,
        "3 s at a 0.1 s cadence must run >= 25 rebalance cycles, got {cycles}"
    );
    assert_eq!(snap.rebalance_cycles, cycles);
    assert_eq!(snap.rebalance_migrations, migrations);

    // Every job the workload left alive resolves through the global
    // queries, on a valid global CPU.
    let n = cpus as u64;
    let mut job_count = 0;
    for k in 0..sharded.shard_count() {
        job_count += sharded.shard(k).controller().job_count();
    }
    // 4 real-time + n surviving hogs + 2n io jobs.
    assert_eq!(job_count as u64, 4 + 3 * n, "jobs conserved across shards");
}
