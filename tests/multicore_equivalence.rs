//! N = 1 equivalence: the machine-layer refactor must not change the
//! single-CPU system's behaviour in any observable way.
//!
//! The expected values below were captured by running this exact workload
//! on the pre-refactor simulator (single `Dispatcher`, no Place stage) at
//! commit `df90dc9`, then re-pinned for the idle bookkeeping when idle
//! fast-forward became unconditional (the `idle_fast_forward` opt-out was
//! removed).  The control-visible outcomes — controller invocations and
//! cost, quality/squish events, per-job usage and final allocations — are
//! the original pre-refactor values; only the clock and the dispatch-round
//! counts reflect skipped idle rounds.  The one-CPU `Machine` must keep
//! reproducing all of them bit for bit.

use realrate::core::JobSpec;
use realrate::queue::{BoundedBuffer, JobKey, Role};
use realrate::scheduler::{CpuId, Period, Proportion};
use realrate::sim::{RunResult, SimConfig, Simulation, SteppingMode, WorkModel};
use std::sync::Arc;

struct Spin;

impl WorkModel for Spin {
    fn run(&mut self, _now: u64, quantum_us: u64, _hz: f64) -> RunResult {
        RunResult::ran(quantum_us)
    }
}

/// The fixed workload: a 300 ‰ / 10 ms real-time spinner, a greedy
/// miscellaneous hog, and a real-rate consumer of a permanently full
/// queue, run for 2 simulated seconds.
fn run_fixed_workload() -> (Simulation, [realrate::sim::JobHandle; 3]) {
    // Lockstep stepping is the retained naive reference loop; since the
    // removal of the `idle_fast_forward` opt-out it always jumps fully
    // idle rounds to the next event.
    let mut sim = Simulation::new(SimConfig {
        stepping: SteppingMode::Lockstep,
        ..SimConfig::default()
    });
    let registry = sim.registry();
    let rt = sim
        .add_job(
            "rt",
            JobSpec::real_time(Proportion::from_ppt(300), Period::from_millis(10)),
            Box::new(Spin),
        )
        .unwrap();
    let hog = sim
        .add_job("hog", JobSpec::miscellaneous(), Box::new(Spin))
        .unwrap();
    let consumer = sim
        .add_job("consumer", JobSpec::real_rate(), Box::new(Spin))
        .unwrap();
    let queue = Arc::new(BoundedBuffer::<u8>::new("q", 8));
    for i in 0..8 {
        queue.try_push(i).unwrap();
    }
    registry.register(JobKey(consumer.job.0), Role::Consumer, queue);
    sim.run_for(2.0);
    (sim, [rt, hog, consumer])
}

#[test]
fn one_cpu_machine_reproduces_the_pre_refactor_simulation_exactly() {
    let (sim, [rt, hog, consumer]) = run_fixed_workload();

    // Controller outcomes, identical to the pre-refactor capture; the
    // clock differs only by the dispatch overhead no longer booked on the
    // skipped idle rounds.
    assert_eq!(sim.now_micros(), 2_000_211);
    let stats = sim.stats();
    assert_eq!(stats.controller_invocations, 199);
    assert_eq!(stats.controller_cost_us, 5074.499999999999);
    assert_eq!(stats.dispatch_overhead_us, 16279.299999999028);
    assert_eq!(stats.quality_exceptions, 347);
    assert_eq!(stats.squish_events, 181);
    assert_eq!(stats.admission_rejections, 0);
    assert_eq!(stats.migrations, 0, "one CPU has nowhere to migrate to");

    // Dispatcher state; switches, rollovers and missed deadlines match
    // the pre-refactor capture, dispatches/idle reflect skipped rounds.
    let d = sim.dispatcher().stats();
    assert_eq!(d.dispatches, 1983);
    assert_eq!(d.context_switches, 1471);
    assert_eq!(d.period_rollovers, 329);
    assert_eq!(d.deadlines_missed, 17);
    assert_eq!(d.overhead_us, 16279.299999999028);
    assert_eq!(d.idle_us, 126_173);

    // Per-job delivery and final allocations: rt and hog exactly match
    // the pre-refactor capture; the consumer shifts by one 30 µs tail
    // span absorbed into an idle jump.
    assert_eq!(sim.cpu_used_us(rt), 594_000);
    assert_eq!(sim.cpu_used_us(hog), 607_210);
    assert_eq!(sim.cpu_used_us(consumer), 651_030);
    assert_eq!(sim.current_allocation_ppt(rt), 300);
    assert_eq!(sim.current_allocation_ppt(hog), 325);
    assert_eq!(sim.current_allocation_ppt(consumer), 325);

    // The machine view agrees with the single-dispatcher view.
    assert_eq!(sim.machine().cpu_count(), 1);
    for h in [rt, hog, consumer] {
        assert_eq!(sim.cpu_of(h), Some(CpuId::ZERO));
    }
    assert_eq!(sim.machine().stats(), d);
}

#[test]
fn default_config_remains_single_cpu() {
    // `SimConfig::default()` is the paper's machine: one CPU, so figures
    // 5–8 keep reproducing without opting into anything.
    let config = SimConfig::default();
    assert_eq!(config.cpus(), 1);
    assert_eq!(config.controller.placement.cpus, 1);
    let sim = Simulation::new(config);
    assert_eq!(sim.machine().cpu_count(), 1);
}

#[test]
fn calendar_stepping_preserves_scheduling_outcomes() {
    // Calendar stepping advances analytically between events, so clocks
    // and stats differ from the lockstep reference — but what each job
    // actually received must stay equivalent on this nearly saturated
    // workload.
    let (slow, [rt_s, hog_s, con_s]) = run_fixed_workload();
    let mut fast = Simulation::new(SimConfig::default());
    let registry = fast.registry();
    let rt = fast
        .add_job(
            "rt",
            JobSpec::real_time(Proportion::from_ppt(300), Period::from_millis(10)),
            Box::new(Spin),
        )
        .unwrap();
    let hog = fast
        .add_job("hog", JobSpec::miscellaneous(), Box::new(Spin))
        .unwrap();
    let consumer = fast
        .add_job("consumer", JobSpec::real_rate(), Box::new(Spin))
        .unwrap();
    let queue = Arc::new(BoundedBuffer::<u8>::new("q", 8));
    for i in 0..8 {
        queue.try_push(i).unwrap();
    }
    registry.register(JobKey(consumer.job.0), Role::Consumer, queue);
    fast.run_for(2.0);

    for ((a, sa), (b, sb)) in [(rt_s, &slow), (hog_s, &slow), (con_s, &slow)]
        .into_iter()
        .zip([(rt, &fast), (hog, &fast), (consumer, &fast)])
    {
        let frac_a = sa.cpu_used_us(a) as f64 / sa.now_micros() as f64;
        let frac_b = sb.cpu_used_us(b) as f64 / sb.now_micros() as f64;
        assert!(
            (frac_a - frac_b).abs() < 0.02,
            "job delivery changed: {frac_a} vs {frac_b}"
        );
    }
    assert!(fast.stats().steps <= slow.stats().steps);
}
