//! Integration tests of the experiment harness itself: quick versions of
//! the figure regenerations, checked for the qualitative shape the paper
//! reports and for a clean JSON round trip.

use realrate::metrics::ExperimentRecord;
use rrs_bench::{fig5, fig8};

#[test]
fn figure5_quick_sweep_is_linear_and_small() {
    let record = fig5::run(fig5::Fig5Params {
        max_processes: 20,
        step: 10,
        seconds_per_point: 0.5,
    });
    let slope = record.get_scalar("slope").unwrap();
    let r2 = record.get_scalar("r_squared").unwrap();
    assert!(slope > 0.0, "overhead must grow with process count");
    assert!(r2 > 0.9, "growth should be essentially linear (R² = {r2})");
    // Round trip through JSON.
    let parsed = ExperimentRecord::from_json(&record.to_json()).unwrap();
    assert_eq!(parsed.id, "figure5");
    assert_eq!(parsed.series.len(), record.series.len());
}

#[test]
fn figure8_quick_sweep_shows_monotone_overhead() {
    let record = fig8::run(fig8::Fig8Params {
        frequencies_hz: vec![100.0, 2000.0, 10000.0],
        seconds_per_point: 0.5,
    });
    let normalised = &record.series[1];
    let values = normalised.values();
    assert_eq!(
        values[0], 1.0,
        "the series is normalised to the first point"
    );
    assert!(
        values.last().unwrap() < &values[0],
        "higher dispatcher frequency must cost CPU"
    );
}
