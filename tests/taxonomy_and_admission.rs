//! Integration tests for the controller's taxonomy, admission control and
//! reservation handling working against the dispatcher.

use realrate::core::{controller::AdmitError, JobSpec};
use realrate::scheduler::{Period, Proportion};
use realrate::sim::{SimConfig, Simulation};
use realrate::workloads::CpuHog;

#[test]
fn real_time_jobs_are_admission_controlled_and_isolated() {
    let mut sim = Simulation::new(SimConfig::default());
    let rt1 = sim
        .add_job(
            "rt1",
            JobSpec::real_time(Proportion::from_ppt(500), Period::from_millis(10)),
            Box::new(CpuHog::new()),
        )
        .unwrap();
    let rt2 = sim
        .add_job(
            "rt2",
            JobSpec::real_time(Proportion::from_ppt(300), Period::from_millis(20)),
            Box::new(CpuHog::new()),
        )
        .unwrap();
    // A third reservation of 300 ‰ would exceed the 950 ‰ threshold.
    let rejected = sim.add_job(
        "rt3",
        JobSpec::real_time(Proportion::from_ppt(300), Period::from_millis(20)),
        Box::new(CpuHog::new()),
    );
    assert!(matches!(rejected, Err(AdmitError::Rejected { .. })));

    // A best-effort hog joins anyway and scavenges what is left.
    let hog = sim
        .add_job("hog", JobSpec::miscellaneous(), Box::new(CpuHog::new()))
        .unwrap();
    sim.run_for(10.0);

    let f1 = sim.cpu_used_us(rt1) as f64 / sim.now_micros() as f64;
    let f2 = sim.cpu_used_us(rt2) as f64 / sim.now_micros() as f64;
    let fh = sim.cpu_used_us(hog) as f64 / sim.now_micros() as f64;
    assert!((f1 - 0.5).abs() < 0.05, "rt1 got {f1}, wanted ≈ 0.5");
    assert!((f2 - 0.3).abs() < 0.05, "rt2 got {f2}, wanted ≈ 0.3");
    assert!(
        fh > 0.05,
        "the hog should still get the leftovers, got {fh}"
    );
    assert!(
        fh < 0.25,
        "the hog must not encroach on reservations, got {fh}"
    );
}

#[test]
fn aperiodic_real_time_jobs_get_the_default_period() {
    let mut sim = Simulation::new(SimConfig::default());
    let job = sim
        .add_job(
            "aperiodic",
            JobSpec::aperiodic_real_time(Proportion::from_ppt(250)),
            Box::new(CpuHog::new()),
        )
        .unwrap();
    sim.run_for(2.0);
    let reservation = sim.dispatcher().reservation(job.thread).unwrap();
    assert_eq!(reservation.proportion.ppt(), 250);
    assert_eq!(reservation.period, Period::from_millis(30));
}

#[test]
fn rate_monotonic_ordering_prefers_short_period_threads() {
    let mut sim = Simulation::new(SimConfig::default());
    // Two reservations with equal proportions but different periods; the
    // short-period job must not miss deadlines because it always wins the
    // goodness comparison when runnable.
    let short = sim
        .add_job(
            "short",
            JobSpec::real_time(Proportion::from_ppt(300), Period::from_millis(5)),
            Box::new(CpuHog::new()),
        )
        .unwrap();
    let long = sim
        .add_job(
            "long",
            JobSpec::real_time(Proportion::from_ppt(300), Period::from_millis(100)),
            Box::new(CpuHog::new()),
        )
        .unwrap();
    sim.run_for(5.0);
    let short_usage = sim.dispatcher().usage(short.thread).unwrap();
    let long_usage = sim.dispatcher().usage(long.thread).unwrap();
    assert_eq!(
        short_usage.deadlines_missed, 0,
        "the short-period reservation must never miss"
    );
    // Both get their share overall.
    assert!((short_usage.total_used_us as f64 / sim.now_micros() as f64 - 0.3).abs() < 0.05);
    assert!((long_usage.total_used_us as f64 / sim.now_micros() as f64 - 0.3).abs() < 0.05);
}

#[test]
fn admission_admits_exactly_at_capacity_and_rejects_one_past_it() {
    use realrate::core::{Controller, ControllerConfig, JobId};
    use realrate::queue::MetricRegistry;

    let config = ControllerConfig::default();
    let threshold = config.overload_threshold_ppt;
    let mut c = Controller::new(config, MetricRegistry::new());
    c.add_job(
        JobId(1),
        JobSpec::real_time(Proportion::from_ppt(500), Period::from_millis(10)),
    )
    .unwrap();
    // Exactly filling the remaining capacity must be admitted...
    c.add_job(
        JobId(2),
        JobSpec::real_time(
            Proportion::from_ppt(threshold - 500),
            Period::from_millis(10),
        ),
    )
    .expect("a reservation exactly at capacity is admissible");
    // ...and a single extra part-per-thousand must be rejected.
    let err = c
        .add_job(
            JobId(3),
            JobSpec::real_time(Proportion::from_ppt(1), Period::from_millis(10)),
        )
        .unwrap_err();
    match err {
        AdmitError::Rejected {
            requested,
            available,
        } => {
            assert_eq!(requested.ppt(), 1);
            assert_eq!(available.ppt(), 0);
        }
        other => panic!("expected Rejected, got {other:?}"),
    }
}

#[test]
fn zero_proportion_real_time_job_is_admitted_and_stays_at_zero() {
    let mut sim = Simulation::new(SimConfig::default());
    let zero = sim
        .add_job(
            "zero",
            JobSpec::real_time(Proportion::from_ppt(0), Period::from_millis(10)),
            Box::new(CpuHog::new()),
        )
        .expect("a zero-proportion reservation consumes no capacity");
    let _hog = sim
        .add_job("hog", JobSpec::miscellaneous(), Box::new(CpuHog::new()))
        .unwrap();
    sim.run_for(3.0);
    // The reservation is honoured verbatim: never squished, never grown.
    assert_eq!(sim.current_allocation_ppt(zero), 0);
    // A zero reservation may still ride otherwise-idle dispatch slots, but
    // with a hog present it must get essentially nothing.
    let fraction = sim.cpu_used_us(zero) as f64 / sim.now_micros() as f64;
    assert!(fraction < 0.02, "zero-proportion job used {fraction}");
}

#[test]
fn duplicate_registration_is_reported_as_duplicate() {
    use realrate::core::{Controller, ControllerConfig, JobId};
    use realrate::queue::MetricRegistry;

    let mut c = Controller::new(ControllerConfig::default(), MetricRegistry::new());
    let slot = c.add_job(JobId(42), JobSpec::miscellaneous()).unwrap();
    let err = c.add_job(JobId(42), JobSpec::real_rate()).unwrap_err();
    assert_eq!(err, AdmitError::Duplicate(JobId(42)));
    assert!(err.to_string().contains("job42"));
    // The failed registration must not have disturbed the original.
    assert_eq!(c.slot_of(JobId(42)), Some(slot));
    assert_eq!(c.job_count(), 1);
}

#[test]
fn equal_importances_split_the_overload_equally() {
    use realrate::core::Importance;
    let mut sim = Simulation::new(SimConfig::default());
    let a = sim
        .add_job(
            "a",
            JobSpec::miscellaneous().with_importance(Importance::new(2.0)),
            Box::new(CpuHog::new()),
        )
        .unwrap();
    let b = sim
        .add_job(
            "b",
            JobSpec::miscellaneous().with_importance(Importance::new(2.0)),
            Box::new(CpuHog::new()),
        )
        .unwrap();
    sim.run_for(15.0);
    let ua = sim.cpu_used_us(a) as f64;
    let ub = sim.cpu_used_us(b) as f64;
    let ratio = ua / ub.max(1.0);
    assert!(
        (0.8..1.25).contains(&ratio),
        "equal importances must not bias the split (ratio {ratio})"
    );
}

#[test]
fn importance_changes_the_overload_split_but_never_starves() {
    use realrate::core::Importance;
    let mut sim = Simulation::new(SimConfig::default());
    let important = sim
        .add_job(
            "important",
            JobSpec::miscellaneous().with_importance(Importance::new(8.0)),
            Box::new(CpuHog::new()),
        )
        .unwrap();
    let humble = sim
        .add_job(
            "humble",
            JobSpec::miscellaneous().with_importance(Importance::new(0.5)),
            Box::new(CpuHog::new()),
        )
        .unwrap();
    sim.run_for(15.0);
    let imp = sim.cpu_used_us(important);
    let hum = sim.cpu_used_us(humble);
    assert!(
        imp > hum,
        "importance should bias the split ({imp} vs {hum})"
    );
    assert!(
        hum as f64 / sim.now_micros() as f64 > 0.02,
        "the humble job must not starve"
    );
}
