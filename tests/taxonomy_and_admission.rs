//! Integration tests for the controller's taxonomy, admission control and
//! reservation handling working against the dispatcher.

use realrate::core::{controller::AdmitError, JobSpec};
use realrate::scheduler::{Period, Proportion};
use realrate::sim::{SimConfig, Simulation};
use realrate::workloads::CpuHog;

#[test]
fn real_time_jobs_are_admission_controlled_and_isolated() {
    let mut sim = Simulation::new(SimConfig::default());
    let rt1 = sim
        .add_job(
            "rt1",
            JobSpec::real_time(Proportion::from_ppt(500), Period::from_millis(10)),
            Box::new(CpuHog::new()),
        )
        .unwrap();
    let rt2 = sim
        .add_job(
            "rt2",
            JobSpec::real_time(Proportion::from_ppt(300), Period::from_millis(20)),
            Box::new(CpuHog::new()),
        )
        .unwrap();
    // A third reservation of 300 ‰ would exceed the 950 ‰ threshold.
    let rejected = sim.add_job(
        "rt3",
        JobSpec::real_time(Proportion::from_ppt(300), Period::from_millis(20)),
        Box::new(CpuHog::new()),
    );
    assert!(matches!(rejected, Err(AdmitError::Rejected { .. })));

    // A best-effort hog joins anyway and scavenges what is left.
    let hog = sim
        .add_job("hog", JobSpec::miscellaneous(), Box::new(CpuHog::new()))
        .unwrap();
    sim.run_for(10.0);

    let f1 = sim.cpu_used_us(rt1) as f64 / sim.now_micros() as f64;
    let f2 = sim.cpu_used_us(rt2) as f64 / sim.now_micros() as f64;
    let fh = sim.cpu_used_us(hog) as f64 / sim.now_micros() as f64;
    assert!((f1 - 0.5).abs() < 0.05, "rt1 got {f1}, wanted ≈ 0.5");
    assert!((f2 - 0.3).abs() < 0.05, "rt2 got {f2}, wanted ≈ 0.3");
    assert!(fh > 0.05, "the hog should still get the leftovers, got {fh}");
    assert!(fh < 0.25, "the hog must not encroach on reservations, got {fh}");
}

#[test]
fn aperiodic_real_time_jobs_get_the_default_period() {
    let mut sim = Simulation::new(SimConfig::default());
    let job = sim
        .add_job(
            "aperiodic",
            JobSpec::aperiodic_real_time(Proportion::from_ppt(250)),
            Box::new(CpuHog::new()),
        )
        .unwrap();
    sim.run_for(2.0);
    let reservation = sim.dispatcher().reservation(job.thread).unwrap();
    assert_eq!(reservation.proportion.ppt(), 250);
    assert_eq!(reservation.period, Period::from_millis(30));
}

#[test]
fn rate_monotonic_ordering_prefers_short_period_threads() {
    let mut sim = Simulation::new(SimConfig::default());
    // Two reservations with equal proportions but different periods; the
    // short-period job must not miss deadlines because it always wins the
    // goodness comparison when runnable.
    let short = sim
        .add_job(
            "short",
            JobSpec::real_time(Proportion::from_ppt(300), Period::from_millis(5)),
            Box::new(CpuHog::new()),
        )
        .unwrap();
    let long = sim
        .add_job(
            "long",
            JobSpec::real_time(Proportion::from_ppt(300), Period::from_millis(100)),
            Box::new(CpuHog::new()),
        )
        .unwrap();
    sim.run_for(5.0);
    let short_usage = sim.dispatcher().usage(short.thread).unwrap();
    let long_usage = sim.dispatcher().usage(long.thread).unwrap();
    assert_eq!(
        short_usage.deadlines_missed, 0,
        "the short-period reservation must never miss"
    );
    // Both get their share overall.
    assert!((short_usage.total_used_us as f64 / sim.now_micros() as f64 - 0.3).abs() < 0.05);
    assert!((long_usage.total_used_us as f64 / sim.now_micros() as f64 - 0.3).abs() < 0.05);
}

#[test]
fn importance_changes_the_overload_split_but_never_starves() {
    use realrate::core::Importance;
    let mut sim = Simulation::new(SimConfig::default());
    let important = sim
        .add_job_with_importance(
            "important",
            JobSpec::miscellaneous(),
            Importance::new(8.0),
            Box::new(CpuHog::new()),
        )
        .unwrap();
    let humble = sim
        .add_job_with_importance(
            "humble",
            JobSpec::miscellaneous(),
            Importance::new(0.5),
            Box::new(CpuHog::new()),
        )
        .unwrap();
    sim.run_for(15.0);
    let imp = sim.cpu_used_us(important);
    let hum = sim.cpu_used_us(humble);
    assert!(imp > hum, "importance should bias the split ({imp} vs {hum})");
    assert!(
        hum as f64 / sim.now_micros() as f64 > 0.02,
        "the humble job must not starve"
    );
}
