//! Integration tests spanning the queue, controller, scheduler and simulator
//! crates: the full monitoring → estimation → actuation loop on realistic
//! workloads.

use realrate::core::JobSpec;
use realrate::queue::ProgressMetric;
use realrate::sim::{SimConfig, Simulation};
use realrate::workloads::{CpuHog, PipelineConfig, PulsePipeline};

#[test]
fn steady_pipeline_converges_and_holds_the_queue_near_half() {
    let mut sim = Simulation::new(SimConfig::default());
    let handles = PulsePipeline::install(&mut sim, PipelineConfig::steady(2.5e-5));
    sim.run_for(30.0);

    // Throughput match: producer offers 2000 bytes/s and the consumer should
    // move essentially all of it.
    let produced = sim
        .trace()
        .get("rate/producer")
        .unwrap()
        .window_mean(10.0, 30.0)
        .unwrap();
    let consumed = sim
        .trace()
        .get("rate/consumer")
        .unwrap()
        .window_mean(10.0, 30.0)
        .unwrap();
    assert!(
        (consumed / produced - 1.0).abs() < 0.2,
        "consumer ({consumed}) should track producer ({produced})"
    );

    // The queue should not be pinned at either rail in steady state.
    let fill = handles.queue.sample().fraction();
    assert!((0.02..=0.98).contains(&fill), "final fill {fill}");
}

#[test]
fn pipeline_survives_competing_load_without_starvation() {
    let mut sim = Simulation::new(SimConfig::default());
    let handles = PulsePipeline::install(&mut sim, PipelineConfig::steady(2.5e-5));
    let hog = sim
        .add_job("hog", JobSpec::miscellaneous(), Box::new(CpuHog::new()))
        .unwrap();
    sim.run_for(30.0);

    // The hog gets the slack, but the consumer still tracks the producer.
    let produced = sim
        .trace()
        .get("rate/producer")
        .unwrap()
        .window_mean(10.0, 30.0)
        .unwrap();
    let consumed = sim
        .trace()
        .get("rate/consumer")
        .unwrap()
        .window_mean(10.0, 30.0)
        .unwrap();
    assert!(
        consumed > produced * 0.75,
        "consumer ({consumed}) starved by hog (producer {produced})"
    );
    assert!(
        sim.current_allocation_ppt(hog) > 100,
        "hog should get leftover CPU"
    );
    // The producer's reservation is untouched.
    assert_eq!(sim.current_allocation_ppt(handles.producer), 200);
    // Granted allocations never exceed the overload threshold.
    let total = sim.current_allocation_ppt(handles.producer)
        + sim.current_allocation_ppt(handles.consumer)
        + sim.current_allocation_ppt(hog);
    assert!(total <= 952, "total granted {total} exceeds the threshold");
}

#[test]
fn overload_raises_squish_events_and_controller_stays_within_budget() {
    let mut sim = Simulation::new(SimConfig::default());
    for i in 0..5 {
        sim.add_job(
            &format!("hog{i}"),
            JobSpec::miscellaneous(),
            Box::new(CpuHog::new()),
        )
        .unwrap();
    }
    sim.run_for(10.0);
    assert!(
        sim.stats().squish_events > 0,
        "five hogs must trigger squishing"
    );

    // Controller overhead stays in the single-digit percent range.
    let overhead = sim.stats().controller_cost_us / sim.now_micros() as f64;
    assert!(
        overhead < 0.02,
        "controller overhead {overhead} too high for 5 jobs"
    );
}

#[test]
fn five_hogs_share_the_machine_roughly_equally() {
    let mut sim = Simulation::new(SimConfig::default());
    let handles: Vec<_> = (0..5)
        .map(|i| {
            sim.add_job(
                &format!("hog{i}"),
                JobSpec::miscellaneous(),
                Box::new(CpuHog::new()),
            )
            .unwrap()
        })
        .collect();
    sim.run_for(20.0);
    let used: Vec<f64> = handles
        .iter()
        .map(|h| sim.cpu_used_us(*h) as f64 / sim.now_micros() as f64)
        .collect();
    let min = used.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = used.iter().cloned().fold(0.0, f64::max);
    assert!(
        max / min.max(1e-9) < 2.0,
        "equal hogs should get similar CPU shares: {used:?}"
    );
    let total: f64 = used.iter().sum();
    assert!(
        total > 0.8,
        "the machine should be nearly fully used, got {total}"
    );
}
