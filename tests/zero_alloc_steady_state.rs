//! Verifies the staged pipeline's core guarantee: once the scratch buffers
//! have warmed up, a steady-state control cycle performs **no heap
//! allocation**.
//!
//! This file must contain only this one test: the counting allocator is
//! process-global, so any concurrently running test in the same binary
//! would pollute the measurement.

use realrate::core::{Controller, ControllerConfig, JobId, JobSpec, UsageSnapshot};
use realrate::queue::{BoundedBuffer, JobKey, MetricRegistry, Role};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Runs the representative job mix against a controller with the given
/// configuration and asserts the measured steady-state window performs no
/// heap allocation.  Exercised twice: on the paper's single CPU and on a
/// 4-CPU machine, where the Place stage's CPU-load accounting and sticky
/// placement run every cycle.
fn assert_steady_state_allocation_free(config: ControllerConfig) {
    let registry = MetricRegistry::new();
    let mut controller = Controller::new(config, registry.clone());

    // A representative mix: a real-time reservation, a real-rate consumer
    // of a full queue, and enough greedy miscellaneous jobs to keep the
    // squish path (the allocation-heaviest stage) exercised every cycle.
    controller
        .add_job(
            JobId(1),
            JobSpec::real_time(
                realrate::scheduler::Proportion::from_ppt(200),
                realrate::scheduler::Period::from_millis(10),
            ),
        )
        .unwrap();
    let queue = Arc::new(BoundedBuffer::<u8>::new("q", 8));
    for i in 0..8 {
        queue.try_push(i).unwrap();
    }
    registry.register(JobKey(2), Role::Consumer, queue);
    let consumer = controller.add_job(JobId(2), JobSpec::real_rate()).unwrap();
    let mut hogs = Vec::new();
    for id in 3..10 {
        hogs.push(
            controller
                .add_job(JobId(id), JobSpec::miscellaneous())
                .unwrap(),
        );
    }

    // Warm-up: let every scratch buffer reach its steady-state capacity and
    // make sure the overload/squish and quality-exception paths have fired
    // at least once (their event buffers must be warm too).
    let mut saw_squish = false;
    for i in 1..=300 {
        controller.record_usage(consumer, UsageSnapshot { usage_ratio: 1.0 });
        let out = controller.control_cycle_in_place(i as f64 * 0.01);
        saw_squish |= !out.events.is_empty();
    }
    assert!(saw_squish, "fixture must exercise the squish path");

    // Measure: steady-state cycles, including the usage-recording sweep a
    // host layer performs, must not touch the heap at all.
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for i in 301..=500 {
        controller.record_usage(consumer, UsageSnapshot { usage_ratio: 1.0 });
        for &hog in &hogs {
            controller.record_usage(hog, UsageSnapshot { usage_ratio: 1.0 });
        }
        let out = controller.control_cycle_in_place(i as f64 * 0.01);
        assert_eq!(out.actuations.len(), 9);
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "steady-state control cycles must perform no heap allocation"
    );
}

#[test]
fn steady_state_control_cycle_is_allocation_free() {
    // The paper's single CPU, and a 4-CPU machine with the Place stage
    // doing per-CPU load accounting (run sequentially: the counting
    // allocator is process-global).
    assert_steady_state_allocation_free(ControllerConfig::default());
    assert_steady_state_allocation_free(ControllerConfig::default().with_cpus(4));
}
