//! Verifies the staged pipeline's core guarantee: once the scratch buffers
//! have warmed up, a steady-state control cycle performs **no heap
//! allocation** — with telemetry disabled (the default, as in the cycles
//! below) and, separately, that an enabled telemetry recorder stays
//! allocation-free once its pre-allocated ring has wrapped.
//!
//! This file must contain only this one test: the counting allocator is
//! process-global, so any concurrently running test in the same binary
//! would pollute the measurement.

use realrate::core::{Controller, ControllerConfig, JobId, JobSpec, UsageSnapshot};
use realrate::queue::{BoundedBuffer, JobKey, MetricRegistry, Role};
use realrate::telemetry::{
    CalendarEventKind, Recorder, SettleCause, TelemetryConfig, TraceEventKind,
};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: pure pass-through to `System` that only bumps a relaxed atomic
// counter on the side; every GlobalAlloc contract obligation (layout
// validity, pointer provenance, thread safety) is delegated unchanged.
unsafe impl GlobalAlloc for CountingAllocator {
    // SAFETY: forwards the caller's contract to `System` verbatim.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: caller upholds GlobalAlloc's `alloc` contract (non-zero
        // layout); we forward it verbatim to `System`.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: forwards the caller's contract to `System` verbatim.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr` was returned by our `alloc`/`realloc`, which always
        // delegate to `System` with the same layout, so `System.dealloc`
        // receives a pointer it allocated.
        unsafe { System.dealloc(ptr, layout) }
    }

    // SAFETY: forwards the caller's contract to `System` verbatim.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: same delegation as `dealloc` — `ptr` originates from
        // `System` via our `alloc`, and the caller upholds the layout and
        // `new_size` requirements of `GlobalAlloc::realloc`.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Runs the representative job mix against a controller with the given
/// configuration and asserts the measured steady-state window performs no
/// heap allocation.  Exercised twice: on the paper's single CPU and on a
/// 4-CPU machine, where the Place stage's CPU-load accounting and sticky
/// placement run every cycle.
fn assert_steady_state_allocation_free(config: ControllerConfig) {
    let registry = MetricRegistry::new();
    let mut controller = Controller::new(config, registry.clone());

    // A representative mix: a real-time reservation, a real-rate consumer
    // of a full queue, and enough greedy miscellaneous jobs to keep the
    // squish path (the allocation-heaviest stage) exercised every cycle.
    controller
        .add_job(
            JobId(1),
            JobSpec::real_time(
                realrate::scheduler::Proportion::from_ppt(200),
                realrate::scheduler::Period::from_millis(10),
            ),
        )
        .unwrap();
    let queue = Arc::new(BoundedBuffer::<u8>::new("q", 8));
    for i in 0..8 {
        queue.try_push(i).unwrap();
    }
    registry.register(JobKey(2), Role::Consumer, queue);
    let consumer = controller.add_job(JobId(2), JobSpec::real_rate()).unwrap();
    let mut hogs = Vec::new();
    for id in 3..10 {
        hogs.push(
            controller
                .add_job(JobId(id), JobSpec::miscellaneous())
                .unwrap(),
        );
    }

    // Warm-up: let every scratch buffer reach its steady-state capacity and
    // make sure the overload/squish and quality-exception paths have fired
    // at least once (their event buffers must be warm too).
    let mut saw_squish = false;
    for i in 1..=300 {
        controller.record_usage(consumer, UsageSnapshot { usage_ratio: 1.0 });
        let out = controller.control_cycle_in_place(i as f64 * 0.01);
        saw_squish |= !out.events.is_empty();
    }
    assert!(saw_squish, "fixture must exercise the squish path");

    // Measure: steady-state cycles, including the usage-recording sweep a
    // host layer performs, must not touch the heap at all.
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for i in 301..=500 {
        controller.record_usage(consumer, UsageSnapshot { usage_ratio: 1.0 });
        for &hog in &hogs {
            controller.record_usage(hog, UsageSnapshot { usage_ratio: 1.0 });
        }
        let out = controller.control_cycle_in_place(i as f64 * 0.01);
        assert_eq!(out.actuations.len(), 9);
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "steady-state control cycles must perform no heap allocation"
    );
}

/// Telemetry's half of the guarantee: once the pre-allocated ring has
/// wrapped (overwrite mode), recording events of every kind — the exact
/// calls the dispatcher, simulator and controller make on their hot
/// paths — touches the heap zero times.
fn assert_steady_state_recording_allocation_free() {
    let rec = Recorder::new(TelemetryConfig {
        ring_capacity: 1024,
        stage_timing: false,
    });
    let kinds = [
        TraceEventKind::DispatchSpan {
            cpu: 0,
            thread: 1,
            len_us: 10,
        },
        TraceEventKind::Settle {
            cpu: 0,
            thread: 1,
            cause: SettleCause::Goodness,
        },
        TraceEventKind::CacheHit { cpu: 0 },
        TraceEventKind::CacheMiss { cpu: 1 },
        TraceEventKind::CalendarEvent {
            kind: CalendarEventKind::Controller,
        },
        TraceEventKind::ControllerCycle {
            dur_ns: 100,
            incremental: true,
            jobs: 9,
            stage_ns: [0; 6],
        },
        TraceEventKind::Migration {
            thread: 1,
            from: 0,
            to: 1,
        },
        TraceEventKind::PeriodRollover {
            cpu: 0,
            thread: 1,
            count: 1,
        },
    ];
    // Warm-up: wrap the ring at least once so overwrite mode is active.
    for i in 0..2048u64 {
        rec.record(i, kinds[i as usize % kinds.len()]);
    }
    assert!(rec.dropped() > 0, "the warmup must wrap the ring");

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for i in 2048..4096u64 {
        rec.record(i, kinds[i as usize % kinds.len()]);
    }
    let held = rec.len();
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "steady-state trace recording must perform no heap allocation"
    );
    assert_eq!(held, 1024, "the ring must stay at its configured capacity");
}

/// The sharded machine's half of the guarantee: *between* rebalance
/// barriers each shard is an ordinary simulation on its own dense state,
/// so a warmed multi-shard advance window allocates nothing.  The
/// barriers themselves are exempt (the rebalancer's extract/inject and
/// the trace merge may allocate; they run on the slow cadence, not the
/// hot path), so the measured window is placed strictly inside one
/// barrier interval.  Sequential mode — spawning scoped threads
/// allocates, and parallel execution is bit-identical anyway.
///
/// The warmed advance window below drives the full per-shard stack —
/// dispatcher spans (runqueue picks, timer-list rollovers), the event
/// calendar, and the simulation window loop — so the counting-allocator
/// measurement dynamically covers every module the static hot list in
/// analysis.toml declares allocation-free.  The markers are kept in sync
/// with that list by crates/analysis/tests/coverage_crosscheck.rs:
/// adding a file to the hot list without extending this test (or vice
/// versa) fails `cargo test`.
// hot-coverage: crates/scheduler/src/runqueue.rs
// hot-coverage: crates/scheduler/src/timerlist.rs
// hot-coverage: crates/scheduler/src/dispatcher.rs
// hot-coverage: crates/sim/src/calendar.rs
// hot-coverage: crates/sim/src/simulation.rs
fn assert_sharded_steady_state_allocation_free() {
    use realrate::sim::{RunResult, ShardConfig, ShardedSim, SimConfig, WorkModel};

    struct Spin;
    impl WorkModel for Spin {
        fn run(&mut self, _now: u64, quantum_us: u64, _hz: f64) -> RunResult {
            RunResult::ran(quantum_us)
        }
    }

    let mut sim = ShardedSim::new(
        SimConfig::default().with_cpus(4),
        ShardConfig {
            shards: 2,
            rebalance_interval_s: 30.0,
            rebalance_threshold_ppt: 50,
            parallel: false,
        },
    );
    for i in 0..8 {
        sim.add_job(&format!("hog{i}"), JobSpec::miscellaneous(), Box::new(Spin))
            .unwrap();
    }
    // Push trace sampling past the horizon: the recorded trace grows by
    // design (it is the measurement product, not the control plane).
    sim.set_trace_interval(realrate::core::SimTime::from_secs(3600));
    // Warm-up: let each shard's calendar, scratch buffers and controller
    // event buffers reach steady-state capacity.
    sim.run_for(1.0);

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    sim.run_for(0.5);
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "a multi-shard advance between rebalance barriers must perform \
         no heap allocation"
    );
}

#[test]
fn steady_state_control_cycle_is_allocation_free() {
    // The paper's single CPU, and a 4-CPU machine with the Place stage
    // doing per-CPU load accounting (run sequentially: the counting
    // allocator is process-global).  Both run with telemetry disabled —
    // the default — so they also pin the recorder-absent cost at zero.
    assert_steady_state_allocation_free(ControllerConfig::default());
    assert_steady_state_allocation_free(ControllerConfig::default().with_cpus(4));
    // And with telemetry enabled, the recording hot path itself.
    assert_steady_state_recording_allocation_free();
    // And the per-shard guarantee on the two-level machine.
    assert_sharded_steady_state_allocation_free();
}
