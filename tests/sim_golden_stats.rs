//! Golden `SimStats` pins, one per stepping mode.
//!
//! **Lockstep**: the expected JSON blobs were captured by running this
//! exact workload on the pre-optimisation simulator (commit `84db007`:
//! full-scan dispatch pick, O(n) timer cancel, lockstep stepping with
//! per-step blocked scans).  The retained naive loop must keep
//! reproducing every field — clock, counters, floating-point overhead
//! sums and the whole `per_cpu` breakdown — bit for bit, at `N = 1` and
//! at `N = 8`.
//!
//! **Calendar**: the event-calendar rewrite is a *deliberate, documented
//! re-golden*.  Dispatch decisions hold for up to a full dispatch
//! interval instead of being re-taken every lockstep round, idle CPUs
//! take no dispatch decisions at all, per-CPU overhead is charged per
//! CPU rather than averaged over the machine, and the incremental
//! controller emits quality/squish events only on recomputed cycles —
//! so step counts, overhead sums and event counters legitimately differ
//! from the lockstep capture.  Scheduling outcomes stay equivalent
//! (delivered CPU per job within a couple of percent; see
//! `multicore_equivalence.rs` and the in-crate calendar-vs-lockstep
//! proptest oracle, which proves *exact* equality on blocking-free
//! workloads).  The calendar blobs below pin the new behaviour bit for
//! bit so further optimisation of the calendar path stays invisible.
//!
//! To re-capture after an *intentional* behaviour change, run
//! `GOLDEN_PRINT=1 cargo test --release --test sim_golden_stats -- --nocapture`
//! and paste the printed JSON over the constants.
//!
//! The workload is driven entirely through the backend-agnostic
//! `realrate::api::Runtime` / `Host` surface: the golden blobs double as
//! proof that the new front door is a zero-cost veneer over the
//! simulator — same code path, same numbers, bit for bit.

use realrate::api::{JobSpec, Period, Proportion, Runtime, SimTime};
use realrate::sim::{RunResult, SimConfig, SimStats, Simulation, SteppingMode, WorkModel};

/// Uses every cycle offered, never blocks.
struct Spin;

impl WorkModel for Spin {
    fn run(&mut self, _now: u64, quantum_us: u64, _hz: f64) -> RunResult {
        RunResult::ran(quantum_us)
    }
}

/// Runs `burst_us`, then blocks until `now + sleep_us` — a deterministic
/// periodic I/O-ish job exercising block/unblock: the poll path under
/// lockstep, the timer-wake path (`next_transition`) under the calendar.
struct BurstSleep {
    burst_us: u64,
    sleep_us: u64,
    wake_at_us: u64,
}

impl WorkModel for BurstSleep {
    fn run(&mut self, now_us: u64, quantum_us: u64, _hz: f64) -> RunResult {
        let used = self.burst_us.min(quantum_us);
        if used < quantum_us {
            self.wake_at_us = now_us + used + self.sleep_us;
            RunResult::blocked_after(used)
        } else {
            RunResult::ran(used)
        }
    }

    fn poll_unblock(&mut self, now_us: u64) -> bool {
        now_us >= self.wake_at_us
    }

    fn next_transition(&self, _now: SimTime) -> Option<SimTime> {
        Some(SimTime::from_micros(self.wake_at_us))
    }
}

/// The fixed mixed workload: real-time spinners, greedy hogs and periodic
/// burst-sleep jobs; at `N = 8` a mid-run removal forces rebalancing
/// migrations.  Populations scale with the CPU count so every CPU carries
/// work.
fn run_mixed_workload(cpus: usize, stepping: SteppingMode) -> SimStats {
    let config = SimConfig {
        stepping,
        ..SimConfig::default().with_cpus(cpus)
    };
    let mut host = Runtime::sim().cpus(cpus).sim_config(config).build();
    let n = cpus as u64;
    for i in 0..n {
        host.add_job(
            &format!("rt{i}"),
            JobSpec::real_time(Proportion::from_ppt(250), Period::from_millis(10)),
            Box::new(Spin),
        )
        .unwrap();
    }
    let mut hogs = Vec::new();
    for i in 0..2 * n {
        hogs.push(
            host.add_job(&format!("hog{i}"), JobSpec::miscellaneous(), Box::new(Spin))
                .unwrap(),
        );
    }
    for i in 0..2 * n {
        host.add_job(
            &format!("io{i}"),
            JobSpec::miscellaneous(),
            Box::new(BurstSleep {
                burst_us: 300 + 70 * i,
                sleep_us: 2_000 + 500 * i,
                wake_at_us: 0,
            }),
        )
        .unwrap();
    }
    host.advance(SimTime::from_secs_f64(1.5));
    // Remove every other hog: the emptied CPUs pull survivors across,
    // exercising take/inject (and thus the timer reverse index) mid-period.
    for h in hogs.iter().step_by(2) {
        host.remove_job(*h);
    }
    host.advance(SimTime::from_secs_f64(1.5));
    // The backend-specific capture (modelled overhead sums included)
    // comes from the concrete simulator behind the trait object.
    host.as_sim()
        .map(Simulation::stats)
        .expect("Runtime::sim() builds a Simulation")
}

fn check(cpus: usize, stepping: SteppingMode, expected_json: &str) {
    let stats = run_mixed_workload(cpus, stepping);
    if std::env::var_os("GOLDEN_PRINT").is_some() {
        println!(
            "golden for {cpus} cpu(s), {stepping:?}:\n{}",
            serde_json::to_string(&stats).unwrap()
        );
        return;
    }
    let expected: SimStats = serde_json::from_str(expected_json).expect("golden blob parses");
    assert_eq!(
        stats, expected,
        "SimStats diverged from the golden capture at {cpus} cpu(s), {stepping:?}"
    );
}

const GOLDEN_LOCKSTEP_1CPU: &str = r#"{"controller_invocations":300,"controller_cost_us":10613.40000000004,"dispatch_overhead_us":35018.30000000067,"quality_exceptions":401,"squish_events":282,"admission_rejections":0,"migrations":0,"steps":4271,"per_cpu":[{"used_us":2665210,"idle_us":289132,"migrations_in":0,"migrations_out":0,"deadlines_missed":234}]}"#;

const GOLDEN_LOCKSTEP_8CPU: &str = r#"{"controller_invocations":299,"controller_cost_us":72720.29999999996,"dispatch_overhead_us":231424.99999999697,"quality_exceptions":5365,"squish_events":285,"admission_rejections":0,"migrations":118,"steps":3497,"per_cpu":[{"used_us":2337768,"idle_us":560252,"migrations_in":48,"migrations_out":40,"deadlines_missed":416},{"used_us":2664125,"idle_us":233895,"migrations_in":22,"migrations_out":23,"deadlines_missed":202},{"used_us":2661913,"idle_us":236107,"migrations_in":10,"migrations_out":11,"deadlines_missed":235},{"used_us":2675698,"idle_us":222322,"migrations_in":11,"migrations_out":12,"deadlines_missed":215},{"used_us":2688441,"idle_us":209579,"migrations_in":8,"migrations_out":9,"deadlines_missed":170},{"used_us":2586303,"idle_us":311717,"migrations_in":1,"migrations_out":3,"deadlines_missed":220},{"used_us":2661292,"idle_us":236728,"migrations_in":8,"migrations_out":9,"deadlines_missed":135},{"used_us":2624116,"idle_us":273904,"migrations_in":10,"migrations_out":11,"deadlines_missed":141}]}"#;

const GOLDEN_CALENDAR_1CPU: &str = r#"{"controller_invocations":299,"controller_cost_us":10581.30000000004,"dispatch_overhead_us":36448.50000000133,"quality_exceptions":416,"squish_events":279,"admission_rejections":0,"migrations":0,"steps":751,"per_cpu":[{"used_us":2695927,"idle_us":257014,"migrations_in":0,"migrations_out":0,"deadlines_missed":229}]}"#;

const GOLDEN_CALENDAR_8CPU: &str = r#"{"controller_invocations":299,"controller_cost_us":72720.29999999996,"dispatch_overhead_us":343591.70000009064,"quality_exceptions":5815,"squish_events":286,"admission_rejections":0,"migrations":98,"steps":3668,"per_cpu":[{"used_us":2384320,"idle_us":503671,"migrations_in":37,"migrations_out":35,"deadlines_missed":239},{"used_us":2666606,"idle_us":216250,"migrations_in":12,"migrations_out":12,"deadlines_missed":166},{"used_us":2713652,"idle_us":168861,"migrations_in":7,"migrations_out":6,"deadlines_missed":142},{"used_us":2758689,"idle_us":124322,"migrations_in":4,"migrations_out":5,"deadlines_missed":136},{"used_us":2734094,"idle_us":149897,"migrations_in":10,"migrations_out":9,"deadlines_missed":141},{"used_us":2754110,"idle_us":129220,"migrations_in":4,"migrations_out":5,"deadlines_missed":123},{"used_us":2699509,"idle_us":186359,"migrations_in":14,"migrations_out":15,"deadlines_missed":144},{"used_us":2759897,"idle_us":124715,"migrations_in":10,"migrations_out":11,"deadlines_missed":131}]}"#;

#[test]
fn golden_simstats_lockstep_1cpu() {
    check(1, SteppingMode::Lockstep, GOLDEN_LOCKSTEP_1CPU);
}

#[test]
fn golden_simstats_lockstep_8cpu() {
    check(8, SteppingMode::Lockstep, GOLDEN_LOCKSTEP_8CPU);
}

#[test]
fn golden_simstats_calendar_1cpu() {
    check(1, SteppingMode::Calendar, GOLDEN_CALENDAR_1CPU);
}

#[test]
fn golden_simstats_calendar_8cpu() {
    check(8, SteppingMode::Calendar, GOLDEN_CALENDAR_8CPU);
}
