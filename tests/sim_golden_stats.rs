//! Golden `SimStats` pins: the indexed hot paths must be observationally
//! invisible.
//!
//! The expected JSON blobs below were captured by running this exact
//! workload on the pre-optimisation simulator (commit `84db007`: full-scan
//! dispatch pick, O(n) timer cancel, lockstep stepping with per-step
//! blocked scans).  Any rework of the dispatcher's runnable index, the
//! timer list or the simulator's stepping must reproduce every field —
//! clock, counters, floating-point overhead sums and the whole `per_cpu`
//! breakdown — bit for bit, at `N = 1` and at `N = 8`.
//!
//! To re-capture after an *intentional* behaviour change, run
//! `GOLDEN_PRINT=1 cargo test --release --test sim_golden_stats -- --nocapture`
//! and paste the printed JSON over the constants.
//!
//! The workload is driven entirely through the backend-agnostic
//! `realrate::api::Runtime` / `Host` surface: the golden blobs double as
//! proof that the new front door is a zero-cost veneer over the
//! simulator — same code path, same numbers, bit for bit.

use realrate::api::{JobSpec, Period, Proportion, Runtime, SimTime};
use realrate::sim::{RunResult, SimStats, Simulation, WorkModel};

/// Uses every cycle offered, never blocks.
struct Spin;

impl WorkModel for Spin {
    fn run(&mut self, _now: u64, quantum_us: u64, _hz: f64) -> RunResult {
        RunResult::ran(quantum_us)
    }
}

/// Runs `burst_us`, then blocks until `now + sleep_us` — a deterministic
/// periodic I/O-ish job exercising block/unblock and the poll path.
struct BurstSleep {
    burst_us: u64,
    sleep_us: u64,
    wake_at_us: u64,
}

impl WorkModel for BurstSleep {
    fn run(&mut self, now_us: u64, quantum_us: u64, _hz: f64) -> RunResult {
        let used = self.burst_us.min(quantum_us);
        if used < quantum_us {
            self.wake_at_us = now_us + used + self.sleep_us;
            RunResult::blocked_after(used)
        } else {
            RunResult::ran(used)
        }
    }

    fn poll_unblock(&mut self, now_us: u64) -> bool {
        now_us >= self.wake_at_us
    }
}

/// The fixed mixed workload: real-time spinners, greedy hogs and periodic
/// burst-sleep jobs; at `N = 8` a mid-run removal forces rebalancing
/// migrations.  Populations scale with the CPU count so every CPU carries
/// work.
fn run_mixed_workload(cpus: usize) -> SimStats {
    let mut host = Runtime::sim().cpus(cpus).build();
    let n = cpus as u64;
    for i in 0..n {
        host.add_job(
            &format!("rt{i}"),
            JobSpec::real_time(Proportion::from_ppt(250), Period::from_millis(10)),
            Box::new(Spin),
        )
        .unwrap();
    }
    let mut hogs = Vec::new();
    for i in 0..2 * n {
        hogs.push(
            host.add_job(&format!("hog{i}"), JobSpec::miscellaneous(), Box::new(Spin))
                .unwrap(),
        );
    }
    for i in 0..2 * n {
        host.add_job(
            &format!("io{i}"),
            JobSpec::miscellaneous(),
            Box::new(BurstSleep {
                burst_us: 300 + 70 * i,
                sleep_us: 2_000 + 500 * i,
                wake_at_us: 0,
            }),
        )
        .unwrap();
    }
    host.advance(SimTime::from_secs_f64(1.5));
    // Remove every other hog: the emptied CPUs pull survivors across,
    // exercising take/inject (and thus the timer reverse index) mid-period.
    for h in hogs.iter().step_by(2) {
        host.remove_job(*h);
    }
    host.advance(SimTime::from_secs_f64(1.5));
    // The backend-specific capture (modelled overhead sums included)
    // comes from the concrete simulator behind the trait object.
    host.as_sim()
        .map(Simulation::stats)
        .expect("Runtime::sim() builds a Simulation")
}

fn check(cpus: usize, expected_json: &str) {
    let stats = run_mixed_workload(cpus);
    if std::env::var_os("GOLDEN_PRINT").is_some() {
        println!(
            "golden for {cpus} cpu(s):\n{}",
            serde_json::to_string(&stats).unwrap()
        );
        return;
    }
    let expected: SimStats = serde_json::from_str(expected_json).expect("golden blob parses");
    assert_eq!(
        stats, expected,
        "SimStats diverged from the pre-optimisation capture at {cpus} cpu(s)"
    );
}

const GOLDEN_1CPU: &str = r#"{"controller_invocations":300,"controller_cost_us":10613.40000000004,"dispatch_overhead_us":35018.30000000067,"quality_exceptions":401,"squish_events":282,"admission_rejections":0,"migrations":0,"steps":4271,"per_cpu":[{"used_us":2665210,"idle_us":289132,"migrations_in":0,"migrations_out":0,"deadlines_missed":234}]}"#;

const GOLDEN_8CPU: &str = r#"{"controller_invocations":299,"controller_cost_us":72720.29999999996,"dispatch_overhead_us":231424.99999999697,"quality_exceptions":5365,"squish_events":285,"admission_rejections":0,"migrations":118,"steps":3497,"per_cpu":[{"used_us":2337768,"idle_us":560252,"migrations_in":48,"migrations_out":40,"deadlines_missed":416},{"used_us":2664125,"idle_us":233895,"migrations_in":22,"migrations_out":23,"deadlines_missed":202},{"used_us":2661913,"idle_us":236107,"migrations_in":10,"migrations_out":11,"deadlines_missed":235},{"used_us":2675698,"idle_us":222322,"migrations_in":11,"migrations_out":12,"deadlines_missed":215},{"used_us":2688441,"idle_us":209579,"migrations_in":8,"migrations_out":9,"deadlines_missed":170},{"used_us":2586303,"idle_us":311717,"migrations_in":1,"migrations_out":3,"deadlines_missed":220},{"used_us":2661292,"idle_us":236728,"migrations_in":8,"migrations_out":9,"deadlines_missed":135},{"used_us":2624116,"idle_us":273904,"migrations_in":10,"migrations_out":11,"deadlines_missed":141}]}"#;

#[test]
fn golden_simstats_1cpu() {
    check(1, GOLDEN_1CPU);
}

#[test]
fn golden_simstats_8cpu() {
    check(8, GOLDEN_8CPU);
}
