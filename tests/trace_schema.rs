//! Schema checks for the telemetry exports: the Chrome trace-event JSON
//! written by [`realrate::telemetry::Recorder::chrome_trace_json`] must
//! stay loadable by Perfetto (valid JSON, non-decreasing timestamps,
//! balanced `"B"`/`"E"` duration pairs, known phase letters), and the
//! [`realrate::telemetry::TelemetrySnapshot`] counter summary must
//! round-trip through its serde form unchanged.

use realrate::api::{JobSpec, Runtime, SimTime};
use realrate::sim::{RunResult, WorkModel};
use realrate::telemetry::TelemetryConfig;
use serde::Value;
use std::collections::HashMap;

/// A job that uses every cycle it is given — keeps dispatch, settle and
/// cache paths busy so the exported trace carries every event family.
struct Spin;

impl WorkModel for Spin {
    fn run(&mut self, _now: u64, quantum_us: u64, _hz: f64) -> RunResult {
        RunResult::ran(quantum_us)
    }
}

/// Runs a short telemetry-enabled simulation and returns the export plus
/// the final counter snapshot.
fn traced_run() -> (String, realrate::telemetry::TelemetrySnapshot) {
    let mut host = Runtime::sim()
        .cpus(2)
        .telemetry(TelemetryConfig::default())
        .build();
    for i in 0..4 {
        host.add_job(&format!("j{i}"), JobSpec::miscellaneous(), Box::new(Spin))
            .unwrap();
    }
    host.advance(SimTime::from_secs(2));
    let recorder = host
        .telemetry_recorder()
        .expect("the builder installed a recorder");
    (recorder.chrome_trace_json(), host.telemetry())
}

fn num(v: &Value, what: &str) -> f64 {
    match v {
        Value::Num(n) => n.as_f64(),
        other => panic!("{what} must be a number, got {other:?}"),
    }
}

fn text<'a>(v: &'a Value, what: &str) -> &'a str {
    match v {
        Value::Str(s) => s,
        other => panic!("{what} must be a string, got {other:?}"),
    }
}

#[test]
fn chrome_trace_export_is_perfetto_loadable() {
    let (json, snapshot) = traced_run();

    let root: Value = serde_json::from_str(&json).expect("export must be valid JSON");
    let events = root
        .field("traceEvents")
        .as_arr()
        .expect("the object form carries a traceEvents array");
    assert!(!events.is_empty(), "a 2 s saturated run must record events");

    // Non-decreasing timestamps, known phase letters, and balanced
    // begin/end nesting per (pid, tid) track.
    let mut last_ts = f64::NEG_INFINITY;
    let mut depth: HashMap<(u64, u64), i64> = HashMap::new();
    let mut saw = (false, false, false); // (X, B/E, i)
    for ev in events {
        let ts = num(ev.field("ts"), "ts");
        assert!(
            ts >= last_ts,
            "timestamps must be non-decreasing ({ts} after {last_ts})"
        );
        last_ts = ts;
        assert!(!text(ev.field("name"), "name").is_empty());
        assert!(!text(ev.field("cat"), "cat").is_empty());
        let track = (
            num(ev.field("pid"), "pid") as u64,
            num(ev.field("tid"), "tid") as u64,
        );
        match text(ev.field("ph"), "ph") {
            "X" => {
                assert!(num(ev.field("dur"), "dur") >= 0.0);
                saw.0 = true;
            }
            "B" => {
                *depth.entry(track).or_insert(0) += 1;
                saw.1 = true;
            }
            "E" => {
                let d = depth.entry(track).or_insert(0);
                *d -= 1;
                assert!(*d >= 0, "E without a matching B on track {track:?}");
            }
            "i" => {
                assert_eq!(text(ev.field("s"), "s"), "t", "instants are thread-scoped");
                saw.2 = true;
            }
            other => panic!("unexpected phase letter {other:?}"),
        }
    }
    assert!(
        depth.values().all(|&d| d == 0),
        "every B must have a matching E: {depth:?}"
    );
    assert!(saw.0, "the trace must carry dispatch-span slices");
    assert!(saw.1, "the trace must carry controller-cycle pairs");
    assert!(saw.2, "the trace must carry instant events");

    // The counters behind the same run: the fast path fired, the ring
    // recorded, and the calendar mix is visible.
    assert!(snapshot.quantum_cache_hits + snapshot.quantum_cache_misses > 0);
    assert!(snapshot.settles_total() > 0);
    assert!(snapshot.calendar_events_total() > 0);
    assert!(snapshot.trace_events_recorded > 0);
}

#[test]
fn telemetry_snapshot_round_trips_through_json() {
    let (_, snapshot) = traced_run();
    let json = serde_json::to_string(&snapshot).expect("snapshot serialises");
    let parsed: realrate::telemetry::TelemetrySnapshot =
        serde_json::from_str(&json).expect("snapshot parses back");
    assert_eq!(parsed, snapshot);

    // The compact summary export is valid JSON with the headline fields.
    let summary: Value =
        serde_json::from_str(&snapshot.summary_json()).expect("summary must be valid JSON");
    assert!(matches!(summary.field("cache_hit_rate"), Value::Num(_)));
    assert!(matches!(summary.field("dispatches"), Value::Num(_)));
}
