//! Must-trigger: id-keyed map access outside the declared API-edge
//! files, plus a `by_id` touch inside a declared-hot function.
use std::collections::BTreeMap;

pub struct Index {
    by_id: BTreeMap<u64, u32>,
}

impl Index {
    pub fn lookup(&self, id: u64) -> Option<u32> {
        self.by_id.get(&id).copied()
    }

    pub fn dispatch(&self, id: u64) -> u32 {
        self.by_id[&id]
    }
}
