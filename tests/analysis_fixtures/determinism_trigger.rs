//! Must-trigger: wall clocks and hash containers in a
//! replay-deterministic scope.
use std::collections::HashMap;
use std::time::Instant;

pub fn jitter() -> u128 {
    let start = Instant::now();
    let mut seen: HashMap<u32, u32> = HashMap::new();
    seen.insert(1, 2);
    start.elapsed().as_nanos()
}
