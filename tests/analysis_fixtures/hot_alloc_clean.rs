//! Must-not-trigger: the hot function only reuses pre-sized storage;
//! allocation in the cold constructor is outside the declared-hot set.
pub struct Queue {
    slots: Vec<u64>,
}

impl Queue {
    pub fn new() -> Self {
        Queue { slots: Vec::new() }
    }

    pub fn dispatch(&mut self, v: u64) -> usize {
        self.slots.push(v);
        self.slots.len()
    }
}
