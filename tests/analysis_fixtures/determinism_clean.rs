//! Must-not-trigger: ordered containers and integer time only.  The
//! `HashMap` inside `#[cfg(test)]` is allowed — test items are elided
//! before the production-path lints run.
use std::collections::BTreeMap;

pub fn deterministic() -> u64 {
    let mut slots: BTreeMap<u64, u64> = BTreeMap::new();
    slots.insert(1, 2);
    slots.len() as u64
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn hash_order_is_fine_in_tests() {
        let mut m = HashMap::new();
        m.insert(1u32, 2u32);
        assert_eq!(m.len(), 1);
    }
}
