//! Must-not-trigger: the region touches only the per-shard handles;
//! the merge runs after the scope has joined every shard (the barrier).
pub struct Sharded {
    shards: Vec<u32>,
    loads: Vec<u32>,
}

impl Sharded {
    pub fn advance_all(&mut self) {
        std::thread::scope(|scope| {
            for shard in &mut self.shards {
                scope.spawn(move || *shard += 1);
            }
        });
        self.merge();
    }

    fn merge(&mut self) {
        self.loads.clear();
    }
}
