//! Must-not-trigger: panics name their invariant, and test code may
//! still use bare `unwrap()` (test items are elided).
pub fn first(v: &[u64]) -> u64 {
    *v.first().expect("caller guarantees a non-empty slice")
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        let v = vec![1u64];
        assert_eq!(super::first(&v), *v.first().unwrap());
    }
}
