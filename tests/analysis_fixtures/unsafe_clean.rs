//! Must-not-trigger: the `unsafe` block documents its safety argument
//! (it still lands in the inventory, marked documented).
pub fn read_first(v: &[u8]) -> u8 {
    assert!(!v.is_empty());
    // SAFETY: the assert above guarantees at least one element, so the
    // pointer read is in bounds.
    unsafe { *v.as_ptr() }
}
