//! Must-trigger: allocation inside a declared-hot function.
pub fn dispatch(n: usize) -> usize {
    let mut scratch: Vec<usize> = Vec::new();
    for i in 0..n {
        scratch.push(i);
    }
    scratch.len()
}
