//! Must-trigger: an f64-seconds parameter in an integer-time scope.
pub fn run_for(duration_s: f64) -> u64 {
    (duration_s * 1e6) as u64
}
