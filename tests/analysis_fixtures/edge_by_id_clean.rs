//! Must-not-trigger: the same id-keyed map is fine in a file declared
//! part of the public API edge, as long as no hot function touches it.
use std::collections::BTreeMap;

pub struct Index {
    by_id: BTreeMap<u64, u32>,
}

impl Index {
    pub fn lookup(&self, id: u64) -> Option<u32> {
        self.by_id.get(&id).copied()
    }
}
