//! Must-trigger: a bare `unwrap()` and an empty `expect("")` message.
pub fn first_and_last(v: &[u64]) -> u64 {
    let head = v.first().unwrap();
    let tail = v.last().expect("");
    head + tail
}
