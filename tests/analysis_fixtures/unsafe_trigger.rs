//! Must-trigger: an undocumented `unsafe` block.
pub fn read_first(v: &[u8]) -> u8 {
    unsafe { *v.as_ptr() }
}
