//! Must-trigger: the scoped-thread region reaches merge state directly
//! (a non-allowlisted `self` field that is also barrier-merge machinery).
pub struct Sharded {
    shards: Vec<u32>,
    loads: Vec<u32>,
}

impl Sharded {
    pub fn advance_all(&mut self) {
        std::thread::scope(|scope| {
            for shard in &mut self.shards {
                scope.spawn(move || *shard += 1);
            }
            self.loads.clear();
        });
    }
}
