//! Must-not-trigger: integer microseconds cross the boundary, and f64
//! parameters that are not seconds (ratios, proportions) are fine.
pub fn run_for_micros(duration_us: u64) -> u64 {
    duration_us
}

pub fn scale(ratio: f64) -> f64 {
    ratio * 0.5
}
