//! End-to-end multicore behaviour through the facade: placement edges,
//! mid-period migration, and whole-stack scaling.

use realrate::core::{ControllerEvent, JobSpec};
use realrate::scheduler::{
    CpuId, DispatcherConfig, Machine, Period, Proportion, Reservation, ThreadId, ThreadState,
};
use realrate::sim::{RunResult, SimConfig, Simulation, WorkModel};

struct Spin;

impl WorkModel for Spin {
    fn run(&mut self, _now: u64, quantum_us: u64, _hz: f64) -> RunResult {
        RunResult::ran(quantum_us)
    }
}

#[test]
fn arrival_on_a_machine_with_one_saturated_and_one_empty_cpu() {
    // Saturate cpu0 with a 900 ‰ real-time reservation; a second big
    // reservation must be admitted onto the empty cpu1 instead of being
    // rejected (the single-CPU system would refuse it).
    let mut sim = Simulation::new(SimConfig::default().with_cpus(2));
    let first = sim
        .add_job(
            "rt0",
            JobSpec::real_time(Proportion::from_ppt(900), Period::from_millis(10)),
            Box::new(Spin),
        )
        .unwrap();
    let second = sim
        .add_job(
            "rt1",
            JobSpec::real_time(Proportion::from_ppt(900), Period::from_millis(10)),
            Box::new(Spin),
        )
        .unwrap();
    assert_ne!(sim.cpu_of(first), sim.cpu_of(second));
    // A third does not fit anywhere.
    let rejected = sim.add_job(
        "rt2",
        JobSpec::real_time(Proportion::from_ppt(900), Period::from_millis(10)),
        Box::new(Spin),
    );
    assert!(rejected.is_err());
    assert_eq!(sim.stats().admission_rejections, 1);

    // Both admitted reservations are actually delivered in parallel —
    // 1800 ‰ of real-time work, impossible on one CPU.
    sim.run_for(2.0);
    let elapsed = sim.now_micros() as f64;
    for h in [first, second] {
        let frac = sim.cpu_used_us(h) as f64 / elapsed;
        assert!((frac - 0.9).abs() < 0.05, "reservation delivered {frac}");
    }
}

#[test]
fn throttled_thread_migrates_mid_period_without_losing_state() {
    // Drive the raw machine: exhaust a thread's budget mid-period, migrate
    // it, and watch the destination CPU honour both the throttle and the
    // original period boundary.
    let mut m = Machine::new(DispatcherConfig::default(), 2);
    let r = Reservation::new(Proportion::from_ppt(100), Period::from_millis(10));
    m.add_thread_preadmitted_on(CpuId(0), ThreadId(1), r)
        .unwrap();
    let outcome = m.dispatch(CpuId(0));
    m.charge(ThreadId(1), outcome.quantum_us).unwrap();
    assert_eq!(
        m.dispatcher(CpuId(0)).thread_state(ThreadId(1)),
        Some(ThreadState::Throttled)
    );
    m.advance_to(4_000); // mid-period
    m.migrate(ThreadId(1), CpuId(1)).unwrap();
    assert_eq!(
        m.dispatcher(CpuId(1)).thread_state(ThreadId(1)),
        Some(ThreadState::Throttled),
        "budget exhaustion travels with the thread"
    );
    assert_eq!(m.dispatch(CpuId(1)).thread, None);
    m.advance_to(10_000); // the boundary the source CPU had scheduled
    assert_eq!(m.dispatch(CpuId(1)).thread, Some(ThreadId(1)));
    let account = m.usage(ThreadId(1)).unwrap();
    assert_eq!(account.periods_completed, 1);
    assert_eq!(account.total_used_us, outcome.quantum_us);
}

#[test]
fn controller_migration_events_surface_through_the_facade() {
    // Crowd one CPU, then empty the other: the Place stage must emit a
    // Migrated event the application can observe.
    let config = realrate::core::ControllerConfig::default().with_cpus(2);
    let registry = realrate::queue::MetricRegistry::new();
    let mut controller = realrate::core::Controller::new(config, registry);
    use realrate::core::JobId;
    controller
        .add_job(JobId(1), JobSpec::miscellaneous())
        .unwrap();
    controller
        .add_job(JobId(2), JobSpec::miscellaneous())
        .unwrap();
    controller
        .add_job(JobId(3), JobSpec::miscellaneous())
        .unwrap();
    // Jobs 1 and 3 share cpu0 (tie placement), job 2 is alone on cpu1.
    assert_eq!(controller.cpu_of(JobId(1)), controller.cpu_of(JobId(3)));
    assert_ne!(controller.cpu_of(JobId(1)), controller.cpu_of(JobId(2)));
    // Three equal grants on two CPUs cannot be balanced by moving one
    // job, so the Place stage correctly refuses to thrash...
    for i in 1..=200 {
        let out = controller.control_cycle_in_place(i as f64 * 0.01);
        assert!(
            !out.events
                .iter()
                .any(|e| matches!(e, ControllerEvent::Migrated { .. })),
            "a migration that cannot shrink the gap must not happen"
        );
    }
    // ...but once job 2 leaves, cpu1 is empty against two grown grants on
    // cpu0, and exactly one of the pair is moved across.
    controller.remove_job(JobId(2));
    let mut saw_migration = false;
    for i in 201..=400 {
        let out = controller.control_cycle_in_place(i as f64 * 0.01);
        for event in &out.events {
            if let ControllerEvent::Migrated { from, to, .. } = event {
                assert_ne!(from, to);
                saw_migration = true;
            }
        }
        if saw_migration {
            break;
        }
    }
    assert!(
        saw_migration,
        "an improvable imbalance must trigger a rebalance"
    );
    assert_ne!(
        controller.cpu_of(JobId(1)),
        controller.cpu_of(JobId(3)),
        "the survivors end up one per CPU"
    );
}

#[test]
fn four_cpu_simulation_quadruples_hog_throughput() {
    let throughput = |cpus: usize| {
        let mut sim = Simulation::new(SimConfig::default().with_cpus(cpus));
        let mut handles = Vec::new();
        for i in 0..8 {
            handles.push(
                sim.add_job(&format!("hog{i}"), JobSpec::miscellaneous(), Box::new(Spin))
                    .unwrap(),
            );
        }
        sim.run_for(3.0);
        handles.iter().map(|h| sim.cpu_used_us(*h)).sum::<u64>() as f64 / sim.now_micros() as f64
    };
    let one = throughput(1);
    let four = throughput(4);
    assert!(one <= 1.0);
    assert!(
        four > 2.5 * one,
        "4 CPUs should scale well past one ({one} -> {four})"
    );
}
