//! Zero-cost runtime telemetry for the real-rate scheduler.
//!
//! The paper argues for its feedback-driven allocator almost entirely
//! through traces — time series of allocation, usage, period adaptation
//! and quality.  This crate is the repo's equivalent instrument: a
//! [`Recorder`] that subsystems write structured [`TraceEvent`]s into,
//! plus one shared counter schema ([`TelemetrySnapshot`]) that both host
//! backends (discrete-event simulator and wall-clock executor) fill so
//! sim-vs-real comparisons line up column for column.
//!
//! # Cost model
//!
//! Telemetry is strictly pay-for-use:
//!
//! - **Disabled** (the default): no [`Recorder`] exists.  Instrumented
//!   subsystems hold an `Option<Arc<Recorder>>` that is `None`, so the
//!   hot-path cost is one branch.  Plain `u64` subsystem counters (cache
//!   hits, settle reasons, calendar event mix) stay on unconditionally —
//!   an increment is cheaper than the branch to skip it — and feed
//!   `Host::telemetry()` even without a recorder.  The steady state
//!   remains allocation-free (`tests/zero_alloc_steady_state.rs`).
//! - **Enabled**: events go into a bounded ring buffer that is fully
//!   allocated up front; once warm, recording never allocates — the ring
//!   overwrites its oldest entries and counts them in
//!   [`Recorder::dropped`].
//!
//! # Export
//!
//! [`Recorder::chrome_trace_json`] renders the ring as Chrome
//! trace-event JSON (the `{"traceEvents": [...]}` object form) loadable
//! in Perfetto or `chrome://tracing`: dispatch spans become complete
//! (`"X"`) slices on per-CPU tracks, controller cycles become balanced
//! `"B"`/`"E"` pairs with per-stage sub-slices, and everything else
//! (settles, cache hits/misses, calendar pops, migrations, rollovers)
//! becomes instant (`"i"`) events.  [`TelemetrySnapshot::summary_json`]
//! is the compact counter summary.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Configuration for an enabled telemetry recorder.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TelemetryConfig {
    /// Capacity of the bounded trace-event ring, in events.  The ring is
    /// allocated once at enable time; when full it overwrites the oldest
    /// events (counted by [`Recorder::dropped`]).
    #[serde(default)]
    pub ring_capacity: usize,
    /// Record per-stage (sense/classify/estimate/allocate/place/actuate)
    /// wall-clock timing inside full controller cycles.
    #[serde(default)]
    pub stage_timing: bool,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        Self {
            ring_capacity: 65_536,
            stage_timing: true,
        }
    }
}

/// Why a batched span charge settled — the telemetry mirror of the
/// scheduler's `SettleReason` (this crate is a leaf, so the scheduler
/// converts into it at the recording site).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SettleCause {
    /// Best-effort goodness re-rank: no charge may be deferred.
    Goodness,
    /// The clock reached the thread's next period boundary.
    PeriodBoundary,
    /// The charge exhausts the period budget: throttle now.
    ThrottleEdge,
    /// A zero-length charge publishing a state/watch transition.
    ZeroSpan,
}

impl SettleCause {
    /// Stable lowercase label used in trace event names and counters.
    pub fn label(self) -> &'static str {
        match self {
            SettleCause::Goodness => "goodness",
            SettleCause::PeriodBoundary => "period_boundary",
            SettleCause::ThrottleEdge => "throttle_edge",
            SettleCause::ZeroSpan => "zero_span",
        }
    }
}

/// The simulator's calendar event types, mirrored for counting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CalendarEventKind {
    /// A controller cycle is due.
    Controller,
    /// A trace sample is due.
    Trace,
    /// A throttled/blocked thread wakes.
    Wake,
    /// A queue poll tick.
    PollTick,
    /// The run horizon.
    Horizon,
}

impl CalendarEventKind {
    /// Stable lowercase label used in trace event names and counters.
    pub fn label(self) -> &'static str {
        match self {
            CalendarEventKind::Controller => "controller",
            CalendarEventKind::Trace => "trace",
            CalendarEventKind::Wake => "wake",
            CalendarEventKind::PollTick => "poll_tick",
            CalendarEventKind::Horizon => "horizon",
        }
    }
}

/// The six controller pipeline stages, in execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Read progress/fill signals from the registry.
    Sense,
    /// Classify jobs (real-time / real-rate / adaptive / best-effort).
    Classify,
    /// Estimate required proportions and periods.
    Estimate,
    /// Squish/stretch allocations to capacity.
    Allocate,
    /// Choose CPU placement.
    Place,
    /// Emit actuations.
    Actuate,
}

impl Stage {
    /// All stages, in pipeline order (indexes match the per-stage timing
    /// arrays).
    pub const ALL: [Stage; 6] = [
        Stage::Sense,
        Stage::Classify,
        Stage::Estimate,
        Stage::Allocate,
        Stage::Place,
        Stage::Actuate,
    ];

    /// Stable lowercase label used in trace event names.
    pub fn label(self) -> &'static str {
        match self {
            Stage::Sense => "sense",
            Stage::Classify => "classify",
            Stage::Estimate => "estimate",
            Stage::Allocate => "allocate",
            Stage::Place => "place",
            Stage::Actuate => "actuate",
        }
    }
}

/// One structured trace event.  Payloads are fixed-size `Copy` data so
/// recording into the pre-allocated ring never allocates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceEventKind {
    /// A dispatched thread ran for `len_us` starting at the event's
    /// timestamp.
    DispatchSpan {
        /// CPU the span ran on.
        cpu: u32,
        /// Thread that ran.
        thread: u64,
        /// Span length in microseconds.
        len_us: u64,
    },
    /// A batched span charge settled into the account.
    Settle {
        /// CPU the settle happened on.
        cpu: u32,
        /// Thread whose account settled.
        thread: u64,
        /// Why the batch could not keep accumulating.
        cause: SettleCause,
    },
    /// A dispatch was served by the next-quantum cache (no queue walk).
    CacheHit {
        /// CPU the dispatch ran on.
        cpu: u32,
    },
    /// A dispatch took the slow path and re-armed the cache.
    CacheMiss {
        /// CPU the dispatch ran on.
        cpu: u32,
    },
    /// The simulator popped a calendar event.
    CalendarEvent {
        /// The popped event's type.
        kind: CalendarEventKind,
    },
    /// One controller cycle ran.
    ControllerCycle {
        /// Wall-clock cost of the cycle, in nanoseconds.
        dur_ns: u64,
        /// `true` for the dirty-set incremental path, `false` for a full
        /// pipeline cycle.
        incremental: bool,
        /// Jobs visible to the cycle.
        jobs: u32,
        /// Per-stage wall-clock nanoseconds (indexes per [`Stage::ALL`]);
        /// all zero unless stage timing is enabled and the cycle was full.
        stage_ns: [u32; 6],
    },
    /// The placement authority moved a thread between CPUs.
    Migration {
        /// Thread that moved.
        thread: u64,
        /// Source CPU.
        from: u32,
        /// Destination CPU.
        to: u32,
    },
    /// Period boundary rollovers applied to a thread's account.
    PeriodRollover {
        /// CPU the thread lives on.
        cpu: u32,
        /// Thread whose period rolled.
        thread: u64,
        /// Number of boundaries crossed at once (lazy mode can batch).
        count: u32,
    },
    /// The top-level rebalancer acted on the sharded machine.  Recorded
    /// once per rebalance cycle (with `thread == 0` and `moved` jobs
    /// migrated in total) and once per cross-shard job migration (with the
    /// moved thread's id and `moved == 1`).
    Rebalance {
        /// Source shard index (cycle events report the busiest shard).
        from_shard: u32,
        /// Destination shard index (cycle events report the least loaded).
        to_shard: u32,
        /// Raw id of the migrated thread, or `0` for a cycle summary.
        thread: u64,
        /// Jobs moved: per-migration events record `1`; cycle summaries
        /// record the cycle's total (possibly `0` for a no-op decision).
        moved: u32,
    },
}

/// A timestamped [`TraceEventKind`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Host-clock timestamp in microseconds (sim time or wall time since
    /// the executor epoch).
    pub ts_us: u64,
    /// The event payload.
    pub kind: TraceEventKind,
}

/// Fixed-capacity overwrite-oldest ring of trace events.
struct Ring {
    buf: Vec<TraceEvent>,
    /// Index of the oldest event once the ring has wrapped.
    head: usize,
    /// Events overwritten because the ring was full.
    dropped: u64,
    /// Total events ever recorded.
    recorded: u64,
}

impl Ring {
    fn push(&mut self, ev: TraceEvent) {
        self.recorded += 1;
        if self.buf.len() < self.buf.capacity() {
            self.buf.push(ev);
        } else if !self.buf.is_empty() {
            self.buf[self.head] = ev;
            self.head = (self.head + 1) % self.buf.len();
            self.dropped += 1;
        } else {
            self.dropped += 1;
        }
    }

    fn snapshot(&self) -> Vec<TraceEvent> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        out
    }
}

/// A bounded, pre-allocated trace-event recorder.
///
/// Shared as `Arc<Recorder>` between the host and every instrumented
/// subsystem; `record` takes a short mutex and writes into storage that
/// was fully allocated at construction, so steady-state recording is
/// allocation-free.
pub struct Recorder {
    ring: Mutex<Ring>,
    stage_timing: bool,
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let ring = self.ring.lock();
        f.debug_struct("Recorder")
            .field("capacity", &ring.buf.capacity())
            .field("len", &ring.buf.len())
            .field("dropped", &ring.dropped)
            .field("stage_timing", &self.stage_timing)
            .finish()
    }
}

impl Recorder {
    /// Creates a recorder with the ring fully allocated up front.
    pub fn new(config: TelemetryConfig) -> Arc<Self> {
        Arc::new(Self {
            ring: Mutex::new(Ring {
                buf: Vec::with_capacity(config.ring_capacity.max(1)),
                head: 0,
                dropped: 0,
                recorded: 0,
            }),
            stage_timing: config.stage_timing,
        })
    }

    /// Whether per-stage controller timing was requested.
    pub fn stage_timing(&self) -> bool {
        self.stage_timing
    }

    /// Records one event.  Never allocates: a full ring overwrites its
    /// oldest entry.
    pub fn record(&self, ts_us: u64, kind: TraceEventKind) {
        self.ring.lock().push(TraceEvent { ts_us, kind });
    }

    /// Events currently held (at most the configured capacity).
    pub fn len(&self) -> usize {
        self.ring.lock().buf.len()
    }

    /// `true` when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The ring capacity in events.
    pub fn capacity(&self) -> usize {
        self.ring.lock().buf.capacity()
    }

    /// Events overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.ring.lock().dropped
    }

    /// Total events ever recorded (held + overwritten).
    pub fn recorded(&self) -> u64 {
        self.ring.lock().recorded
    }

    /// The held events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.ring.lock().snapshot()
    }

    /// Renders the held events as Chrome trace-event JSON (the object
    /// form, `{"traceEvents": [...]}`), loadable in Perfetto.
    ///
    /// Track layout: `pid` is always 0; per-CPU events use the CPU index
    /// as `tid`, calendar events use [`TID_CALENDAR`], controller cycles
    /// and stage slices use [`TID_CONTROLLER`].  Controller cycles render
    /// as balanced `"B"`/`"E"` pairs, dispatch spans as complete `"X"`
    /// slices, and point events as instants (`"ph":"i"`).  Entries are
    /// emitted in non-decreasing timestamp order.
    pub fn chrome_trace_json(&self) -> String {
        chrome_trace(&self.events())
    }
}

/// Synthetic `tid` for the simulator's calendar track.
pub const TID_CALENDAR: u32 = 998;
/// Synthetic `tid` for the controller track.
pub const TID_CONTROLLER: u32 = 999;
/// Synthetic `tid` for the sharded machine's rebalancer track.
pub const TID_REBALANCER: u32 = 997;

/// One renderable Chrome trace entry, pre-sorting.
struct ChromeEntry {
    ts_us: f64,
    json: String,
}

fn chrome_event(
    name: &str,
    cat: &str,
    ph: char,
    ts_us: f64,
    tid: u32,
    dur_us: Option<f64>,
    args: &str,
) -> String {
    let mut s = format!(
        "{{\"name\":\"{name}\",\"cat\":\"{cat}\",\"ph\":\"{ph}\",\"ts\":{ts_us:.3},\"pid\":0,\"tid\":{tid}"
    );
    if let Some(dur) = dur_us {
        s.push_str(&format!(",\"dur\":{dur:.3}"));
    }
    if ph == 'i' {
        // Instant scope: thread-local.
        s.push_str(",\"s\":\"t\"");
    }
    if !args.is_empty() {
        s.push_str(&format!(",\"args\":{{{args}}}"));
    }
    s.push('}');
    s
}

/// Renders a slice of trace events as Chrome trace-event JSON.
pub fn chrome_trace(events: &[TraceEvent]) -> String {
    let mut entries: Vec<ChromeEntry> = Vec::new();
    let mut push = |ts_us: f64, json: String| entries.push(ChromeEntry { ts_us, json });

    for ev in events {
        let ts = ev.ts_us as f64;
        match ev.kind {
            TraceEventKind::DispatchSpan {
                cpu,
                thread,
                len_us,
            } => push(
                ts,
                chrome_event(
                    &format!("t{thread}"),
                    "dispatch",
                    'X',
                    ts,
                    cpu,
                    Some(len_us as f64),
                    &format!("\"thread\":{thread}"),
                ),
            ),
            TraceEventKind::Settle { cpu, thread, cause } => push(
                ts,
                chrome_event(
                    &format!("settle:{}", cause.label()),
                    "settle",
                    'i',
                    ts,
                    cpu,
                    None,
                    &format!("\"thread\":{thread}"),
                ),
            ),
            TraceEventKind::CacheHit { cpu } => push(
                ts,
                chrome_event("quantum_cache_hit", "cache", 'i', ts, cpu, None, ""),
            ),
            TraceEventKind::CacheMiss { cpu } => push(
                ts,
                chrome_event("quantum_cache_miss", "cache", 'i', ts, cpu, None, ""),
            ),
            TraceEventKind::CalendarEvent { kind } => push(
                ts,
                chrome_event(
                    &format!("event:{}", kind.label()),
                    "calendar",
                    'i',
                    ts,
                    TID_CALENDAR,
                    None,
                    "",
                ),
            ),
            TraceEventKind::ControllerCycle {
                dur_ns,
                incremental,
                jobs,
                stage_ns,
            } => {
                let name = if incremental {
                    "incremental_cycle"
                } else {
                    "control_cycle"
                };
                let stage_total_ns: u64 = stage_ns.iter().map(|&n| n as u64).sum();
                let dur = (dur_ns.max(stage_total_ns)) as f64 / 1000.0;
                push(
                    ts,
                    chrome_event(
                        name,
                        "controller",
                        'B',
                        ts,
                        TID_CONTROLLER,
                        None,
                        &format!("\"jobs\":{jobs}"),
                    ),
                );
                if stage_total_ns > 0 {
                    let mut offset_ns = 0u64;
                    for (stage, &ns) in Stage::ALL.iter().zip(stage_ns.iter()) {
                        let sts = ts + offset_ns as f64 / 1000.0;
                        push(
                            sts,
                            chrome_event(
                                stage.label(),
                                "stage",
                                'X',
                                sts,
                                TID_CONTROLLER,
                                Some(ns as f64 / 1000.0),
                                "",
                            ),
                        );
                        offset_ns += ns as u64;
                    }
                }
                let ets = ts + dur;
                push(
                    ets,
                    chrome_event(name, "controller", 'E', ets, TID_CONTROLLER, None, ""),
                );
            }
            TraceEventKind::Migration { thread, from, to } => push(
                ts,
                chrome_event(
                    "migrate",
                    "placement",
                    'i',
                    ts,
                    to,
                    None,
                    &format!("\"thread\":{thread},\"from\":{from},\"to\":{to}"),
                ),
            ),
            TraceEventKind::PeriodRollover { cpu, thread, count } => push(
                ts,
                chrome_event(
                    "period_rollover",
                    "accounting",
                    'i',
                    ts,
                    cpu,
                    None,
                    &format!("\"thread\":{thread},\"count\":{count}"),
                ),
            ),
            TraceEventKind::Rebalance {
                from_shard,
                to_shard,
                thread,
                moved,
            } => push(
                ts,
                chrome_event(
                    if thread == 0 {
                        "rebalance_cycle"
                    } else {
                        "rebalance_migrate"
                    },
                    "rebalance",
                    'i',
                    ts,
                    TID_REBALANCER,
                    None,
                    &format!(
                        "\"from_shard\":{from_shard},\"to_shard\":{to_shard},\"thread\":{thread},\"moved\":{moved}"
                    ),
                ),
            ),
        }
    }

    // Chrome/Perfetto require non-decreasing timestamps per track; sort
    // globally (stable, so a B at the same timestamp as its E stays
    // first).
    entries.sort_by(|a, b| a.ts_us.partial_cmp(&b.ts_us).unwrap());

    let mut out = String::from("{\"traceEvents\":[");
    for (i, e) in entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&e.json);
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

/// The shared counter schema both backends fill for `Host::telemetry()`.
///
/// Counters are cumulative since host construction.  The two `*_rate`
/// fields are derived; [`TelemetrySnapshot::finalize`] recomputes them
/// from the raw counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct TelemetrySnapshot {
    /// Dispatches served by the next-quantum cache (no queue walk).
    #[serde(default)]
    pub quantum_cache_hits: u64,
    /// Dispatches that took the slow path.
    #[serde(default)]
    pub quantum_cache_misses: u64,
    /// `hits / (hits + misses)`, or 0 when no dispatches ran.
    #[serde(default)]
    pub cache_hit_rate: f64,
    /// Span settles forced by a best-effort goodness re-rank.
    #[serde(default)]
    pub settles_goodness: u64,
    /// Span settles forced by a period boundary.
    #[serde(default)]
    pub settles_period_boundary: u64,
    /// Span settles forced by budget exhaustion (throttle).
    #[serde(default)]
    pub settles_throttle_edge: u64,
    /// Span settles forced by a zero-length charge.
    #[serde(default)]
    pub settles_zero_span: u64,
    /// Calendar pops: controller cycles due.
    #[serde(default)]
    pub events_controller: u64,
    /// Calendar pops: trace samples due.
    #[serde(default)]
    pub events_trace: u64,
    /// Calendar pops: thread wakes.
    #[serde(default)]
    pub events_wake: u64,
    /// Calendar pops: queue poll ticks.
    #[serde(default)]
    pub events_poll_tick: u64,
    /// Calendar pops: run horizons.
    #[serde(default)]
    pub events_horizon: u64,
    /// Controller cycles that ran the full pipeline.
    #[serde(default)]
    pub controller_full_cycles: u64,
    /// Controller cycles served by the dirty-set incremental path.
    #[serde(default)]
    pub controller_incremental_cycles: u64,
    /// `incremental / (full + incremental)`, or 0 when no cycles ran.
    #[serde(default)]
    pub incremental_skip_rate: f64,
    /// Cumulative sense-stage nanoseconds (stage timing only).
    #[serde(default)]
    pub stage_sense_ns: u64,
    /// Cumulative classify-stage nanoseconds (stage timing only).
    #[serde(default)]
    pub stage_classify_ns: u64,
    /// Cumulative estimate-stage nanoseconds (stage timing only).
    #[serde(default)]
    pub stage_estimate_ns: u64,
    /// Cumulative allocate-stage nanoseconds (stage timing only).
    #[serde(default)]
    pub stage_allocate_ns: u64,
    /// Cumulative place-stage nanoseconds (stage timing only).
    #[serde(default)]
    pub stage_place_ns: u64,
    /// Cumulative actuate-stage nanoseconds (stage timing only).
    #[serde(default)]
    pub stage_actuate_ns: u64,
    /// Total dispatch decisions (cache hits + slow-path dispatches).
    #[serde(default)]
    pub dispatches: u64,
    /// Dispatches that switched the running thread.
    #[serde(default)]
    pub context_switches: u64,
    /// Period boundary rollovers applied.
    #[serde(default)]
    pub period_rollovers: u64,
    /// Threads moved between CPUs.
    #[serde(default)]
    pub migrations: u64,
    /// Rebalancer cycles run over the sharded machine (0 unsharded).
    #[serde(default)]
    pub rebalance_cycles: u64,
    /// Jobs migrated between shards by the rebalancer.
    #[serde(default)]
    pub rebalance_migrations: u64,
    /// Trace events recorded into the ring (0 when telemetry is off).
    #[serde(default)]
    pub trace_events_recorded: u64,
    /// Trace events overwritten because the ring was full.
    #[serde(default)]
    pub trace_events_dropped: u64,
}

impl TelemetrySnapshot {
    /// Settles of every cause combined.
    pub fn settles_total(&self) -> u64 {
        self.settles_goodness
            + self.settles_period_boundary
            + self.settles_throttle_edge
            + self.settles_zero_span
    }

    /// Calendar pops of every type combined.
    pub fn calendar_events_total(&self) -> u64 {
        self.events_controller
            + self.events_trace
            + self.events_wake
            + self.events_poll_tick
            + self.events_horizon
    }

    /// Recomputes the derived rate fields from the raw counters.
    pub fn finalize(mut self) -> Self {
        let dispatches = self.quantum_cache_hits + self.quantum_cache_misses;
        self.cache_hit_rate = if dispatches > 0 {
            self.quantum_cache_hits as f64 / dispatches as f64
        } else {
            0.0
        };
        let cycles = self.controller_full_cycles + self.controller_incremental_cycles;
        self.incremental_skip_rate = if cycles > 0 {
            self.controller_incremental_cycles as f64 / cycles as f64
        } else {
            0.0
        };
        self
    }

    /// Adds `other`'s raw counters into this snapshot field by field —
    /// how the sharded simulator aggregates per-shard snapshots into one
    /// machine-wide view.  The derived rates are left stale; call
    /// [`TelemetrySnapshot::finalize`] after the last `absorb`.  Note the
    /// `trace_events_*` counters are summed too: when shards share one
    /// ring, overwrite them from the shared recorder afterwards.
    pub fn absorb(&mut self, other: &TelemetrySnapshot) {
        self.quantum_cache_hits += other.quantum_cache_hits;
        self.quantum_cache_misses += other.quantum_cache_misses;
        self.settles_goodness += other.settles_goodness;
        self.settles_period_boundary += other.settles_period_boundary;
        self.settles_throttle_edge += other.settles_throttle_edge;
        self.settles_zero_span += other.settles_zero_span;
        self.events_controller += other.events_controller;
        self.events_trace += other.events_trace;
        self.events_wake += other.events_wake;
        self.events_poll_tick += other.events_poll_tick;
        self.events_horizon += other.events_horizon;
        self.controller_full_cycles += other.controller_full_cycles;
        self.controller_incremental_cycles += other.controller_incremental_cycles;
        self.stage_sense_ns += other.stage_sense_ns;
        self.stage_classify_ns += other.stage_classify_ns;
        self.stage_estimate_ns += other.stage_estimate_ns;
        self.stage_allocate_ns += other.stage_allocate_ns;
        self.stage_place_ns += other.stage_place_ns;
        self.stage_actuate_ns += other.stage_actuate_ns;
        self.dispatches += other.dispatches;
        self.context_switches += other.context_switches;
        self.period_rollovers += other.period_rollovers;
        self.migrations += other.migrations;
        self.rebalance_cycles += other.rebalance_cycles;
        self.rebalance_migrations += other.rebalance_migrations;
        self.trace_events_recorded += other.trace_events_recorded;
        self.trace_events_dropped += other.trace_events_dropped;
    }

    /// The counters accumulated since an `earlier` snapshot of the same
    /// host: every cumulative field is subtracted (saturating, so a stale
    /// `earlier` cannot underflow) and the derived rates are recomputed
    /// over the window.  This is how per-phase counter attribution works:
    /// snapshot at each phase boundary and diff.
    pub fn delta_since(&self, earlier: &TelemetrySnapshot) -> TelemetrySnapshot {
        TelemetrySnapshot {
            quantum_cache_hits: self
                .quantum_cache_hits
                .saturating_sub(earlier.quantum_cache_hits),
            quantum_cache_misses: self
                .quantum_cache_misses
                .saturating_sub(earlier.quantum_cache_misses),
            cache_hit_rate: 0.0,
            settles_goodness: self
                .settles_goodness
                .saturating_sub(earlier.settles_goodness),
            settles_period_boundary: self
                .settles_period_boundary
                .saturating_sub(earlier.settles_period_boundary),
            settles_throttle_edge: self
                .settles_throttle_edge
                .saturating_sub(earlier.settles_throttle_edge),
            settles_zero_span: self
                .settles_zero_span
                .saturating_sub(earlier.settles_zero_span),
            events_controller: self
                .events_controller
                .saturating_sub(earlier.events_controller),
            events_trace: self.events_trace.saturating_sub(earlier.events_trace),
            events_wake: self.events_wake.saturating_sub(earlier.events_wake),
            events_poll_tick: self
                .events_poll_tick
                .saturating_sub(earlier.events_poll_tick),
            events_horizon: self.events_horizon.saturating_sub(earlier.events_horizon),
            controller_full_cycles: self
                .controller_full_cycles
                .saturating_sub(earlier.controller_full_cycles),
            controller_incremental_cycles: self
                .controller_incremental_cycles
                .saturating_sub(earlier.controller_incremental_cycles),
            incremental_skip_rate: 0.0,
            stage_sense_ns: self.stage_sense_ns.saturating_sub(earlier.stage_sense_ns),
            stage_classify_ns: self
                .stage_classify_ns
                .saturating_sub(earlier.stage_classify_ns),
            stage_estimate_ns: self
                .stage_estimate_ns
                .saturating_sub(earlier.stage_estimate_ns),
            stage_allocate_ns: self
                .stage_allocate_ns
                .saturating_sub(earlier.stage_allocate_ns),
            stage_place_ns: self.stage_place_ns.saturating_sub(earlier.stage_place_ns),
            stage_actuate_ns: self
                .stage_actuate_ns
                .saturating_sub(earlier.stage_actuate_ns),
            dispatches: self.dispatches.saturating_sub(earlier.dispatches),
            context_switches: self
                .context_switches
                .saturating_sub(earlier.context_switches),
            period_rollovers: self
                .period_rollovers
                .saturating_sub(earlier.period_rollovers),
            migrations: self.migrations.saturating_sub(earlier.migrations),
            rebalance_cycles: self
                .rebalance_cycles
                .saturating_sub(earlier.rebalance_cycles),
            rebalance_migrations: self
                .rebalance_migrations
                .saturating_sub(earlier.rebalance_migrations),
            trace_events_recorded: self
                .trace_events_recorded
                .saturating_sub(earlier.trace_events_recorded),
            trace_events_dropped: self
                .trace_events_dropped
                .saturating_sub(earlier.trace_events_dropped),
        }
        .finalize()
    }

    /// The compact JSON counter summary.
    pub fn summary_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("snapshot serialises")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_since_subtracts_and_recomputes_rates() {
        let earlier = TelemetrySnapshot {
            quantum_cache_hits: 10,
            quantum_cache_misses: 10,
            dispatches: 20,
            settles_goodness: 3,
            controller_full_cycles: 2,
            controller_incremental_cycles: 2,
            migrations: 1,
            ..TelemetrySnapshot::default()
        }
        .finalize();
        let later = TelemetrySnapshot {
            quantum_cache_hits: 40,
            quantum_cache_misses: 20,
            dispatches: 60,
            settles_goodness: 5,
            controller_full_cycles: 3,
            controller_incremental_cycles: 5,
            migrations: 1,
            ..TelemetrySnapshot::default()
        }
        .finalize();
        let delta = later.delta_since(&earlier);
        assert_eq!(delta.quantum_cache_hits, 30);
        assert_eq!(delta.quantum_cache_misses, 10);
        assert_eq!(delta.dispatches, 40);
        assert_eq!(delta.settles_goodness, 2);
        assert_eq!(delta.migrations, 0);
        // The rates are the window's, not the cumulative run's.
        assert!((delta.cache_hit_rate - 0.75).abs() < 1e-12);
        assert!((delta.incremental_skip_rate - 0.75).abs() < 1e-12);
        // A stale `earlier` saturates instead of wrapping.
        let stale = earlier.delta_since(&later);
        assert_eq!(stale.quantum_cache_hits, 0);
        assert_eq!(stale.dispatches, 0);
    }

    #[test]
    fn ring_overwrites_oldest_when_full() {
        let rec = Recorder::new(TelemetryConfig {
            ring_capacity: 4,
            stage_timing: false,
        });
        for i in 0..10u64 {
            rec.record(i, TraceEventKind::CacheHit { cpu: 0 });
        }
        assert_eq!(rec.len(), 4);
        assert_eq!(rec.capacity(), 4);
        assert_eq!(rec.dropped(), 6);
        assert_eq!(rec.recorded(), 10);
        let events = rec.events();
        let ts: Vec<u64> = events.iter().map(|e| e.ts_us).collect();
        assert_eq!(ts, vec![6, 7, 8, 9]);
    }

    #[test]
    fn chrome_trace_is_parseable_sorted_and_balanced() {
        let rec = Recorder::new(TelemetryConfig::default());
        rec.record(
            100,
            TraceEventKind::DispatchSpan {
                cpu: 0,
                thread: 7,
                len_us: 50,
            },
        );
        rec.record(
            150,
            TraceEventKind::Settle {
                cpu: 0,
                thread: 7,
                cause: SettleCause::ThrottleEdge,
            },
        );
        rec.record(
            200,
            TraceEventKind::ControllerCycle {
                dur_ns: 4_000,
                incremental: false,
                jobs: 3,
                stage_ns: [500, 500, 500, 500, 500, 500],
            },
        );
        rec.record(
            300,
            TraceEventKind::CalendarEvent {
                kind: CalendarEventKind::Wake,
            },
        );
        let json = rec.chrome_trace_json();
        let value: serde::Value = serde_json::from_str(&json).expect("trace must parse");
        let events = value
            .field("traceEvents")
            .as_arr()
            .expect("traceEvents array");
        assert!(!events.is_empty());
        let mut last_ts = f64::MIN;
        let mut begins = 0i64;
        let mut ends = 0i64;
        for ev in events {
            let obj = ev.as_obj().expect("event object");
            let ts = match ev.field("ts") {
                serde::Value::Num(n) => n.as_f64(),
                other => panic!("ts must be a number, got {other:?}"),
            };
            assert!(ts >= last_ts, "timestamps must be non-decreasing");
            last_ts = ts;
            let ph = match ev.field("ph") {
                serde::Value::Str(s) => s.as_str(),
                other => panic!("ph must be a string, got {other:?}"),
            };
            match ph {
                "B" => begins += 1,
                "E" => ends += 1,
                "X" | "i" => {}
                other => panic!("unexpected phase {other}"),
            }
            assert!(obj.iter().any(|(k, _)| k == "pid"));
            assert!(obj.iter().any(|(k, _)| k == "tid"));
            assert!(obj.iter().any(|(k, _)| k == "name"));
        }
        assert_eq!(begins, 1);
        assert_eq!(begins, ends, "begin/end pairs must balance");
    }

    #[test]
    fn snapshot_rates_and_summary_round_trip() {
        let snap = TelemetrySnapshot {
            quantum_cache_hits: 90,
            quantum_cache_misses: 10,
            controller_full_cycles: 1,
            controller_incremental_cycles: 3,
            settles_throttle_edge: 5,
            ..Default::default()
        }
        .finalize();
        assert!((snap.cache_hit_rate - 0.9).abs() < 1e-12);
        assert!((snap.incremental_skip_rate - 0.75).abs() < 1e-12);
        assert_eq!(snap.settles_total(), 5);
        let json = snap.summary_json();
        let back: TelemetrySnapshot = serde_json::from_str(&json).expect("summary parses");
        assert_eq!(back, snap);
    }
}
