//! Wall-clock user-space executor.
//!
//! The paper's prototype controller ran as "a user-level program" above a
//! modified Linux kernel; this crate demonstrates that the same scheduler
//! and controller code paths used by the simulator (`rrs-sim`) also work
//! against real OS threads and real wall-clock time.  The executor emulates
//! a single CPU: worker threads each wait on a gate and are released one at
//! a time for one quantum, in the order decided by the
//! [`rrs_scheduler::Dispatcher`], while the [`rrs_core::Controller`] adjusts
//! their reservations from the progress they make on real shared queues.
//!
//! The executor is intentionally cooperative — tasks run one *step* per
//! quantum and return control — because a user-space library cannot preempt
//! arbitrary code.  The paper makes the same concession: its RBS can only
//! enforce allocations at dispatch time.
//!
//! Since the machine-layer refactor the executor emulates an `N`-CPU
//! machine (logical worker sharding), supports mid-run CPU hot-add
//! ([`executor::RealTimeExecutor::grow_cpus`]) and task removal, and
//! reports the same per-CPU statistics breakdown as the simulator
//! ([`executor::ExecutorStats`]) — the parity that lets the
//! backend-agnostic `realrate::api` host trait treat it interchangeably
//! with `rrs-sim`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod executor;

pub use executor::{ExecutorConfig, ExecutorStats, RealTimeExecutor, StepOutcome};
pub use rrs_core::JobHandle;
