//! The cooperative wall-clock executor.

use crossbeam::channel::{bounded, Receiver, Sender};
use parking_lot::Mutex;
use rrs_core::{Controller, ControllerConfig, Importance, JobId, JobSlot, JobSpec, UsageSnapshot};
use rrs_queue::MetricRegistry;
use rrs_scheduler::{Dispatcher, DispatcherConfig, Reservation, ThreadId};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// What a task step reports back to the executor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// The task has more work and wants to be scheduled again.
    Continue,
    /// The task is waiting for input; do not schedule it until the next
    /// controller period (the executor re-polls blocked tasks periodically,
    /// like the dispatcher waking threads whose queues changed).
    Blocked,
    /// The task has finished and should be removed.
    Done,
}

/// Executor configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExecutorConfig {
    /// Dispatcher configuration (dispatch interval is interpreted in real
    /// microseconds).
    pub dispatcher: DispatcherConfig,
    /// Controller configuration.
    pub controller: ControllerConfig,
}

/// Handle to a task registered with the executor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskHandle {
    /// Controller-side job id.
    pub job: JobId,
    /// Scheduler-side thread id.
    pub thread: ThreadId,
    /// The controller's dense slot handle, shared by every layer.
    pub slot: JobSlot,
}

enum WorkerMessage {
    /// Run one step with the given quantum.
    Run(Duration),
    /// Shut down.
    Stop,
}

struct WorkerReport {
    thread: ThreadId,
    elapsed: Duration,
    outcome: StepOutcome,
}

struct TaskSlot {
    slot: JobSlot,
    to_worker: Sender<WorkerMessage>,
    join: Option<JoinHandle<()>>,
    blocked: bool,
    done: bool,
}

/// A cooperative wall-clock executor emulating a single CPU.
///
/// # Examples
///
/// ```
/// use rrs_core::JobSpec;
/// use rrs_realtime::{ExecutorConfig, RealTimeExecutor, StepOutcome};
/// use std::sync::{atomic::{AtomicU64, Ordering}, Arc};
/// use std::time::Duration;
///
/// let mut exec = RealTimeExecutor::new(ExecutorConfig::default());
/// let counter = Arc::new(AtomicU64::new(0));
/// let c = Arc::clone(&counter);
/// exec.spawn("worker", JobSpec::miscellaneous(), move |_quantum| {
///     c.fetch_add(1, Ordering::Relaxed);
///     StepOutcome::Continue
/// });
/// exec.run_for(Duration::from_millis(50));
/// exec.shutdown();
/// assert!(counter.load(Ordering::Relaxed) > 0);
/// ```
pub struct RealTimeExecutor {
    config: ExecutorConfig,
    registry: MetricRegistry,
    dispatcher: Dispatcher,
    controller: Controller,
    tasks: BTreeMap<ThreadId, TaskSlot>,
    /// Slot-indexed map back to the dispatcher's thread id, so actuations
    /// apply without re-deriving `JobId ↔ ThreadId`.
    slot_threads: Vec<Option<ThreadId>>,
    reports: (Sender<WorkerReport>, Receiver<WorkerReport>),
    next_id: u64,
    start: Instant,
    cpu_time: Arc<Mutex<BTreeMap<u64, Duration>>>,
}

impl RealTimeExecutor {
    /// Creates an executor.
    pub fn new(config: ExecutorConfig) -> Self {
        let registry = MetricRegistry::new();
        Self {
            controller: Controller::new(config.controller, registry.clone()),
            dispatcher: Dispatcher::new(config.dispatcher),
            registry,
            config,
            tasks: BTreeMap::new(),
            slot_threads: Vec::new(),
            reports: bounded(64),
            next_id: 1,
            start: Instant::now(),
            cpu_time: Arc::new(Mutex::new(BTreeMap::new())),
        }
    }

    /// The progress-metric registry shared with tasks.
    pub fn registry(&self) -> MetricRegistry {
        self.registry.clone()
    }

    /// Number of registered (not yet finished) tasks.
    pub fn task_count(&self) -> usize {
        self.tasks.values().filter(|t| !t.done).count()
    }

    /// Total CPU time granted to a task so far.
    pub fn cpu_time(&self, handle: TaskHandle) -> Duration {
        self.cpu_time
            .lock()
            .get(&handle.thread.raw())
            .copied()
            .unwrap_or_default()
    }

    /// The proportion currently reserved for a task, in parts per thousand.
    pub fn current_allocation_ppt(&self, handle: TaskHandle) -> u32 {
        self.dispatcher
            .reservation(handle.thread)
            .map(|r| r.proportion.ppt())
            .unwrap_or(0)
    }

    /// Spawns a task with default importance.
    ///
    /// `step` is called once per granted quantum with the quantum length and
    /// must return whether the task wants to continue, block or finish.
    pub fn spawn<F>(&mut self, name: &str, spec: JobSpec, step: F) -> TaskHandle
    where
        F: FnMut(Duration) -> StepOutcome + Send + 'static,
    {
        self.spawn_with_importance(name, spec, Importance::NORMAL, step)
    }

    /// Spawns a task with an explicit importance weight.
    ///
    /// # Panics
    ///
    /// Panics if a real-time reservation is rejected by admission control;
    /// check capacity with smaller reservations first.
    pub fn spawn_with_importance<F>(
        &mut self,
        name: &str,
        spec: JobSpec,
        importance: Importance,
        mut step: F,
    ) -> TaskHandle
    where
        F: FnMut(Duration) -> StepOutcome + Send + 'static,
    {
        let raw = self.next_id;
        self.next_id += 1;
        let job = JobId(raw);
        let thread = ThreadId(raw);
        let slot = self
            .controller
            .add_job_with_importance(job, spec, importance)
            .expect("admission rejected: reduce the requested reservation");
        if self.slot_threads.len() <= slot.index() {
            self.slot_threads.resize(slot.index() + 1, None);
        }
        self.slot_threads[slot.index()] = Some(thread);

        let initial = Reservation::new(
            spec.proportion
                .unwrap_or(self.config.controller.min_proportion),
            spec.period.unwrap_or(self.config.controller.default_period),
        );
        // The controller already ruled on admission above.
        self.dispatcher
            .add_thread_preadmitted(thread, initial)
            .expect("fresh id");

        let (to_worker, from_executor) = bounded::<WorkerMessage>(1);
        let report_tx = self.reports.0.clone();
        let cpu_time = Arc::clone(&self.cpu_time);
        let worker_name = name.to_string();
        let join = std::thread::Builder::new()
            .name(worker_name)
            .spawn(move || {
                while let Ok(msg) = from_executor.recv() {
                    match msg {
                        WorkerMessage::Stop => break,
                        WorkerMessage::Run(quantum) => {
                            let t0 = Instant::now();
                            let outcome = step(quantum);
                            let elapsed = t0.elapsed();
                            *cpu_time.lock().entry(raw).or_default() += elapsed;
                            if report_tx
                                .send(WorkerReport {
                                    thread,
                                    elapsed,
                                    outcome,
                                })
                                .is_err()
                            {
                                break;
                            }
                            if outcome == StepOutcome::Done {
                                break;
                            }
                        }
                    }
                }
            })
            .expect("spawning a worker thread");

        self.tasks.insert(
            thread,
            TaskSlot {
                slot,
                to_worker,
                join: Some(join),
                blocked: false,
                done: false,
            },
        );
        TaskHandle { job, thread, slot }
    }

    fn now_us(&self) -> u64 {
        self.start.elapsed().as_micros() as u64
    }

    /// Runs the scheduling loop for the given wall-clock duration.
    pub fn run_for(&mut self, duration: Duration) {
        let deadline = Instant::now() + duration;
        let controller_period = Duration::from_secs_f64(self.config.controller.controller_period_s);
        let mut next_controller = Instant::now() + controller_period;

        while Instant::now() < deadline {
            if Instant::now() >= next_controller {
                self.run_controller();
                next_controller += controller_period;
                // Re-poll blocked tasks at controller frequency.
                let blocked: Vec<ThreadId> = self
                    .tasks
                    .iter()
                    .filter(|(_, t)| t.blocked && !t.done)
                    .map(|(&id, _)| id)
                    .collect();
                for tid in blocked {
                    self.tasks.get_mut(&tid).expect("exists").blocked = false;
                    let _ = self.dispatcher.unblock(tid);
                }
            }

            self.dispatcher.advance_to(self.now_us());
            let outcome = self.dispatcher.dispatch();
            match outcome.thread {
                Some(tid) => {
                    let quantum = Duration::from_micros(outcome.quantum_us);
                    let slot = self.tasks.get_mut(&tid).expect("dispatched task exists");
                    if slot.done || slot.to_worker.send(WorkerMessage::Run(quantum)).is_err() {
                        let _ = self.dispatcher.block(tid);
                        continue;
                    }
                    // Wait for the step to finish (single-CPU emulation).
                    match self.reports.1.recv_timeout(Duration::from_secs(5)) {
                        Ok(report) => self.handle_report(report),
                        Err(_) => break,
                    }
                }
                None => {
                    std::thread::sleep(Duration::from_micros(outcome.quantum_us.clamp(100, 1_000)));
                }
            }
        }
    }

    fn handle_report(&mut self, report: WorkerReport) {
        let used_us = report.elapsed.as_micros().max(1) as u64;
        let _ = self.dispatcher.charge(report.thread, used_us);
        let slot = self.tasks.get_mut(&report.thread).expect("task exists");
        match report.outcome {
            StepOutcome::Continue => {}
            StepOutcome::Blocked => {
                slot.blocked = true;
                let _ = self.dispatcher.block(report.thread);
            }
            StepOutcome::Done => {
                slot.done = true;
                let _ = self.dispatcher.block(report.thread);
            }
        }
    }

    fn run_controller(&mut self) {
        // Feed the dispatcher's accounting to the controller by slot, then
        // run the staged pipeline in place — no per-cycle allocation.
        for (tid, task) in &self.tasks {
            if let Some(acct) = self.dispatcher.usage_ref(*tid) {
                self.controller.record_usage(
                    task.slot,
                    UsageSnapshot {
                        usage_ratio: acct.last_period_usage_ratio(),
                    },
                );
            }
        }
        let now_s = self.start.elapsed().as_secs_f64();
        let out = self.controller.control_cycle_in_place(now_s);
        for actuation in &out.actuations {
            if let Some(Some(tid)) = self.slot_threads.get(actuation.slot.index()) {
                let _ = self.dispatcher.set_reservation(*tid, actuation.reservation);
            }
        }
    }

    /// Stops every worker thread and waits for them to exit.
    pub fn shutdown(&mut self) {
        for slot in self.tasks.values_mut() {
            let _ = slot.to_worker.send(WorkerMessage::Stop);
        }
        // Drain any in-flight report so workers are not stuck sending.
        while self.reports.1.try_recv().is_ok() {}
        for slot in self.tasks.values_mut() {
            if let Some(join) = slot.join.take() {
                let _ = join.join();
            }
        }
        self.tasks.clear();
    }
}

impl Drop for RealTimeExecutor {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for RealTimeExecutor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RealTimeExecutor")
            .field("tasks", &self.tasks.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrs_scheduler::{Period, Proportion};
    use std::sync::atomic::{AtomicU64, Ordering};

    fn spin_for(duration: Duration) {
        let t0 = Instant::now();
        while t0.elapsed() < duration {
            std::hint::spin_loop();
        }
    }

    #[test]
    fn tasks_run_and_shutdown_cleanly() {
        let mut exec = RealTimeExecutor::new(ExecutorConfig::default());
        let counter = Arc::new(AtomicU64::new(0));
        let c = Arc::clone(&counter);
        let handle = exec.spawn("spin", JobSpec::miscellaneous(), move |q| {
            spin_for(q.min(Duration::from_micros(500)));
            c.fetch_add(1, Ordering::Relaxed);
            StepOutcome::Continue
        });
        exec.run_for(Duration::from_millis(100));
        exec.shutdown();
        assert!(counter.load(Ordering::Relaxed) > 0);
        assert!(exec.cpu_time(handle) > Duration::ZERO);
        assert_eq!(exec.task_count(), 0);
    }

    #[test]
    fn done_task_stops_being_scheduled() {
        let mut exec = RealTimeExecutor::new(ExecutorConfig::default());
        let counter = Arc::new(AtomicU64::new(0));
        let c = Arc::clone(&counter);
        exec.spawn("once", JobSpec::miscellaneous(), move |_q| {
            c.fetch_add(1, Ordering::Relaxed);
            StepOutcome::Done
        });
        exec.run_for(Duration::from_millis(80));
        exec.shutdown();
        assert_eq!(counter.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn misc_task_allocation_grows_under_the_controller() {
        let mut exec = RealTimeExecutor::new(ExecutorConfig::default());
        let handle = exec.spawn("spin", JobSpec::miscellaneous(), move |q| {
            spin_for(q.min(Duration::from_micros(300)));
            StepOutcome::Continue
        });
        exec.run_for(Duration::from_millis(300));
        let alloc = exec.current_allocation_ppt(handle);
        exec.shutdown();
        assert!(alloc > 1, "allocation should have grown, got {alloc}");
    }

    #[test]
    fn real_time_task_keeps_its_reservation() {
        let mut exec = RealTimeExecutor::new(ExecutorConfig::default());
        let spec = JobSpec::real_time(Proportion::from_ppt(300), Period::from_millis(20));
        let rt = exec.spawn("rt", spec, move |q| {
            spin_for(q.min(Duration::from_micros(300)));
            StepOutcome::Continue
        });
        let _bg = exec.spawn("bg", JobSpec::miscellaneous(), move |q| {
            spin_for(q.min(Duration::from_micros(300)));
            StepOutcome::Continue
        });
        exec.run_for(Duration::from_millis(200));
        let alloc = exec.current_allocation_ppt(rt);
        exec.shutdown();
        assert_eq!(alloc, 300);
    }

    #[test]
    fn blocked_tasks_are_woken_by_the_controller_tick() {
        let mut exec = RealTimeExecutor::new(ExecutorConfig::default());
        let counter = Arc::new(AtomicU64::new(0));
        let c = Arc::clone(&counter);
        exec.spawn("blocker", JobSpec::miscellaneous(), move |_q| {
            c.fetch_add(1, Ordering::Relaxed);
            StepOutcome::Blocked
        });
        exec.run_for(Duration::from_millis(150));
        exec.shutdown();
        // It blocks after every step but should still have run several
        // times because the controller tick re-polls it.
        assert!(counter.load(Ordering::Relaxed) >= 2);
    }
}
