//! The cooperative wall-clock executor.
//!
//! Emulates an `N`-CPU machine over real OS threads: every scheduling
//! round dispatches each CPU of an [`rrs_scheduler::Machine`], releases
//! the selected workers in parallel, and waits for all of them to report
//! back (logical sharding — workers are not pinned to hardware cores, but
//! at most one worker runs per simulated CPU at a time).  `N = 1` (the
//! default) behaves exactly like the original single-CPU executor.

use crossbeam::channel::{bounded, Receiver, Sender};
use parking_lot::Mutex;
use rrs_core::{
    controller::AdmitError, Controller, ControllerConfig, ControllerEvent, JobHandle, JobId,
    JobSlot, JobSpec, UsageSnapshot,
};
use rrs_queue::MetricRegistry;
use rrs_scheduler::{
    CpuId, CpuStats, DispatcherConfig, Machine, Reservation, ThreadId, UsageAccount,
};
use rrs_telemetry::{Recorder, TelemetryConfig, TelemetrySnapshot, TraceEventKind};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// What a task step reports back to the executor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// The task has more work and wants to be scheduled again.
    Continue,
    /// The task is waiting for input; do not schedule it until the next
    /// controller period (the executor re-polls blocked tasks periodically,
    /// like the dispatcher waking threads whose queues changed).
    Blocked,
    /// The task has finished and should be removed.
    Done,
}

/// Executor configuration.
#[derive(Debug, Clone, Copy)]
pub struct ExecutorConfig {
    /// Dispatcher configuration (dispatch interval is interpreted in real
    /// microseconds).
    pub dispatcher: DispatcherConfig,
    /// Controller configuration.  Its `placement.cpus` sets how many
    /// logical CPUs the executor shards workers over (default 1).
    pub controller: ControllerConfig,
    /// Shortest sleep when no task is runnable, in microseconds.  The
    /// idle sleep is the dispatcher's idle quantum clamped to
    /// [`ExecutorConfig::idle_sleep_min_us`,
    /// `ExecutorConfig::idle_sleep_max_us`]: the lower bound stops the
    /// loop from busy-spinning on sub-100 µs quanta the OS timer cannot
    /// honour anyway, the upper bound keeps the executor responsive to
    /// period boundaries however long the quantum.
    pub idle_sleep_min_us: u64,
    /// Longest sleep when no task is runnable, in microseconds.
    pub idle_sleep_max_us: u64,
}

impl Default for ExecutorConfig {
    fn default() -> Self {
        Self {
            dispatcher: DispatcherConfig::default(),
            controller: ControllerConfig::default(),
            idle_sleep_min_us: 100,
            idle_sleep_max_us: 1_000,
        }
    }
}

impl ExecutorConfig {
    /// Returns a copy sharding workers over `cpus` logical CPUs (clamped
    /// to at least one).
    pub fn with_cpus(mut self, cpus: usize) -> Self {
        self.controller = self.controller.with_cpus(cpus);
        self
    }

    /// The idle sleep for a given idle quantum: the quantum clamped to the
    /// configured bounds.
    pub fn idle_sleep(&self, quantum_us: u64) -> Duration {
        let max = self.idle_sleep_max_us.max(self.idle_sleep_min_us);
        Duration::from_micros(quantum_us.clamp(self.idle_sleep_min_us, max))
    }
}

/// Aggregate statistics of an executor run.
///
/// The wall-clock analogue of the simulator's `SimStats`: the same
/// control-plane counters and the same per-CPU breakdown
/// ([`rrs_scheduler::CpuStats`]), measured over real time instead of
/// simulated time.  Timing-dependent fields (usage, idle) are only as
/// deterministic as the OS scheduler underneath.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExecutorStats {
    /// Number of controller invocations.
    pub controller_invocations: u64,
    /// Number of quality exceptions raised.
    pub quality_exceptions: u64,
    /// Number of control cycles in which allocations were squished.
    pub squish_events: u64,
    /// Number of real-time admission rejections observed.
    pub admission_rejections: u64,
    /// Number of cross-CPU worker re-shards (migrations) applied.
    pub migrations: u64,
    /// Number of scheduling rounds executed (one dispatch sweep over
    /// every CPU each).
    pub rounds: u64,
    /// Per-CPU breakdown (usage, idle, migrations), one entry per CPU.
    pub per_cpu: Vec<CpuStats>,
}

enum WorkerMessage {
    /// Run one step with the given quantum.
    Run(Duration),
    /// Shut down.
    Stop,
}

struct WorkerReport {
    thread: ThreadId,
    elapsed: Duration,
    outcome: StepOutcome,
}

struct TaskSlot {
    slot: JobSlot,
    to_worker: Sender<WorkerMessage>,
    join: Option<JoinHandle<()>>,
    blocked: bool,
    done: bool,
}

/// A cooperative wall-clock executor emulating a single CPU.
///
/// # Examples
///
/// ```
/// use rrs_core::JobSpec;
/// use rrs_realtime::{ExecutorConfig, RealTimeExecutor, StepOutcome};
/// use std::sync::{atomic::{AtomicU64, Ordering}, Arc};
/// use std::time::Duration;
///
/// let mut exec = RealTimeExecutor::new(ExecutorConfig::default());
/// let counter = Arc::new(AtomicU64::new(0));
/// let c = Arc::clone(&counter);
/// exec.spawn("worker", JobSpec::miscellaneous(), move |_quantum| {
///     c.fetch_add(1, Ordering::Relaxed);
///     StepOutcome::Continue
/// });
/// exec.run_for(Duration::from_millis(50));
/// exec.shutdown();
/// assert!(counter.load(Ordering::Relaxed) > 0);
/// ```
pub struct RealTimeExecutor {
    config: ExecutorConfig,
    registry: MetricRegistry,
    machine: Machine,
    controller: Controller,
    tasks: BTreeMap<ThreadId, TaskSlot>,
    /// Slot-indexed map back to the dispatcher's thread id, so actuations
    /// apply without re-deriving `JobId ↔ ThreadId`.
    slot_threads: Vec<Option<ThreadId>>,
    reports: (Sender<WorkerReport>, Receiver<WorkerReport>),
    next_id: u64,
    start: Instant,
    cpu_time: Arc<Mutex<BTreeMap<u64, Duration>>>,
    stats: ExecutorStats,
    /// The structured trace recorder, when telemetry is enabled.
    telemetry: Option<Arc<Recorder>>,
}

impl RealTimeExecutor {
    /// Creates an executor.
    pub fn new(config: ExecutorConfig) -> Self {
        let registry = MetricRegistry::new();
        let cpus = config.controller.placement.cpu_count();
        Self {
            controller: Controller::new(config.controller, registry.clone()),
            machine: Machine::new(config.dispatcher, cpus),
            registry,
            config,
            tasks: BTreeMap::new(),
            slot_threads: Vec::new(),
            reports: bounded(64),
            next_id: 1,
            start: Instant::now(),
            cpu_time: Arc::new(Mutex::new(BTreeMap::new())),
            stats: ExecutorStats {
                per_cpu: vec![CpuStats::default(); cpus],
                ..ExecutorStats::default()
            },
            telemetry: None,
        }
    }

    /// Enables structured trace recording and controller stage timing,
    /// returning the shared recorder.
    ///
    /// The wall-clock analogue of the simulator's `enable_telemetry`:
    /// the same ring buffer, the same event vocabulary, timestamps from
    /// the executor's own elapsed clock.
    pub fn enable_telemetry(&mut self, config: TelemetryConfig) -> Arc<Recorder> {
        let recorder = Recorder::new(config);
        self.machine.set_telemetry(Some(recorder.clone()));
        self.controller.set_stage_timing(recorder.stage_timing());
        self.telemetry = Some(recorder.clone());
        recorder
    }

    /// The trace recorder installed by
    /// [`RealTimeExecutor::enable_telemetry`], if any.
    pub fn telemetry_recorder(&self) -> Option<Arc<Recorder>> {
        self.telemetry.clone()
    }

    /// A point-in-time snapshot of the subsystem counters, sharing the
    /// simulator's schema so sim-vs-wall-clock runs compare directly.
    /// The executor has no event calendar, so the `events_*` counters
    /// stay zero on this backend.
    pub fn telemetry_snapshot(&self) -> TelemetrySnapshot {
        let fast = self.machine.fast_path_stats();
        let dispatch = self.machine.stats();
        let (full, incremental) = self.controller.cycle_counts();
        let stage = self.controller.stage_total_ns();
        let snapshot = TelemetrySnapshot {
            quantum_cache_hits: fast.quantum_cache_hits,
            quantum_cache_misses: fast.quantum_cache_misses,
            settles_goodness: fast.settles_goodness,
            settles_period_boundary: fast.settles_period_boundary,
            settles_throttle_edge: fast.settles_throttle_edge,
            settles_zero_span: fast.settles_zero_span,
            controller_full_cycles: full,
            controller_incremental_cycles: incremental,
            stage_sense_ns: stage[0],
            stage_classify_ns: stage[1],
            stage_estimate_ns: stage[2],
            stage_allocate_ns: stage[3],
            stage_place_ns: stage[4],
            stage_actuate_ns: stage[5],
            dispatches: dispatch.dispatches,
            context_switches: dispatch.context_switches,
            period_rollovers: dispatch.period_rollovers,
            migrations: self.stats.migrations,
            trace_events_recorded: self.telemetry.as_ref().map(|r| r.recorded()).unwrap_or(0),
            trace_events_dropped: self.telemetry.as_ref().map(|r| r.dropped()).unwrap_or(0),
            ..TelemetrySnapshot::default()
        };
        snapshot.finalize()
    }

    /// The number of logical CPUs workers are sharded over.
    pub fn cpu_count(&self) -> usize {
        self.machine.cpu_count()
    }

    /// The CPU a task is currently placed on.
    pub fn cpu_of(&self, handle: JobHandle) -> Option<CpuId> {
        self.machine.cpu_of(handle.thread)
    }

    /// Read-only access to the multi-CPU machine the workers are sharded
    /// over — the same [`rrs_scheduler::Machine`] the simulator drives.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Read-only access to the controller.
    pub fn controller(&self) -> &Controller {
        &self.controller
    }

    /// Grows the machine to `cpus` logical CPUs mid-run (hot-add),
    /// returning the resulting CPU count.
    ///
    /// New CPUs join with empty run queues; the next scheduling round
    /// dispatches them, and the control pipeline's Place stage starts
    /// re-sharding workers onto them on its next cycle.  Shrinking is not
    /// supported, so a `cpus` at or below the current count is a no-op.
    pub fn grow_cpus(&mut self, cpus: usize) -> usize {
        let n = self.machine.grow_to(cpus);
        self.controller.set_cpus(n);
        self.config.controller.placement.cpus = n;
        self.stats.per_cpu.resize(n, CpuStats::default());
        n
    }

    /// Wall-clock time elapsed since the executor was created — the
    /// executor's notion of "now".
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Aggregate statistics, with the per-CPU idle and deadline counters
    /// filled in from the machine's dispatchers at read time.
    pub fn stats(&self) -> ExecutorStats {
        let mut stats = self.stats.clone();
        for (i, cpu) in stats.per_cpu.iter_mut().enumerate() {
            let d = self.machine.dispatcher(CpuId(i as u32)).stats();
            cpu.idle_us = d.idle_us;
            cpu.deadlines_missed = d.deadlines_missed;
        }
        stats
    }

    /// The progress-metric registry shared with tasks.
    pub fn registry(&self) -> MetricRegistry {
        self.registry.clone()
    }

    /// Number of registered (not yet finished) tasks.
    pub fn task_count(&self) -> usize {
        self.tasks.values().filter(|t| !t.done).count()
    }

    /// Total CPU time granted to a task so far.
    pub fn cpu_time(&self, handle: JobHandle) -> Duration {
        self.cpu_time
            .lock()
            .get(&handle.thread.raw())
            .copied()
            .unwrap_or_default()
    }

    /// The proportion currently reserved for a task, in parts per thousand.
    pub fn current_allocation_ppt(&self, handle: JobHandle) -> u32 {
        self.machine
            .reservation(handle.thread)
            .map(|r| r.proportion.ppt())
            .unwrap_or(0)
    }

    /// The reservation currently held by a task.
    pub fn reservation(&self, handle: JobHandle) -> Option<Reservation> {
        self.machine.reservation(handle.thread)
    }

    /// A task's dispatcher-side usage account (budget, period rollovers,
    /// missed deadlines).
    pub fn usage(&self, handle: JobHandle) -> Option<UsageAccount> {
        self.machine.usage(handle.thread)
    }

    /// Forces a reservation directly on the dispatcher, bypassing the
    /// controller — the wall-clock analogue of the simulator's
    /// `force_reservation`.  The controller may overwrite it on its next
    /// cycle unless the job is real-time.
    pub fn force_reservation(&mut self, handle: JobHandle, reservation: Reservation) {
        let _ = self.machine.set_reservation(handle.thread, reservation);
    }

    /// Spawns a task.
    ///
    /// `step` is called once per granted quantum with the quantum length and
    /// must return whether the task wants to continue, block or finish.
    /// The importance weight is read from the spec
    /// ([`JobSpec::with_importance`]).
    ///
    /// # Panics
    ///
    /// Panics if a real-time reservation is rejected by admission control;
    /// use [`RealTimeExecutor::try_spawn`] to handle rejection.
    pub fn spawn<F>(&mut self, name: &str, spec: JobSpec, step: F) -> JobHandle
    where
        F: FnMut(Duration) -> StepOutcome + Send + 'static,
    {
        self.try_spawn(name, spec, step)
            .expect("admission rejected: reduce the requested reservation")
    }

    /// Spawns a task, reporting real-time admission rejection instead of
    /// panicking.
    ///
    /// `step` is called once per granted quantum with the quantum length and
    /// must return whether the task wants to continue, block or finish.
    pub fn try_spawn<F>(
        &mut self,
        name: &str,
        spec: JobSpec,
        mut step: F,
    ) -> Result<JobHandle, AdmitError>
    where
        F: FnMut(Duration) -> StepOutcome + Send + 'static,
    {
        let raw = self.next_id;
        let job = JobId(raw);
        let thread = ThreadId(raw);
        let slot = match self.controller.add_job(job, spec) {
            Ok(slot) => slot,
            Err(e) => {
                if matches!(e, AdmitError::Rejected { .. }) {
                    self.stats.admission_rejections += 1;
                }
                return Err(e);
            }
        };
        self.next_id += 1;
        if self.slot_threads.len() <= slot.index() {
            self.slot_threads.resize(slot.index() + 1, None);
        }
        self.slot_threads[slot.index()] = Some(thread);

        let initial = Reservation::new(
            spec.proportion
                .unwrap_or(self.config.controller.min_proportion),
            spec.period.unwrap_or(self.config.controller.default_period),
        );
        // The controller already ruled on admission and chose the CPU.
        let cpu = self
            .controller
            .cpu_of_slot(slot)
            .expect("slot was just created");
        self.machine
            .add_thread_preadmitted_on(cpu, thread, initial)
            .expect("fresh id");

        let (to_worker, from_executor) = bounded::<WorkerMessage>(1);
        let report_tx = self.reports.0.clone();
        let cpu_time = Arc::clone(&self.cpu_time);
        let worker_name = name.to_string();
        let join = std::thread::Builder::new()
            .name(worker_name)
            .spawn(move || {
                while let Ok(msg) = from_executor.recv() {
                    match msg {
                        WorkerMessage::Stop => break,
                        WorkerMessage::Run(quantum) => {
                            let t0 = Instant::now();
                            let outcome = step(quantum);
                            let elapsed = t0.elapsed();
                            *cpu_time.lock().entry(raw).or_default() += elapsed;
                            if report_tx
                                .send(WorkerReport {
                                    thread,
                                    elapsed,
                                    outcome,
                                })
                                .is_err()
                            {
                                break;
                            }
                            if outcome == StepOutcome::Done {
                                break;
                            }
                        }
                    }
                }
            })
            .expect("spawning a worker thread");

        self.tasks.insert(
            thread,
            TaskSlot {
                slot,
                to_worker,
                join: Some(join),
                blocked: false,
                done: false,
            },
        );
        Ok(JobHandle { job, thread, slot })
    }

    /// Removes a task: stops its worker thread, deregisters it from the
    /// controller and withdraws its reservation.
    ///
    /// Safe to call between scheduling rounds (workers only run inside
    /// [`RealTimeExecutor::run_for`], which waits for every released
    /// worker before returning).  Removing an unknown or already-removed
    /// handle is a no-op.
    pub fn remove(&mut self, handle: JobHandle) {
        let Some(mut slot) = self.tasks.remove(&handle.thread) else {
            return;
        };
        let _ = slot.to_worker.send(WorkerMessage::Stop);
        if let Some(join) = slot.join.take() {
            let _ = join.join();
        }
        let _ = self.machine.remove_thread(handle.thread);
        // Thread ids are never reused, so the per-task counter would
        // otherwise accumulate forever under job churn.
        self.cpu_time.lock().remove(&handle.thread.raw());
        if self.controller.remove_slot(handle.slot) {
            if let Some(entry) = self.slot_threads.get_mut(handle.slot.index()) {
                *entry = None;
            }
        }
    }

    fn now_us(&self) -> u64 {
        self.start.elapsed().as_micros() as u64
    }

    /// Runs the scheduling loop for the given wall-clock duration.
    pub fn run_for(&mut self, duration: Duration) {
        let deadline = Instant::now() + duration;
        let controller_period = Duration::from_secs_f64(self.config.controller.controller_period_s);
        let mut next_controller = Instant::now() + controller_period;

        while Instant::now() < deadline {
            self.stats.rounds += 1;
            if Instant::now() >= next_controller {
                self.run_controller();
                next_controller += controller_period;
                // Re-poll blocked tasks at controller frequency.
                let blocked: Vec<ThreadId> = self
                    .tasks
                    .iter()
                    .filter(|(_, t)| t.blocked && !t.done)
                    .map(|(&id, _)| id)
                    .collect();
                for tid in blocked {
                    self.tasks.get_mut(&tid).expect("exists").blocked = false;
                    let _ = self.machine.unblock(tid);
                }
            }

            self.machine.advance_to(self.now_us());

            // Dispatch every CPU, release the selected workers in
            // parallel, then wait for all of them (each simulated CPU runs
            // at most one worker at a time).
            let mut running = 0usize;
            let mut min_idle_quantum = u64::MAX;
            for cpu in 0..self.machine.cpu_count() {
                let outcome = self.machine.dispatch(CpuId(cpu as u32));
                let Some(tid) = outcome.thread else {
                    min_idle_quantum = min_idle_quantum.min(outcome.quantum_us);
                    continue;
                };
                let quantum = Duration::from_micros(outcome.quantum_us);
                let slot = self.tasks.get_mut(&tid).expect("dispatched task exists");
                if slot.done || slot.to_worker.send(WorkerMessage::Run(quantum)).is_err() {
                    let _ = self.machine.block(tid);
                    continue;
                }
                running += 1;
            }

            if running == 0 {
                if min_idle_quantum < u64::MAX {
                    std::thread::sleep(self.config.idle_sleep(min_idle_quantum));
                }
                continue;
            }
            for _ in 0..running {
                match self.reports.1.recv_timeout(Duration::from_secs(5)) {
                    Ok(report) => self.handle_report(report),
                    Err(_) => return,
                }
            }
        }
    }

    fn handle_report(&mut self, report: WorkerReport) {
        let used_us = report.elapsed.as_micros().max(1) as u64;
        // Attribute the consumption to the CPU the worker ran on, like the
        // simulator's per-CPU breakdown.
        if let Some(cpu) = self.machine.cpu_of(report.thread) {
            if let Some(c) = self.stats.per_cpu.get_mut(cpu.index()) {
                c.used_us += used_us;
            }
        }
        let _ = self.machine.charge(report.thread, used_us);
        // A report may outlive its task: if `run_for` timed out waiting
        // while a worker was mid-step and the task was then removed, the
        // stale report drains here on the next round.  Drop it.
        let Some(slot) = self.tasks.get_mut(&report.thread) else {
            return;
        };
        match report.outcome {
            StepOutcome::Continue => {}
            StepOutcome::Blocked => {
                slot.blocked = true;
                let _ = self.machine.block(report.thread);
            }
            StepOutcome::Done => {
                slot.done = true;
                let _ = self.machine.block(report.thread);
            }
        }
    }

    fn run_controller(&mut self) {
        // Feed the machine's accounting to the controller by slot, then
        // run the staged pipeline in place — no per-cycle allocation.
        for (tid, task) in &self.tasks {
            if let Some(acct) = self.machine.usage_ref(*tid) {
                self.controller.record_usage(
                    task.slot,
                    UsageSnapshot {
                        usage_ratio: acct.last_period_usage_ratio(),
                    },
                );
            }
        }
        let cycle_ts = self.now_us();
        let full_before = self.controller.cycle_counts().0;
        let timer = self.telemetry.as_ref().map(|_| Instant::now());
        let now_s = self.start.elapsed().as_secs_f64();
        let out = self.controller.control_cycle_in_place(now_s);
        self.stats.controller_invocations += 1;
        for event in &out.events {
            match event {
                ControllerEvent::Quality(_) => self.stats.quality_exceptions += 1,
                ControllerEvent::Squished { .. } => self.stats.squish_events += 1,
                _ => {}
            }
        }
        for actuation in &out.actuations {
            if let Some(Some(tid)) = self.slot_threads.get(actuation.slot.index()) {
                let _ = self.machine.set_reservation(*tid, actuation.reservation);
                // Apply the Place stage's decision: logically reshard the
                // worker onto its assigned CPU.
                let from = self.machine.cpu_of(*tid);
                if from != Some(actuation.cpu) && self.machine.migrate(*tid, actuation.cpu).is_ok()
                {
                    self.stats.migrations += 1;
                    if let Some(from) = from {
                        self.stats.per_cpu[from.index()].migrations_out += 1;
                    }
                    self.stats.per_cpu[actuation.cpu.index()].migrations_in += 1;
                }
            }
        }
        if let (Some(recorder), Some(started)) = (&self.telemetry, timer) {
            let incremental = self.controller.cycle_counts().0 == full_before;
            let mut stage_ns = [0u32; 6];
            if !incremental {
                for (dst, src) in stage_ns.iter_mut().zip(self.controller.last_stage_ns()) {
                    *dst = src.min(u32::MAX as u64) as u32;
                }
            }
            recorder.record(
                cycle_ts,
                TraceEventKind::ControllerCycle {
                    dur_ns: started.elapsed().as_nanos() as u64,
                    incremental,
                    jobs: self.controller.job_count() as u32,
                    stage_ns,
                },
            );
        }
    }

    /// Stops every worker thread and waits for them to exit.
    pub fn shutdown(&mut self) {
        for slot in self.tasks.values_mut() {
            let _ = slot.to_worker.send(WorkerMessage::Stop);
        }
        // Drain any in-flight report so workers are not stuck sending.
        while self.reports.1.try_recv().is_ok() {}
        for slot in self.tasks.values_mut() {
            if let Some(join) = slot.join.take() {
                let _ = join.join();
            }
        }
        self.tasks.clear();
    }
}

impl Drop for RealTimeExecutor {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for RealTimeExecutor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RealTimeExecutor")
            .field("tasks", &self.tasks.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrs_scheduler::{Period, Proportion};
    use std::sync::atomic::{AtomicU64, Ordering};

    fn spin_for(duration: Duration) {
        let t0 = Instant::now();
        while t0.elapsed() < duration {
            std::hint::spin_loop();
        }
    }

    #[test]
    fn tasks_run_and_shutdown_cleanly() {
        let mut exec = RealTimeExecutor::new(ExecutorConfig::default());
        let counter = Arc::new(AtomicU64::new(0));
        let c = Arc::clone(&counter);
        let handle = exec.spawn("spin", JobSpec::miscellaneous(), move |q| {
            spin_for(q.min(Duration::from_micros(500)));
            c.fetch_add(1, Ordering::Relaxed);
            StepOutcome::Continue
        });
        exec.run_for(Duration::from_millis(100));
        exec.shutdown();
        assert!(counter.load(Ordering::Relaxed) > 0);
        assert!(exec.cpu_time(handle) > Duration::ZERO);
        assert_eq!(exec.task_count(), 0);
    }

    #[test]
    fn done_task_stops_being_scheduled() {
        let mut exec = RealTimeExecutor::new(ExecutorConfig::default());
        let counter = Arc::new(AtomicU64::new(0));
        let c = Arc::clone(&counter);
        exec.spawn("once", JobSpec::miscellaneous(), move |_q| {
            c.fetch_add(1, Ordering::Relaxed);
            StepOutcome::Done
        });
        exec.run_for(Duration::from_millis(80));
        exec.shutdown();
        assert_eq!(counter.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn misc_task_allocation_grows_under_the_controller() {
        let mut exec = RealTimeExecutor::new(ExecutorConfig::default());
        let handle = exec.spawn("spin", JobSpec::miscellaneous(), move |q| {
            spin_for(q.min(Duration::from_micros(300)));
            StepOutcome::Continue
        });
        exec.run_for(Duration::from_millis(300));
        let alloc = exec.current_allocation_ppt(handle);
        exec.shutdown();
        assert!(alloc > 1, "allocation should have grown, got {alloc}");
    }

    #[test]
    fn real_time_task_keeps_its_reservation() {
        let mut exec = RealTimeExecutor::new(ExecutorConfig::default());
        let spec = JobSpec::real_time(Proportion::from_ppt(300), Period::from_millis(20));
        let rt = exec.spawn("rt", spec, move |q| {
            spin_for(q.min(Duration::from_micros(300)));
            StepOutcome::Continue
        });
        let _bg = exec.spawn("bg", JobSpec::miscellaneous(), move |q| {
            spin_for(q.min(Duration::from_micros(300)));
            StepOutcome::Continue
        });
        exec.run_for(Duration::from_millis(200));
        let alloc = exec.current_allocation_ppt(rt);
        exec.shutdown();
        assert_eq!(alloc, 300);
    }

    #[test]
    fn idle_sleep_is_the_quantum_clamped_to_the_configured_bounds() {
        let config = ExecutorConfig::default();
        assert_eq!(config.idle_sleep_min_us, 100);
        assert_eq!(config.idle_sleep_max_us, 1_000);
        assert_eq!(config.idle_sleep(5), Duration::from_micros(100));
        assert_eq!(config.idle_sleep(500), Duration::from_micros(500));
        assert_eq!(config.idle_sleep(50_000), Duration::from_micros(1_000));

        let wide = ExecutorConfig {
            idle_sleep_min_us: 10,
            idle_sleep_max_us: 20_000,
            ..ExecutorConfig::default()
        };
        assert_eq!(wide.idle_sleep(50_000), Duration::from_micros(20_000));
        assert_eq!(wide.idle_sleep(15), Duration::from_micros(15));
        // A min above the max is forgiven, not panicked on.
        let crossed = ExecutorConfig {
            idle_sleep_min_us: 5_000,
            idle_sleep_max_us: 10,
            ..ExecutorConfig::default()
        };
        assert_eq!(crossed.idle_sleep(1), Duration::from_micros(5_000));
    }

    #[test]
    fn idle_executor_honours_a_larger_sleep_bound() {
        // With no tasks at all, the loop is pure idle sleeping; it must
        // still return promptly and not busy-spin.
        let mut exec = RealTimeExecutor::new(ExecutorConfig {
            idle_sleep_min_us: 2_000,
            idle_sleep_max_us: 4_000,
            ..ExecutorConfig::default()
        });
        let t0 = Instant::now();
        exec.run_for(Duration::from_millis(30));
        assert!(t0.elapsed() >= Duration::from_millis(30));
        assert!(t0.elapsed() < Duration::from_millis(300));
    }

    #[test]
    fn two_cpu_executor_runs_two_workers_concurrently() {
        let mut exec = RealTimeExecutor::new(ExecutorConfig::default().with_cpus(2));
        assert_eq!(exec.cpu_count(), 2);
        let a = exec.spawn("a", JobSpec::miscellaneous(), move |q| {
            spin_for(q.min(Duration::from_micros(500)));
            StepOutcome::Continue
        });
        let b = exec.spawn("b", JobSpec::miscellaneous(), move |q| {
            spin_for(q.min(Duration::from_micros(500)));
            StepOutcome::Continue
        });
        exec.run_for(Duration::from_millis(200));
        let (ca, cb) = (exec.cpu_of(a), exec.cpu_of(b));
        let (ta, tb) = (exec.cpu_time(a), exec.cpu_time(b));
        exec.shutdown();
        assert_ne!(ca, cb, "workers sharded over distinct CPUs");
        assert!(ta > Duration::ZERO && tb > Duration::ZERO);
    }

    #[test]
    fn blocked_tasks_are_woken_by_the_controller_tick() {
        let mut exec = RealTimeExecutor::new(ExecutorConfig::default());
        let counter = Arc::new(AtomicU64::new(0));
        let c = Arc::clone(&counter);
        exec.spawn("blocker", JobSpec::miscellaneous(), move |_q| {
            c.fetch_add(1, Ordering::Relaxed);
            StepOutcome::Blocked
        });
        exec.run_for(Duration::from_millis(150));
        exec.shutdown();
        // It blocks after every step but should still have run several
        // times because the controller tick re-polls it.
        assert!(counter.load(Ordering::Relaxed) >= 2);
    }
}
