//! Criterion bench for the Figure 8 experiment: the dispatcher's cost per
//! decision and the end-to-end available-CPU measurement.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rrs_bench::fig8::available_cpu;
use rrs_scheduler::{
    Dispatcher, DispatcherConfig, Period, Proportion, Reservation, ThreadClass, ThreadId,
};
use std::hint::black_box;

fn bench_dispatch_decision(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8/dispatch_decision");
    for &threads in &[1usize, 8, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &n| {
            let mut d = Dispatcher::new(DispatcherConfig::default());
            for i in 0..n {
                let ppt = (900 / n.max(1)) as u32;
                d.add_thread(
                    ThreadId(i as u64),
                    ThreadClass::Reserved(Reservation::new(
                        Proportion::from_ppt(ppt.max(1)),
                        Period::from_millis(10),
                    )),
                )
                .unwrap();
            }
            b.iter(|| black_box(d.run_quantum()));
        });
    }
    group.finish();
}

fn bench_available_cpu(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8/available_cpu");
    group.sample_size(10);
    for &freq in &[100.0f64, 4000.0, 10000.0] {
        group.bench_with_input(BenchmarkId::from_parameter(freq as u64), &freq, |b, &f| {
            b.iter(|| black_box(available_cpu(f, 0.5)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dispatch_decision, bench_available_cpu);
criterion_main!(benches);
