//! Criterion bench for the Figure 6 experiment: simulating the pulse
//! pipeline under the adaptive controller.

use criterion::{criterion_group, criterion_main, Criterion};
use rrs_bench::fig6::{run, Fig6Params};
use rrs_feedback::PulseTrain;
use std::hint::black_box;

fn bench_fig6(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6/responsiveness");
    group.sample_size(10);
    group.bench_function("pulse_pipeline_10s", |b| {
        b.iter(|| {
            let mut params = Fig6Params {
                duration_s: 10.0,
                ..Fig6Params::default()
            };
            params.pipeline.production_rate = PulseTrain::new(2.5e-5, 5.0e-5, vec![(3.0, 5.0)]);
            black_box(run(params))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
