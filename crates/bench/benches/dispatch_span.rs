//! Criterion bench isolating the cost of one dispatch span: pick a thread,
//! model it running, charge the time back.  This is the inner loop of the
//! event-calendar simulator (`dispatch` + `charge_span`), measured here
//! without the simulator around it so span cost is tracked independently of
//! whole-sim throughput.
//!
//! Two queue shapes per population size:
//!
//! * **uncontended** — one runnable reserved thread (the rest of the
//!   population is resident but blocked).  Successive spans re-pick the same
//!   thread, so the per-CPU next-quantum cache serves every dispatch and the
//!   span batch accumulates without touching the heap.
//! * **contended** — the whole population runnable at equal goodness.  The
//!   pick round-robins, so every dispatch re-ranks through the run queue and
//!   every span batch settles on the next pick.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rrs_scheduler::{Dispatcher, DispatcherConfig, Period, Proportion, Reservation, ThreadId};
use std::hint::black_box;

/// Advance per span, in microseconds.  Each span charges less than this so
/// aggregate demand stays below every thread's allocation and the loop never
/// degenerates into throttled idling.
const SPAN_ADVANCE_US: u64 = 10;

/// Work charged per span, in microseconds (40 % duty cycle).
const SPAN_CHARGE_US: u64 = 4;

fn lazy_config() -> DispatcherConfig {
    DispatcherConfig {
        lazy_rollovers: true,
        ..DispatcherConfig::default()
    }
}

/// Populates `n` reserved threads with ids `1..=n`.  Thread 1 gets half the
/// CPU so the uncontended variant never exhausts its budget mid-measurement.
/// The rest get `600/n` ppt each: under contended round-robin a thread is
/// picked every `n` spans and charged a 40 % duty cycle, i.e. `400/n` ppt of
/// the CPU, so this allocation keeps every thread below its budget and the
/// queue stays fully runnable instead of draining into throttled idling.
/// (Preadmitted: the sum exceeds the dispatcher's own admission threshold,
/// as controller-squished populations legitimately do.)
fn populate(d: &mut Dispatcher, n: usize) {
    for i in 1..=n {
        let ppt = if i == 1 { 500 } else { (600 / n as u32).max(1) };
        d.add_thread_preadmitted(
            ThreadId(i as u64),
            Reservation::new(Proportion::from_ppt(ppt), Period::from_millis(10)),
        )
        .unwrap();
    }
}

fn span_loop(d: &mut Dispatcher, now: &mut u64) -> u64 {
    *now += SPAN_ADVANCE_US;
    d.advance_to(*now);
    let outcome = d.dispatch();
    if outcome.thread.is_some() {
        d.charge_span(black_box(SPAN_CHARGE_US.min(outcome.quantum_us)));
    }
    outcome.quantum_us
}

fn bench_uncontended(c: &mut Criterion) {
    let mut group = c.benchmark_group("dispatch_span/uncontended");
    for &threads in &[16usize, 1_000, 10_000] {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &n| {
            let mut d = Dispatcher::new(lazy_config());
            populate(&mut d, n);
            for i in 2..=n {
                d.block(ThreadId(i as u64)).unwrap();
            }
            let mut now = d.now_us();
            b.iter(|| black_box(span_loop(&mut d, &mut now)));
        });
    }
    group.finish();
}

fn bench_contended(c: &mut Criterion) {
    let mut group = c.benchmark_group("dispatch_span/contended");
    for &threads in &[16usize, 1_000, 10_000] {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &n| {
            let mut d = Dispatcher::new(lazy_config());
            populate(&mut d, n);
            let mut now = d.now_us();
            b.iter(|| black_box(span_loop(&mut d, &mut now)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_uncontended, bench_contended);
criterion_main!(benches);
