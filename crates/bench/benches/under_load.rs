//! Criterion bench for the Figure 7 experiment: pulse pipeline plus CPU hog.

use criterion::{criterion_group, criterion_main, Criterion};
use rrs_bench::fig7::{run, Fig7Params};
use rrs_feedback::PulseTrain;
use std::hint::black_box;

fn bench_fig7(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7/under_load");
    group.sample_size(10);
    group.bench_function("pipeline_plus_hog_10s", |b| {
        b.iter(|| {
            let mut params = Fig7Params::default();
            params.base.duration_s = 10.0;
            params.base.pipeline.production_rate =
                PulseTrain::new(2.5e-5, 5.0e-5, vec![(3.0, 5.0)]);
            black_box(run(params))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_fig7);
criterion_main!(benches);
