//! Micro-benchmarks of the individual building blocks: PID update, pressure
//! sampling, squishing and bounded-buffer operations.

use criterion::{criterion_group, criterion_main, Criterion};
use rrs_core::squish::{squish, SquishRequest};
use rrs_core::{squish_weighted, Importance, SquishPolicy};
use rrs_feedback::{PidConfig, PidController};
use rrs_queue::{BoundedBuffer, JobKey, MetricRegistry, Role};
use rrs_scheduler::Proportion;
use std::hint::black_box;
use std::sync::Arc;

fn bench_pid(c: &mut Criterion) {
    c.bench_function("micro/pid_update", |b| {
        let mut pid = PidController::new(PidConfig::default());
        let mut e = 0.3;
        b.iter(|| {
            e = -e;
            black_box(pid.update(e, 0.01))
        });
    });
}

fn bench_registry_pressure(c: &mut Criterion) {
    c.bench_function("micro/registry_summed_pressure", |b| {
        let registry = MetricRegistry::new();
        let queue = Arc::new(BoundedBuffer::<u32>::new("q", 64));
        for i in 0..32 {
            queue.try_push(i).unwrap();
        }
        registry.register(JobKey(1), Role::Consumer, queue.clone());
        registry.register(JobKey(1), Role::Producer, queue);
        b.iter(|| black_box(registry.summed_pressure(JobKey(1))));
    });
}

fn bench_squish(c: &mut Criterion) {
    c.bench_function("micro/squish_weighted_32_jobs", |b| {
        let requests: Vec<SquishRequest> = (0..32)
            .map(|i| {
                SquishRequest::new(Proportion::from_ppt(100 + i * 10))
                    .with_importance(Importance::new(1.0 + i as f64 / 8.0))
            })
            .collect();
        b.iter(|| black_box(squish_weighted(&requests, Proportion::from_ppt(900))));
    });
    c.bench_function("micro/squish_fair_share_32_jobs", |b| {
        let requests: Vec<SquishRequest> = (0..32)
            .map(|i| SquishRequest::new(Proportion::from_ppt(100 + i * 10)))
            .collect();
        b.iter(|| {
            black_box(squish(
                SquishPolicy::FairShare,
                &requests,
                Proportion::from_ppt(900),
            ))
        });
    });
}

fn bench_bounded_buffer(c: &mut Criterion) {
    c.bench_function("micro/bounded_buffer_push_pop", |b| {
        let buf = BoundedBuffer::new("q", 1024);
        b.iter(|| {
            buf.try_push(black_box(1u64)).ok();
            black_box(buf.try_pop())
        });
    });
}

criterion_group!(
    benches,
    bench_pid,
    bench_registry_pressure,
    bench_squish,
    bench_bounded_buffer
);
criterion_main!(benches);
