//! Criterion bench for the Figure 5 experiment: cost of one controller
//! invocation as the number of controlled processes grows, plus the
//! end-to-end overhead measurement at a few process counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rrs_bench::fig5::controller_utilisation;
use rrs_core::{Controller, ControllerConfig, JobId, JobSpec};
use rrs_queue::MetricRegistry;
use std::collections::BTreeMap;
use std::hint::black_box;

fn bench_control_cycle(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5/control_cycle");
    for &jobs in &[1usize, 10, 40] {
        group.bench_with_input(BenchmarkId::from_parameter(jobs), &jobs, |b, &jobs| {
            let registry = MetricRegistry::new();
            let mut controller = Controller::new(ControllerConfig::default(), registry);
            for i in 0..jobs {
                controller
                    .add_job(JobId(i as u64), JobSpec::miscellaneous())
                    .unwrap();
            }
            let usage = BTreeMap::new();
            let mut t = 0.0;
            b.iter(|| {
                t += 0.01;
                black_box(controller.control_cycle(t, &usage));
            });
        });
    }
    group.finish();
}

fn bench_overhead_measurement(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5/simulated_overhead");
    group.sample_size(10);
    for &jobs in &[0usize, 20, 40] {
        group.bench_with_input(BenchmarkId::from_parameter(jobs), &jobs, |b, &jobs| {
            b.iter(|| black_box(controller_utilisation(jobs, 0.5)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_control_cycle, bench_overhead_measurement);
criterion_main!(benches);
