//! Criterion bench for the Figure 5 experiment: cost of one controller
//! invocation as the number of controlled processes grows, plus the
//! end-to-end overhead measurement at a few process counts.
//!
//! The `control_cycle` groups double as the scaling guard for the staged
//! pipeline refactor: the in-place cycle at 10/100/1000 jobs should scale
//! roughly linearly (dense slot-indexed storage, no per-cycle allocation),
//! where the old `BTreeMap`-walking controller degraded super-linearly.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rrs_bench::fig5::controller_utilisation;
use rrs_core::{Controller, ControllerConfig, JobId, JobSpec};
use rrs_queue::MetricRegistry;
use std::collections::BTreeMap;
use std::hint::black_box;

fn controller_with_jobs(jobs: usize) -> Controller {
    let registry = MetricRegistry::new();
    let mut controller = Controller::new(ControllerConfig::default(), registry);
    for i in 0..jobs {
        controller
            .add_job(JobId(i as u64), JobSpec::miscellaneous())
            .unwrap();
    }
    controller
}

/// The steady-state hot path: slot-indexed, allocation-free cycles.
fn bench_control_cycle_in_place(c: &mut Criterion) {
    let mut group = c.benchmark_group("controller/cycle_in_place");
    for &jobs in &[10usize, 100, 1000] {
        group.bench_with_input(BenchmarkId::from_parameter(jobs), &jobs, |b, &jobs| {
            let mut controller = controller_with_jobs(jobs);
            let mut t = 0.0;
            // Warm the scratch buffers so the measurement sees the
            // steady state the zero-allocation test locks in.
            for _ in 0..50 {
                t += 0.01;
                controller.control_cycle_in_place(t);
            }
            b.iter(|| {
                t += 0.01;
                black_box(controller.control_cycle_in_place(t).total_granted_ppt)
            });
        });
    }
    group.finish();
}

/// The compatibility path (map-based usage, owned output) for comparison.
fn bench_control_cycle_compat(c: &mut Criterion) {
    let mut group = c.benchmark_group("controller/cycle_compat");
    for &jobs in &[10usize, 100, 1000] {
        group.bench_with_input(BenchmarkId::from_parameter(jobs), &jobs, |b, &jobs| {
            let mut controller = controller_with_jobs(jobs);
            let usage = BTreeMap::new();
            let mut t = 0.0;
            b.iter(|| {
                t += 0.01;
                black_box(controller.control_cycle(t, &usage));
            });
        });
    }
    group.finish();
}

fn bench_overhead_measurement(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5/simulated_overhead");
    group.sample_size(10);
    for &jobs in &[0usize, 20, 40] {
        group.bench_with_input(BenchmarkId::from_parameter(jobs), &jobs, |b, &jobs| {
            b.iter(|| black_box(controller_utilisation(jobs, 0.5)));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_control_cycle_in_place,
    bench_control_cycle_compat,
    bench_overhead_measurement
);
criterion_main!(benches);
