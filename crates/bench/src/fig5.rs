//! Figure 5: controller overhead vs. number of controlled processes.
//!
//! The paper runs the user-level controller at a 10 ms period over N dummy
//! processes "that consume no CPU but are scheduled, monitored, and
//! controlled" and reports the controller's CPU utilisation as a function of
//! N: a line `y = 0.00066·x + 0.00057` with R² = 0.999 and 2.7 % of the CPU
//! at 40 processes.

use rrs_core::JobSpec;
use rrs_metrics::{linear_fit, ExperimentRecord, TimeSeries};
use rrs_sim::{SimConfig, Simulation};
use rrs_workloads::DummyProcess;

/// Parameters for the overhead sweep.
#[derive(Debug, Clone, Copy)]
pub struct Fig5Params {
    /// Largest number of dummy processes to test.
    pub max_processes: usize,
    /// Step between tested process counts.
    pub step: usize,
    /// Simulated seconds per data point.
    pub seconds_per_point: f64,
}

impl Default for Fig5Params {
    fn default() -> Self {
        Self {
            max_processes: 40,
            step: 5,
            seconds_per_point: 3.0,
        }
    }
}

/// Measures controller utilisation for one process count.
pub fn controller_utilisation(processes: usize, seconds: f64) -> f64 {
    let mut sim = Simulation::new(SimConfig::default());
    for i in 0..processes {
        sim.add_job(
            &format!("dummy{i}"),
            JobSpec::miscellaneous(),
            Box::new(DummyProcess::new()),
        )
        .expect("misc jobs are always admitted");
    }
    sim.run_for(seconds);
    sim.stats().controller_cost_us / sim.now_micros() as f64
}

/// Runs the full sweep and returns the experiment record.
///
/// Scalars: `slope`, `intercept`, `r_squared`, `overhead_at_40` (all in CPU
/// fraction).  Series: `controller overhead` indexed by process count.
pub fn run(params: Fig5Params) -> ExperimentRecord {
    let mut record = ExperimentRecord::new(
        "figure5",
        "Controller overhead (CPU fraction) vs. number of controlled processes, \
         controller period 10 ms",
    );
    let mut series = TimeSeries::new("controller overhead");
    let mut points = Vec::new();
    let mut n = 0usize;
    while n <= params.max_processes {
        let overhead = controller_utilisation(n, params.seconds_per_point);
        series.push(n as f64, overhead);
        points.push((n as f64, overhead));
        n += params.step.max(1);
    }
    if let Some(fit) = linear_fit(&points) {
        record.scalar("slope", fit.slope);
        record.scalar("intercept", fit.intercept);
        record.scalar("r_squared", fit.r_squared);
        record.scalar("overhead_at_40", fit.predict(40.0));
    }
    record.add_series(series);
    record
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_grows_linearly_and_matches_the_paper_scale() {
        let params = Fig5Params {
            max_processes: 20,
            step: 10,
            seconds_per_point: 1.0,
        };
        let record = run(params);
        let slope = record.get_scalar("slope").unwrap();
        let intercept = record.get_scalar("intercept").unwrap();
        let r2 = record.get_scalar("r_squared").unwrap();
        // The paper reports 0.00066 per process and 0.00057 fixed; the
        // reproduction should land in the same decade and be nearly linear.
        assert!((0.0002..0.002).contains(&slope), "slope {slope}");
        assert!((0.0..0.005).contains(&intercept), "intercept {intercept}");
        assert!(r2 > 0.95, "fit should be close to linear, R² = {r2}");
    }

    #[test]
    fn forty_processes_cost_a_few_percent() {
        let overhead = controller_utilisation(40, 1.0);
        assert!(
            (0.01..0.06).contains(&overhead),
            "overhead at 40 processes was {overhead}, paper reports ≈ 0.027"
        );
    }
}
