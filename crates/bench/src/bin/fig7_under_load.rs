//! Regenerates Figure 7: the pulse pipeline competing with a CPU hog.
//!
//! Run with `cargo run -p rrs-bench --release --bin fig7_under_load`.

use rrs_bench::fig7::{run, Fig7Params};
use rrs_bench::{print_report, write_json};

fn main() {
    let record = run(Fig7Params::default());
    print_report(&record);
    println!("Paper: the producer keeps its fixed reservation; the hog and consumer are");
    println!("squished, with the consumer winning allocation from the hog as it falls behind.");
    if let Some(path) = write_json(&record) {
        println!("Wrote {}", path.display());
    }
}
