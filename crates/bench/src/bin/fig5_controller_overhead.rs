//! Regenerates Figure 5: controller overhead vs. number of controlled
//! processes.
//!
//! Run with `cargo run -p rrs-bench --release --bin fig5_controller_overhead`.

use rrs_bench::fig5::{run, Fig5Params};
use rrs_bench::{print_report, write_json};

fn main() {
    let record = run(Fig5Params::default());
    print_report(&record);
    println!("Paper: y = 0.00066x + 0.00057 (R² = 0.999), 2.7 % of the CPU at 40 processes.");
    if let Some(path) = write_json(&record) {
        println!("Wrote {}", path.display());
    }
}
