//! Ablation: controller period (10 ms / 30 ms / 100 ms) vs. responsiveness
//! and overhead.

use rrs_bench::ablations::controller_period;
use rrs_bench::{print_report, write_json};

fn main() {
    let record = controller_period(30.0);
    print_report(&record);
    if let Some(path) = write_json(&record) {
        println!("Wrote {}", path.display());
    }
}
