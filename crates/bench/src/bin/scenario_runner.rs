//! Runs the built-in scenario corpus and writes one JSON report per
//! scenario into `results/`.
//!
//! ```sh
//! cargo run --release --bin scenario_runner              # full corpus
//! cargo run --release --bin scenario_runner -- --smoke   # CI smoke subset
//! cargo run --release --bin scenario_runner -- steady_video hog_storm
//! ```
//!
//! Exits non-zero if any scenario fails an SLO (or an argument names no
//! corpus scenario), so CI can gate on scenario regressions.

use rrs_scenario::{corpus, run_scenario, scenario_by_name, smoke_corpus, ScenarioReport};

fn print_report(report: &ScenarioReport) {
    let verdict = if report.passed { "PASS" } else { "FAIL" };
    println!(
        "[{verdict}] {:<18} {:>5.1} s  {:>2} cpus  jobs +{}/-{}  migrations {}",
        report.scenario,
        report.elapsed_s,
        report.cpus,
        report.jobs.installed + report.jobs.spawned,
        report.jobs.departed,
        report.stats.migrations,
    );
    for slo in &report.slos {
        let mark = if slo.passed { "ok " } else { "FAIL" };
        println!("    {mark} {}", slo.description);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let specs = if args.iter().any(|a| a == "--smoke") {
        smoke_corpus()
    } else if args.is_empty() {
        corpus()
    } else {
        let mut specs = Vec::new();
        for name in &args {
            match scenario_by_name(name) {
                Some(s) => specs.push(s),
                None => {
                    eprintln!("unknown scenario '{name}'; the corpus is:");
                    for s in corpus() {
                        eprintln!("  {}", s.name);
                    }
                    std::process::exit(2);
                }
            }
        }
        specs
    };

    let mut failures = 0;
    for spec in &specs {
        let report = match run_scenario(spec) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("[FAIL] {}: invalid spec: {e}", spec.name);
                failures += 1;
                continue;
            }
        };
        print_report(&report);
        if let Some(path) = rrs_scenario::write_report(&report) {
            println!("    wrote {}", path.display());
        }
        if !report.passed {
            failures += 1;
        }
    }
    println!(
        "\n{} of {} scenarios passed",
        specs.len() - failures,
        specs.len()
    );
    if failures > 0 {
        std::process::exit(1);
    }
}
