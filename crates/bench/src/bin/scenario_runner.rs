//! Runs the built-in scenario corpus and writes one JSON report per
//! scenario into `results/`.
//!
//! ```sh
//! cargo run --release --bin scenario_runner              # full corpus (sim)
//! cargo run --release --bin scenario_runner -- --smoke   # CI smoke subset
//! cargo run --release --bin scenario_runner -- --smoke --time 60
//! cargo run --release --bin scenario_runner -- --smoke --shards 4
//! cargo run --release --bin scenario_runner -- steady_video hog_storm
//! # the same machinery on real OS threads:
//! cargo run --release --bin scenario_runner -- --smoke --backend wall_clock
//! cargo run --release --bin scenario_runner -- --backend wall_clock steady_video
//! ```
//!
//! `--backend wall_clock` selects the wall-clock smoke corpus (short
//! tolerance-band scenarios that spend real seconds); with explicit
//! scenario names it instead re-runs those corpus scenarios on the
//! wall-clock executor.  `--shards N` overrides every selected sim
//! scenario to run on the sharded simulator with `N` shards (clamped to
//! the scenario's CPU count), the CI knob for replaying the corpus on
//! the two-level machine.
//!
//! Exits non-zero if any scenario fails an SLO (or an argument names no
//! corpus scenario), so CI can gate on scenario regressions.  With
//! `--time <seconds>`, also exits non-zero if the whole run exceeds the
//! wall-clock budget — the CI guard against simulator hot paths quietly
//! regressing to their pre-indexed cost.

use rrs_scenario::{
    corpus, run_scenario, scenario_by_name, smoke_corpus, wall_clock_smoke_corpus, Backend,
    ScenarioReport,
};
use std::time::Instant;

fn print_report(report: &ScenarioReport) {
    let verdict = if report.passed { "PASS" } else { "FAIL" };
    println!(
        "[{verdict}] {:<18} {:<10} {:>5.1} s  {:>2} cpus  jobs +{}/-{}  migrations {}",
        report.scenario,
        report.backend.to_string(),
        report.elapsed_s,
        report.cpus,
        report.jobs.installed + report.jobs.spawned,
        report.jobs.departed,
        report.stats.migrations,
    );
    for slo in &report.slos {
        let mark = if slo.passed { "ok " } else { "FAIL" };
        println!("    {mark} {}", slo.description);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut time_budget_s: Option<f64> = None;
    let mut smoke = false;
    let mut backend: Option<Backend> = None;
    let mut shards: Option<usize> = None;
    let mut names: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--backend" => match it.next().map(|v| v.parse::<Backend>()) {
                Some(Ok(b)) => backend = Some(b),
                _ => {
                    eprintln!("--backend needs one of: sim, wall_clock");
                    std::process::exit(2);
                }
            },
            "--shards" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n >= 1 => shards = Some(n),
                _ => {
                    eprintln!("--shards needs a positive shard count");
                    std::process::exit(2);
                }
            },
            "--time" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(s) if s > 0.0 => time_budget_s = Some(s),
                _ => {
                    eprintln!("--time needs a positive number of seconds");
                    std::process::exit(2);
                }
            },
            name => names.push(name.to_string()),
        }
    }
    let mut specs = if !names.is_empty() {
        let mut specs = Vec::new();
        for name in &names {
            match scenario_by_name(name) {
                Some(s) => specs.push(s),
                None => {
                    eprintln!("unknown scenario '{name}'; the corpus is:");
                    for s in corpus().iter().chain(&wall_clock_smoke_corpus()) {
                        eprintln!("  {}", s.name);
                    }
                    std::process::exit(2);
                }
            }
        }
        specs
    } else if backend == Some(Backend::WallClock) {
        // The wall-clock corpus *is* its smoke subset: scenarios there
        // spend real seconds, so the full sim corpus is not replayed.
        wall_clock_smoke_corpus()
    } else if smoke {
        smoke_corpus()
    } else {
        corpus()
    };
    if let Some(b) = backend {
        for spec in &mut specs {
            spec.backend = b;
        }
        for spec in &specs {
            if let Err(e) = spec.validate() {
                eprintln!("{} cannot run on {b}: {e}", spec.name);
                std::process::exit(2);
            }
        }
    }

    if let Some(n) = shards {
        for spec in &mut specs {
            if spec.backend == Backend::Sim {
                spec.shards = n.min(spec.cpus);
            }
        }
    }

    let start = Instant::now();
    let mut failures = 0;
    for spec in &specs {
        let report = match run_scenario(spec) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("[FAIL] {}: invalid spec: {e}", spec.name);
                failures += 1;
                continue;
            }
        };
        print_report(&report);
        if let Some(path) = rrs_scenario::write_report(&report) {
            println!("    wrote {}", path.display());
        }
        if !report.passed {
            failures += 1;
        }
    }
    let elapsed_s = start.elapsed().as_secs_f64();
    println!(
        "\n{} of {} scenarios passed in {elapsed_s:.2} s wall",
        specs.len() - failures,
        specs.len()
    );
    if let Some(budget) = time_budget_s {
        if elapsed_s > budget {
            eprintln!("wall-clock budget exceeded: {elapsed_s:.2} s > {budget:.2} s");
            std::process::exit(3);
        }
    }
    if failures > 0 {
        std::process::exit(1);
    }
}
