//! Ablation: fair-share vs. importance-weighted squishing under overload.

use rrs_bench::ablations::squish_policy;
use rrs_bench::{print_report, write_json};

fn main() {
    let record = squish_policy(15.0);
    print_report(&record);
    if let Some(path) = write_json(&record) {
        println!("Wrote {}", path.display());
    }
}
