//! Regenerates Figure 6: controller responsiveness to a variable-rate
//! producer on an otherwise idle system.
//!
//! Run with `cargo run -p rrs-bench --release --bin fig6_responsiveness`.

use rrs_bench::fig6::{run, Fig6Params};
use rrs_bench::{print_report, write_json};

fn main() {
    let record = run(Fig6Params::default());
    print_report(&record);
    println!("Paper: the controller takes roughly 1/3 s to respond to the doubled rate;");
    println!("the queue fill level returns towards 1/2 after each pulse.");
    if let Some(path) = write_json(&record) {
        println!("Wrote {}", path.display());
    }
}
