//! Ablation: the §3.3 period-estimation heuristic, which the paper disabled
//! for all of its experiments.

use rrs_bench::ablations::period_estimation;
use rrs_bench::{print_report, write_json};

fn main() {
    let record = period_estimation(20.0);
    print_report(&record);
    if let Some(path) = write_json(&record) {
        println!("Wrote {}", path.display());
    }
}
