//! Ablation: bounded-buffer capacity vs. fill-level swing and response time.

use rrs_bench::ablations::buffer_size;
use rrs_bench::{print_report, write_json};

fn main() {
    let record = buffer_size(30.0);
    print_report(&record);
    if let Some(path) = write_json(&record) {
        println!("Wrote {}", path.display());
    }
}
