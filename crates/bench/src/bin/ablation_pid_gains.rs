//! Ablation: P-only vs. PI vs. PID pressure control on the Figure 6 pulse.

use rrs_bench::ablations::pid_gains;
use rrs_bench::{print_report, write_json};

fn main() {
    let record = pid_gains(30.0);
    print_report(&record);
    if let Some(path) = write_json(&record) {
        println!("Wrote {}", path.display());
    }
}
