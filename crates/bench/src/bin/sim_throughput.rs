//! Measures simulator throughput and records it under `results/`.
//!
//! ```sh
//! cargo run --release --bin sim_throughput                      # measure, write results/bench_sim_throughput.json
//! cargo run --release --bin sim_throughput -- --budget-s 2.0
//! cargo run --release --bin sim_throughput -- --save /tmp/before.json       # save a bare report (baseline capture)
//! cargo run --release --bin sim_throughput -- --baseline /tmp/before.json   # embed that report as the before side
//! ```

use rrs_bench::sim_throughput::{measure, record, speedup_at, ThroughputReport};
use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut budget_s = 1.0f64;
    let mut baseline_path: Option<String> = None;
    let mut save_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--budget-s" => {
                budget_s = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--budget-s needs a number"));
            }
            "--baseline" => {
                baseline_path = Some(it.next().cloned().unwrap_or_else(|| {
                    usage("--baseline needs a path");
                }));
            }
            "--save" => {
                save_path = Some(it.next().cloned().unwrap_or_else(|| {
                    usage("--save needs a path");
                }));
            }
            other => usage(&format!("unknown argument '{other}'")),
        }
    }
    if save_path.is_some() && baseline_path.is_some() {
        usage("--save and --baseline are mutually exclusive: save a bare baseline first, then embed it in a second run");
    }

    let report = measure(Duration::from_secs_f64(budget_s), |p| {
        println!(
            "{:>6} jobs x {:>2} cpus: {:>12.0} sim-us/wall-s  ({} steps in {:.2} s)",
            p.jobs, p.cpus, p.sim_us_per_wall_s, p.steps, p.wall_s
        );
    });
    println!(
        "corpus: {} scenarios in {:.2} s wall",
        report.corpus.scenarios, report.corpus.wall_s
    );

    if let Some(path) = save_path {
        let json = serde_json::to_string_pretty(&report).expect("report serialises");
        std::fs::write(&path, json).expect("writable save path");
        println!("saved bare report to {path}");
        return;
    }

    let before: Option<ThroughputReport> = baseline_path.map(|path| {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| usage(&format!("cannot read baseline {path}: {e}")));
        serde_json::from_str(&text)
            .unwrap_or_else(|e| usage(&format!("baseline {path} is not a report: {e}")))
    });
    let rec = record(before, report);
    if let Some(s) = speedup_at(&rec, 10_000, 8) {
        println!("speedup at 10k jobs x 8 cpus: {s:.2}x");
    }
    let dir = std::path::Path::new("results");
    std::fs::create_dir_all(dir).expect("results/ is creatable");
    let path = dir.join(format!("{}.json", rec.id));
    let json = serde_json::to_string_pretty(&rec).expect("record serialises");
    std::fs::write(&path, json).expect("results file is writable");
    println!("wrote {}", path.display());
}

fn usage(err: &str) -> ! {
    eprintln!("error: {err}");
    eprintln!(
        "usage: sim_throughput [--budget-s <seconds>] [--baseline <report.json>] [--save <report.json>]"
    );
    std::process::exit(2);
}
