//! Measures simulator throughput and records it under `results/`.
//!
//! ```sh
//! cargo run --release --bin sim_throughput                      # measure, write results/bench_sim_throughput.json
//! cargo run --release --bin sim_throughput -- --budget-s 2.0
//! cargo run --release --bin sim_throughput -- --save /tmp/before.json       # save a bare report (baseline capture)
//! cargo run --release --bin sim_throughput -- --baseline /tmp/before.json   # embed that report as the before side
//! cargo run --release --bin sim_throughput -- --gate results/bench_sim_throughput.json
//! ```
//!
//! `--gate` is the CI regression gate: it measures a fast subset of the
//! grid (no corpus, short budget) and exits non-zero if any point's
//! throughput dropped more than 20 % below the committed record.

use rrs_bench::sim_throughput::{
    gate_check, measure, measure_point_sharded, normalized_gate_ratios, record, speedup_at,
    ThroughputRecord, ThroughputReport, SHARDED_WARMUP_SIM_S,
};
use std::time::Duration;

/// The fast subset measured by `--gate`: `(jobs, cpus, shards)`.  The
/// cheap end of the grid, the headline 10k-jobs x 8-CPUs point the PR
/// history tracks, the 10k x 64 sweep point that catches dispatch-bound
/// scaling regressions, and the two sharded points — the 8-shard rerun of
/// the hardest unsharded point and the 1024-CPU scale target only the
/// two-level machine completes.
const GATE_POINTS: [(usize, usize, usize); 6] = [
    (100, 1, 1),
    (1_000, 8, 1),
    (10_000, 8, 1),
    (10_000, 64, 1),
    (10_000, 64, 8),
    (100_000, 1_024, 16),
];

/// Maximum tolerated throughput drop per gate point.
const GATE_MAX_DROP: f64 = 0.2;

fn run_gate(path: &str) -> ! {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| usage(&format!("cannot read record {path}: {e}")));
    let rec: ThroughputRecord = serde_json::from_str(&text)
        .unwrap_or_else(|e| usage(&format!("record {path} does not parse: {e}")));
    // Measure with the record's own per-point budget so both sides share
    // a methodology: the 10k-job points carry a long controller
    // settlement transient, and a shorter window would under-read them
    // against the committed record even with zero code change.
    let budget = Duration::from_secs_f64(rec.after.budget_s.max(0.1));
    // Best of two runs per point: throughput noise (cache state, other
    // tenants) only ever slows a run down, so the faster sample is the
    // better estimate of the code's capability.
    let measured: Vec<_> = GATE_POINTS
        .iter()
        .map(|&(jobs, cpus, shards)| {
            // Sharded points warm into steady state first — the same
            // methodology `measure` used for the committed record.
            let warmup = if shards > 1 {
                SHARDED_WARMUP_SIM_S
            } else {
                0.0
            };
            let a = measure_point_sharded(jobs, cpus, shards, warmup, budget);
            let b = measure_point_sharded(jobs, cpus, shards, warmup, budget);
            if b.sim_us_per_wall_s > a.sim_us_per_wall_s {
                b
            } else {
                a
            }
        })
        .collect();
    let outcomes = gate_check(&rec, &measured, GATE_MAX_DROP);
    // Two ways to pass, and a real regression fails both.  The raw ratio
    // clears any point with no absolute drop.  The machine-speed-
    // normalised ratio clears a CI runner that is uniformly slower than
    // the recording machine: every point scales equally, so the common
    // factor cancels.  A scaling regression — one point slowing relative
    // to the others — stays below both thresholds.
    let normalized = normalized_gate_ratios(&outcomes);
    let mut failed = false;
    for (o, n) in outcomes.iter().zip(normalized.iter()) {
        let pass = o.pass || *n >= 1.0 - GATE_MAX_DROP;
        println!(
            "gate {:>6} jobs x {:>4} cpus x {:>2} shards: {:>12.0} vs recorded {:>12.0} sim-us/wall-s ({:.2}x raw, {:.2}x speed-normalised, {:.0} ns/event, {}, {:.4} settles/event) {}",
            o.jobs,
            o.cpus,
            o.shards,
            o.measured,
            o.recorded,
            o.ratio,
            n,
            o.ns_per_event,
            cache_hits(o.cache_hit_rate),
            o.settles_per_event,
            if pass { "ok" } else { "REGRESSED" }
        );
        failed |= !pass;
    }
    if failed {
        eprintln!(
            "throughput gate failed: a point dropped more than {:.0} % relative to the reference point",
            GATE_MAX_DROP * 100.0
        );
        std::process::exit(1);
    }
    println!("throughput gate passed");
    std::process::exit(0);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut budget_s = 1.0f64;
    let mut baseline_path: Option<String> = None;
    let mut save_path: Option<String> = None;
    let mut gate_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--budget-s" => {
                budget_s = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--budget-s needs a number"));
            }
            "--baseline" => {
                baseline_path = Some(it.next().cloned().unwrap_or_else(|| {
                    usage("--baseline needs a path");
                }));
            }
            "--save" => {
                save_path = Some(it.next().cloned().unwrap_or_else(|| {
                    usage("--save needs a path");
                }));
            }
            "--gate" => {
                gate_path = Some(it.next().cloned().unwrap_or_else(|| {
                    usage("--gate needs a path");
                }));
            }
            other => usage(&format!("unknown argument '{other}'")),
        }
    }
    if let Some(path) = gate_path {
        if save_path.is_some() || baseline_path.is_some() {
            usage("--gate runs standalone");
        }
        let _ = budget_s;
        run_gate(&path);
    }
    if save_path.is_some() && baseline_path.is_some() {
        usage("--save and --baseline are mutually exclusive: save a bare baseline first, then embed it in a second run");
    }

    let report = measure(Duration::from_secs_f64(budget_s), |p| {
        println!(
            "{:>6} jobs x {:>4} cpus x {:>2} shards: {:>12.0} sim-us/wall-s  ({} events in {:.2} s, {}, {:.4} settles/event)",
            p.jobs,
            p.cpus,
            p.shard_count(),
            p.sim_us_per_wall_s,
            p.events,
            p.wall_s,
            cache_hits(p.cache_hit_rate),
            p.settles_per_event
        );
    });
    println!(
        "corpus: {} scenarios in {:.2} s wall",
        report.corpus.scenarios, report.corpus.wall_s
    );

    if let Some(path) = save_path {
        let json = serde_json::to_string_pretty(&report).expect("report serialises");
        std::fs::write(&path, json).expect("writable save path");
        println!("saved bare report to {path}");
        return;
    }

    let before: Option<ThroughputReport> = baseline_path.map(|path| {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| usage(&format!("cannot read baseline {path}: {e}")));
        serde_json::from_str(&text)
            .unwrap_or_else(|e| usage(&format!("baseline {path} is not a report: {e}")))
    });
    let rec = record(before, report);
    if let Some(s) = speedup_at(&rec, 10_000, 8, 1) {
        println!("speedup at 10k jobs x 8 cpus: {s:.2}x");
    }
    if let Some(s) = speedup_at(&rec, 10_000, 64, 8) {
        println!("speedup at 10k jobs x 64 cpus x 8 shards: {s:.2}x");
    }
    let dir = std::path::Path::new("results");
    std::fs::create_dir_all(dir).expect("results/ is creatable");
    let path = dir.join(format!("{}.json", rec.id));
    let json = serde_json::to_string_pretty(&rec).expect("record serialises");
    std::fs::write(&path, json).expect("results file is writable");
    println!("wrote {}", path.display());
}

/// Renders a cache-hit-rate for the log: a percentage when measured,
/// `n/a` for points predating the counter.
fn cache_hits(rate: Option<f64>) -> String {
    match rate {
        Some(r) => format!("{:.1} % cache hits", r * 100.0),
        None => "cache hits n/a".to_string(),
    }
}

fn usage(err: &str) -> ! {
    eprintln!("error: {err}");
    eprintln!(
        "usage: sim_throughput [--budget-s <seconds>] [--baseline <report.json>] [--save <report.json>] [--gate <record.json>]"
    );
    std::process::exit(2);
}
