//! Regenerates Figure 8: dispatch overhead vs. dispatcher frequency.
//!
//! Run with `cargo run -p rrs-bench --release --bin fig8_dispatch_overhead`.

use rrs_bench::fig8::{run, Fig8Params};
use rrs_bench::{print_report, write_json};

fn main() {
    let record = run(Fig8Params::default());
    print_report(&record);
    println!("Paper: a knee around 4000 Hz where the overhead reaches about 2.7 %.");
    if let Some(path) = write_json(&record) {
        println!("Wrote {}", path.display());
    }
}
