//! Regenerates Figure 9 (beyond the paper): aggregate throughput vs. CPUs.
//!
//! Run with `cargo run -p rrs-bench --release --bin fig9_multicore_scaling`.

use rrs_bench::fig9::{run, Fig9Params};
use rrs_bench::{print_report, write_json};

fn main() {
    let record = run(Fig9Params::default());
    print_report(&record);
    println!(
        "The machine layer: N per-CPU dispatchers in lockstep, jobs placed by \
         least-loaded fit and rebalanced by threshold-triggered migration."
    );
    if let Some(path) = write_json(&record) {
        println!("Wrote {}", path.display());
    }
}
