//! Simulator throughput sweep: how much simulated time the stack chews
//! through per wall-clock second as the job population grows.
//!
//! The paper's overhead argument (§4.1, Figure 8) is that the scheduling
//! machinery stays cheap because nothing does work unless an event arrived.
//! This sweep is the reproduction's own version of that claim: it runs a
//! saturated machine of adaptive spinners at {100, 1k, 10k} jobs ×
//! {1, 8, 64} CPUs for a fixed wall-clock budget and reports simulated
//! microseconds (and simulation steps) per wall second, plus the wall time
//! of the full scenario corpus.  `results/bench_sim_throughput.json` keeps
//! the recorded before/after numbers so every future PR can check the
//! trajectory.

use rrs_core::{JobSpec, SimTime};
use rrs_sim::{RunResult, ShardConfig, ShardedSim, SimConfig, Simulation, WorkModel};
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// The job-count axis of the sweep.
pub const JOB_COUNTS: [usize; 3] = [100, 1_000, 10_000];
/// The CPU-count axis of the sweep.
pub const CPU_COUNTS: [usize; 3] = [1, 8, 64];
/// The sharded grid points appended after the unsharded sweep:
/// `(jobs, cpus, shards)`.  The first re-runs the sweep's hardest point
/// on the two-level machine (the headline sharding speedup); the second
/// is the 1024-CPU scale target that the one-level simulator cannot
/// reach at all.
pub const SHARDED_POINTS: [(usize, usize, usize); 2] = [(10_000, 64, 8), (100_000, 1_024, 16)];

/// Simulated-seconds warmup applied to the sharded grid points (by both
/// [`measure`] and the gate, so record and re-measurement share a
/// methodology).  The first rebalance chunks after setup run several
/// times slower than steady state (cold caches, first full controller
/// cycles, scratch growth); at the 1024-CPU point the budget only spans
/// a few chunks, so measuring cold turns that startup transient into a
/// coin flip worth 2–3x.  Two chunks of warmup put the whole window in
/// steady state.
pub const SHARDED_WARMUP_SIM_S: f64 = 0.2;

/// A greedy adaptive job: uses every cycle offered, never blocks — the
/// steady-state stressor for dispatch, accounting and controller paths.
struct Spin;

impl WorkModel for Spin {
    fn run(&mut self, _now: u64, quantum_us: u64, _hz: f64) -> RunResult {
        RunResult::ran(quantum_us)
    }
}

/// One measured grid point.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ThroughputPoint {
    /// Number of jobs in the simulation.
    pub jobs: usize,
    /// Number of simulated CPUs.
    pub cpus: usize,
    /// Number of machine shards the CPUs were split into.  `1` (and `0`,
    /// how legacy records predating sharding deserialise) is the plain
    /// unsharded simulator; compare via
    /// [`ThroughputPoint::shard_count`].
    #[serde(default)]
    pub shards: usize,
    /// Wall-clock seconds actually spent stepping (excludes setup).
    pub wall_s: f64,
    /// Simulated microseconds covered within the wall budget.
    pub sim_us: u64,
    /// Simulation events processed within the wall budget (dispatch
    /// rounds under lockstep stepping, calendar events under the default
    /// calendar stepping; deserialises legacy records that called this
    /// field `steps`).
    #[serde(alias = "steps")]
    pub events: u64,
    /// The headline rate: simulated microseconds per wall second.
    pub sim_us_per_wall_s: f64,
    /// Fraction of dispatches in the measured window served by the
    /// next-quantum cache (the zero-lookup fast path).  `None` means the
    /// point predates the counter — "not measured" is distinct from
    /// "measured zero", so gate comparisons and reports never mistake a
    /// legacy placeholder for a cold cache.
    #[serde(default)]
    pub cache_hit_rate: Option<f64>,
    /// Dispatch-span settles per simulation event in the measured window
    /// — how often the hot path had to fall back to a full re-rank
    /// (absent in legacy records).
    #[serde(default)]
    pub settles_per_event: f64,
}

impl ThroughputPoint {
    /// The effective shard count: legacy records (no `shards` field)
    /// normalise to the unsharded machine.
    pub fn shard_count(&self) -> usize {
        self.shards.max(1)
    }
}

/// Wall time of the scenario corpus, the end-to-end workload mix.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CorpusTiming {
    /// Number of scenarios run.
    pub scenarios: usize,
    /// Total wall-clock seconds for the whole corpus.
    pub wall_s: f64,
}

/// One full measurement: the sweep grid plus the corpus timing.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ThroughputReport {
    /// Per-point wall budget used, in seconds.
    pub budget_s: f64,
    /// The measured grid, in sweep order (jobs major, cpus minor).
    pub points: Vec<ThroughputPoint>,
    /// Scenario-corpus wall time.
    pub corpus: CorpusTiming,
}

/// The recorded artifact: a labelled before/after pair so the speedup is
/// part of the repo's history, not a one-off terminal read-out.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ThroughputRecord {
    /// Artifact id (also the results file name).
    pub id: String,
    /// What the numbers mean and how to regenerate them.
    pub notes: String,
    /// Measurement on the pre-optimisation tree, if one was recorded.
    pub before: Option<ThroughputReport>,
    /// Measurement on the current tree.
    pub after: ThroughputReport,
    /// `after / before` throughput ratio per grid point (same order as
    /// `after.points`); empty when there is no baseline.
    pub speedups: Vec<f64>,
}

/// Measures one grid point: `jobs` greedy spinners on `cpus` CPUs, stepped
/// for roughly `budget` of wall time.
///
/// Tracing is effectively disabled (one sample per 1000 simulated seconds)
/// so the measurement targets the steady-state stepping hot path rather
/// than string formatting in the trace recorder.
pub fn measure_point(jobs: usize, cpus: usize, budget: Duration) -> ThroughputPoint {
    measure_point_warm(jobs, cpus, 0.0, budget)
}

/// [`measure_point`] with a steady-state warmup: the simulation first
/// advances `warmup_sim_s` of *simulated* time off the clock, so the
/// measured window excludes the controller's pre-settlement transient
/// (the first few cycles over a large job population are the expensive
/// full recomputes; afterwards the incremental controller goes quiet).
/// The regression gate uses this so a short wall budget still measures
/// the steady state the recorded sweep amortises over a longer budget.
pub fn measure_point_warm(
    jobs: usize,
    cpus: usize,
    warmup_sim_s: f64,
    budget: Duration,
) -> ThroughputPoint {
    let mut sim = Simulation::new(SimConfig::default().with_cpus(cpus));
    sim.set_trace_interval_s(1000.0);
    for i in 0..jobs {
        sim.add_job(&format!("j{i}"), JobSpec::miscellaneous(), Box::new(Spin))
            .expect("miscellaneous jobs are always admitted");
    }
    if warmup_sim_s > 0.0 {
        sim.run_for(warmup_sim_s);
    }
    let t0 = sim.now_micros();
    let events0 = sim.stats().steps;
    let telem0 = sim.telemetry_snapshot();
    let start = Instant::now();
    loop {
        for _ in 0..64 {
            sim.step();
        }
        if start.elapsed() >= budget {
            break;
        }
    }
    let wall_s = start.elapsed().as_secs_f64();
    let sim_us = sim.now_micros() - t0;
    let events = sim.stats().steps - events0;
    let telem = sim.telemetry_snapshot().delta_since(&telem0);
    ThroughputPoint {
        jobs,
        cpus,
        shards: 1,
        wall_s,
        sim_us,
        events,
        sim_us_per_wall_s: sim_us as f64 / wall_s,
        cache_hit_rate: Some(telem.cache_hit_rate),
        settles_per_event: telem.settles_total() as f64 / events.max(1) as f64,
    }
}

/// Measures one grid point on the sharded simulator: `jobs` greedy
/// spinners on `cpus` CPUs split into `shards` shards, advanced in
/// rebalance-interval chunks for roughly `budget` of wall time.  With
/// `shards <= 1` this is exactly [`measure_point_warm`] (the builder
/// mapping: one shard *is* the unsharded simulator).
pub fn measure_point_sharded(
    jobs: usize,
    cpus: usize,
    shards: usize,
    warmup_sim_s: f64,
    budget: Duration,
) -> ThroughputPoint {
    if shards <= 1 {
        return measure_point_warm(jobs, cpus, warmup_sim_s, budget);
    }
    let mut sim = ShardedSim::new(
        SimConfig::default().with_cpus(cpus),
        ShardConfig::default().with_shards(shards),
    );
    sim.set_trace_interval(SimTime::from_secs(1_000));
    for i in 0..jobs {
        sim.add_job(&format!("j{i}"), JobSpec::miscellaneous(), Box::new(Spin))
            .expect("miscellaneous jobs are always admitted");
    }
    if warmup_sim_s > 0.0 {
        sim.run_for(warmup_sim_s);
    }
    let t0 = sim.now_micros();
    let events0 = sim.stats().steps;
    let telem0 = sim.telemetry_snapshot();
    // Advance one rebalance interval at a time: the natural chunk of the
    // two-level machine (shards run independently inside it, the
    // rebalancer runs once at its edge).
    let chunk_s = sim.shard_config().rebalance_interval_s;
    let start = Instant::now();
    loop {
        sim.run_for(chunk_s);
        if start.elapsed() >= budget {
            break;
        }
    }
    let wall_s = start.elapsed().as_secs_f64();
    let sim_us = sim.now_micros() - t0;
    let events = sim.stats().steps - events0;
    let telem = sim.telemetry_snapshot().delta_since(&telem0);
    ThroughputPoint {
        jobs,
        cpus,
        shards,
        wall_s,
        sim_us,
        events,
        sim_us_per_wall_s: sim_us as f64 / wall_s,
        cache_hit_rate: Some(telem.cache_hit_rate),
        settles_per_event: telem.settles_total() as f64 / events.max(1) as f64,
    }
}

/// Runs the full scenario corpus once, timing the wall clock.
pub fn measure_corpus() -> CorpusTiming {
    let specs = rrs_scenario::corpus();
    let start = Instant::now();
    for spec in &specs {
        let report = rrs_scenario::run_scenario(spec).expect("corpus specs are valid");
        assert!(report.passed, "corpus scenario {} failed", report.scenario);
    }
    CorpusTiming {
        scenarios: specs.len(),
        wall_s: start.elapsed().as_secs_f64(),
    }
}

/// Runs the whole sweep (unsharded grid, then the sharded points, then
/// the corpus) with the given per-point budget.
pub fn measure(budget: Duration, mut progress: impl FnMut(&ThroughputPoint)) -> ThroughputReport {
    let mut points = Vec::new();
    for &jobs in &JOB_COUNTS {
        for &cpus in &CPU_COUNTS {
            let p = measure_point(jobs, cpus, budget);
            progress(&p);
            points.push(p);
        }
    }
    for &(jobs, cpus, shards) in &SHARDED_POINTS {
        let p = measure_point_sharded(jobs, cpus, shards, SHARDED_WARMUP_SIM_S, budget);
        progress(&p);
        points.push(p);
    }
    ThroughputReport {
        budget_s: budget.as_secs_f64(),
        points,
        corpus: measure_corpus(),
    }
}

/// Pairs a fresh measurement with an optional baseline into the recorded
/// artifact, computing per-point speedups where the grids line up.
pub fn record(before: Option<ThroughputReport>, after: ThroughputReport) -> ThroughputRecord {
    let speedups = match &before {
        Some(b) => after
            .points
            .iter()
            .zip(&b.points)
            .map(|(a, b)| {
                debug_assert_eq!(
                    (a.jobs, a.cpus, a.shard_count()),
                    (b.jobs, b.cpus, b.shard_count())
                );
                a.sim_us_per_wall_s / b.sim_us_per_wall_s
            })
            .collect(),
        None => Vec::new(),
    };
    ThroughputRecord {
        id: "bench_sim_throughput".to_string(),
        notes: "Simulated microseconds per wall second for a saturated machine of adaptive \
                spinners, plus scenario-corpus wall time. Regenerate with `cargo run --release \
                --bin sim_throughput` (use `--baseline <file>` to embed a previously saved \
                report as the before side)."
            .to_string(),
        before,
        after,
        speedups,
    }
}

/// One grid point of a regression-gate comparison: a fresh measurement
/// against the matching point of the committed record's `after` side.
#[derive(Debug, Clone, Copy)]
pub struct GateOutcome {
    /// Number of jobs at this grid point.
    pub jobs: usize,
    /// Number of simulated CPUs at this grid point.
    pub cpus: usize,
    /// Number of machine shards at this grid point (1 = unsharded).
    pub shards: usize,
    /// Freshly measured rate, in simulated microseconds per wall second.
    pub measured: f64,
    /// The committed record's rate at the same grid point.
    pub recorded: f64,
    /// `measured / recorded`.
    pub ratio: f64,
    /// Wall nanoseconds per simulation event in the fresh measurement —
    /// the per-event cost a CI log can diagnose a failure from directly.
    pub ns_per_event: f64,
    /// Next-quantum cache hit rate of the fresh measurement (`None` if
    /// the measurement predates the counter) — a cheap tell when a
    /// throughput drop comes from the fast path going cold.
    pub cache_hit_rate: Option<f64>,
    /// Dispatch-span settles per event in the fresh measurement — rises
    /// when the hot path starts falling back to full re-ranks.
    pub settles_per_event: f64,
    /// Whether the point is within the allowed drop.
    pub pass: bool,
}

/// Compares fresh measurements against the committed record, flagging any
/// point whose throughput dropped by more than `max_drop` (e.g. `0.2` for
/// a 20 % regression budget).  Points absent from the record are skipped:
/// there is nothing to regress against.
pub fn gate_check(
    rec: &ThroughputRecord,
    measured: &[ThroughputPoint],
    max_drop: f64,
) -> Vec<GateOutcome> {
    measured
        .iter()
        .filter_map(|m| {
            let r = rec.after.points.iter().find(|p| {
                p.jobs == m.jobs && p.cpus == m.cpus && p.shard_count() == m.shard_count()
            })?;
            let ratio = m.sim_us_per_wall_s / r.sim_us_per_wall_s;
            Some(GateOutcome {
                jobs: m.jobs,
                cpus: m.cpus,
                shards: m.shard_count(),
                measured: m.sim_us_per_wall_s,
                recorded: r.sim_us_per_wall_s,
                ratio,
                ns_per_event: m.wall_s * 1e9 / m.events.max(1) as f64,
                cache_hit_rate: m.cache_hit_rate,
                settles_per_event: m.settles_per_event,
                pass: ratio >= 1.0 - max_drop,
            })
        })
        .collect()
}

/// Machine-speed-normalised gate ratios: each outcome's measured/recorded
/// ratio divided by the first outcome's.  The first gate point acts as the
/// speed reference, so a CI runner that is uniformly slower (or faster)
/// than the machine that produced the committed record cancels out, while
/// a *scaling* regression — the large points slowing down relative to the
/// small one — still shows up as a ratio well below 1.
pub fn normalized_gate_ratios(outcomes: &[GateOutcome]) -> Vec<f64> {
    let Some(reference) = outcomes.first().map(|o| o.ratio) else {
        return Vec::new();
    };
    outcomes.iter().map(|o| o.ratio / reference).collect()
}

/// The speedup at one grid point of a record, if both sides were measured.
pub fn speedup_at(rec: &ThroughputRecord, jobs: usize, cpus: usize, shards: usize) -> Option<f64> {
    let idx = rec
        .after
        .points
        .iter()
        .position(|p| p.jobs == jobs && p.cpus == cpus && p.shard_count() == shards.max(1))?;
    rec.speedups.get(idx).copied()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_point_makes_progress() {
        let p = measure_point(3, 1, Duration::from_millis(50));
        assert_eq!(p.jobs, 3);
        assert_eq!(p.shard_count(), 1);
        assert!(p.sim_us > 0, "simulation must advance");
        assert!(p.events > 0);
        assert!(p.sim_us_per_wall_s > 0.0);
        let hit_rate = p
            .cache_hit_rate
            .expect("fresh measurements carry the hit rate");
        assert!(
            (0.0..=1.0).contains(&hit_rate),
            "hit rate is a fraction, got {hit_rate}"
        );
        assert!(p.settles_per_event >= 0.0);
    }

    #[test]
    fn small_sharded_point_makes_progress() {
        let p = measure_point_sharded(8, 4, 2, 0.0, Duration::from_millis(50));
        assert_eq!((p.jobs, p.cpus, p.shards), (8, 4, 2));
        assert!(p.sim_us > 0, "sharded simulation must advance");
        assert!(p.events > 0);
        assert!(p.cache_hit_rate.is_some());
        // shards <= 1 falls through to the unsharded measurement.
        let p1 = measure_point_sharded(3, 1, 1, 0.0, Duration::from_millis(20));
        assert_eq!(p1.shard_count(), 1);
        assert!(p1.sim_us > 0);
    }

    #[test]
    fn record_computes_speedups() {
        let mk = |rate: f64| ThroughputReport {
            budget_s: 0.1,
            points: vec![ThroughputPoint {
                jobs: 10,
                cpus: 1,
                shards: 1,
                wall_s: 0.1,
                sim_us: (rate * 0.1) as u64,
                events: 1,
                sim_us_per_wall_s: rate,
                cache_hit_rate: None,
                settles_per_event: 0.0,
            }],
            corpus: CorpusTiming {
                scenarios: 0,
                wall_s: 0.0,
            },
        };
        let rec = record(Some(mk(100.0)), mk(300.0));
        assert_eq!(rec.speedups, vec![3.0]);
        assert_eq!(speedup_at(&rec, 10, 1, 1), Some(3.0));
        assert_eq!(speedup_at(&rec, 99, 1, 1), None);
        assert_eq!(
            speedup_at(&rec, 10, 1, 8),
            None,
            "shards are part of the identity"
        );
        let solo = record(None, mk(300.0));
        assert!(solo.speedups.is_empty());
    }

    #[test]
    fn gate_flags_only_regressed_points() {
        let point = |jobs, rate| ThroughputPoint {
            jobs,
            cpus: 1,
            shards: 1,
            wall_s: 0.1,
            sim_us: (rate * 0.1) as u64,
            events: 1,
            sim_us_per_wall_s: rate,
            cache_hit_rate: None,
            settles_per_event: 0.0,
        };
        let rec = record(
            None,
            ThroughputReport {
                budget_s: 0.1,
                points: vec![point(10, 100.0), point(20, 100.0)],
                corpus: CorpusTiming {
                    scenarios: 0,
                    wall_s: 0.0,
                },
            },
        );
        // 10 jobs holds (exactly at the 20 % floor), 20 jobs regresses,
        // 30 jobs has no recorded counterpart and is skipped.
        let measured = [point(10, 80.0), point(20, 79.9), point(30, 1.0)];
        let outcomes = gate_check(&rec, &measured, 0.2);
        assert_eq!(outcomes.len(), 2);
        assert!(outcomes[0].pass, "a 20 % drop is within the budget");
        assert!(!outcomes[1].pass, "a >20 % drop must fail the gate");
        assert_eq!(outcomes[1].jobs, 20);
    }

    #[test]
    fn normalised_ratios_cancel_uniform_machine_speed() {
        let o = |ratio| GateOutcome {
            jobs: 1,
            cpus: 1,
            shards: 1,
            measured: ratio,
            recorded: 1.0,
            ratio,
            ns_per_event: 0.0,
            cache_hit_rate: None,
            settles_per_event: 0.0,
            pass: true,
        };
        // A uniformly half-speed machine: every point reads 0.5x, the
        // normalised view reads 1.0 everywhere.
        let uniform = normalized_gate_ratios(&[o(0.5), o(0.5), o(0.5)]);
        assert_eq!(uniform, vec![1.0, 1.0, 1.0]);
        // A scaling regression: the big point collapsed while the
        // reference held.
        let scaled = normalized_gate_ratios(&[o(1.0), o(0.9), o(0.25)]);
        assert_eq!(scaled, vec![1.0, 0.9, 0.25]);
        assert!(normalized_gate_ratios(&[]).is_empty());
    }

    #[test]
    fn legacy_steps_field_still_deserialises() {
        let legacy =
            r#"{"jobs":1,"cpus":1,"wall_s":0.1,"sim_us":5,"steps":7,"sim_us_per_wall_s":50.0}"#;
        let p: ThroughputPoint = serde_json::from_str(legacy).unwrap();
        assert_eq!(p.events, 7);
        assert_eq!(p.shard_count(), 1, "legacy records are unsharded");
        assert_eq!(
            p.cache_hit_rate, None,
            "a record predating the counter is 'not measured', not 'measured zero'"
        );
        // A record that measured an actual zero keeps it.
        let measured_zero = r#"{"jobs":1,"cpus":1,"wall_s":0.1,"sim_us":5,"events":7,"sim_us_per_wall_s":50.0,"cache_hit_rate":0.0}"#;
        let p: ThroughputPoint = serde_json::from_str(measured_zero).unwrap();
        assert_eq!(p.cache_hit_rate, Some(0.0));
    }

    #[test]
    fn gate_matches_points_by_shard_count_too() {
        let point = |shards, rate| ThroughputPoint {
            jobs: 10,
            cpus: 2,
            shards,
            wall_s: 0.1,
            sim_us: (rate * 0.1) as u64,
            events: 1,
            sim_us_per_wall_s: rate,
            cache_hit_rate: None,
            settles_per_event: 0.0,
        };
        let rec = record(
            None,
            ThroughputReport {
                budget_s: 0.1,
                points: vec![point(1, 100.0), point(4, 400.0)],
                corpus: CorpusTiming {
                    scenarios: 0,
                    wall_s: 0.0,
                },
            },
        );
        // The sharded measurement must compare against the sharded record
        // point, not the same-(jobs, cpus) unsharded one.
        let outcomes = gate_check(&rec, &[point(4, 390.0)], 0.2);
        assert_eq!(outcomes.len(), 1);
        assert_eq!(outcomes[0].shards, 4);
        assert_eq!(outcomes[0].recorded, 400.0);
        assert!(outcomes[0].pass);
        // A legacy (shards-absent, deserialised as 0) record point still
        // matches a fresh unsharded measurement.
        let legacy = point(0, 100.0);
        let outcomes = gate_check(&rec, &[legacy], 0.2);
        assert_eq!(outcomes.len(), 1);
        assert_eq!(outcomes[0].shards, 1);
    }
}
