//! Figure 6: controller responsiveness on an otherwise idle system.
//!
//! A producer with a fixed reservation generates rising then falling pulses
//! of production rate (doubling its bytes/cycle); the controller must
//! discover the consumer's allocation so that the consumer's progress rate
//! tracks the producer's, holding the shared queue near half full.  The
//! paper reports a response time of roughly one third of a second.

use rrs_core::ControllerConfig;
use rrs_feedback::{PidConfig, PulseTrain};
use rrs_metrics::ExperimentRecord;
use rrs_sim::{SimConfig, Simulation, SteppingMode, Trace};
use rrs_workloads::{PipelineConfig, PulsePipeline};

/// Parameters for the responsiveness experiment.
#[derive(Debug, Clone)]
pub struct Fig6Params {
    /// Total simulated duration in seconds (the paper plots 40 s).
    pub duration_s: f64,
    /// Pipeline configuration (queue size, rates, pulse schedule).
    pub pipeline: PipelineConfig,
    /// Controller configuration.
    pub controller: ControllerConfig,
}

impl Default for Fig6Params {
    fn default() -> Self {
        Self {
            duration_s: 40.0,
            pipeline: PipelineConfig::default(),
            controller: responsive_controller_config(),
        }
    }
}

/// The controller tuning used for the responsiveness experiments.
///
/// The gains are chosen so that the closed loop over the default pipeline
/// (queue of 40 × 250-byte blocks on a 400 MHz CPU) has a natural frequency
/// of a few rad/s with moderate damping, giving the ≈⅓ s reaction the paper
/// reports.
pub fn responsive_controller_config() -> ControllerConfig {
    ControllerConfig {
        gain_k_ppt: 2000.0,
        pid: PidConfig {
            kp: 5.0,
            ki: 30.0,
            kd: 0.05,
            integral_limit: 1.0,
            output_limit: 0.5,
        },
        ..ControllerConfig::default()
    }
}

/// Runs the Figure 6 scenario and returns the simulation trace plus the
/// producer pulse schedule used.
pub fn run_scenario(params: &Fig6Params) -> (Trace, PulseTrain) {
    let config = SimConfig {
        controller: params.controller,
        trace_interval_s: 0.25,
        // This closed loop is multistable: with exact (lazy) period
        // boundaries the reservation period phase-locks to the controller
        // cycle, the sampled usage ratio pins at 1.0, and the loop settles
        // in a high-allocation fixed point (fill still on target).  The
        // drifting boundaries of the eager reference sweep the sampling
        // phase, catch the partial-usage dips, and keep allocation tracking
        // need — the attractor the paper's response-time figure describes.
        // Pin the reference stepping until usage is sensed over the
        // controller window instead of per period (see ROADMAP).
        stepping: SteppingMode::Lockstep,
        ..SimConfig::default()
    };
    let mut sim = Simulation::new(config);
    let _handles = PulsePipeline::install(&mut sim, params.pipeline.clone());
    sim.run_for(params.duration_s);
    (sim.trace().clone(), params.pipeline.production_rate.clone())
}

/// Runs the experiment and assembles the figure's series and scalars.
///
/// Series: producer and consumer progress rates (bytes/sec), queue fill
/// level, consumer allocation.  Scalars: `response_time_s` (time for the
/// consumer's allocation to reach 90 % of its doubled target after the
/// first pulse), `mean_fill_error` (average deviation of the fill level
/// from ½ over the run).
pub fn run(params: Fig6Params) -> ExperimentRecord {
    let (trace, pulses) = run_scenario(&params);
    let mut record = ExperimentRecord::new(
        "figure6",
        "Controller responsiveness: consumer allocation tracks a pulsed producer rate \
         on an otherwise idle system",
    );

    for name in [
        "rate/producer",
        "rate/consumer",
        "fill/pipeline",
        "alloc/consumer",
    ] {
        if let Some(series) = trace.get(name) {
            record.add_series(series.clone());
        }
    }

    // Response time: first pulse starts at the first pulse's start time; the
    // consumer allocation must double (base consumption needs ≈200 ‰, the
    // pulse needs ≈400 ‰).
    if let (Some(alloc), Some((pulse_start, _))) = (
        trace.get("alloc/consumer"),
        pulses.pulses().first().copied(),
    ) {
        let base = alloc
            .window_mean(pulse_start - 2.0, pulse_start)
            .unwrap_or(200.0);
        let target = base * 1.9;
        if let Some(t) = alloc.first_time_where(pulse_start, |v| v >= target) {
            record.scalar("response_time_s", t - pulse_start);
        }
    }
    if let Some(fill) = trace.get("fill/pipeline") {
        let mean_error =
            fill.values().iter().map(|v| (v - 0.5).abs()).sum::<f64>() / fill.len().max(1) as f64;
        record.scalar("mean_fill_error", mean_error);
        record.scalar("max_fill", fill.summary().max);
        record.scalar("min_fill", fill.summary().min);
    }
    if let (Some(prod), Some(cons)) = (trace.get("rate/producer"), trace.get("rate/consumer")) {
        let p = prod.window_mean(5.0, params.duration_s).unwrap_or(0.0);
        let c = cons.window_mean(5.0, params.duration_s).unwrap_or(0.0);
        record.scalar("mean_producer_rate_bytes_per_s", p);
        record.scalar("mean_consumer_rate_bytes_per_s", c);
        if p > 0.0 {
            record.scalar("throughput_match", c / p);
        }
    }
    record
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_params() -> Fig6Params {
        let mut p = Fig6Params {
            duration_s: 20.0,
            ..Fig6Params::default()
        };
        p.pipeline.production_rate = PulseTrain::new(2.5e-5, 5.0e-5, vec![(5.0, 10.0)]);
        p
    }

    #[test]
    fn consumer_throughput_tracks_producer() {
        let record = run(quick_params());
        let matching = record.get_scalar("throughput_match").unwrap();
        assert!(
            (0.8..1.2).contains(&matching),
            "consumer should match producer throughput, ratio {matching}"
        );
    }

    #[test]
    fn controller_responds_within_about_a_second() {
        let record = run(quick_params());
        let response = record
            .get_scalar("response_time_s")
            .expect("allocation should reach the doubled target");
        // The paper reports ≈ 1/3 s; accept the same order of magnitude on
        // the simulated plant.
        assert!(
            response < 2.0,
            "response time {response} s is far slower than the paper's ≈ 0.33 s"
        );
    }

    #[test]
    fn fill_level_stays_off_the_rails() {
        let record = run(quick_params());
        let max_fill = record.get_scalar("max_fill").unwrap();
        let min_fill = record.get_scalar("min_fill").unwrap();
        assert!(
            max_fill < 1.0,
            "queue should not saturate, max fill {max_fill}"
        );
        assert!(
            min_fill > 0.0,
            "queue should not drain, min fill {min_fill}"
        );
    }
}
