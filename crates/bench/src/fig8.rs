//! Figure 8: dispatch overhead vs. dispatcher frequency.
//!
//! The paper measures "the amount of CPU available to applications by
//! running a program that attempts to use as much CPU as it can" for
//! various time-slice lengths, normalised to a kernel with a 10 ms time
//! slice, and finds a knee around 4000 Hz (250 µs) where the overhead is
//! about 2.7 %.

use rrs_core::JobSpec;
use rrs_metrics::{ExperimentRecord, TimeSeries};
use rrs_scheduler::{DispatcherConfig, Period, Proportion};
use rrs_sim::{SimConfig, Simulation};
use rrs_workloads::CpuHog;

/// Parameters for the dispatch-overhead sweep.
#[derive(Debug, Clone)]
pub struct Fig8Params {
    /// Dispatcher frequencies to test, in Hz.
    pub frequencies_hz: Vec<f64>,
    /// Simulated seconds per data point.
    pub seconds_per_point: f64,
}

impl Default for Fig8Params {
    fn default() -> Self {
        Self {
            frequencies_hz: vec![100.0, 200.0, 500.0, 1000.0, 2000.0, 4000.0, 8000.0, 10000.0],
            seconds_per_point: 2.0,
        }
    }
}

/// Measures the CPU fraction available to a greedy process at one dispatcher
/// frequency.
pub fn available_cpu(frequency_hz: f64, seconds: f64) -> f64 {
    let interval_us = ((1e6 / frequency_hz).round() as u64).max(1);
    let config = SimConfig {
        controller_enabled: false,
        dispatcher: DispatcherConfig {
            dispatch_interval_us: interval_us,
            ..DispatcherConfig::default()
        },
        ..SimConfig::default()
    };
    let mut sim = Simulation::new(config);
    let hog = sim
        .add_job("hog", JobSpec::miscellaneous(), Box::new(CpuHog::new()))
        .expect("misc jobs are always admitted");
    sim.force_reservation(hog, Proportion::from_ppt(1000), Period::from_millis(10));
    sim.run_for(seconds);
    sim.cpu_used_us(hog) as f64 / sim.now_micros() as f64
}

/// Runs the sweep and returns the experiment record.
///
/// The series `available CPU (normalised)` is indexed by dispatcher
/// frequency in Hz and normalised to the lowest tested frequency (the
/// paper normalises to a 10 ms time slice, i.e. 100 Hz).  Scalars include
/// the overhead at 4000 Hz and the knee frequency (first frequency at which
/// more than 2.5 % of the CPU is lost).
pub fn run(params: Fig8Params) -> ExperimentRecord {
    let mut record = ExperimentRecord::new(
        "figure8",
        "CPU available to a greedy user process vs. dispatcher frequency, \
         normalised to the 100 Hz (10 ms time-slice) configuration",
    );
    let mut absolute = TimeSeries::new("available CPU (fraction)");
    for &f in &params.frequencies_hz {
        absolute.push(f, available_cpu(f, params.seconds_per_point));
    }
    let baseline = absolute.first().map(|s| s.value).unwrap_or(1.0).max(1e-9);
    let mut normalised = TimeSeries::new("available CPU (normalised)");
    for (f, v) in absolute.iter() {
        normalised.push(f, v / baseline);
    }

    if let Some(at_4k) = normalised.value_at(4000.0) {
        record.scalar("overhead_at_4000hz", 1.0 - at_4k);
    }
    if let Some(knee) = normalised.first_time_where(0.0, |v| v < 0.975) {
        record.scalar("knee_frequency_hz", knee);
    }
    if let Some(last) = normalised.last() {
        record.scalar("available_at_max_frequency", last.value);
    }
    record.add_series(absolute);
    record.add_series(normalised);
    record
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_params() -> Fig8Params {
        Fig8Params {
            frequencies_hz: vec![100.0, 1000.0, 4000.0, 10000.0],
            seconds_per_point: 1.0,
        }
    }

    #[test]
    fn available_cpu_decreases_with_frequency() {
        let record = run(quick_params());
        let series = &record.series[1];
        let values = series.values();
        assert!(values.windows(2).all(|w| w[1] <= w[0] + 1e-9));
        assert_eq!(values[0], 1.0);
    }

    #[test]
    fn overhead_at_4khz_is_a_few_percent() {
        let record = run(quick_params());
        let overhead = record.get_scalar("overhead_at_4000hz").unwrap();
        assert!(
            (0.01..0.08).contains(&overhead),
            "overhead at 4 kHz was {overhead}, paper reports ≈ 0.027"
        );
    }

    #[test]
    fn hog_gets_nearly_everything_at_100hz() {
        let available = available_cpu(100.0, 1.0);
        assert!(available > 0.97, "available at 100 Hz was {available}");
    }
}
