//! Experiment harness: regenerates every figure of the paper's evaluation.
//!
//! Each `figN` module runs one experiment end to end on the simulator and
//! returns an [`rrs_metrics::ExperimentRecord`] with the same series and
//! headline scalars the paper reports.  The binaries under `src/bin/` print
//! those records (tables, ASCII plots, CSV) and the Criterion benches under
//! `benches/` time them.
//!
//! | module | paper figure | content |
//! |---|---|---|
//! | [`fig5`] | Figure 5 | controller overhead vs. number of controlled processes |
//! | [`fig6`] | Figure 6 | controller responsiveness to a variable-rate producer |
//! | [`fig7`] | Figure 7 | the same pipeline competing with a CPU hog |
//! | [`fig8`] | Figure 8 | dispatch overhead vs. dispatcher frequency |
//! | [`fig9`] | — (beyond the paper) | aggregate throughput vs. number of CPUs (machine layer) |
//! | [`ablations`] | — | design-choice ablations (PID gains, squish policy, controller period, period estimation, buffer size) |
//! | [`sim_throughput`] | — (beyond the paper) | simulator throughput sweep: simulated-us per wall-second over a jobs × CPUs grid, plus scenario-corpus wall time |

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ablations;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod sim_throughput;

use rrs_metrics::plot::{ascii_plot, PlotConfig};
use rrs_metrics::ExperimentRecord;

/// Prints an experiment record as a human-readable report: description,
/// scalar table, then an ASCII plot of each recorded series.
pub fn print_report(record: &ExperimentRecord) {
    println!("== {} ==", record.id);
    println!("{}", record.description);
    println!();
    print!("{}", record.scalar_table());
    println!();
    for series in &record.series {
        println!("{}", ascii_plot(series, PlotConfig::default()));
    }
}

/// Writes the record as JSON next to the current directory under
/// `results/<id>.json`, creating the directory if needed.  Returns the path
/// written, or `None` if the filesystem refused.
pub fn write_json(record: &ExperimentRecord) -> Option<std::path::PathBuf> {
    let dir = std::path::Path::new("results");
    if std::fs::create_dir_all(dir).is_err() {
        return None;
    }
    let path = dir.join(format!("{}.json", record.id));
    std::fs::write(&path, record.to_json()).ok()?;
    Some(path)
}
