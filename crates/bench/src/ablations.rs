//! Ablations of the controller's design choices.
//!
//! The paper calls out several knobs without sweeping them: the PID gains
//! (§3.3), the squish policy and importance weights (§3.3), the controller
//! frequency (§4.3), the period-estimation heuristic (disabled for all
//! experiments, §4), and the interaction between buffer size and jitter
//! (§4).  Each function here sweeps one of them on top of the Figure 6/7
//! scenarios and reports the headline outcome.

use crate::fig6::{responsive_controller_config, run as run_fig6, Fig6Params};
use rrs_core::{ControllerConfig, JobSpec, SquishPolicy};
use rrs_feedback::{PidConfig, PulseTrain};
use rrs_metrics::{ExperimentRecord, TimeSeries};
use rrs_sim::{SimConfig, Simulation};
use rrs_workloads::{CpuHog, PipelineConfig, PulsePipeline};

fn single_pulse_params(duration_s: f64) -> Fig6Params {
    let mut p = Fig6Params {
        duration_s,
        ..Fig6Params::default()
    };
    p.pipeline.production_rate = PulseTrain::new(2.5e-5, 5.0e-5, vec![(5.0, duration_s)]);
    p
}

/// Compares P-only, PI and PID pressure controllers on the Figure 6 pulse.
///
/// Scalars per variant: `<name>_response_s` and `<name>_mean_fill_error`.
pub fn pid_gains(duration_s: f64) -> ExperimentRecord {
    let mut record = ExperimentRecord::new(
        "ablation_pid_gains",
        "Response time and fill-level error for P-only, PI and PID pressure control",
    );
    let base = responsive_controller_config();
    let variants: Vec<(&str, PidConfig)> = vec![
        (
            "p_only",
            PidConfig {
                ki: 0.0,
                kd: 0.0,
                ..base.pid
            },
        ),
        (
            "pi",
            PidConfig {
                kd: 0.0,
                ..base.pid
            },
        ),
        ("pid", base.pid),
    ];
    for (name, pid) in variants {
        let mut params = single_pulse_params(duration_s);
        params.controller = ControllerConfig { pid, ..base };
        let result = run_fig6(params);
        if let Some(r) = result.get_scalar("response_time_s") {
            record.scalar(format!("{name}_response_s"), r);
        }
        if let Some(e) = result.get_scalar("mean_fill_error") {
            record.scalar(format!("{name}_mean_fill_error"), e);
        }
        if let Some(t) = result.get_scalar("throughput_match") {
            record.scalar(format!("{name}_throughput_match"), t);
        }
    }
    record
}

/// Compares fair-share and importance-weighted squishing under overload.
///
/// Two hogs compete, one four times as important as the other; the record
/// reports the mean allocation each receives under each policy.
pub fn squish_policy(duration_s: f64) -> ExperimentRecord {
    let mut record = ExperimentRecord::new(
        "ablation_squish_policy",
        "Allocation split between an important and an unimportant CPU hog under \
         fair-share vs. importance-weighted squishing",
    );
    for (name, policy) in [
        ("fair_share", SquishPolicy::FairShare),
        ("weighted", SquishPolicy::WeightedFairShare),
    ] {
        let controller = ControllerConfig {
            squish_policy: policy,
            ..ControllerConfig::default()
        };
        let config = SimConfig {
            controller,
            ..SimConfig::default()
        };
        let mut sim = Simulation::new(config);
        let important = sim
            .add_job(
                "important",
                JobSpec::miscellaneous().with_importance(rrs_core::Importance::new(4.0)),
                Box::new(CpuHog::new()),
            )
            .expect("misc always admitted");
        let normal = sim
            .add_job(
                "normal",
                JobSpec::miscellaneous().with_importance(rrs_core::Importance::new(1.0)),
                Box::new(CpuHog::new()),
            )
            .expect("misc always admitted");
        sim.run_for(duration_s);
        record.scalar(
            format!("{name}_important_alloc_ppt"),
            sim.current_allocation_ppt(important) as f64,
        );
        record.scalar(
            format!("{name}_normal_alloc_ppt"),
            sim.current_allocation_ppt(normal) as f64,
        );
    }
    record
}

/// Sweeps the controller period (10 ms, 30 ms, 100 ms) on the Figure 6
/// pulse: faster controllers respond sooner but cost more.
pub fn controller_period(duration_s: f64) -> ExperimentRecord {
    let mut record = ExperimentRecord::new(
        "ablation_controller_period",
        "Response time and controller overhead vs. controller period",
    );
    for period_ms in [10.0f64, 30.0, 100.0] {
        let mut params = single_pulse_params(duration_s);
        params.controller = ControllerConfig {
            controller_period_s: period_ms / 1000.0,
            ..responsive_controller_config()
        };
        let config = SimConfig {
            controller: params.controller,
            trace_interval_s: 0.25,
            ..SimConfig::default()
        };
        let mut sim = Simulation::new(config);
        let _ = PulsePipeline::install(&mut sim, params.pipeline.clone());
        sim.run_for(params.duration_s);
        let overhead = sim.stats().controller_cost_us / sim.now_micros() as f64;
        record.scalar(format!("period_{period_ms}ms_overhead"), overhead);

        let result = run_fig6(params);
        if let Some(r) = result.get_scalar("response_time_s") {
            record.scalar(format!("period_{period_ms}ms_response_s"), r);
        }
    }
    record
}

/// Runs the pipeline with the §3.3 period-estimation heuristic enabled and
/// disabled and reports the consumer's final period and fill-level swing.
pub fn period_estimation(duration_s: f64) -> ExperimentRecord {
    let mut record = ExperimentRecord::new(
        "ablation_period_estimation",
        "Effect of the period-estimation heuristic (disabled in the paper's experiments)",
    );
    for (name, enabled) in [("disabled", false), ("enabled", true)] {
        let controller = ControllerConfig {
            period_estimation: enabled,
            ..responsive_controller_config()
        };
        let config = SimConfig {
            controller,
            trace_interval_s: 0.25,
            ..SimConfig::default()
        };
        let mut sim = Simulation::new(config);
        let _ = PulsePipeline::install(&mut sim, PipelineConfig::steady(2.5e-5));
        sim.run_for(duration_s);
        if let Some(period) = sim.trace().get("period/consumer") {
            record.scalar(
                format!("{name}_final_consumer_period_ms"),
                period.last().map(|s| s.value).unwrap_or(0.0),
            );
        }
        if let Some(fill) = sim.trace().get("fill/pipeline") {
            record.scalar(
                format!("{name}_fill_swing"),
                fill.summary().max - fill.summary().min,
            );
        }
    }
    record
}

/// Sweeps the bounded-buffer capacity and reports the fill-level swing and
/// response time: smaller buffers react faster but oscillate more.
pub fn buffer_size(duration_s: f64) -> ExperimentRecord {
    let mut record = ExperimentRecord::new(
        "ablation_buffer_size",
        "Queue capacity vs. fill-level swing and response time on the pulse workload",
    );
    let mut swing_series = TimeSeries::new("fill swing vs capacity");
    for capacity in [10usize, 40, 160] {
        let mut params = single_pulse_params(duration_s);
        params.pipeline.queue_capacity = capacity;
        let result = run_fig6(params);
        if let Some(r) = result.get_scalar("response_time_s") {
            record.scalar(format!("capacity_{capacity}_response_s"), r);
        }
        let swing = result.get_scalar("max_fill").unwrap_or(1.0)
            - result.get_scalar("min_fill").unwrap_or(0.0);
        record.scalar(format!("capacity_{capacity}_fill_swing"), swing);
        swing_series.push(capacity as f64, swing);
    }
    record.add_series(swing_series);
    record
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pid_gains_produces_all_variants() {
        let record = pid_gains(12.0);
        for name in ["p_only", "pi", "pid"] {
            assert!(
                record
                    .get_scalar(&format!("{name}_mean_fill_error"))
                    .is_some(),
                "missing {name}"
            );
        }
    }

    #[test]
    fn weighted_squish_favours_the_important_hog() {
        let record = squish_policy(8.0);
        let w_imp = record.get_scalar("weighted_important_alloc_ppt").unwrap();
        let w_norm = record.get_scalar("weighted_normal_alloc_ppt").unwrap();
        assert!(w_imp > w_norm, "weighted: {w_imp} vs {w_norm}");
        assert!(w_norm > 0.0, "unimportant hog must not starve");
        let f_imp = record.get_scalar("fair_share_important_alloc_ppt").unwrap();
        let f_norm = record.get_scalar("fair_share_normal_alloc_ppt").unwrap();
        // Plain fair share ignores importance: the split is roughly even.
        let ratio = f_imp / f_norm.max(1.0);
        assert!(ratio < 2.0, "fair share should split evenly, ratio {ratio}");
    }

    #[test]
    fn buffer_size_sweep_reports_swings() {
        let record = buffer_size(10.0);
        let small = record.get_scalar("capacity_10_fill_swing").unwrap();
        let large = record.get_scalar("capacity_160_fill_swing").unwrap();
        assert!(
            small >= large,
            "smaller buffers should swing at least as much ({small} vs {large})"
        );
    }
}
