//! Figure 7: controller response under competing load.
//!
//! The Figure 6 pipeline runs together with a CPU hog (a miscellaneous job
//! with no progress metric that tries to consume as much CPU as it can).
//! The total desired allocation exceeds the machine, so the controller must
//! squish the hog and the consumer; the producer is untouched because it
//! holds a reservation.  The consumer effectively wins allocation from the
//! hog because its pressure grows as it falls behind while the hog's
//! pressure is constant.

use crate::fig6::Fig6Params;
use rrs_core::JobSpec;
use rrs_metrics::ExperimentRecord;
use rrs_sim::{SimConfig, Simulation, Trace};
use rrs_workloads::{CpuHog, PulsePipeline};

/// Parameters for the under-load experiment.
#[derive(Debug, Clone, Default)]
pub struct Fig7Params {
    /// The underlying responsiveness scenario.
    pub base: Fig6Params,
}

/// Runs the scenario: pipeline plus hog.
pub fn run_scenario(params: &Fig7Params) -> Trace {
    let config = SimConfig {
        controller: params.base.controller,
        trace_interval_s: 0.25,
        ..SimConfig::default()
    };
    let mut sim = Simulation::new(config);
    let _handles = PulsePipeline::install(&mut sim, params.base.pipeline.clone());
    sim.add_job("hog", JobSpec::miscellaneous(), Box::new(CpuHog::new()))
        .expect("misc jobs are always admitted");
    sim.run_for(params.base.duration_s);
    sim.trace().clone()
}

/// Runs the experiment and assembles the figure's series and scalars.
///
/// Series: consumer, producer and hog allocations (parts per thousand) and
/// the queue fill level.  Scalars: mean allocations in the second half of
/// the run, the throughput match between producer and consumer, and whether
/// the system oversubscribed (`squished`).
pub fn run(params: Fig7Params) -> ExperimentRecord {
    let duration = params.base.duration_s;
    let trace = run_scenario(&params);
    let mut record = ExperimentRecord::new(
        "figure7",
        "Controller response under load: the pulse pipeline competes with a CPU hog; \
         the controller squishes the hog and consumer but not the reserved producer",
    );
    for name in [
        "alloc/consumer",
        "alloc/producer",
        "alloc/hog",
        "rate/producer",
        "rate/consumer",
        "fill/pipeline",
    ] {
        if let Some(series) = trace.get(name) {
            record.add_series(series.clone());
        }
    }
    let half = duration / 2.0;
    for (scalar, series) in [
        ("mean_consumer_alloc_ppt", "alloc/consumer"),
        ("mean_producer_alloc_ppt", "alloc/producer"),
        ("mean_hog_alloc_ppt", "alloc/hog"),
    ] {
        if let Some(s) = trace.get(series) {
            if let Some(mean) = s.window_mean(half, duration) {
                record.scalar(scalar, mean);
            }
        }
    }
    if let (Some(prod), Some(cons)) = (trace.get("rate/producer"), trace.get("rate/consumer")) {
        let p = prod.window_mean(5.0, duration).unwrap_or(0.0);
        let c = cons.window_mean(5.0, duration).unwrap_or(0.0);
        if p > 0.0 {
            record.scalar("throughput_match", c / p);
        }
    }
    // Total allocation must respect the overload threshold.
    if let (Some(c), Some(p), Some(h)) = (
        trace.get("alloc/consumer"),
        trace.get("alloc/producer"),
        trace.get("alloc/hog"),
    ) {
        let total = c.window_mean(half, duration).unwrap_or(0.0)
            + p.window_mean(half, duration).unwrap_or(0.0)
            + h.window_mean(half, duration).unwrap_or(0.0);
        record.scalar("mean_total_alloc_ppt", total);
    }
    record
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fig6::responsive_controller_config;
    use rrs_feedback::PulseTrain;

    fn quick_params() -> Fig7Params {
        let mut p = Fig7Params::default();
        p.base.duration_s = 20.0;
        p.base.pipeline.production_rate = PulseTrain::new(2.5e-5, 5.0e-5, vec![(5.0, 10.0)]);
        p.base.controller = responsive_controller_config();
        p
    }

    #[test]
    fn hog_takes_the_slack_but_consumer_still_tracks_producer() {
        let record = run(quick_params());
        let hog = record.get_scalar("mean_hog_alloc_ppt").unwrap();
        let consumer = record.get_scalar("mean_consumer_alloc_ppt").unwrap();
        let matching = record.get_scalar("throughput_match").unwrap();
        assert!(hog > 100.0, "the hog should get substantial CPU, got {hog}");
        assert!(consumer > 100.0, "consumer got only {consumer}");
        assert!(
            (0.7..1.3).contains(&matching),
            "consumer should still track the producer, ratio {matching}"
        );
    }

    #[test]
    fn producer_reservation_is_untouched() {
        let record = run(quick_params());
        let producer = record.get_scalar("mean_producer_alloc_ppt").unwrap();
        assert!(
            (producer - 200.0).abs() < 1.0,
            "producer allocation should stay at its 200 ‰ reservation, got {producer}"
        );
    }

    #[test]
    fn total_allocation_respects_the_overload_threshold() {
        let record = run(quick_params());
        let total = record.get_scalar("mean_total_alloc_ppt").unwrap();
        assert!(
            total <= 960.0,
            "granted allocations must stay under the 950 ‰ threshold, got {total}"
        );
        assert!(
            total > 700.0,
            "the machine should be nearly fully used, got {total}"
        );
    }
}
