//! Figure 9 (beyond the paper): aggregate throughput vs. number of CPUs.
//!
//! The paper's prototype ran on one 400 MHz CPU; the machine layer
//! generalises the dispatcher to `N` per-CPU run queues behind the same
//! API, with the control pipeline's Place stage spreading jobs by
//! least-loaded fit and threshold-triggered migration.  This experiment
//! measures how the aggregate throughput of a fleet of CPU-bound jobs
//! scales with the CPU count at several fleet sizes: with at least as
//! many jobs as CPUs, delivered work should grow near-linearly in `N`.

use rrs_core::JobSpec;
use rrs_metrics::{ExperimentRecord, TimeSeries};
use rrs_sim::{SimConfig, Simulation};
use rrs_workloads::CpuHog;

/// Parameters for the multicore scaling sweep.
#[derive(Debug, Clone)]
pub struct Fig9Params {
    /// CPU counts to test.
    pub cpu_counts: Vec<usize>,
    /// Fleet sizes (number of concurrent CPU-bound jobs) to test.
    pub job_counts: Vec<usize>,
    /// Simulated seconds per data point.
    pub seconds_per_point: f64,
}

impl Default for Fig9Params {
    fn default() -> Self {
        Self {
            cpu_counts: vec![1, 2, 4, 8],
            job_counts: vec![10, 100, 1000],
            seconds_per_point: 2.0,
        }
    }
}

/// Runs one configuration and returns the aggregate throughput in "CPUs
/// worth of delivered work" (total CPU time consumed by all jobs divided
/// by elapsed simulated time; an ideal `N`-CPU machine yields `N`).
pub fn aggregate_throughput(cpus: usize, jobs: usize, seconds: f64) -> f64 {
    let mut sim = Simulation::new(SimConfig::default().with_cpus(cpus));
    let mut handles = Vec::with_capacity(jobs);
    for i in 0..jobs {
        handles.push(
            sim.add_job(
                &format!("hog{i}"),
                JobSpec::miscellaneous(),
                Box::new(CpuHog::new()),
            )
            .expect("misc jobs are always admitted"),
        );
    }
    sim.run_for(seconds);
    let total_used: u64 = handles.iter().map(|h| sim.cpu_used_us(*h)).sum();
    total_used as f64 / sim.now_micros() as f64
}

/// Runs the sweep and returns the experiment record.
///
/// One series per fleet size (`throughput @ J jobs`, indexed by CPU
/// count), plus scalars `speedup_<J>jobs` — the ratio of the largest to
/// the smallest tested CPU count's throughput — and
/// `efficiency_at_max_cpus_<J>jobs` (speedup divided by the CPU ratio).
pub fn run(params: Fig9Params) -> ExperimentRecord {
    let mut record = ExperimentRecord::new(
        "figure9",
        "Aggregate throughput (CPUs worth of delivered work) vs. number of \
         CPUs, for fleets of CPU-bound jobs placed and migrated by the \
         pipeline's Place stage",
    );
    for &jobs in &params.job_counts {
        let mut series = TimeSeries::new(format!("throughput @ {jobs} jobs"));
        for &cpus in &params.cpu_counts {
            series.push(
                cpus as f64,
                aggregate_throughput(cpus, jobs, params.seconds_per_point),
            );
        }
        if let (Some(first), Some(last)) = (series.first(), series.last()) {
            if first.value > 0.0 && last.time > first.time {
                let speedup = last.value / first.value;
                record.scalar(format!("speedup_{jobs}jobs"), speedup);
                record.scalar(
                    format!("efficiency_at_max_cpus_{jobs}jobs"),
                    speedup / (last.time / first.time),
                );
            }
        }
        record.add_series(series);
    }
    record
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_params() -> Fig9Params {
        Fig9Params {
            cpu_counts: vec![1, 2, 4],
            job_counts: vec![10],
            seconds_per_point: 1.0,
        }
    }

    #[test]
    fn throughput_increases_with_cpu_count() {
        let record = run(quick_params());
        let series = &record.series[0];
        let values = series.values();
        assert_eq!(values.len(), 3);
        assert!(
            values.windows(2).all(|w| w[1] > w[0]),
            "throughput must rise with CPUs: {values:?}"
        );
        let speedup = record.get_scalar("speedup_10jobs").unwrap();
        assert!(
            speedup > 2.0,
            "4 CPUs should at least double 1 CPU, got {speedup}"
        );
    }

    #[test]
    fn single_cpu_throughput_is_at_most_one_cpu() {
        let t = aggregate_throughput(1, 10, 1.0);
        assert!(t <= 1.0, "one CPU cannot deliver {t} CPUs of work");
        assert!(t > 0.5, "hogs should keep one CPU busy, got {t}");
    }

    #[test]
    fn more_cpus_than_jobs_saturates_at_the_job_count() {
        // Two jobs cannot use more than two CPUs however many exist.
        let t = aggregate_throughput(8, 2, 1.0);
        assert!(t <= 2.0 + 1e-9, "got {t}");
    }
}
