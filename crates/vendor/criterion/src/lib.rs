//! A miniature, offline stand-in for `criterion`.
//!
//! Implements the API shape the workspace's benches use — `Criterion`,
//! benchmark groups, `Bencher::iter`, `BenchmarkId`, `black_box` and the
//! `criterion_group!`/`criterion_main!` macros — with plain wall-clock
//! timing and a text report instead of criterion's statistics machinery.
//! Benchmarks still run under `cargo bench` and compile under
//! `cargo test --benches`; the numbers are medians of a handful of timed
//! batches, good enough for the coarse scaling guards this repo keeps.

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for one benchmark case within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Creates an id from a function name and a parameter.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{}/{}", name.into(), parameter))
    }

    /// Creates an id from a parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Drives the timed closure.
pub struct Bencher {
    batches: Vec<Duration>,
    iters_per_batch: u64,
}

impl Bencher {
    fn new() -> Self {
        Self {
            batches: Vec::new(),
            iters_per_batch: 1,
        }
    }

    /// Times `routine`, first calibrating a batch size so one batch takes a
    /// measurable amount of time, then timing a few batches.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibration: grow the batch until it takes at least ~1 ms, capped
        // so slow benchmarks (whole-simulation runs) still finish quickly.
        let mut iters: u64 = 1;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = t0.elapsed();
            if elapsed >= Duration::from_millis(1) || iters >= 1 << 20 {
                // Record the calibration batch as the first sample.
                self.batches.push(elapsed / iters as u32);
                self.iters_per_batch = iters;
                break;
            }
            iters *= 4;
        }
        let samples = if self.batches[0] > Duration::from_millis(200) {
            2
        } else {
            5
        };
        for _ in 0..samples {
            let t0 = Instant::now();
            for _ in 0..self.iters_per_batch {
                black_box(routine());
            }
            self.batches
                .push(t0.elapsed() / self.iters_per_batch as u32);
        }
    }

    fn median(&mut self) -> Duration {
        self.batches.sort();
        self.batches[self.batches.len() / 2]
    }
}

/// The benchmark driver.
pub struct Criterion {
    _sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { _sample_size: 100 }
    }
}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _parent: self,
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the miniature driver picks its own
    /// sample counts.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs a benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), f);
        self
    }

    /// Runs a parameterised benchmark inside the group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, mut f: F) {
    let mut bencher = Bencher::new();
    f(&mut bencher);
    let median = bencher.median();
    println!("bench {name:<50} {:>12.3?}/iter", median);
}

/// Collects benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Generates `main` from group functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut group = c.benchmark_group("grp");
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::from_parameter(3), &3, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.finish();
    }
}
