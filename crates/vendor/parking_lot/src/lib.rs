//! A miniature, offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Provides the non-poisoning `lock()`/`read()`/`write()` API shape of
//! parking_lot on top of the standard library primitives.  Poisoned locks
//! are recovered transparently (parking_lot has no poisoning), so a panic
//! in one thread does not cascade into every later lock acquisition.

use std::sync::{self, PoisonError};
use std::time::{Duration, Instant};

/// A mutex with parking_lot's non-poisoning `lock()` signature.
#[derive(Debug, Default)]
pub struct Mutex<T>(sync::Mutex<T>);

/// RAII guard for [`Mutex`].
///
/// The inner `Option` is always `Some` between acquisitions; it exists only
/// so [`Condvar`] can temporarily take the std guard by value during waits.
pub struct MutexGuard<'a, T>(Option<sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    /// Creates a mutex.
    pub const fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Acquires the mutex, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(PoisonError::into_inner)))
    }

    /// Consumes the mutex and returns the value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard holds the lock")
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard holds the lock")
    }
}

/// A reader-writer lock with parking_lot's non-poisoning API shape.
#[derive(Debug, Default)]
pub struct RwLock<T>(sync::RwLock<T>);

/// Shared-read RAII guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T>(sync::RwLockReadGuard<'a, T>);

/// Exclusive-write RAII guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T>(sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Creates a reader-writer lock.
    pub const fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    /// Acquires a shared read guard, recovering from poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// Acquires an exclusive write guard, recovering from poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(PoisonError::into_inner))
    }
}

impl<T> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// Result of a timed condition-variable wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// `true` if the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable operating on [`MutexGuard`]s in place, like
/// parking_lot's (the guard is passed by `&mut` rather than by value).
#[derive(Debug, Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Creates a condition variable.
    pub const fn new() -> Self {
        Self(sync::Condvar::new())
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }

    /// Blocks until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard holds the lock");
        let inner = self.0.wait(inner).unwrap_or_else(PoisonError::into_inner);
        guard.0 = Some(inner);
    }

    /// Blocks while `condition` holds, up to `timeout`.  Returns whether the
    /// wait timed out with the condition still true.
    pub fn wait_while_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        mut condition: impl FnMut(&mut T) -> bool,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let deadline = Instant::now() + timeout;
        loop {
            if !condition(&mut *guard) {
                return WaitTimeoutResult(false);
            }
            let now = Instant::now();
            if now >= deadline {
                return WaitTimeoutResult(true);
            }
            let inner = guard.0.take().expect("guard holds the lock");
            let (inner, res) = self
                .0
                .wait_timeout(inner, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            guard.0 = Some(inner);
            if res.timed_out() && condition(&mut *guard) {
                return WaitTimeoutResult(true);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_and_rwlock_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        let rw = RwLock::new(5);
        assert_eq!(*rw.read(), 5);
        *rw.write() = 6;
        assert_eq!(*rw.read(), 6);
    }

    #[test]
    fn condvar_wait_while_for_times_out() {
        let m = Mutex::new(0u32);
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_while_for(&mut g, |v| *v == 0, Duration::from_millis(10));
        assert!(res.timed_out());
    }

    #[test]
    fn condvar_wakes_waiter() {
        let m = Arc::new(Mutex::new(false));
        let cv = Arc::new(Condvar::new());
        let (m2, cv2) = (Arc::clone(&m), Arc::clone(&cv));
        let t = std::thread::spawn(move || {
            let mut g = m2.lock();
            let res = cv2.wait_while_for(&mut g, |done| !*done, Duration::from_secs(5));
            assert!(!res.timed_out());
        });
        std::thread::sleep(Duration::from_millis(20));
        *m.lock() = true;
        cv.notify_all();
        t.join().unwrap();
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = Arc::new(Mutex::new(7));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        assert_eq!(*m.lock(), 7);
    }
}
