//! A miniature, offline stand-in for the `serde` crate.
//!
//! The build environment for this repository has no network access, so the
//! real serde cannot be fetched.  This crate implements the small slice of
//! serde's surface the workspace actually uses: the `Serialize` /
//! `Deserialize` traits, the derive macros (re-exported from
//! `serde_derive`), and a self-describing [`Value`] data model that
//! `serde_json` prints and parses.
//!
//! The derive macros generate externally-tagged representations compatible
//! with serde_json's defaults for the shapes this workspace uses: named
//! structs become objects, newtype structs serialise as their inner value,
//! unit enum variants become strings and payload-carrying variants become
//! single-key objects.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::BTreeMap;

/// A JSON-like self-describing value: the data model both traits speak.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(Number),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; insertion order is preserved for stable output.
    Obj(Vec<(String, Value)>),
}

/// A JSON number, kept in its widest lossless representation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// A non-negative integer.
    U(u64),
    /// A negative integer.
    I(i64),
    /// A floating-point number.
    F(f64),
}

impl Number {
    /// The number as `f64` (always possible, possibly lossy).
    pub fn as_f64(self) -> f64 {
        match self {
            Number::U(u) => u as f64,
            Number::I(i) => i as f64,
            Number::F(f) => f,
        }
    }

    /// The number as `u64` if it is a non-negative integer.
    pub fn as_u64(self) -> Option<u64> {
        match self {
            Number::U(u) => Some(u),
            Number::I(i) if i >= 0 => Some(i as u64),
            Number::F(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => Some(f as u64),
            _ => None,
        }
    }

    /// The number as `i64` if it is an integer in range.
    pub fn as_i64(self) -> Option<i64> {
        match self {
            Number::U(u) => i64::try_from(u).ok(),
            Number::I(i) => Some(i),
            Number::F(f) if f.fract() == 0.0 && f.abs() <= i64::MAX as f64 => Some(f as i64),
            _ => None,
        }
    }
}

/// Deserialisation error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// An error stating what was expected.
    pub fn expected(what: &str) -> Self {
        DeError(format!("expected {what}"))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deserialisation error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

static NULL: Value = Value::Null;

impl Value {
    /// Views the value as an object.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(o) => Some(o),
            _ => None,
        }
    }

    /// Views the value as an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// Looks up a field of an object, yielding `Null` when absent.
    pub fn field(&self, name: &str) -> &Value {
        match self {
            Value::Obj(o) => o
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

/// Serialise `self` into the [`Value`] data model.
pub trait Serialize {
    /// Converts to a self-describing value.
    fn to_value(&self) -> Value;
}

/// Reconstruct `Self` from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Parses from a self-describing value.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// `Value` round-trips through itself, so callers can parse arbitrary JSON
// structurally (e.g. validating an exported trace) without a typed schema.
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Num(Number::U(*self as u64)) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Num(n) => n
                        .as_u64()
                        .and_then(|u| <$t>::try_from(u).ok())
                        .ok_or_else(|| DeError::expected(stringify!($t))),
                    _ => Err(DeError::expected(stringify!($t))),
                }
            }
        }
    )*};
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let i = *self as i64;
                if i >= 0 { Value::Num(Number::U(i as u64)) } else { Value::Num(Number::I(i)) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Num(n) => n
                        .as_i64()
                        .and_then(|i| <$t>::try_from(i).ok())
                        .ok_or_else(|| DeError::expected(stringify!($t))),
                    _ => Err(DeError::expected(stringify!($t))),
                }
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);
impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Num(Number::F(*self as f64)) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Num(n) => Ok(n.as_f64() as $t),
                    _ => Err(DeError::expected(stringify!($t))),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::expected("bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError::expected("string")),
        }
    }
}

impl Serialize for &str {
    fn to_value(&self) -> Value {
        Value::Str((*self).to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_arr()
            .ok_or_else(|| DeError::expected("array"))?
            .iter()
            .map(Deserialize::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for std::collections::VecDeque<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_arr()
            .ok_or_else(|| DeError::expected("array"))?
            .iter()
            .map(Deserialize::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Arr(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let a = v.as_arr().ok_or_else(|| DeError::expected("2-tuple"))?;
        if a.len() != 2 {
            return Err(DeError::expected("2-tuple"));
        }
        Ok((A::from_value(&a[0])?, B::from_value(&a[1])?))
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Obj(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_obj()
            .ok_or_else(|| DeError::expected("object"))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}
