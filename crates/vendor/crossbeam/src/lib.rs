//! A miniature, offline stand-in for the slice of `crossbeam` this
//! workspace uses: bounded channels, backed by `std::sync::mpsc`.

/// Multi-producer channels with crossbeam's API shape.
pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    /// The sending half of a bounded channel.  Cloneable.
    pub struct Sender<T>(mpsc::SyncSender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Blocks until the message is enqueued (or all receivers are gone).
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.0.send(msg)
        }
    }

    /// The receiving half of a bounded channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocks until a message arrives (or all senders are gone).
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }

        /// Receive with a timeout.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout)
        }
    }

    /// Creates a bounded channel with the given capacity.
    pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(capacity);
        (Sender(tx), Receiver(rx))
    }
}

#[cfg(test)]
mod tests {
    use super::channel;
    use std::time::Duration;

    #[test]
    fn bounded_send_recv() {
        let (tx, rx) = channel::bounded(2);
        tx.send(1).unwrap();
        tx.clone().send(2).unwrap();
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.try_recv().unwrap(), 2);
        assert!(rx.try_recv().is_err());
        assert!(rx.recv_timeout(Duration::from_millis(5)).is_err());
    }
}
