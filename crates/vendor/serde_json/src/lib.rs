//! A miniature, offline stand-in for `serde_json`.
//!
//! Prints and parses the [`serde::Value`] data model of the vendored
//! miniature serde.  Covers the workspace's needs: `to_string`,
//! `to_string_pretty` and `from_str` with round-trip fidelity for the
//! derived types (numbers use Rust's shortest-round-trip float formatting).

use serde::{Deserialize, Number, Serialize, Value};

/// JSON serialisation/deserialisation error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.0)
    }
}

/// Serialises a value as compact JSON.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialises a value as human-readable, indented JSON.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses a value from JSON text.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing input at byte {}", p.pos)));
    }
    Ok(T::from_value(&v)?)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Num(n) => write_number(out, *n),
        Value::Str(s) => write_string(out, s),
        Value::Arr(items) => write_seq(out, items.iter(), indent, depth, ('[', ']'), write_value),
        Value::Obj(entries) => write_seq(
            out,
            entries.iter(),
            indent,
            depth,
            ('{', '}'),
            |o, (k, x), i, d| {
                write_string(o, k);
                o.push(':');
                if i.is_some() {
                    o.push(' ');
                }
                write_value(o, x, i, d);
            },
        ),
    }
}

fn write_seq<I, F>(
    out: &mut String,
    items: I,
    indent: Option<usize>,
    depth: usize,
    brackets: (char, char),
    mut write_item: F,
) where
    I: ExactSizeIterator,
    F: FnMut(&mut String, I::Item, Option<usize>, usize),
{
    out.push(brackets.0);
    let n = items.len();
    for (i, item) in items.enumerate() {
        if let Some(step) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', step * (depth + 1)));
        }
        write_item(out, item, indent, depth + 1);
        if i + 1 < n {
            out.push(',');
        }
    }
    if n > 0 {
        if let Some(step) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', step * depth));
        }
    }
    out.push(brackets.1);
}

fn write_number(out: &mut String, n: Number) {
    match n {
        Number::U(u) => out.push_str(&u.to_string()),
        Number::I(i) => out.push_str(&i.to_string()),
        Number::F(f) => {
            if f.is_finite() {
                // `{}` is Rust's shortest round-trip formatting; make sure a
                // decimal point survives so the value re-parses as a float.
                let s = f.to_string();
                out.push_str(&s);
                if !s.contains('.') && !s.contains('e') && !s.contains('E') {
                    out.push_str(".0");
                }
            } else {
                // JSON has no NaN/Infinity; mirror serde_json's `null`.
                out.push_str("null");
            }
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => {
                self.eat(b'[')?;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Arr(items));
                        }
                        _ => return Err(Error::new(format!("bad array at byte {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.eat(b'{')?;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Obj(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.eat(b':')?;
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Obj(entries));
                        }
                        _ => return Err(Error::new(format!("bad object at byte {}", self.pos))),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error::new("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("bad number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Num(Number::U(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Num(Number::I(i)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Num(Number::F(f)))
            .map_err(|_| Error::new(format!("bad number '{text}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars_and_collections() {
        let v: Vec<f64> = from_str("[1.5, 0.00066, -2.0]").unwrap();
        assert_eq!(v, vec![1.5, 0.00066, -2.0]);
        let s = to_string(&v).unwrap();
        let back: Vec<f64> = from_str(&s).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "a \"b\"\n\\c".to_string();
        let json = to_string(&s).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn pretty_output_is_indented_and_reparses() {
        let v: Vec<u64> = vec![1, 2];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        let back: Vec<u64> = from_str(&pretty).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn option_round_trip() {
        let some: Option<u32> = from_str("7").unwrap();
        assert_eq!(some, Some(7));
        let none: Option<u32> = from_str("null").unwrap();
        assert_eq!(none, None);
    }
}
