//! A miniature, offline stand-in for `proptest`.
//!
//! Implements the slice of proptest this workspace uses: range strategies
//! over integers and floats, `proptest::collection::vec`, tuple strategies,
//! and the `proptest!` / `prop_assert!` / `prop_assert_eq!` /
//! `prop_assume!` macros.  Sampling is deterministic (seeded per test from
//! the test name) and endpoint-biased: the first cases of every range lean
//! on the range boundaries, which is where this repo's invariants break
//! when they break.  There is no shrinking — failures print the sampled
//! inputs via the panic message instead.

use std::ops::{Range, RangeInclusive};

/// Number of cases each `proptest!` test executes.
pub const CASES: u32 = 128;

/// Deterministic split-mix RNG used for sampling.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
    /// Index of the current case, used for endpoint biasing.
    pub case: u32,
}

impl TestRng {
    /// Seeds the generator from a test name.
    pub fn from_name(name: &str) -> Self {
        let mut seed: u64 = 0x9E37_79B9_7F4A_7C15;
        for b in name.bytes() {
            seed = seed.wrapping_mul(0x100_0000_01B3).wrapping_add(b as u64);
        }
        Self {
            state: seed,
            case: 0,
        }
    }

    /// Advances and returns 64 pseudo-random bits (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Whether this case should favour a range endpoint.  The first few
    /// cases hit the boundaries deterministically.
    pub fn endpoint_bias(&mut self) -> Option<bool> {
        match self.case {
            0 => Some(false),
            1 => Some(true),
            _ => {
                if self.next_u64().is_multiple_of(16) {
                    Some(self.next_u64().is_multiple_of(2))
                } else {
                    None
                }
            }
        }
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The type of values produced.
    type Value;
    /// Samples one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u128;
                match rng.endpoint_bias() {
                    Some(false) => self.start,
                    Some(true) => self.end - 1,
                    None => self.start + (rng.next_u64() as u128 % span) as $t,
                }
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u128 + 1;
                match rng.endpoint_bias() {
                    Some(false) => lo,
                    Some(true) => hi,
                    None => lo + (rng.next_u64() as u128 % span) as $t,
                }
            }
        }
    )*};
}

int_strategies!(u8, u16, u32, u64, usize);

macro_rules! signed_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                match rng.endpoint_bias() {
                    Some(false) => self.start,
                    Some(true) => self.end - 1,
                    None => {
                        (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                    }
                }
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                match rng.endpoint_bias() {
                    Some(false) => lo,
                    Some(true) => hi,
                    None => (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t,
                }
            }
        }
    )*};
}

signed_strategies!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        match rng.endpoint_bias() {
            Some(false) => self.start,
            // Stay strictly inside the half-open range.
            Some(true) => self.start + (self.end - self.start) * (1.0 - 1e-9),
            None => self.start + (self.end - self.start) * rng.unit_f64(),
        }
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        let r = (self.start as f64)..(self.end as f64);
        r.sample(rng) as f32
    }
}

macro_rules! tuple_strategies {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}

tuple_strategies!(
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
);

/// Boolean strategies.
pub mod bool {
    use super::{Strategy, TestRng};

    /// Strategy producing both boolean values.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Samples `true` and `false` with equal probability.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64().is_multiple_of(2)
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Describes how many elements a generated collection may have.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Creates a strategy for vectors with lengths in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.hi - self.size.lo + 1;
            let len = self.size.lo + (rng.next_u64() as usize % span);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything a `proptest!` test body needs in scope.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest, Strategy, TestRng};
}

/// Defines deterministic property tests.
///
/// Each generated `#[test]` runs [`CASES`] sampled cases of the body.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$attr:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$attr])*
        fn $name() {
            let mut rng = $crate::TestRng::from_name(stringify!($name));
            for case in 0..$crate::CASES {
                rng.case = case;
                $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                // Inlined so `prop_assume!` can `continue` to the next case.
                $body
            }
        }
    )*};
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Skips the current case when its sampled inputs are uninteresting.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(
            x in 3u32..10,
            y in 0.5f64..2.0,
            v in collection::vec(1u64..100, 0..8),
            pair in (0u64..10, 0u64..5),
        ) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.5..2.0).contains(&y));
            prop_assert!(v.len() < 8);
            for e in &v {
                prop_assert!((1..100).contains(e));
            }
            prop_assert!(pair.0 < 10 && pair.1 < 5);
        }

        #[test]
        fn assume_skips_cases(x in 0u32..4) {
            prop_assume!(x != 0);
            prop_assert!(x > 0);
        }
    }

    #[test]
    fn endpoints_are_hit() {
        let mut rng = TestRng::from_name("endpoints");
        let mut saw_lo = false;
        let mut saw_hi = false;
        for case in 0..32 {
            rng.case = case;
            let v = (5u32..=9).sample(&mut rng);
            saw_lo |= v == 5;
            saw_hi |= v == 9;
        }
        assert!(saw_lo && saw_hi);
    }
}
