//! Derive macros for the vendored miniature serde.
//!
//! Supports the item shapes this workspace derives on: structs with named
//! fields, tuple structs, unit structs, and enums whose variants are unit,
//! newtype/tuple or struct-like.  Generics are not supported.  The
//! `#[serde(...)]` attributes understood, on a named struct field, are:
//!
//! * `#[serde(default)]` — a missing (or `null`) field deserialises to the
//!   field type's `Default` instead of erroring, which keeps old
//!   serialised data readable when a struct grows a field.
//! * `#[serde(alias = "old_name")]` — the field also deserialises from
//!   `old_name`, which keeps old serialised data readable when a field is
//!   renamed.  Serialisation always writes the current name; several
//!   aliases may be given.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Shape {
    NamedStruct {
        name: String,
        fields: Vec<NamedField>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

#[derive(Debug)]
struct NamedField {
    name: String,
    /// `#[serde(default)]`: tolerate a missing field on deserialisation.
    default: bool,
    /// `#[serde(alias = "...")]`: extra accepted names on deserialisation.
    aliases: Vec<String>,
}

#[derive(Debug)]
enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    kind: VariantKind,
}

/// Consumes leading attributes (`#[...]` / `#![...]`) from the cursor.
fn skip_attributes(toks: &[TokenTree], mut i: usize) -> usize {
    while i < toks.len() {
        match &toks[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                i += 1;
                if i < toks.len() {
                    if let TokenTree::Punct(p2) = &toks[i] {
                        if p2.as_char() == '!' {
                            i += 1;
                        }
                    }
                }
                match toks.get(i) {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => i += 1,
                    _ => panic!("malformed attribute in derive input"),
                }
            }
            _ => break,
        }
    }
    i
}

/// Consumes a visibility qualifier (`pub`, `pub(crate)`, ...).
fn skip_visibility(toks: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = toks.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = toks.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Splits the tokens of a brace/paren group body on top-level commas.
fn split_top_level_commas(toks: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut current = Vec::new();
    let mut depth = 0i32;
    for t in toks {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                depth += 1;
                current.push(t.clone());
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                depth -= 1;
                current.push(t.clone());
            }
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                out.push(std::mem::take(&mut current));
            }
            _ => current.push(t.clone()),
        }
    }
    if !current.is_empty() {
        out.push(current);
    }
    out
}

/// Parses one named field declaration, returning the field name.
fn field_name(toks: &[TokenTree]) -> Option<String> {
    let i = skip_attributes(toks, 0);
    let i = skip_visibility(toks, i);
    match toks.get(i) {
        Some(TokenTree::Ident(id)) => Some(id.to_string()),
        _ => None,
    }
}

/// Parses the field's leading attributes for the supported
/// `#[serde(...)]` arguments: `default` and `alias = "..."`.
fn field_serde_attrs(toks: &[TokenTree]) -> (bool, Vec<String>) {
    let mut default = false;
    let mut aliases = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        match &toks[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                i += 1;
                let Some(TokenTree::Group(g)) = toks.get(i) else {
                    break;
                };
                if g.delimiter() != Delimiter::Bracket {
                    break;
                }
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                if let (Some(TokenTree::Ident(id)), Some(TokenTree::Group(args))) =
                    (inner.first(), inner.get(1))
                {
                    if id.to_string() == "serde" {
                        let args: Vec<TokenTree> = args.stream().into_iter().collect();
                        let mut j = 0;
                        while j < args.len() {
                            match &args[j] {
                                TokenTree::Ident(a) if a.to_string() == "default" => default = true,
                                TokenTree::Ident(a) if a.to_string() == "alias" => {
                                    // `alias = "name"` — the literal keeps its
                                    // surrounding quotes in token form.
                                    if let (
                                        Some(TokenTree::Punct(eq)),
                                        Some(TokenTree::Literal(lit)),
                                    ) = (args.get(j + 1), args.get(j + 2))
                                    {
                                        if eq.as_char() == '=' {
                                            let text = lit.to_string();
                                            aliases.push(text.trim_matches('"').to_string());
                                            j += 2;
                                        }
                                    }
                                }
                                _ => {}
                            }
                            j += 1;
                        }
                    }
                }
                i += 1;
            }
            _ => break,
        }
    }
    (default, aliases)
}

/// Parses one named struct field declaration (name plus attributes).
fn named_field(toks: &[TokenTree]) -> Option<NamedField> {
    let (default, aliases) = field_serde_attrs(toks);
    Some(NamedField {
        name: field_name(toks)?,
        default,
        aliases,
    })
}

fn parse_shape(input: TokenStream) -> Shape {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attributes(&toks, 0);
    i = skip_visibility(&toks, i);

    let kind = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected struct/enum, found {other}"),
    };
    i += 1;
    let name = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected type name, found {other}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = toks.get(i) {
        if p.as_char() == '<' {
            panic!("the vendored serde derive does not support generic types ({name})");
        }
    }

    if kind == "struct" {
        match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let body: Vec<TokenTree> = g.stream().into_iter().collect();
                let fields = split_top_level_commas(&body)
                    .iter()
                    .filter_map(|f| named_field(f))
                    .collect();
                Shape::NamedStruct { name, fields }
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let body: Vec<TokenTree> = g.stream().into_iter().collect();
                let arity = split_top_level_commas(&body).len();
                Shape::TupleStruct { name, arity }
            }
            _ => Shape::UnitStruct { name },
        }
    } else if kind == "enum" {
        let Some(TokenTree::Group(g)) = toks.get(i) else {
            panic!("expected enum body for {name}");
        };
        let body: Vec<TokenTree> = g.stream().into_iter().collect();
        let variants = split_top_level_commas(&body)
            .iter()
            .filter(|v| !v.is_empty())
            .map(|v| {
                let j = skip_attributes(v, 0);
                let vname = match v.get(j) {
                    Some(TokenTree::Ident(id)) => id.to_string(),
                    other => panic!("expected variant name in {name}, found {other:?}"),
                };
                let kind = match v.get(j + 1) {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                        VariantKind::Tuple(split_top_level_commas(&inner).len())
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                        VariantKind::Named(
                            split_top_level_commas(&inner)
                                .iter()
                                .filter_map(|f| field_name(f))
                                .collect(),
                        )
                    }
                    _ => VariantKind::Unit,
                };
                Variant { name: vname, kind }
            })
            .collect();
        Shape::Enum { name, variants }
    } else {
        panic!("derive target must be a struct or enum, found {kind}");
    }
}

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = parse_shape(input);
    let code = match &shape {
        Shape::NamedStruct { name, fields } => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    let f = &f.name;
                    format!(
                        "obj.push((\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f})));"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         let mut obj: Vec<(String, ::serde::Value)> = Vec::new();\n\
                         {pushes}\n\
                         ::serde::Value::Obj(obj)\n\
                     }}\n\
                 }}"
            )
        }
        Shape::TupleStruct { name, arity: 1 } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{ ::serde::Serialize::to_value(&self.0) }}\n\
             }}"
        ),
        Shape::TupleStruct { name, arity } => {
            let items: String = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i}),"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ ::serde::Value::Arr(vec![{items}]) }}\n\
                 }}"
            )
        }
        Shape::UnitStruct { name } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{ ::serde::Value::Null }}\n\
             }}"
        ),
        Shape::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_string()),"
                        ),
                        VariantKind::Tuple(1) => format!(
                            "{name}::{vn}(x0) => ::serde::Value::Obj(vec![(\"{vn}\".to_string(), ::serde::Serialize::to_value(x0))]),"
                        ),
                        VariantKind::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                            let items: String = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b}),"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::Value::Obj(vec![(\"{vn}\".to_string(), ::serde::Value::Arr(vec![{items}]))]),",
                                binds.join(", ")
                            )
                        }
                        VariantKind::Named(fields) => {
                            let binds = fields.join(", ");
                            let pushes: String = fields
                                .iter()
                                .map(|f| format!(
                                    "obj.push((\"{f}\".to_string(), ::serde::Serialize::to_value({f})));"
                                ))
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => {{\n\
                                     let mut obj: Vec<(String, ::serde::Value)> = Vec::new();\n\
                                     {pushes}\n\
                                     ::serde::Value::Obj(vec![(\"{vn}\".to_string(), ::serde::Value::Obj(obj))])\n\
                                 }},"
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = parse_shape(input);
    let code = match &shape {
        Shape::NamedStruct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    let (name, default, aliases) = (&f.name, f.default, &f.aliases);
                    // A missing field reads as `Value::Null`; aliases are
                    // consulted in declaration order before concluding the
                    // field is absent.
                    let fallbacks: String = aliases
                        .iter()
                        .map(|a| {
                            format!(
                                "if matches!(__v, ::serde::Value::Null) {{ __v = v.field(\"{a}\"); }}\n"
                            )
                        })
                        .collect();
                    let tail = if default {
                        "match __v {\n\
                             ::serde::Value::Null => ::std::default::Default::default(),\n\
                             other => ::serde::Deserialize::from_value(other)?,\n\
                         }"
                    } else {
                        "::serde::Deserialize::from_value(__v)?"
                    };
                    format!(
                        "{name}: {{\n\
                             let mut __v = v.field(\"{name}\");\n\
                             {fallbacks}\
                             let _ = &mut __v;\n\
                             {tail}\n\
                         }},"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
                         if v.as_obj().is_none() {{ return Err(::serde::DeError::expected(\"object for {name}\")); }}\n\
                         Ok(Self {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Shape::TupleStruct { name, arity: 1 } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
                     Ok(Self(::serde::Deserialize::from_value(v)?))\n\
                 }}\n\
             }}"
        ),
        Shape::TupleStruct { name, arity } => {
            let items: String = (0..*arity)
                .map(|i| format!("::serde::Deserialize::from_value(&a[{i}])?,"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
                         let a = v.as_arr().ok_or_else(|| ::serde::DeError::expected(\"array for {name}\"))?;\n\
                         if a.len() != {arity} {{ return Err(::serde::DeError::expected(\"{arity} elements\")); }}\n\
                         Ok(Self({items}))\n\
                     }}\n\
                 }}"
            )
        }
        Shape::UnitStruct { name } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(_v: &::serde::Value) -> Result<Self, ::serde::DeError> {{ Ok(Self) }}\n\
             }}"
        ),
        Shape::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| format!("\"{0}\" => return Ok({name}::{0}),", v.name))
                .collect();
            let keyed_arms: String = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Tuple(1) => Some(format!(
                            "\"{vn}\" => return Ok({name}::{vn}(::serde::Deserialize::from_value(payload)?)),"
                        )),
                        VariantKind::Tuple(n) => {
                            let items: String = (0..*n)
                                .map(|i| format!("::serde::Deserialize::from_value(&a[{i}])?,"))
                                .collect();
                            Some(format!(
                                "\"{vn}\" => {{\n\
                                     let a = payload.as_arr().ok_or_else(|| ::serde::DeError::expected(\"array payload\"))?;\n\
                                     if a.len() != {n} {{ return Err(::serde::DeError::expected(\"{n} elements\")); }}\n\
                                     return Ok({name}::{vn}({items}));\n\
                                 }}"
                            ))
                        }
                        VariantKind::Named(fields) => {
                            let inits: String = fields
                                .iter()
                                .map(|f| format!(
                                    "{f}: ::serde::Deserialize::from_value(payload.field(\"{f}\"))?,"
                                ))
                                .collect();
                            Some(format!(
                                "\"{vn}\" => return Ok({name}::{vn} {{ {inits} }}),"
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
                         if let ::serde::Value::Str(s) = v {{\n\
                             match s.as_str() {{ {unit_arms} _ => {{}} }}\n\
                         }}\n\
                         if let Some(obj) = v.as_obj() {{\n\
                             if obj.len() == 1 {{\n\
                                 let (tag, payload) = (&obj[0].0, &obj[0].1);\n\
                                 match tag.as_str() {{ {keyed_arms} _ => {{}} }}\n\
                             }}\n\
                         }}\n\
                         Err(::serde::DeError::expected(\"a {name} variant\"))\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("generated Deserialize impl parses")
}
