//! Declarative scenarios for the real-rate allocator.
//!
//! The paper's evaluation runs a handful of hand-written experiments; the
//! ROADMAP asks for "as many scenarios as you can imagine".  This crate
//! makes scenarios first-class: a [`ScenarioSpec`] *declares* a workload —
//! a static job mix over the `rrs-workloads` generators, seeded stochastic
//! [`ArrivalProcess`]es spawning transient jobs, and a phase schedule
//! (load steps, hog storms, CPU hot-adds) — plus the [`Slo`] assertions
//! the run must satisfy.  [`run_scenario`] turns the spec into a full
//! machine-backed run on the backend the spec names — the deterministic
//! simulator by default, or the wall-clock executor
//! ([`spec::ScenarioSpec::backend`]) — and a pass/fail
//! [`ScenarioReport`] that can be written to `results/` as JSON.
//!
//! The decomposition follows the entity/workload/schedule split of
//! network-simulator scenario engines: *what runs* ([`spec::Member`],
//! [`spec::TransientJob`]), *when it runs* ([`ArrivalProcess`],
//! [`spec::Phase`]) and *what must hold* ([`Slo`]) are declared
//! independently and composed by the [`runner`].
//!
//! ```
//! use rrs_scenario::{run_scenario, spec};
//!
//! let mut s = spec::ScenarioSpec::named("two_hogs", "two hogs share a CPU");
//! s.members.push(spec::Member::Hog { name: "a".into() });
//! s.members.push(spec::Member::Hog { name: "b".into() });
//! s.phases.push(spec::Phase::steady("all", 0.5));
//! s.slos.push(rrs_scenario::Slo::MinThroughput { min_cpus: 0.5 });
//! let report = run_scenario(&s).unwrap();
//! assert!(report.passed);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod arrivals;
pub mod corpus;
pub mod runner;
pub mod slo;
pub mod spec;

pub use arrivals::{ArrivalProcess, ArrivalRng};
pub use corpus::{corpus, scenario_by_name, smoke_corpus, wall_clock_smoke_corpus};
pub use rrs_api::Backend;
pub use runner::{run_scenario, run_scenario_on, write_report, JobCounts, ScenarioReport};
pub use slo::{Slo, SloOutcome};
pub use spec::{ArrivalStream, Member, Phase, ScenarioSpec, SpecError, TransientJob};
