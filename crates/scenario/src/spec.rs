//! The declarative scenario specification.
//!
//! A [`ScenarioSpec`] declares *what runs* — a static [`Member`] mix over
//! the `rrs-workloads` generators plus [`ArrivalStream`]s spawning
//! [`TransientJob`]s — *when it runs* (a [`Phase`] schedule with load
//! multipliers, hog storms and CPU hot-adds) and *what must hold* (the
//! [`Slo`] list).  Specs are plain serde data: the whole
//! corpus can be serialised to JSON and back.

use crate::arrivals::ArrivalProcess;
use crate::slo::Slo;
use rrs_api::Backend;
use serde::{Deserialize, Serialize};

/// A statically installed scenario member (present from `t = 0` until the
/// end of the run).
///
/// Members wrap the workload generators reproducing the paper's
/// evaluation applications; queue-coupled generators (video, server,
/// pipeline, disk) install their full producer/consumer graphs and
/// register their queues with the progress-metric registry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Member {
    /// A miscellaneous CPU hog (always-runnable; the fairness group).
    Hog {
        /// Job name (must be unique within the scenario).
        name: String,
    },
    /// A process that is scheduled and controlled but consumes no CPU.
    Dummy {
        /// Job name.
        name: String,
    },
    /// A real-time spinner holding a fixed reservation and consuming all
    /// of it — the delivery-probe used by the `RtDelivery` SLO.
    RealTimeSpin {
        /// Job name.
        name: String,
        /// Reserved proportion in parts per thousand.
        ppt: u32,
        /// Reservation period in milliseconds.
        period_ms: u64,
    },
    /// An interactive job (keystroke bursts separated by think time).
    Interactive {
        /// Job name.
        name: String,
        /// Typing rate in keystrokes per second.
        keystrokes_hz: f64,
        /// Work per keystroke, in megacycles.
        mcycles_per_keystroke: f64,
    },
    /// The three-stage video pipeline (source → decoder → renderer) with
    /// its `capture` and `render` queues.
    VideoPipeline {
        /// Source frame rate in frames per second.
        fps: f64,
        /// Decoder cost per frame, in megacycles.
        decode_mcycles: f64,
        /// Renderer cost per frame, in megacycles.
        render_mcycles: f64,
    },
    /// The web server (network request generator → `server-backlog`
    /// queue → server thread).
    WebServer {
        /// Offered load in requests per second.
        rate_hz: f64,
        /// Service cost per request, in megacycles.
        mcycles_per_request: f64,
        /// Backlog capacity in requests.
        backlog: usize,
    },
    /// The pulse-driven producer/consumer pipeline of Figures 6 and 7
    /// (queue `pipeline`).  `steady_bytes_per_cycle` pins a constant
    /// production rate; `None` uses the pulsing Figure 6 rate.
    PulsePipeline {
        /// Constant production rate, or `None` for the pulse train.
        steady_bytes_per_cycle: Option<f64>,
    },
    /// The isochronous software modem.
    Modem {
        /// `true` installs it with the reservation it needs (the paper's
        /// recommendation); `false` runs it best-effort.
        reserved: bool,
    },
    /// A simulated disk feeding an I/O-intensive reader (queue
    /// `disk-buffer`).
    DiskIo {
        /// Disk bandwidth in bytes per second.
        bandwidth_bytes_per_s: f64,
        /// Reader cost per byte, in cycles.
        cycles_per_byte: f64,
    },
}

/// The body of a transient job spawned by an [`ArrivalStream`].
///
/// Every transient has a bounded lifetime after which the runner removes
/// it, so arrival processes produce churn rather than monotone growth.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TransientJob {
    /// A miscellaneous hog that spins for its whole lifetime.
    Hog {
        /// Seconds between spawn and removal.
        lifetime_s: f64,
    },
    /// A job with a fixed amount of work: it spins until `mcycles` are
    /// done, then blocks until its removal.
    Worker {
        /// Total work, in megacycles.
        mcycles: f64,
        /// Seconds between spawn and removal.
        lifetime_s: f64,
    },
    /// A short-lived interactive session.
    Interactive {
        /// Typing rate in keystrokes per second.
        keystrokes_hz: f64,
        /// Work per keystroke, in megacycles.
        mcycles_per_keystroke: f64,
        /// Seconds between spawn and removal.
        lifetime_s: f64,
    },
}

impl TransientJob {
    /// The declared lifetime in seconds.
    pub fn lifetime_s(&self) -> f64 {
        match *self {
            TransientJob::Hog { lifetime_s }
            | TransientJob::Worker { lifetime_s, .. }
            | TransientJob::Interactive { lifetime_s, .. } => lifetime_s,
        }
    }
}

/// A stream of transient-job arrivals.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArrivalStream {
    /// Stream name.  Spawned jobs are named `<name>-<stream index>-<seq>`
    /// so two streams sharing a name still spawn uniquely named jobs.
    pub name: String,
    /// When jobs arrive.
    pub process: ArrivalProcess,
    /// What each arrival spawns.
    pub job: TransientJob,
}

/// One step of the scenario's schedule.
///
/// Phases run back to back; their durations sum to the scenario horizon.
/// Each phase scales every arrival stream by `load`, may inject a hog
/// storm for its duration, and may hot-add CPUs (CPU counts must be
/// non-decreasing across phases — the machine layer has no hot-remove).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Phase {
    /// Phase name (for reports and injected-job names).
    pub name: String,
    /// Phase length in seconds.
    pub duration_s: f64,
    /// Multiplier applied to every arrival stream's rate in this phase.
    pub load: f64,
    /// CPU hogs injected at phase start and removed at phase end.
    pub inject_hogs: u32,
    /// CPU count from this phase on (`None` keeps the current count).
    pub cpus: Option<usize>,
}

impl Phase {
    /// A phase with unit load and no injections.
    pub fn steady(name: &str, duration_s: f64) -> Self {
        Self {
            name: name.to_string(),
            duration_s,
            load: 1.0,
            inject_hogs: 0,
            cpus: None,
        }
    }
}

/// A fully declarative scenario.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// Scenario name (also the report file name).
    pub name: String,
    /// One-line description of what the scenario exercises.
    pub description: String,
    /// The host backend the scenario runs on: the deterministic
    /// simulator (the default — time below is simulated seconds) or the
    /// wall-clock executor (time below is real seconds, and SLOs should
    /// carry tolerance bands rather than exact expectations).
    #[serde(default)]
    pub backend: Backend,
    /// Seed for every stochastic choice in the run.
    pub seed: u64,
    /// Initial CPU count.
    pub cpus: usize,
    /// Machine shards on the simulator backend (`0`/`1` = the plain
    /// unsharded machine; `> 1` builds the two-level sharded simulator).
    /// Ignored on the wall-clock backend.
    #[serde(default)]
    pub shards: usize,
    /// Statically installed members.
    pub members: Vec<Member>,
    /// Transient-job arrival streams.
    pub streams: Vec<ArrivalStream>,
    /// The phase schedule (must not be empty).
    pub phases: Vec<Phase>,
    /// Assertions checked after the run.
    pub slos: Vec<Slo>,
}

/// Why a spec failed validation.
#[derive(Debug, Clone, PartialEq)]
pub enum SpecError {
    /// The phase schedule is empty or a phase has a non-positive length.
    BadSchedule(String),
    /// The CPU counts are invalid (zero, shrinking, or absurd).
    BadCpus(String),
    /// An arrival stream is mis-declared (negative rate, non-positive
    /// lifetime) or would spawn an unreasonable population.
    BadStream(String),
    /// A member is mis-declared.
    BadMember(String),
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::BadSchedule(m) => write!(f, "bad schedule: {m}"),
            SpecError::BadCpus(m) => write!(f, "bad cpus: {m}"),
            SpecError::BadStream(m) => write!(f, "bad stream: {m}"),
            SpecError::BadMember(m) => write!(f, "bad member: {m}"),
        }
    }
}

impl std::error::Error for SpecError {}

/// Upper bound on the expected transient population of one run.
pub const MAX_EXPECTED_ARRIVALS: f64 = 20_000.0;

/// Largest machine a scenario may ask for.
pub const MAX_SCENARIO_CPUS: usize = 64;

/// Longest run a wall-clock scenario may declare, in (real) seconds —
/// wall-clock runs spend actual time, so the corpus keeps them short.
pub const MAX_WALL_CLOCK_HORIZON_S: f64 = 30.0;

impl ScenarioSpec {
    /// An empty spec with a name, description, one CPU and seed 1.
    pub fn named(name: &str, description: &str) -> Self {
        Self {
            name: name.to_string(),
            description: description.to_string(),
            seed: 1,
            cpus: 1,
            ..Self::default()
        }
    }

    /// Total simulated length: the sum of the phase durations.
    pub fn horizon_s(&self) -> f64 {
        self.phases.iter().map(|p| p.duration_s).sum()
    }

    /// Absolute `[start_s, end_s)` windows of every phase.
    pub fn phase_windows(&self) -> Vec<(f64, f64)> {
        let mut out = Vec::with_capacity(self.phases.len());
        let mut t = 0.0;
        for p in &self.phases {
            out.push((t, t + p.duration_s));
            t += p.duration_s;
        }
        out
    }

    /// Checks the spec is well-formed and bounded.
    pub fn validate(&self) -> Result<(), SpecError> {
        if self.phases.is_empty() {
            return Err(SpecError::BadSchedule("a scenario needs ≥ 1 phase".into()));
        }
        for p in &self.phases {
            if p.duration_s <= 0.0 || !p.duration_s.is_finite() {
                return Err(SpecError::BadSchedule(format!(
                    "phase '{}' has non-positive duration",
                    p.name
                )));
            }
            if p.load < 0.0 || !p.load.is_finite() {
                return Err(SpecError::BadSchedule(format!(
                    "phase '{}' has a bad load multiplier",
                    p.name
                )));
            }
            if p.inject_hogs > 256 {
                return Err(SpecError::BadSchedule(format!(
                    "phase '{}' injects an absurd hog storm",
                    p.name
                )));
            }
        }
        if self.cpus == 0 || self.cpus > MAX_SCENARIO_CPUS {
            return Err(SpecError::BadCpus(format!(
                "initial cpus {} outside 1..={MAX_SCENARIO_CPUS}",
                self.cpus
            )));
        }
        if self.shards > self.cpus {
            return Err(SpecError::BadCpus(format!(
                "shards {} exceed the initial {} cpus",
                self.shards, self.cpus
            )));
        }
        let mut cpus = self.cpus;
        for p in &self.phases {
            if let Some(n) = p.cpus {
                if n < cpus {
                    return Err(SpecError::BadCpus(format!(
                        "phase '{}' shrinks the machine ({n} < {cpus}); hot-remove is unsupported",
                        p.name
                    )));
                }
                if n > MAX_SCENARIO_CPUS {
                    return Err(SpecError::BadCpus(format!(
                        "phase '{}' asks for {n} CPUs (max {MAX_SCENARIO_CPUS})",
                        p.name
                    )));
                }
                cpus = n;
            }
        }
        let mut expected = 0.0;
        for s in &self.streams {
            let peak = s.process.peak_rate();
            if peak < 0.0 || !peak.is_finite() {
                return Err(SpecError::BadStream(format!(
                    "stream '{}' has a bad rate",
                    s.name
                )));
            }
            if s.job.lifetime_s() <= 0.0 || !s.job.lifetime_s().is_finite() {
                return Err(SpecError::BadStream(format!(
                    "stream '{}' spawns jobs with non-positive lifetime",
                    s.name
                )));
            }
            for p in &self.phases {
                expected += peak * p.load * p.duration_s;
            }
        }
        if expected > MAX_EXPECTED_ARRIVALS {
            return Err(SpecError::BadStream(format!(
                "expected transient population {expected:.0} exceeds {MAX_EXPECTED_ARRIVALS}"
            )));
        }
        if self.backend == Backend::WallClock && self.horizon_s() > MAX_WALL_CLOCK_HORIZON_S {
            return Err(SpecError::BadSchedule(format!(
                "wall-clock scenario '{}' declares {:.0} real seconds (max {MAX_WALL_CLOCK_HORIZON_S})",
                self.name,
                self.horizon_s()
            )));
        }
        for m in &self.members {
            if let Member::RealTimeSpin { name, ppt, .. } = m {
                if *ppt == 0 || *ppt > 1000 {
                    return Err(SpecError::BadMember(format!(
                        "real-time spin '{name}' reserves {ppt} ‰"
                    )));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minimal() -> ScenarioSpec {
        let mut s = ScenarioSpec::named("t", "test");
        s.phases.push(Phase::steady("all", 1.0));
        s
    }

    #[test]
    fn horizon_and_windows_follow_the_phases() {
        let mut s = minimal();
        s.phases.push(Phase::steady("more", 2.5));
        assert_eq!(s.horizon_s(), 3.5);
        assert_eq!(s.phase_windows(), vec![(0.0, 1.0), (1.0, 3.5)]);
        assert!(s.validate().is_ok());
    }

    #[test]
    fn empty_schedule_is_rejected() {
        let s = ScenarioSpec::named("t", "test");
        assert!(matches!(s.validate(), Err(SpecError::BadSchedule(_))));
    }

    #[test]
    fn shrinking_cpus_are_rejected() {
        let mut s = minimal();
        s.cpus = 4;
        let mut p = Phase::steady("shrink", 1.0);
        p.cpus = Some(2);
        s.phases.push(p);
        let err = s.validate().unwrap_err();
        assert!(matches!(err, SpecError::BadCpus(_)), "{err}");
        assert!(err.to_string().contains("hot-remove"));
    }

    #[test]
    fn unbounded_streams_are_rejected() {
        let mut s = minimal();
        s.streams.push(ArrivalStream {
            name: "storm".into(),
            process: ArrivalProcess::Poisson { rate_hz: 1e9 },
            job: TransientJob::Hog { lifetime_s: 1.0 },
        });
        assert!(matches!(s.validate(), Err(SpecError::BadStream(_))));
    }

    #[test]
    fn zero_lifetime_is_rejected() {
        let mut s = minimal();
        s.streams.push(ArrivalStream {
            name: "z".into(),
            process: ArrivalProcess::Poisson { rate_hz: 1.0 },
            job: TransientJob::Hog { lifetime_s: 0.0 },
        });
        assert!(matches!(s.validate(), Err(SpecError::BadStream(_))));
    }

    #[test]
    fn spec_round_trips_through_json() {
        let mut s = minimal();
        s.members.push(Member::Hog { name: "h".into() });
        s.members.push(Member::Modem { reserved: true });
        s.streams.push(ArrivalStream {
            name: "bg".into(),
            process: ArrivalProcess::FlashCrowd {
                base_hz: 1.0,
                at_s: 0.5,
                duration_s: 0.2,
                spike_hz: 10.0,
            },
            job: TransientJob::Worker {
                mcycles: 5.0,
                lifetime_s: 0.5,
            },
        });
        s.slos.push(Slo::MigrationBudget { max: 10 });
        let json = serde_json::to_string(&s).unwrap();
        let back: ScenarioSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
