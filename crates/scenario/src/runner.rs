//! Turns a [`ScenarioSpec`] into a machine-backed host run and a
//! pass/fail [`ScenarioReport`].
//!
//! The runner installs the static members, pre-computes every event of
//! the schedule — phase starts (load steps, hog storms, CPU hot-adds),
//! seeded transient arrivals and their departures — and then drives the
//! host from event to event.  At the end it assembles the
//! [`Observations`] the SLOs are evaluated against and, optionally,
//! writes the report to `results/scenario_<name>.json`.
//!
//! The run is backend-agnostic: the spec's `backend` field picks the
//! deterministic simulator (the default — same spec, same seed, same
//! report, bit for bit) or the wall-clock executor (real OS threads; the
//! schedule's times are real seconds, and reports vary within scheduling
//! tolerance).  Everything in between — members, arrivals, phases, SLO
//! evaluation — is one code path over [`rrs_api::Host`].

use crate::arrivals::ArrivalRng;
use crate::slo::{Observations, SloOutcome};
use crate::spec::{Member, ScenarioSpec, SpecError, TransientJob};
use rrs_api::{Host, HostStats, Runtime, SimTime};
use rrs_core::{JobHandle, JobSpec};
use rrs_scheduler::{Period, Proportion};
use rrs_sim::{RunResult, WorkModel};
use rrs_telemetry::TelemetrySnapshot;
use rrs_workloads::{
    CpuHog, DiskReader, DummyProcess, InteractiveJob, LatencyStats, LatencySummary, ModemConfig,
    PipelineConfig, PulsePipeline, ServerConfig, SoftwareModem, VideoPipeline, VideoPipelineConfig,
    WebServer,
};
use serde::{Deserialize, Serialize};
use std::path::PathBuf;
use std::sync::Arc;

/// Job-population counters of one run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct JobCounts {
    /// Jobs installed by static members at `t = 0`.
    pub installed: u64,
    /// Transient jobs spawned by arrival streams and hog storms.
    pub spawned: u64,
    /// Transient jobs removed at the end of their lifetime.
    pub departed: u64,
    /// Spawn attempts rejected by admission control.
    pub rejected: u64,
}

/// One phase's slice of the host's telemetry counters: the difference
/// between the [`rrs_api::Host::telemetry`] snapshots taken at the
/// phase's two boundaries, so a hog-storm phase's migrations and settles
/// are attributed to that phase rather than smeared over the run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PhaseTelemetry {
    /// The phase's name, as declared in the spec.
    pub name: String,
    /// Counters accumulated during this phase only (derived rates
    /// recomputed over the phase window).
    pub telemetry: TelemetrySnapshot,
}

/// The machine-checkable result of one scenario run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioReport {
    /// Scenario name (also the report file name).
    pub scenario: String,
    /// The spec's description.
    pub description: String,
    /// The backend the run executed on.
    #[serde(default)]
    pub backend: rrs_api::Backend,
    /// The seed the run used.
    pub seed: u64,
    /// Elapsed host seconds (at least the spec's horizon).
    pub elapsed_s: f64,
    /// Final CPU count (after any hot-adds).
    pub cpus: usize,
    /// Machine shards the run executed on (1 = the unsharded machine;
    /// reports predating sharding deserialise as 0 — the vendored serde
    /// supports only the bare `default` — and read as unsharded too).
    #[serde(default)]
    pub shards: usize,
    /// Machine capacity delivered over the run, in CPU-microseconds.
    pub capacity_us: f64,
    /// Job-population counters.
    pub jobs: JobCounts,
    /// The host's aggregate statistics, per-CPU breakdown included.
    pub stats: HostStats,
    /// Per-phase telemetry counter slices (migrations, settles, cache
    /// hit rate, …), one entry per phase in schedule order.
    #[serde(default)]
    pub phase_telemetry: Vec<PhaseTelemetry>,
    /// Latency percentile summaries of instrumented members (the web
    /// server, interactive members), in install order.
    #[serde(default)]
    pub latencies: Vec<LatencySummary>,
    /// Every SLO's outcome, in spec order.
    pub slos: Vec<SloOutcome>,
    /// Whether every SLO passed.
    pub passed: bool,
}

/// A transient job with a fixed amount of work: spins until done, then
/// blocks until its scheduled departure.
#[derive(Debug)]
struct FiniteWork {
    cycles_remaining: f64,
}

impl WorkModel for FiniteWork {
    fn run(&mut self, _now_us: u64, quantum_us: u64, cpu_hz: f64) -> RunResult {
        if self.cycles_remaining <= 0.0 {
            return RunResult::blocked_after(0);
        }
        let offered = quantum_us as f64 * cpu_hz / 1e6;
        if offered < self.cycles_remaining {
            self.cycles_remaining -= offered;
            RunResult::ran(quantum_us)
        } else {
            let used_us = (self.cycles_remaining / cpu_hz * 1e6).round() as u64;
            self.cycles_remaining = 0.0;
            RunResult::blocked_after(used_us.min(quantum_us))
        }
    }

    fn poll_unblock(&mut self, _now_us: u64) -> bool {
        false
    }

    fn label(&self) -> &str {
        "finite-work"
    }
}

/// What a member contributed to the observation groups.
#[derive(Default)]
struct Installed {
    /// Persistent jobs whose allocation the controller adapts and that
    /// keep wanting CPU (hogs and queue-coupled real-rate stages).
    adaptive: Vec<JobHandle>,
    /// The fairness group: identical persistent hogs.
    hogs: Vec<JobHandle>,
    /// Real-time spinners with their reserved parts per thousand.
    rt_spin: Vec<(JobHandle, u32)>,
    /// Application-level statistics of installed modems.
    modems: Vec<Arc<rrs_workloads::ModemStats>>,
    /// Per-request latency histograms of instrumented members, keyed by
    /// the source name the `LatencyBand` SLO addresses them with.
    latencies: Vec<(String, Arc<LatencyStats>)>,
    /// Every handle installed (for the `installed` count).
    count: u64,
}

fn install_member(host: &mut dyn Host, member: &Member, out: &mut Installed) {
    match member {
        Member::Hog { name } => {
            let h = host
                .add_job(name, JobSpec::miscellaneous(), Box::new(CpuHog::new()))
                .expect("miscellaneous jobs are always admitted");
            out.adaptive.push(h);
            out.hogs.push(h);
            out.count += 1;
        }
        Member::Dummy { name } => {
            host.add_job(
                name,
                JobSpec::miscellaneous(),
                Box::new(DummyProcess::new()),
            )
            .expect("miscellaneous jobs are always admitted");
            out.count += 1;
        }
        Member::RealTimeSpin {
            name,
            ppt,
            period_ms,
        } => {
            match host.add_job(
                name,
                JobSpec::real_time(Proportion::from_ppt(*ppt), Period::from_millis(*period_ms)),
                Box::new(CpuHog::new()),
            ) {
                Ok(h) => {
                    out.rt_spin.push((h, *ppt));
                    out.count += 1;
                }
                Err(_) => {
                    // Rejected by admission control: the spec oversubscribed
                    // its machine; the RtDelivery SLO will surface it.
                }
            }
        }
        Member::Interactive {
            name,
            keystrokes_hz,
            mcycles_per_keystroke,
        } => {
            let stats = LatencyStats::new();
            host.add_job(
                name,
                JobSpec::miscellaneous(),
                Box::new(
                    InteractiveJob::new(*keystrokes_hz, mcycles_per_keystroke * 1e6)
                        .with_latency_stats(Arc::clone(&stats)),
                ),
            )
            .expect("miscellaneous jobs are always admitted");
            out.latencies.push((name.clone(), stats));
            out.count += 1;
        }
        Member::VideoPipeline {
            fps,
            decode_mcycles,
            render_mcycles,
        } => {
            let handles = VideoPipeline::install(
                host,
                VideoPipelineConfig {
                    fps: *fps,
                    decode_cycles_per_frame: decode_mcycles * 1e6,
                    render_cycles_per_frame: render_mcycles * 1e6,
                    ..VideoPipelineConfig::default()
                },
            );
            out.adaptive.push(handles.decoder);
            out.adaptive.push(handles.renderer);
            out.count += 3;
        }
        Member::WebServer {
            rate_hz,
            mcycles_per_request,
            backlog,
        } => {
            let (_, server, stats) = WebServer::install_instrumented(
                host,
                ServerConfig {
                    queue_capacity: *backlog,
                    arrival_rate_hz: *rate_hz,
                    cycles_per_request: mcycles_per_request * 1e6,
                },
            );
            out.adaptive.push(server);
            out.latencies.push(("server".to_string(), stats));
            out.count += 2;
        }
        Member::PulsePipeline {
            steady_bytes_per_cycle,
        } => {
            let config = match steady_bytes_per_cycle {
                Some(rate) => PipelineConfig::steady(*rate),
                None => PipelineConfig::default(),
            };
            let handles = PulsePipeline::install(host, config);
            out.adaptive.push(handles.consumer);
            out.count += 2;
        }
        Member::Modem { reserved } => {
            let (_, stats) = if *reserved {
                SoftwareModem::install_with_reservation(host, ModemConfig::default())
            } else {
                SoftwareModem::install_best_effort(host, ModemConfig::default())
            };
            out.modems.push(stats);
            out.count += 1;
        }
        Member::DiskIo {
            bandwidth_bytes_per_s,
            cycles_per_byte,
        } => {
            let (_, reader) =
                DiskReader::install(host, *bandwidth_bytes_per_s, 4096, *cycles_per_byte, 16);
            out.adaptive.push(reader);
            out.count += 2;
        }
    }
}

/// A scheduled spawn or removal of one transient job.
#[derive(Debug, Clone)]
struct TransientDesc {
    name: String,
    job: TransientJob,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EventKind {
    /// Apply phase `i`'s machine changes (CPU hot-add).
    PhaseStart(usize),
    /// Remove transient `i` (ordered before spawns at the same instant so
    /// departing jobs free capacity first).
    Depart(usize),
    /// Spawn transient `i`.
    Spawn(usize),
}

#[derive(Debug, Clone, Copy)]
struct Event {
    at_us: u64,
    kind: EventKind,
}

fn spawn_model(job: &TransientJob) -> Box<dyn WorkModel> {
    match *job {
        TransientJob::Hog { .. } => Box::new(CpuHog::new()),
        TransientJob::Worker { mcycles, .. } => Box::new(FiniteWork {
            cycles_remaining: mcycles * 1e6,
        }),
        TransientJob::Interactive {
            keystrokes_hz,
            mcycles_per_keystroke,
            ..
        } => Box::new(InteractiveJob::new(
            keystrokes_hz,
            mcycles_per_keystroke * 1e6,
        )),
    }
}

/// Runs a scenario end to end on the backend its spec names and
/// evaluates its SLOs.
///
/// On the simulator backend the run is fully determined by the spec
/// (including its seed): the same spec always yields the same report.
/// On the wall-clock backend the schedule is identical but measured
/// quantities carry OS timing noise.
pub fn run_scenario(spec: &ScenarioSpec) -> Result<ScenarioReport, SpecError> {
    spec.validate()?;
    let mut host = Runtime::backend(spec.backend)
        .cpus(spec.cpus)
        .shards(spec.shards.max(1))
        .build();
    run_scenario_on(host.as_mut(), spec)
}

/// Runs a scenario on a caller-provided [`Host`] — the backend-agnostic
/// core of [`run_scenario`].
///
/// The host should be freshly built with the spec's CPU count; jobs the
/// caller installed beforehand simply compete with the scenario.
pub fn run_scenario_on(
    host: &mut dyn Host,
    spec: &ScenarioSpec,
) -> Result<ScenarioReport, SpecError> {
    spec.validate()?;
    let horizon_us = (spec.horizon_s() * 1e6).round() as u64;
    let windows = spec.phase_windows();

    // Pre-compute the whole schedule: phase starts, seeded arrivals and
    // their departures, and each phase's hog storm.
    let mut transients: Vec<TransientDesc> = Vec::new();
    let mut events: Vec<Event> = Vec::new();
    for (i, &(start_s, _)) in windows.iter().enumerate() {
        events.push(Event {
            at_us: (start_s * 1e6).round() as u64,
            kind: EventKind::PhaseStart(i),
        });
    }
    let mut rng = ArrivalRng::new(spec.seed);
    for (si, stream) in spec.streams.iter().enumerate() {
        let mut seq = 0u64;
        for (pi, &(start_s, end_s)) in windows.iter().enumerate() {
            let load = spec.phases[pi].load;
            for t_s in stream.process.sample(&mut rng, start_s, end_s, load) {
                let at_us = (t_s * 1e6).round() as u64;
                let idx = transients.len();
                transients.push(TransientDesc {
                    name: format!("{}-{}-{seq}", stream.name, si),
                    job: stream.job,
                });
                seq += 1;
                events.push(Event {
                    at_us,
                    kind: EventKind::Spawn(idx),
                });
                let depart_us = at_us + (stream.job.lifetime_s() * 1e6).round() as u64;
                if depart_us < horizon_us {
                    events.push(Event {
                        at_us: depart_us,
                        kind: EventKind::Depart(idx),
                    });
                }
            }
        }
    }
    for (pi, phase) in spec.phases.iter().enumerate() {
        let (start_s, end_s) = windows[pi];
        for k in 0..phase.inject_hogs {
            let idx = transients.len();
            transients.push(TransientDesc {
                name: format!("storm-{}-{k}", phase.name),
                job: TransientJob::Hog {
                    lifetime_s: phase.duration_s,
                },
            });
            events.push(Event {
                at_us: (start_s * 1e6).round() as u64,
                kind: EventKind::Spawn(idx),
            });
            let depart_us = (end_s * 1e6).round() as u64;
            if depart_us < horizon_us {
                events.push(Event {
                    at_us: depart_us,
                    kind: EventKind::Depart(idx),
                });
            }
        }
    }
    let priority = |k: EventKind| match k {
        EventKind::PhaseStart(_) => 0u8,
        EventKind::Depart(_) => 1,
        EventKind::Spawn(_) => 2,
    };
    events.sort_by_key(|e| (e.at_us, priority(e.kind)));

    // Install the static population and drive the schedule.  Event times
    // are relative to the host's clock at entry, so a pre-warmed host
    // (wall-clock hosts spend real time being built) still runs the whole
    // schedule.
    let epoch_us = host.now().as_micros();
    let mut installed = Installed::default();
    for member in &spec.members {
        install_member(host, member, &mut installed);
    }
    let mut counts = JobCounts {
        installed: installed.count,
        ..JobCounts::default()
    };
    let mut live: Vec<Option<JobHandle>> = vec![None; transients.len()];
    let mut capacity_us = 0.0;
    let advance = |host: &mut dyn Host, to_us: u64, capacity_us: &mut f64| {
        let now_us = host.now().as_micros();
        if to_us > now_us {
            host.advance(SimTime::from_micros(to_us - now_us));
            *capacity_us += (host.now().as_micros() - now_us) as f64 * host.cpu_count() as f64;
        }
    };
    // Each phase's telemetry slice is the counter delta between its two
    // boundary snapshots (the runner never installs a trace recorder, so
    // the snapshots hold only the deterministic always-on counters).
    let mut phase_telemetry: Vec<PhaseTelemetry> = Vec::with_capacity(spec.phases.len());
    let mut phase_base = host.telemetry();
    for event in &events {
        advance(
            host,
            epoch_us + event.at_us.min(horizon_us),
            &mut capacity_us,
        );
        match event.kind {
            EventKind::PhaseStart(i) => {
                let snap = host.telemetry();
                if i > 0 {
                    phase_telemetry.push(PhaseTelemetry {
                        name: spec.phases[i - 1].name.clone(),
                        telemetry: snap.delta_since(&phase_base),
                    });
                }
                phase_base = snap;
                if let Some(n) = spec.phases[i].cpus {
                    host.grow_cpus(n);
                }
            }
            EventKind::Spawn(i) => {
                let desc = &transients[i];
                match host.add_job(&desc.name, JobSpec::miscellaneous(), spawn_model(&desc.job)) {
                    Ok(h) => {
                        live[i] = Some(h);
                        counts.spawned += 1;
                    }
                    Err(_) => counts.rejected += 1,
                }
            }
            EventKind::Depart(i) => {
                if let Some(h) = live[i].take() {
                    host.remove_job(h);
                    counts.departed += 1;
                }
            }
        }
    }
    advance(host, epoch_us + horizon_us, &mut capacity_us);
    if let Some(last) = spec.phases.last() {
        phase_telemetry.push(PhaseTelemetry {
            name: last.name.clone(),
            telemetry: host.telemetry().delta_since(&phase_base),
        });
    }

    // Assemble the observations and evaluate every SLO.
    let stats = host.stats();
    let elapsed_s = (host.now().as_micros() - epoch_us) as f64 / 1e6;
    // Real-time deadlines: spinner periods denied their budget (from the
    // dispatcher's per-thread accounts) plus the modems' own late-batch
    // counters.  Voluntary under-use by queue generators is not a miss.
    let mut rt_deadline_misses = 0u64;
    let mut rt_periods = 0u64;
    for &(h, _) in &installed.rt_spin {
        if let Some(acct) = host.usage(h) {
            rt_deadline_misses += acct.deadlines_missed;
            rt_periods += acct.periods_completed;
        }
    }
    for modem in &installed.modems {
        rt_deadline_misses += modem.deadlines_missed();
        rt_periods += modem.batches_completed();
    }
    let total_used_us = stats.total_used_us();
    let fair_used_us: Vec<u64> = installed
        .hogs
        .iter()
        .map(|h| host.cpu_used(*h).as_micros())
        .collect();
    let min_adaptive_alloc_ppt = installed
        .adaptive
        .iter()
        .map(|h| host.allocation_ppt(*h))
        .min();
    let rt_delivery_min = installed
        .rt_spin
        .iter()
        .map(|&(h, ppt)| {
            let delivered = host.cpu_used(h).as_micros() as f64 / (elapsed_s * 1e6);
            delivered / (ppt as f64 / 1000.0)
        })
        .min_by(|a, b| a.total_cmp(b));
    let obs = Observations {
        trace: host.trace(),
        elapsed_s,
        capacity_us,
        total_used_us,
        idle_us: stats.idle_us(),
        migrations: stats.migrations,
        deadlines_missed: rt_deadline_misses,
        period_rollovers: rt_periods,
        fair_used_us: &fair_used_us,
        min_adaptive_alloc_ppt,
        rt_delivery_min,
        latencies: &installed.latencies,
    };
    let slos: Vec<SloOutcome> = spec.slos.iter().map(|s| s.evaluate(&obs)).collect();
    let passed = slos.iter().all(|o| o.passed);
    let latencies = installed
        .latencies
        .iter()
        .map(|(name, stats)| stats.summary(name))
        .collect();
    Ok(ScenarioReport {
        scenario: spec.name.clone(),
        description: spec.description.clone(),
        backend: host.backend(),
        seed: spec.seed,
        elapsed_s,
        cpus: host.cpu_count(),
        shards: spec.shards.max(1),
        capacity_us,
        jobs: counts,
        stats,
        phase_telemetry,
        latencies,
        slos,
        passed,
    })
}

/// Writes a report as pretty JSON to `results/scenario_<name>.json`
/// (creating `results/` if needed).  Returns the path written, or `None`
/// if the filesystem refused.
pub fn write_report(report: &ScenarioReport) -> Option<PathBuf> {
    let dir = std::path::Path::new("results");
    if std::fs::create_dir_all(dir).is_err() {
        return None;
    }
    let path = dir.join(format!("scenario_{}.json", report.scenario));
    let json = serde_json::to_string_pretty(report).expect("reports are always serialisable");
    std::fs::write(&path, json).ok()?;
    Some(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrivals::ArrivalProcess;
    use crate::spec::{ArrivalStream, Phase};
    use crate::Slo;

    fn hogs_and_churn() -> ScenarioSpec {
        let mut s = ScenarioSpec::named("unit_churn", "two hogs plus Poisson churn");
        s.cpus = 2;
        s.members.push(Member::Hog { name: "h0".into() });
        s.members.push(Member::Hog { name: "h1".into() });
        s.streams.push(ArrivalStream {
            name: "bg".into(),
            process: ArrivalProcess::Poisson { rate_hz: 4.0 },
            job: TransientJob::Worker {
                mcycles: 20.0,
                lifetime_s: 0.4,
            },
        });
        s.phases.push(Phase::steady("all", 2.0));
        s.slos.push(Slo::MinThroughput { min_cpus: 1.0 });
        s.slos.push(Slo::FairShare { min_ratio: 0.5 });
        s
    }

    #[test]
    fn runs_are_deterministic_per_seed() {
        let spec = hogs_and_churn();
        let a = run_scenario(&spec).unwrap();
        let b = run_scenario(&spec).unwrap();
        assert_eq!(a, b, "same spec, same seed, same report");
        let mut other = spec.clone();
        other.seed = 99;
        let c = run_scenario(&other).unwrap();
        assert_ne!(
            a.jobs.spawned, 0,
            "the stream must actually spawn transients"
        );
        assert!(c.jobs.spawned != a.jobs.spawned || c.stats != a.stats);
    }

    #[test]
    fn transients_depart_and_capacity_is_conserved() {
        let spec = hogs_and_churn();
        let report = run_scenario(&spec).unwrap();
        assert!(report.jobs.departed > 0);
        assert!(report.jobs.departed <= report.jobs.spawned);
        assert_eq!(report.jobs.rejected, 0);
        // Conservation: consumed work cannot exceed delivered capacity
        // (plus the budget-only migration penalties).
        let used: u64 = report.stats.per_cpu.iter().map(|c| c.used_us).sum();
        let slack = report.stats.migrations * rrs_sim::SimConfig::default().migration_cost_us;
        assert!(
            used as f64 <= report.capacity_us + slack as f64,
            "used {used} exceeds capacity {}",
            report.capacity_us
        );
        let idle: u64 = report.stats.per_cpu.iter().map(|c| c.idle_us).sum();
        assert!(idle as f64 <= report.capacity_us * 1.001);
        assert!(report.passed, "SLOs hold: {:?}", report.slos);
    }

    #[test]
    fn reports_carry_phase_telemetry_and_latency_summaries() {
        let mut s = ScenarioSpec::named("unit_telemetry", "phase slices and latency percentiles");
        s.cpus = 1;
        s.members.push(Member::Hog { name: "h".into() });
        s.members.push(Member::Interactive {
            name: "typist".into(),
            keystrokes_hz: 5.0,
            mcycles_per_keystroke: 2.0,
        });
        s.phases.push(Phase::steady("warm", 1.5));
        s.phases.push(Phase::steady("more", 1.5));
        s.slos.push(Slo::LatencyBand {
            source: "typist".into(),
            percentile: 99.0,
            max_ms: 500.0,
        });
        let report = run_scenario(&s).unwrap();
        // One telemetry slice per phase, each covering real activity.
        assert_eq!(report.phase_telemetry.len(), 2);
        assert_eq!(report.phase_telemetry[0].name, "warm");
        assert_eq!(report.phase_telemetry[1].name, "more");
        for p in &report.phase_telemetry {
            assert!(
                p.telemetry.dispatches > 0,
                "phase {} saw no dispatches",
                p.name
            );
            assert!(p.telemetry.calendar_events_total() > 0);
        }
        // Phase slices are deltas, not cumulative repeats: equal-length
        // steady phases see the same order of activity, so the second
        // slice cannot contain the first one over again.
        let (d0, d1) = (
            report.phase_telemetry[0].telemetry.dispatches,
            report.phase_telemetry[1].telemetry.dispatches,
        );
        assert!(
            d1 < d0 * 2,
            "slice 2 ({d1}) looks cumulative over slice 1 ({d0})"
        );
        // The instrumented member produced a percentile summary and the
        // latency SLO evaluated against it.
        assert_eq!(report.latencies.len(), 1);
        let lat = &report.latencies[0];
        assert_eq!(lat.source, "typist");
        assert!(lat.count > 0);
        assert!(lat.p50_ms <= lat.p99_ms && lat.p99_ms <= lat.p999_ms);
        let outcome = report.slos.last().unwrap();
        assert!(outcome.measured > 0.0, "{}", outcome.description);
        assert!(outcome.passed, "{}", outcome.description);
        // The new fields survive the JSON round trip (and old reports
        // without them still parse thanks to the defaults).
        let json = serde_json::to_string_pretty(&report).unwrap();
        let back: ScenarioReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn phase_hot_add_grows_the_machine() {
        let mut s = ScenarioSpec::named("unit_grow", "hot-add mid-run");
        s.cpus = 1;
        s.members.push(Member::Hog { name: "a".into() });
        s.members.push(Member::Hog { name: "b".into() });
        s.phases.push(Phase::steady("cramped", 1.0));
        let mut grow = Phase::steady("roomy", 2.0);
        grow.cpus = Some(2);
        s.phases.push(grow);
        s.slos.push(Slo::MinThroughput { min_cpus: 1.0 });
        let report = run_scenario(&s).unwrap();
        assert_eq!(report.cpus, 2);
        assert!(report.capacity_us > 4.9e6, "1 s × 1 CPU + 2 s × 2 CPUs");
        assert!(report.passed, "{:?}", report.slos);
    }

    #[test]
    fn wall_clock_backend_runs_the_same_schedule() {
        use rrs_api::Backend;
        // A short real-time run: the declarative schedule (members,
        // arrivals, departures) drives the wall-clock executor through
        // the same code path as the simulator.
        let mut s = ScenarioSpec::named("unit_wall", "wall-clock smoke");
        s.backend = Backend::WallClock;
        s.cpus = 1;
        s.members.push(Member::Hog { name: "h0".into() });
        s.streams.push(ArrivalStream {
            name: "bg".into(),
            process: ArrivalProcess::Poisson { rate_hz: 10.0 },
            job: TransientJob::Worker {
                mcycles: 2.0,
                lifetime_s: 0.15,
            },
        });
        s.phases.push(Phase::steady("all", 0.4));
        s.slos.push(Slo::NoStarvation { min_ppt: 1 });
        let report = run_scenario(&s).unwrap();
        assert_eq!(report.backend, Backend::WallClock);
        assert!(
            report.elapsed_s >= 0.4,
            "ran for real: {}",
            report.elapsed_s
        );
        assert!(report.jobs.spawned > 0, "the stream spawned transients");
        assert!(report.jobs.departed > 0, "transients departed");
        assert!(report.stats.total_used_us() > 0, "work really consumed CPU");
        assert!(report.passed, "{:?}", report.slos);
    }

    #[test]
    fn wall_clock_horizons_are_bounded() {
        use rrs_api::Backend;
        let mut s = ScenarioSpec::named("unit_wall_long", "too long for wall clock");
        s.backend = Backend::WallClock;
        s.members.push(Member::Hog { name: "h".into() });
        s.phases.push(Phase::steady("forever", 3600.0));
        assert!(matches!(s.validate(), Err(SpecError::BadSchedule(_))));
    }

    #[test]
    fn invalid_specs_are_refused() {
        let s = ScenarioSpec::named("bad", "no phases");
        assert!(run_scenario(&s).is_err());
    }

    #[test]
    fn report_round_trips_through_json() {
        let mut spec = hogs_and_churn();
        spec.phases[0].duration_s = 0.5;
        let report = run_scenario(&spec).unwrap();
        let json = serde_json::to_string_pretty(&report).unwrap();
        let back: ScenarioReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }
}
