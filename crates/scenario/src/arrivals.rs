//! Seeded, deterministic arrival processes.
//!
//! Scenario populations are driven by stochastic arrival processes rather
//! than hand-placed jobs, so a spec can scale to hundreds of transient
//! jobs from a few lines.  Every process is sampled with a splitmix64
//! generator seeded from the scenario, so a given `(spec, seed)` pair
//! always produces the identical run — the corpus is reproducible and CI
//! can assert on its SLOs.
//!
//! Time-varying processes ([`ArrivalProcess::Diurnal`],
//! [`ArrivalProcess::FlashCrowd`], [`ArrivalProcess::OnOff`]) are sampled
//! by Lewis–Shedler thinning: candidates are drawn from a homogeneous
//! Poisson process at the peak rate and accepted with probability
//! `rate(t) / peak`, which keeps the draw exact for any bounded rate
//! function.

use serde::{Deserialize, Serialize};

/// Deterministic splitmix64 generator used for arrival sampling.
#[derive(Debug, Clone)]
pub struct ArrivalRng {
    state: u64,
}

impl ArrivalRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Advances and returns 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// An exponentially distributed interarrival gap with the given rate
    /// (events per second).
    pub fn exp_gap(&mut self, rate_hz: f64) -> f64 {
        let u = self.unit_f64();
        // `1 - u` is in (0, 1], so the log is finite and non-positive.
        (-(1.0 - u).ln() / rate_hz).max(1e-9)
    }
}

/// A stochastic arrival process, in events per second.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Homogeneous Poisson arrivals at a fixed rate.
    Poisson {
        /// Mean arrival rate in events per second.
        rate_hz: f64,
    },
    /// Bursty on/off arrivals: Poisson at `rate_hz` for `on_s` seconds,
    /// silent for `off_s`, repeating.
    OnOff {
        /// Length of each burst, in seconds.
        on_s: f64,
        /// Length of each silence, in seconds.
        off_s: f64,
        /// Arrival rate during bursts, in events per second.
        rate_hz: f64,
    },
    /// A diurnal ramp: the rate swings sinusoidally from `base_hz` (at
    /// t = 0) up to `peak_hz` (half a "day" in) and back, with period
    /// `day_s`.
    Diurnal {
        /// Off-peak arrival rate in events per second.
        base_hz: f64,
        /// Peak arrival rate in events per second.
        peak_hz: f64,
        /// Length of one simulated "day", in seconds.
        day_s: f64,
    },
    /// A flash crowd: `base_hz` background arrivals with a rectangular
    /// spike to `spike_hz` during `[at_s, at_s + duration_s)`.
    FlashCrowd {
        /// Background arrival rate in events per second.
        base_hz: f64,
        /// When the crowd arrives, in seconds from the scenario start.
        at_s: f64,
        /// How long the crowd stays, in seconds.
        duration_s: f64,
        /// Arrival rate during the spike, in events per second.
        spike_hz: f64,
    },
}

/// Hard cap on the arrivals one `sample` call may produce, protecting
/// fuzzed specs from accidentally unbounded populations.
pub const MAX_ARRIVALS_PER_WINDOW: usize = 100_000;

impl ArrivalProcess {
    /// The instantaneous arrival rate at scenario time `t_s`.
    pub fn rate_at(&self, t_s: f64) -> f64 {
        match *self {
            ArrivalProcess::Poisson { rate_hz } => rate_hz,
            ArrivalProcess::OnOff {
                on_s,
                off_s,
                rate_hz,
            } => {
                let cycle = on_s + off_s;
                if cycle <= 0.0 {
                    return 0.0;
                }
                let phase = t_s.rem_euclid(cycle);
                if phase < on_s {
                    rate_hz
                } else {
                    0.0
                }
            }
            ArrivalProcess::Diurnal {
                base_hz,
                peak_hz,
                day_s,
            } => {
                if day_s <= 0.0 {
                    return base_hz;
                }
                let swing = 0.5 * (1.0 - (2.0 * std::f64::consts::PI * t_s / day_s).cos());
                base_hz + (peak_hz - base_hz) * swing
            }
            ArrivalProcess::FlashCrowd {
                base_hz,
                at_s,
                duration_s,
                spike_hz,
            } => {
                if t_s >= at_s && t_s < at_s + duration_s {
                    spike_hz
                } else {
                    base_hz
                }
            }
        }
    }

    /// An upper bound on the rate over all time (the thinning envelope).
    pub fn peak_rate(&self) -> f64 {
        match *self {
            ArrivalProcess::Poisson { rate_hz } => rate_hz,
            ArrivalProcess::OnOff { rate_hz, .. } => rate_hz,
            ArrivalProcess::Diurnal {
                base_hz, peak_hz, ..
            } => base_hz.max(peak_hz),
            ArrivalProcess::FlashCrowd {
                base_hz, spike_hz, ..
            } => base_hz.max(spike_hz),
        }
    }

    /// Samples the arrival instants in `[start_s, end_s)` with every rate
    /// scaled by `scale` (a phase's load multiplier), in ascending order.
    ///
    /// Sampling is exact thinning against the peak-rate envelope and fully
    /// determined by `rng`'s state.  At most
    /// [`MAX_ARRIVALS_PER_WINDOW`] arrivals are returned.
    pub fn sample(&self, rng: &mut ArrivalRng, start_s: f64, end_s: f64, scale: f64) -> Vec<f64> {
        let envelope = self.peak_rate() * scale;
        if envelope <= 0.0 || end_s <= start_s {
            return Vec::new();
        }
        let mut out = Vec::new();
        let mut t = start_s;
        loop {
            t += rng.exp_gap(envelope);
            if t >= end_s {
                break;
            }
            // Strict comparison: a zero-rate window (an OnOff silence, a
            // FlashCrowd off-period) must never emit an arrival, even when
            // the uniform draw is exactly 0.0.
            let accept = rng.unit_f64() * envelope;
            if accept < self.rate_at(t) * scale {
                out.push(t);
                if out.len() >= MAX_ARRIVALS_PER_WINDOW {
                    break;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn count(process: ArrivalProcess, seed: u64, start: f64, end: f64) -> usize {
        let mut rng = ArrivalRng::new(seed);
        process.sample(&mut rng, start, end, 1.0).len()
    }

    #[test]
    fn poisson_rate_is_respected_on_average() {
        let p = ArrivalProcess::Poisson { rate_hz: 50.0 };
        let n = count(p, 7, 0.0, 20.0);
        // 1000 expected; a 20 % band is ~6 sigma.
        assert!((800..=1200).contains(&n), "got {n} arrivals");
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let p = ArrivalProcess::Poisson { rate_hz: 10.0 };
        let mut a = ArrivalRng::new(42);
        let mut b = ArrivalRng::new(42);
        assert_eq!(
            p.sample(&mut a, 0.0, 5.0, 1.0),
            p.sample(&mut b, 0.0, 5.0, 1.0)
        );
        let mut c = ArrivalRng::new(43);
        assert_ne!(p.sample(&mut c, 0.0, 5.0, 1.0).len(), 0);
    }

    #[test]
    fn arrivals_are_ordered_and_inside_the_window() {
        let p = ArrivalProcess::Diurnal {
            base_hz: 5.0,
            peak_hz: 40.0,
            day_s: 4.0,
        };
        let mut rng = ArrivalRng::new(1);
        let times = p.sample(&mut rng, 2.0, 6.0, 1.0);
        assert!(!times.is_empty());
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
        assert!(times.iter().all(|&t| (2.0..6.0).contains(&t)));
    }

    #[test]
    fn on_off_silences_produce_no_arrivals() {
        let p = ArrivalProcess::OnOff {
            on_s: 1.0,
            off_s: 1.0,
            rate_hz: 30.0,
        };
        let mut rng = ArrivalRng::new(3);
        let times = p.sample(&mut rng, 0.0, 10.0, 1.0);
        assert!(!times.is_empty());
        assert!(
            times.iter().all(|t| t.rem_euclid(2.0) < 1.0),
            "every arrival falls in an on-window"
        );
    }

    #[test]
    fn flash_crowd_concentrates_arrivals_in_the_spike() {
        let p = ArrivalProcess::FlashCrowd {
            base_hz: 1.0,
            at_s: 5.0,
            duration_s: 1.0,
            spike_hz: 100.0,
        };
        let mut rng = ArrivalRng::new(11);
        let times = p.sample(&mut rng, 0.0, 10.0, 1.0);
        let in_spike = times.iter().filter(|&&t| (5.0..6.0).contains(&t)).count();
        assert!(
            in_spike * 2 > times.len(),
            "spike holds the majority: {in_spike} of {}",
            times.len()
        );
    }

    #[test]
    fn zero_scale_mutes_the_process() {
        let p = ArrivalProcess::Poisson { rate_hz: 100.0 };
        let mut rng = ArrivalRng::new(5);
        assert!(p.sample(&mut rng, 0.0, 10.0, 0.0).is_empty());
        assert!(p.sample(&mut rng, 5.0, 5.0, 1.0).is_empty());
    }

    #[test]
    fn rate_at_matches_the_declared_shapes() {
        let d = ArrivalProcess::Diurnal {
            base_hz: 2.0,
            peak_hz: 10.0,
            day_s: 8.0,
        };
        assert!((d.rate_at(0.0) - 2.0).abs() < 1e-9);
        assert!((d.rate_at(4.0) - 10.0).abs() < 1e-9);
        assert_eq!(d.peak_rate(), 10.0);
        let f = ArrivalProcess::FlashCrowd {
            base_hz: 1.0,
            at_s: 2.0,
            duration_s: 0.5,
            spike_hz: 50.0,
        };
        assert_eq!(f.rate_at(1.9), 1.0);
        assert_eq!(f.rate_at(2.1), 50.0);
        assert_eq!(f.rate_at(2.6), 1.0);
    }
}
