//! Service-level objectives evaluated against a finished run.
//!
//! Every SLO is a pure function of the run's observable outputs — the
//! recorded [`Trace`] time series and the aggregate
//! counters — so the same assertions work for any scenario and can gate
//! CI: a failing SLO turns the scenario report red and the
//! `scenario_runner` binary's exit status non-zero.

use rrs_sim::Trace;
use rrs_workloads::LatencyStats;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// One assertion over a finished scenario run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Slo {
    /// The real-time deadline-miss rate must not exceed `max`.
    ///
    /// Measured over the scenario's real-time members only: periods in
    /// which a [`Member::RealTimeSpin`](crate::Member) wanted its budget
    /// but was denied it, plus sample batches the modem finished late
    /// (its own application-level counter).  Queue-coupled reservation
    /// holders that voluntarily under-use their budget (frame sources,
    /// request generators) are *not* misses and are excluded.
    DeadlineMissRate {
        /// Largest acceptable miss rate in `[0, 1]`.
        max: f64,
    },
    /// The mean fill level of queue `fill/<queue>` after `warmup_s` must
    /// stay inside `[min, max]` — a bounded queue neither starved nor
    /// saturated is the paper's definition of a well-regulated pipeline.
    FillBand {
        /// Queue name as registered with the metric registry.
        queue: String,
        /// Lower bound on the mean fill fraction.
        min: f64,
        /// Upper bound on the mean fill fraction.
        max: f64,
        /// Seconds of controller settling time to exclude.
        warmup_s: f64,
    },
    /// Every *persistent adaptive* member (hogs, real-rate stages) must
    /// end the run with at least this allocation — the controller's
    /// non-zero `min_proportion` starvation guarantee, observed.
    NoStarvation {
        /// Smallest acceptable final allocation, in parts per thousand.
        min_ppt: u32,
    },
    /// The cumulative CPU received by the persistent hogs must be fair:
    /// `min(used) / max(used)` at least `min_ratio`.
    FairShare {
        /// Smallest acceptable min/max usage ratio in `[0, 1]`.
        min_ratio: f64,
    },
    /// Total applied cross-CPU migrations must not exceed `max` — the
    /// Place stage must rebalance without thrashing.
    MigrationBudget {
        /// Largest acceptable migration count.
        max: u64,
    },
    /// Idle time as a fraction of delivered machine capacity must not
    /// exceed `max_fraction`.
    IdleBudget {
        /// Largest acceptable idle fraction in `[0, 1]`.
        max_fraction: f64,
    },
    /// Aggregate delivered work (total CPU time consumed over elapsed
    /// time, in "CPUs of work") must reach `min_cpus`.
    MinThroughput {
        /// Smallest acceptable throughput, in CPUs of work.
        min_cpus: f64,
    },
    /// Every real-time spinner must receive at least `min_ratio` of its
    /// reserved proportion, however loaded the rest of the machine is.
    RtDelivery {
        /// Smallest acceptable delivered/reserved ratio in `[0, 1]`.
        min_ratio: f64,
    },
    /// A latency-instrumented member's request-latency percentile must
    /// not exceed `max_ms` — tail latency, not just the mean, is what a
    /// server's users feel.
    ///
    /// Measured over the per-request histograms of instrumented members
    /// (the [`Member::WebServer`](crate::Member) records
    /// queueing-plus-service time as `"server"`, a
    /// [`Member::Interactive`](crate::Member) records
    /// keystroke-to-completion time under its own name).  A `source` the
    /// scenario never recorded samples for fails rather than passing
    /// vacuously.
    LatencyBand {
        /// Which member's histogram to read (`"server"`, or the
        /// interactive member's name).
        source: String,
        /// The percentile to check, 0–100 (99.0 and 99.9 are the
        /// conventional tail bands).
        percentile: f64,
        /// Largest acceptable latency at that percentile, in
        /// milliseconds.
        max_ms: f64,
    },
}

/// Everything an [`Slo`] may be evaluated against.
#[derive(Debug, Clone)]
pub struct Observations<'a> {
    /// The run's recorded time series.
    pub trace: &'a Trace,
    /// Elapsed simulated time in seconds.
    pub elapsed_s: f64,
    /// Machine capacity delivered over the run, in CPU-microseconds
    /// (integrates CPU hot-adds: `Σ cpus(t) · dt`).
    pub capacity_us: f64,
    /// Total CPU time consumed by all jobs, in microseconds.
    pub total_used_us: u64,
    /// Total idle time across all CPUs, in microseconds.
    pub idle_us: u64,
    /// Applied cross-CPU migrations.
    pub migrations: u64,
    /// Real-time deadlines missed (spinner periods denied their budget
    /// plus late modem batches).
    pub deadlines_missed: u64,
    /// Real-time periods observed (spinner periods plus modem batches);
    /// zero when the scenario has no real-time members.
    pub period_rollovers: u64,
    /// Cumulative CPU received by each persistent hog, in microseconds.
    pub fair_used_us: &'a [u64],
    /// Smallest final allocation among persistent adaptive members, in
    /// parts per thousand (`None` when the scenario has none).
    pub min_adaptive_alloc_ppt: Option<u32>,
    /// Smallest delivered/reserved ratio among real-time spinners
    /// (`None` when the scenario has none).
    pub rt_delivery_min: Option<f64>,
    /// Per-request latency histograms of instrumented members, keyed by
    /// source name (empty when the scenario has none).
    pub latencies: &'a [(String, Arc<LatencyStats>)],
}

/// The outcome of one SLO check.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SloOutcome {
    /// The assertion that was checked.
    pub slo: Slo,
    /// Human-readable statement of what was measured against what.
    pub description: String,
    /// The measured value (`-1` when the input was absent).
    pub measured: f64,
    /// Whether the assertion held.
    pub passed: bool,
}

impl Slo {
    /// Evaluates the assertion against a finished run.
    ///
    /// Assertions over inputs the scenario does not produce (no persistent
    /// hogs for [`Slo::FairShare`], no spinners for [`Slo::RtDelivery`],
    /// a queue that was never registered for [`Slo::FillBand`]) fail
    /// rather than pass vacuously — a spec asserting on a missing signal
    /// is a spec bug worth surfacing.
    pub fn evaluate(&self, obs: &Observations<'_>) -> SloOutcome {
        let (description, measured, passed) = match self {
            Slo::DeadlineMissRate { max } => {
                if obs.period_rollovers == 0 {
                    (
                        "scenario has no real-time members to observe deadlines on".into(),
                        -1.0,
                        false,
                    )
                } else {
                    let rate = obs.deadlines_missed as f64 / obs.period_rollovers as f64;
                    (
                        format!(
                            "deadline miss rate {rate:.4} ({} of {}) ≤ {max}",
                            obs.deadlines_missed, obs.period_rollovers
                        ),
                        rate,
                        rate <= *max,
                    )
                }
            }
            Slo::FillBand {
                queue,
                min,
                max,
                warmup_s,
            } => {
                let series = obs.trace.get(&format!("fill/{queue}"));
                match series.and_then(|s| s.window_mean(*warmup_s, obs.elapsed_s + 1e-9)) {
                    Some(mean) => (
                        format!("mean fill of '{queue}' after {warmup_s} s: {mean:.3} in [{min}, {max}]"),
                        mean,
                        (*min..=*max).contains(&mean),
                    ),
                    None => (
                        format!("queue '{queue}' recorded no fill samples after {warmup_s} s"),
                        -1.0,
                        false,
                    ),
                }
            }
            Slo::NoStarvation { min_ppt } => match obs.min_adaptive_alloc_ppt {
                Some(alloc) => (
                    format!("smallest adaptive allocation {alloc} ‰ ≥ {min_ppt} ‰"),
                    alloc as f64,
                    alloc >= *min_ppt,
                ),
                None => (
                    "scenario has no persistent adaptive members to check".into(),
                    -1.0,
                    false,
                ),
            },
            Slo::FairShare { min_ratio } => {
                let min = obs.fair_used_us.iter().copied().min();
                let max = obs.fair_used_us.iter().copied().max();
                match (min, max) {
                    (Some(lo), Some(hi)) if obs.fair_used_us.len() >= 2 => {
                        let ratio = if hi == 0 { 1.0 } else { lo as f64 / hi as f64 };
                        (
                            format!(
                                "hog usage ratio min/max {ratio:.3} ≥ {min_ratio} ({} hogs)",
                                obs.fair_used_us.len()
                            ),
                            ratio,
                            ratio >= *min_ratio,
                        )
                    }
                    _ => (
                        "scenario has fewer than two persistent hogs to compare".into(),
                        -1.0,
                        false,
                    ),
                }
            }
            Slo::MigrationBudget { max } => (
                format!("{} migrations ≤ {max}", obs.migrations),
                obs.migrations as f64,
                obs.migrations <= *max,
            ),
            Slo::IdleBudget { max_fraction } => {
                let frac = obs.idle_us as f64 / obs.capacity_us.max(1.0);
                (
                    format!("idle fraction {frac:.3} ≤ {max_fraction}"),
                    frac,
                    frac <= *max_fraction,
                )
            }
            Slo::MinThroughput { min_cpus } => {
                let cpus = obs.total_used_us as f64 / (obs.elapsed_s * 1e6).max(1.0);
                (
                    format!("throughput {cpus:.2} CPUs of work ≥ {min_cpus}"),
                    cpus,
                    cpus >= *min_cpus,
                )
            }
            Slo::LatencyBand {
                source,
                percentile,
                max_ms,
            } => match obs.latencies.iter().find(|(name, _)| name == source) {
                Some((_, stats)) if stats.count() > 0 => {
                    let ms = stats.percentile_us(*percentile) / 1e3;
                    (
                        format!(
                            "p{percentile} latency of '{source}' {ms:.2} ms ≤ {max_ms} ms \
                             ({} samples)",
                            stats.count()
                        ),
                        ms,
                        ms <= *max_ms,
                    )
                }
                _ => (
                    format!("source '{source}' recorded no latency samples"),
                    -1.0,
                    false,
                ),
            },
            Slo::RtDelivery { min_ratio } => match obs.rt_delivery_min {
                Some(ratio) => (
                    format!("worst real-time delivery {ratio:.3} of reservation ≥ {min_ratio}"),
                    ratio,
                    ratio >= *min_ratio,
                ),
                None => (
                    "scenario has no real-time spinners to check".into(),
                    -1.0,
                    false,
                ),
            },
        };
        SloOutcome {
            slo: self.clone(),
            description,
            measured,
            passed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(trace: &Trace) -> Observations<'_> {
        Observations {
            trace,
            elapsed_s: 10.0,
            capacity_us: 20e6,
            total_used_us: 15_000_000,
            idle_us: 4_000_000,
            migrations: 3,
            deadlines_missed: 2,
            period_rollovers: 100,
            fair_used_us: &[],
            min_adaptive_alloc_ppt: Some(40),
            rt_delivery_min: Some(0.97),
            latencies: &[],
        }
    }

    #[test]
    fn miss_rate_and_throughput_and_idle() {
        let trace = Trace::new();
        let o = obs(&trace);
        assert!(Slo::DeadlineMissRate { max: 0.05 }.evaluate(&o).passed);
        assert!(!Slo::DeadlineMissRate { max: 0.01 }.evaluate(&o).passed);
        let t = Slo::MinThroughput { min_cpus: 1.4 }.evaluate(&o);
        assert!(t.passed && (t.measured - 1.5).abs() < 1e-9);
        assert!(Slo::IdleBudget { max_fraction: 0.3 }.evaluate(&o).passed);
        assert!(!Slo::IdleBudget { max_fraction: 0.1 }.evaluate(&o).passed);
        assert!(Slo::MigrationBudget { max: 3 }.evaluate(&o).passed);
        assert!(!Slo::MigrationBudget { max: 2 }.evaluate(&o).passed);
    }

    #[test]
    fn fill_band_reads_the_trace() {
        let mut trace = Trace::new();
        for i in 0..100 {
            trace.record("fill/q", i as f64 * 0.1, 0.5);
        }
        let o = obs(&trace);
        let ok = Slo::FillBand {
            queue: "q".into(),
            min: 0.2,
            max: 0.8,
            warmup_s: 1.0,
        }
        .evaluate(&o);
        assert!(ok.passed, "{}", ok.description);
        let missing = Slo::FillBand {
            queue: "nope".into(),
            min: 0.0,
            max: 1.0,
            warmup_s: 0.0,
        }
        .evaluate(&o);
        assert!(!missing.passed);
        assert_eq!(missing.measured, -1.0);
    }

    #[test]
    fn starvation_fairness_and_rt_delivery() {
        let trace = Trace::new();
        let mut o = obs(&trace);
        assert!(Slo::NoStarvation { min_ppt: 10 }.evaluate(&o).passed);
        assert!(!Slo::NoStarvation { min_ppt: 50 }.evaluate(&o).passed);
        o.min_adaptive_alloc_ppt = None;
        assert!(!Slo::NoStarvation { min_ppt: 1 }.evaluate(&o).passed);

        let used = [900u64, 1000, 950];
        o.fair_used_us = &used;
        let f = Slo::FairShare { min_ratio: 0.8 }.evaluate(&o);
        assert!(f.passed && (f.measured - 0.9).abs() < 1e-9);
        o.fair_used_us = &used[..1];
        assert!(!Slo::FairShare { min_ratio: 0.0 }.evaluate(&o).passed);

        assert!(Slo::RtDelivery { min_ratio: 0.9 }.evaluate(&o).passed);
        o.rt_delivery_min = None;
        assert!(!Slo::RtDelivery { min_ratio: 0.9 }.evaluate(&o).passed);
    }

    #[test]
    fn latency_band_reads_the_histograms() {
        let trace = Trace::new();
        let mut o = obs(&trace);
        let stats = LatencyStats::new();
        for us in [1_000u64, 2_000, 3_000, 50_000] {
            stats.record_us(us);
        }
        let latencies = vec![("server".to_string(), stats)];
        o.latencies = &latencies;
        let ok = Slo::LatencyBand {
            source: "server".into(),
            percentile: 99.0,
            max_ms: 100.0,
        }
        .evaluate(&o);
        assert!(ok.passed, "{}", ok.description);
        assert!(ok.measured > 0.0);
        let tight = Slo::LatencyBand {
            source: "server".into(),
            percentile: 99.9,
            max_ms: 1.0,
        }
        .evaluate(&o);
        assert!(!tight.passed, "p99.9 ≈ 50 ms cannot fit under 1 ms");
        // A source nobody recorded fails, not passes.
        let missing = Slo::LatencyBand {
            source: "typist".into(),
            percentile: 99.0,
            max_ms: 100.0,
        }
        .evaluate(&o);
        assert!(!missing.passed);
        assert_eq!(missing.measured, -1.0);
    }

    #[test]
    fn outcomes_round_trip_through_json() {
        let trace = Trace::new();
        let o = obs(&trace);
        let outcome = Slo::DeadlineMissRate { max: 0.05 }.evaluate(&o);
        let json = serde_json::to_string(&outcome).unwrap();
        let back: SloOutcome = serde_json::from_str(&json).unwrap();
        assert_eq!(back, outcome);
    }
}
