//! The built-in scenario corpus.
//!
//! Eight named scenarios exercise the allocator across the workload space
//! the paper describes and beyond it: steady multimedia, flash crowds on
//! a big machine, diurnal server load, hog storms against a real-time
//! reservation, mixed reserved/adaptive fleets, bursty isochronous work,
//! cascaded pipelines and saturated churn with mid-run CPU hot-adds.
//! Every scenario carries the SLOs it must satisfy; `scenario_runner`
//! executes the corpus and CI runs the smoke subset on every push.

use crate::arrivals::ArrivalProcess;
use crate::slo::Slo;
use crate::spec::{ArrivalStream, Member, Phase, ScenarioSpec, TransientJob};
use rrs_api::Backend;

fn phase(name: &str, duration_s: f64, load: f64, inject_hogs: u32, cpus: Option<usize>) -> Phase {
    Phase {
        name: name.into(),
        duration_s,
        load,
        inject_hogs,
        cpus,
    }
}

/// `steady_video`: the §4.4 multimedia pipeline plus an interactive
/// typist on the paper's single CPU — the bread-and-butter case.
pub fn steady_video() -> ScenarioSpec {
    let mut s = ScenarioSpec::named(
        "steady_video",
        "30 fps video pipeline plus an interactive typist on one CPU; queues \
         regulated, no deadline misses, nobody starves",
    );
    s.seed = 11;
    s.cpus = 1;
    s.members.push(Member::VideoPipeline {
        fps: 30.0,
        decode_mcycles: 4.0,
        render_mcycles: 0.4,
    });
    s.members.push(Member::Interactive {
        name: "typist".into(),
        keystrokes_hz: 5.0,
        mcycles_per_keystroke: 2.0,
    });
    s.phases.push(phase("steady", 10.0, 1.0, 0, None));
    s.slos.push(Slo::FillBand {
        queue: "capture".into(),
        min: 0.01,
        max: 0.99,
        warmup_s: 3.0,
    });
    s.slos.push(Slo::FillBand {
        queue: "render".into(),
        min: 0.0,
        max: 0.99,
        warmup_s: 3.0,
    });
    s.slos.push(Slo::NoStarvation { min_ppt: 1 });
    s.slos.push(Slo::MinThroughput { min_cpus: 0.25 });
    // Interactivity as the user feels it: the tail, not the mean.  The
    // typist's keystroke-to-completion p99 runs ≈ 63 ms here.
    s.slos.push(Slo::LatencyBand {
        source: "typist".into(),
        percentile: 99.0,
        max_ms: 150.0,
    });
    s
}

/// `flash_crowd_8cpu`: a fleet of hogs and a web server on eight CPUs
/// surviving a 30× arrival spike of short-lived workers.
pub fn flash_crowd_8cpu() -> ScenarioSpec {
    let mut s = ScenarioSpec::named(
        "flash_crowd_8cpu",
        "web server plus six hogs on 8 CPUs; a flash crowd of transient \
         workers spikes arrivals 30x without breaking fairness or deadlines",
    );
    s.seed = 22;
    s.cpus = 8;
    for i in 0..6 {
        s.members.push(Member::Hog {
            name: format!("hog{i}"),
        });
    }
    s.members.push(Member::WebServer {
        rate_hz: 200.0,
        mcycles_per_request: 1.0,
        backlog: 64,
    });
    s.members.push(Member::RealTimeSpin {
        name: "pulse".into(),
        ppt: 100,
        period_ms: 10,
    });
    s.streams.push(ArrivalStream {
        name: "crowd".into(),
        process: ArrivalProcess::FlashCrowd {
            base_hz: 1.0,
            at_s: 5.0,
            duration_s: 2.0,
            spike_hz: 30.0,
        },
        job: TransientJob::Worker {
            mcycles: 10.0,
            lifetime_s: 1.0,
        },
    });
    s.phases.push(phase("crowd", 12.0, 1.0, 0, None));
    s.slos.push(Slo::MinThroughput { min_cpus: 4.0 });
    s.slos.push(Slo::FairShare { min_ratio: 0.5 });
    s.slos.push(Slo::DeadlineMissRate { max: 0.05 });
    s.slos.push(Slo::RtDelivery { min_ratio: 0.9 });
    s.slos.push(Slo::FillBand {
        queue: "server-backlog".into(),
        min: 0.0,
        max: 0.9,
        warmup_s: 3.0,
    });
    // The crowd may queue requests, but the tail must stay bounded
    // (p99 ≈ 381 ms through the spike on this seed).
    s.slos.push(Slo::LatencyBand {
        source: "server".into(),
        percentile: 99.0,
        max_ms: 600.0,
    });
    s
}

/// `diurnal_server`: a web server riding a day-shaped load curve with
/// stepped phase multipliers on top.
pub fn diurnal_server() -> ScenarioSpec {
    let mut s = ScenarioSpec::named(
        "diurnal_server",
        "web server on two CPUs under a diurnal arrival ramp with phase load \
         steps; the backlog never saturates and the hog keeps running",
    );
    s.seed = 33;
    s.cpus = 2;
    s.members.push(Member::WebServer {
        rate_hz: 150.0,
        mcycles_per_request: 1.5,
        backlog: 64,
    });
    s.members.push(Member::Hog {
        name: "batch".into(),
    });
    s.members.push(Member::RealTimeSpin {
        name: "heartbeat".into(),
        ppt: 50,
        period_ms: 10,
    });
    s.streams.push(ArrivalStream {
        name: "sessions".into(),
        process: ArrivalProcess::Diurnal {
            base_hz: 0.5,
            peak_hz: 8.0,
            day_s: 15.0,
        },
        job: TransientJob::Worker {
            mcycles: 15.0,
            lifetime_s: 1.2,
        },
    });
    s.phases.push(phase("morning", 5.0, 1.0, 0, None));
    s.phases.push(phase("midday", 5.0, 1.5, 0, None));
    s.phases.push(phase("evening", 5.0, 0.5, 0, None));
    s.slos.push(Slo::FillBand {
        queue: "server-backlog".into(),
        min: 0.0,
        max: 0.9,
        warmup_s: 4.0,
    });
    s.slos.push(Slo::DeadlineMissRate { max: 0.05 });
    s.slos.push(Slo::NoStarvation { min_ppt: 5 });
    s.slos.push(Slo::MinThroughput { min_cpus: 0.5 });
    // Request latency through the full diurnal swing: the backlog rides
    // up at midday, so the bands sit above the measured p99 ≈ 514 ms /
    // p99.9 ≈ 524 ms with room for controller drift, not at them.
    s.slos.push(Slo::LatencyBand {
        source: "server".into(),
        percentile: 99.0,
        max_ms: 750.0,
    });
    s.slos.push(Slo::LatencyBand {
        source: "server".into(),
        percentile: 99.9,
        max_ms: 800.0,
    });
    s
}

/// `hog_storm`: a real-time reservation rides out a storm of injected
/// hogs — the paper's isolation claim, made machine-checkable.
pub fn hog_storm() -> ScenarioSpec {
    let mut s = ScenarioSpec::named(
        "hog_storm",
        "a 300 ‰ real-time spinner and two adaptive hogs on two CPUs survive \
         a six-hog storm phase: the reservation still delivers, fairness and \
         placement stay sane",
    );
    s.seed = 44;
    s.cpus = 2;
    s.members.push(Member::RealTimeSpin {
        name: "rt".into(),
        ppt: 300,
        period_ms: 10,
    });
    s.members.push(Member::Hog { name: "ha".into() });
    s.members.push(Member::Hog { name: "hb".into() });
    s.phases.push(phase("calm", 4.0, 1.0, 0, None));
    s.phases.push(phase("storm", 4.0, 1.0, 6, None));
    s.phases.push(phase("recovery", 4.0, 1.0, 0, None));
    s.slos.push(Slo::RtDelivery { min_ratio: 0.85 });
    s.slos.push(Slo::FairShare { min_ratio: 0.4 });
    s.slos.push(Slo::MigrationBudget { max: 300 });
    s.slos.push(Slo::NoStarvation { min_ppt: 5 });
    s
}

/// `mixed_rt_adaptive`: reserved isochronous work, adaptive multimedia
/// and background churn sharing a four-CPU machine.
pub fn mixed_rt_adaptive() -> ScenarioSpec {
    let mut s = ScenarioSpec::named(
        "mixed_rt_adaptive",
        "software modem (reserved) + video pipeline + hogs + Poisson churn \
         on four CPUs: reservations hold while the adaptive fleet fills the \
         rest of the machine",
    );
    s.seed = 55;
    s.cpus = 4;
    s.members.push(Member::Modem { reserved: true });
    s.members.push(Member::RealTimeSpin {
        name: "isoc".into(),
        ppt: 200,
        period_ms: 10,
    });
    s.members.push(Member::VideoPipeline {
        fps: 30.0,
        decode_mcycles: 4.0,
        render_mcycles: 0.4,
    });
    s.members.push(Member::Hog { name: "h0".into() });
    s.members.push(Member::Hog { name: "h1".into() });
    s.streams.push(ArrivalStream {
        name: "churn".into(),
        process: ArrivalProcess::Poisson { rate_hz: 2.0 },
        job: TransientJob::Worker {
            mcycles: 20.0,
            lifetime_s: 1.0,
        },
    });
    s.phases.push(phase("mixed", 12.0, 1.0, 0, None));
    s.slos.push(Slo::DeadlineMissRate { max: 0.03 });
    s.slos.push(Slo::RtDelivery { min_ratio: 0.85 });
    s.slos.push(Slo::MinThroughput { min_cpus: 2.0 });
    s.slos.push(Slo::FillBand {
        queue: "capture".into(),
        min: 0.01,
        max: 0.99,
        warmup_s: 3.0,
    });
    s
}

/// `modem_burst`: the §1 software modem keeps every deadline while
/// bursty best-effort load comes and goes around it.
pub fn modem_burst() -> ScenarioSpec {
    let mut s = ScenarioSpec::named(
        "modem_burst",
        "reserved software modem on one CPU against an on/off burst train \
         of transient hogs: isochronous deadlines hold through every burst",
    );
    s.seed = 66;
    s.cpus = 1;
    s.members.push(Member::Modem { reserved: true });
    s.members.push(Member::Hog {
        name: "background".into(),
    });
    s.streams.push(ArrivalStream {
        name: "bursts".into(),
        process: ArrivalProcess::OnOff {
            on_s: 1.5,
            off_s: 1.5,
            rate_hz: 3.0,
        },
        job: TransientJob::Hog { lifetime_s: 1.0 },
    });
    s.phases.push(phase("bursty", 12.0, 1.0, 0, None));
    s.slos.push(Slo::DeadlineMissRate { max: 0.02 });
    s.slos.push(Slo::NoStarvation { min_ppt: 2 });
    s.slos.push(Slo::MinThroughput { min_cpus: 0.7 });
    s
}

/// `pipeline_cascade`: two queue-coupled cascades (pulse pipeline and
/// disk reader) plus a typist — three progress signals regulated at once.
pub fn pipeline_cascade() -> ScenarioSpec {
    let mut s = ScenarioSpec::named(
        "pipeline_cascade",
        "figure-6 pulse pipeline + disk/reader cascade + typist on two CPUs: \
         every bounded queue stays off its stops",
    );
    s.seed = 77;
    s.cpus = 2;
    s.members.push(Member::PulsePipeline {
        steady_bytes_per_cycle: Some(2.5e-5),
    });
    s.members.push(Member::DiskIo {
        bandwidth_bytes_per_s: 2.0e6,
        cycles_per_byte: 100.0,
    });
    s.members.push(Member::Interactive {
        name: "typist".into(),
        keystrokes_hz: 5.0,
        mcycles_per_keystroke: 2.0,
    });
    s.phases.push(phase("cascade", 12.0, 1.0, 0, None));
    s.slos.push(Slo::FillBand {
        queue: "pipeline".into(),
        min: 0.02,
        max: 0.98,
        warmup_s: 3.0,
    });
    s.slos.push(Slo::FillBand {
        queue: "disk-buffer".into(),
        min: 0.0,
        max: 0.98,
        warmup_s: 3.0,
    });
    s.slos.push(Slo::NoStarvation { min_ppt: 5 });
    s.slos.push(Slo::MinThroughput { min_cpus: 0.5 });
    s
}

/// `churn_saturated`: a saturated small machine that scales out mid-run —
/// the hot-add hook under a heavy churning population.
pub fn churn_saturated() -> ScenarioSpec {
    let mut s = ScenarioSpec::named(
        "churn_saturated",
        "three hogs plus 6 Hz transient-hog churn saturate two CPUs; the \
         machine hot-adds two more mid-run and throughput follows",
    );
    s.seed = 88;
    s.cpus = 2;
    for i in 0..3 {
        s.members.push(Member::Hog {
            name: format!("base{i}"),
        });
    }
    s.streams.push(ArrivalStream {
        name: "churn".into(),
        process: ArrivalProcess::Poisson { rate_hz: 6.0 },
        job: TransientJob::Hog { lifetime_s: 1.0 },
    });
    s.phases.push(phase("cramped", 6.0, 1.0, 0, None));
    s.phases.push(phase("scale-out", 6.0, 1.0, 0, Some(4)));
    s.slos.push(Slo::NoStarvation { min_ppt: 5 });
    s.slos.push(Slo::FairShare { min_ratio: 0.3 });
    s.slos.push(Slo::MinThroughput { min_cpus: 1.6 });
    s.slos.push(Slo::MigrationBudget { max: 400 });
    s
}

/// The full built-in corpus, in a stable order.
pub fn corpus() -> Vec<ScenarioSpec> {
    vec![
        steady_video(),
        flash_crowd_8cpu(),
        diurnal_server(),
        hog_storm(),
        mixed_rt_adaptive(),
        modem_burst(),
        pipeline_cascade(),
        churn_saturated(),
    ]
}

/// The smoke subset CI runs on every push: the cheapest scenarios that
/// still cover a reservation, a queue-coupled pipeline, an arrival
/// process and a CPU hot-add.
pub fn smoke_corpus() -> Vec<ScenarioSpec> {
    vec![
        steady_video(),
        hog_storm(),
        modem_burst(),
        churn_saturated(),
    ]
}

/// `wall_steady_mix`: a real-time spinner holding its reservation
/// against two hogs — on **real OS threads**.  Three real seconds; the
/// SLOs are tolerance bands (wall-clock runs carry OS timing noise), not
/// the simulator's exact expectations.
pub fn wall_steady_mix() -> ScenarioSpec {
    let mut s = ScenarioSpec::named(
        "wall_steady_mix",
        "reserved spinner plus two hogs on the wall-clock backend; the \
         reservation is delivered within tolerance and nobody starves",
    );
    s.backend = Backend::WallClock;
    s.seed = 21;
    s.cpus = 1;
    s.members.push(Member::RealTimeSpin {
        name: "rt".into(),
        ppt: 200,
        period_ms: 20,
    });
    s.members.push(Member::Hog { name: "h0".into() });
    s.members.push(Member::Hog { name: "h1".into() });
    s.phases.push(phase("steady", 3.0, 1.0, 0, None));
    // Tolerance bands: the spinner must see a meaningful fraction of its
    // reservation, the hogs must not starve, and the executor must
    // deliver real work — but none of the simulator's exact numbers.
    s.slos.push(Slo::RtDelivery { min_ratio: 0.3 });
    s.slos.push(Slo::DeadlineMissRate { max: 0.5 });
    s.slos.push(Slo::NoStarvation { min_ppt: 1 });
    s.slos.push(Slo::MinThroughput { min_cpus: 0.15 });
    s
}

/// `wall_pipeline_churn`: the Figure 6 pulse pipeline plus Poisson
/// worker churn and a mid-run hog storm, sharded over two logical CPUs —
/// on **real OS threads**.
pub fn wall_pipeline_churn() -> ScenarioSpec {
    let mut s = ScenarioSpec::named(
        "wall_pipeline_churn",
        "steady pulse pipeline under transient churn and a hog injection on \
         the two-CPU wall-clock backend; the queue stays regulated within \
         a wide band",
    );
    s.backend = Backend::WallClock;
    s.seed = 22;
    s.cpus = 2;
    s.members.push(Member::PulsePipeline {
        steady_bytes_per_cycle: Some(2.5e-5),
    });
    s.members.push(Member::Hog { name: "bg".into() });
    s.streams.push(ArrivalStream {
        name: "churn".into(),
        process: ArrivalProcess::Poisson { rate_hz: 2.0 },
        job: TransientJob::Worker {
            mcycles: 5.0,
            lifetime_s: 0.5,
        },
    });
    s.phases.push(phase("warm", 1.5, 1.0, 0, None));
    s.phases.push(phase("surge", 1.5, 2.0, 1, None));
    s.slos.push(Slo::FillBand {
        queue: "pipeline".into(),
        min: 0.02,
        max: 0.98,
        warmup_s: 1.0,
    });
    s.slos.push(Slo::NoStarvation { min_ppt: 1 });
    s.slos.push(Slo::MinThroughput { min_cpus: 0.15 });
    s.slos.push(Slo::MigrationBudget { max: 200 });
    s
}

/// The wall-clock smoke subset: short tolerance-band scenarios CI runs
/// on real OS threads, proving the corpus machinery is backend-agnostic
/// (`scenario_runner --smoke --backend wall_clock`).  Kept separate from
/// [`smoke_corpus`] because wall-clock scenarios spend *real* seconds.
pub fn wall_clock_smoke_corpus() -> Vec<ScenarioSpec> {
    vec![wall_steady_mix(), wall_pipeline_churn()]
}

/// Looks a corpus scenario up by name (wall-clock smoke scenarios
/// included).
pub fn scenario_by_name(name: &str) -> Option<ScenarioSpec> {
    corpus()
        .into_iter()
        .chain(wall_clock_smoke_corpus())
        .find(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_scenario;
    use proptest::prelude::*;

    #[test]
    fn wall_clock_smoke_corpus_is_valid_and_distinctly_named() {
        let wall = wall_clock_smoke_corpus();
        assert!(wall.len() >= 2);
        let sim_names: Vec<String> = corpus().iter().map(|s| s.name.clone()).collect();
        for s in &wall {
            s.validate().unwrap_or_else(|e| panic!("{}: {e}", s.name));
            assert_eq!(s.backend, Backend::WallClock);
            assert!(!s.slos.is_empty(), "{} declares no SLOs", s.name);
            assert!(
                !sim_names.contains(&s.name),
                "wall scenario {} shadows a sim scenario",
                s.name
            );
            assert!(
                scenario_by_name(&s.name).is_some(),
                "{} must be addressable by name",
                s.name
            );
        }
    }

    #[test]
    fn corpus_is_at_least_eight_valid_uniquely_named_scenarios() {
        let all = corpus();
        assert!(all.len() >= 8);
        let mut names: Vec<&str> = all.iter().map(|s| s.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), all.len(), "names must be unique");
        for s in &all {
            s.validate().unwrap_or_else(|e| panic!("{}: {e}", s.name));
            assert!(!s.slos.is_empty(), "{} declares no SLOs", s.name);
            assert!(s.horizon_s() > 0.0);
        }
        for s in smoke_corpus() {
            assert!(
                scenario_by_name(&s.name).is_some(),
                "smoke scenario {} must be in the corpus",
                s.name
            );
        }
        assert!(scenario_by_name("steady_video").is_some());
        assert!(scenario_by_name("nonexistent").is_none());
    }

    #[test]
    fn a_shortened_corpus_scenario_runs_deterministically() {
        // The full corpus runs in release via `scenario_runner`; here a
        // shortened copy proves the plumbing end to end in debug time.
        let mut s = churn_saturated();
        s.phases[0].duration_s = 1.0;
        s.phases[1].duration_s = 1.0;
        s.slos.clear();
        let a = run_scenario(&s).unwrap();
        let b = run_scenario(&s).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.cpus, 4, "the hot-add still happens");
        assert!(a.jobs.spawned > 0);
    }

    proptest! {
        #[test]
        fn random_scenarios_never_panic_and_conserve_capacity(
            seed in 0u64..1_000_000,
            cpus in 1usize..=3,
            rate10 in 0u32..=60,
            lifetime_ms in (50u64..=1200),
            load10 in 0u32..=20,
            inject in 0u32..=4,
            grow in proptest::bool::ANY,
            two_phases in proptest::bool::ANY,
            job_kind in 0u32..=2,
            process_kind in 0u32..=3,
        ) {
            let rate_hz = rate10 as f64 / 10.0;
            let lifetime_s = lifetime_ms as f64 / 1000.0;
            let process = match process_kind {
                0 => ArrivalProcess::Poisson { rate_hz },
                1 => ArrivalProcess::OnOff { on_s: 0.3, off_s: 0.2, rate_hz },
                2 => ArrivalProcess::Diurnal {
                    base_hz: rate_hz * 0.2,
                    peak_hz: rate_hz,
                    day_s: 0.8,
                },
                _ => ArrivalProcess::FlashCrowd {
                    base_hz: rate_hz * 0.1,
                    at_s: 0.3,
                    duration_s: 0.2,
                    spike_hz: rate_hz * 3.0,
                },
            };
            let job = match job_kind {
                0 => TransientJob::Hog { lifetime_s },
                1 => TransientJob::Worker { mcycles: 5.0, lifetime_s },
                _ => TransientJob::Interactive {
                    keystrokes_hz: 10.0,
                    mcycles_per_keystroke: 0.5,
                    lifetime_s,
                },
            };
            let mut s = ScenarioSpec::named("fuzz", "random scenario");
            s.seed = seed;
            s.cpus = cpus;
            s.members.push(Member::Hog { name: "anchor".into() });
            if rate_hz > 0.0 {
                s.streams.push(ArrivalStream { name: "fz".into(), process, job });
            }
            s.phases.push(Phase {
                name: "p0".into(),
                duration_s: 0.4,
                load: load10 as f64 / 10.0,
                inject_hogs: inject,
                cpus: None,
            });
            if two_phases {
                s.phases.push(Phase {
                    name: "p1".into(),
                    duration_s: 0.4,
                    load: 1.0,
                    inject_hogs: 0,
                    cpus: if grow { Some(cpus + 1) } else { None },
                });
            }
            let report = run_scenario(&s).expect("fuzzed specs validate by construction");

            // No panic is half the property; the other half is physics:
            // work delivered cannot exceed machine capacity (plus the
            // budget-only migration penalties), idle cannot either, and
            // the transient population must balance.
            let used: u64 = report.stats.per_cpu.iter().map(|c| c.used_us).sum();
            let slack =
                report.stats.migrations * rrs_sim::SimConfig::default().migration_cost_us;
            prop_assert!(
                used as f64 <= report.capacity_us * 1.001 + slack as f64,
                "used {} vs capacity {}", used, report.capacity_us
            );
            let idle: u64 = report.stats.per_cpu.iter().map(|c| c.idle_us).sum();
            prop_assert!(
                idle as f64 <= report.capacity_us * 1.001,
                "idle {} vs capacity {}", idle, report.capacity_us
            );
            prop_assert!(report.jobs.departed <= report.jobs.spawned);
            prop_assert!(report.elapsed_s >= s.horizon_s() - 1e-9);
            prop_assert_eq!(report.jobs.installed, 1);
        }
    }
}
