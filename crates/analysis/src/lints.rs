//! The lint registry: each lint statically enforces an invariant the
//! workspace already guards dynamically (counting-allocator tests,
//! golden `SimStats`, proptest oracles), so violations fail in CI before
//! a golden re-record or a flaky zero-alloc run has to catch them.
//!
//! | lint | invariant |
//! |------|-----------|
//! | `determinism` | sim/scheduler/controller code is replay-deterministic: no wall clocks, no hash-order-dependent containers |
//! | `hot-path-no-alloc` | functions declared hot in `analysis.toml` contain no syntactic allocation or clone |
//! | `integer-time` | no new `f64`-seconds parameters in core/scheduler/sim signatures outside the deprecated API edge |
//! | `edge-only-by-id` | `by_id` maps are touched only at the public-API edge, never on hot paths |
//! | `panic-discipline` | steady-state paths carry no bare `unwrap()` or empty `expect("")` — panics must name the broken invariant |
//! | `unsafe-inventory` | every `unsafe` is enumerated and carries a `// SAFETY:` comment |
//! | `parallel-region` | the sharded scoped-thread region reaches shared state only through per-shard handles; barrier-merge machinery stays outside |

use crate::config::AnalysisConfig;
use crate::lexer::{self, FnSpan, Token, TokenKind};
use crate::report::{AnalysisReport, UnsafeSite, Violation};

/// One source file, pre-lexed into the views the lints need.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// Raw source lines (for `SAFETY:` lookback and allowlist matching).
    pub lines: Vec<String>,
    /// The full token stream, comments included, tests included.
    pub tokens: Vec<Token>,
    /// Production code only: `#[cfg(test)]` items elided, comments
    /// stripped.  Most lints scan this view.
    pub code: Vec<Token>,
    /// Function spans over [`SourceFile::code`].
    pub fns: Vec<FnSpan>,
}

impl SourceFile {
    /// Lexes `src` into all scanning views.
    pub fn parse(path: impl Into<String>, src: &str) -> Self {
        let tokens = lexer::lex(src);
        let code: Vec<Token> = lexer::elide_cfg_test(&tokens)
            .into_iter()
            .filter(|t| t.kind != TokenKind::Comment)
            .collect();
        let fns = lexer::fn_spans(&code);
        SourceFile {
            path: path.into(),
            lines: src.lines().map(str::to_owned).collect(),
            tokens,
            code,
            fns,
        }
    }

    fn line_text(&self, line: u32) -> String {
        self.lines
            .get(line.saturating_sub(1) as usize)
            .cloned()
            .unwrap_or_default()
    }
}

/// Runs every lint over `files` and reconciles against the allowlist.
pub fn run(config: &AnalysisConfig, files: &[SourceFile]) -> AnalysisReport {
    let mut raw = Vec::new();
    let mut inventory = Vec::new();
    for file in files {
        determinism(config, file, &mut raw);
        integer_time(config, file, &mut raw);
        edge_only_by_id(config, file, &mut raw);
        panic_discipline(config, file, &mut raw);
        unsafe_inventory(config, file, &mut raw, &mut inventory);
        parallel_region(config, file, &mut raw);
    }
    hot_path_no_alloc(config, files, &mut raw);
    parallel_region_presence(config, files, &mut raw);
    let line_text = |v: &Violation| {
        files
            .iter()
            .find(|f| f.path == v.file)
            .map(|f| f.line_text(v.line))
            .unwrap_or_default()
    };
    let mut report = AnalysisReport::reconcile(raw, config.allows.clone(), line_text);
    report.unsafe_inventory = inventory;
    report.files_scanned = files.len();
    report
}

/// `true` when `path` is `scope` or lies under the `scope` directory.
fn in_scope(path: &str, scopes: &[String]) -> bool {
    scopes
        .iter()
        .any(|s| path == s || path.starts_with(&format!("{s}/")))
}

/// `true` when the token texts starting at `i` are exactly `pattern`.
fn seq_at(tokens: &[Token], i: usize, pattern: &[&str]) -> bool {
    pattern
        .iter()
        .enumerate()
        .all(|(k, p)| tokens.get(i + k).is_some_and(|t| t.text == *p))
}

/// Forbids wall clocks and hash-ordered containers in replay-deterministic
/// crates.  One violation per site: `Instant` (reported as `Instant::now`
/// when called), `SystemTime`, `HashMap`, `HashSet`, `thread::current`.
fn determinism(config: &AnalysisConfig, file: &SourceFile, out: &mut Vec<Violation>) {
    if !in_scope(&file.path, &config.determinism_paths) {
        return;
    }
    let code = &file.code;
    for (i, t) in code.iter().enumerate() {
        if t.kind != TokenKind::Ident {
            continue;
        }
        let snippet = match t.text.as_str() {
            "HashMap" | "HashSet" | "SystemTime" => t.text.clone(),
            "Instant" => {
                if seq_at(code, i + 1, &[":", ":", "now"]) {
                    "Instant::now".to_owned()
                } else {
                    "Instant".to_owned()
                }
            }
            "thread" if seq_at(code, i + 1, &[":", ":", "current"]) => "thread::current".to_owned(),
            _ => continue,
        };
        out.push(Violation {
            lint: "determinism",
            file: file.path.clone(),
            line: t.line,
            message: format!(
                "`{snippet}` in a replay-deterministic crate: simulation outcomes must not \
                 depend on wall clocks or hash iteration order"
            ),
            snippet,
        });
    }
}

const ALLOC_PATTERNS: &[(&[&str], &str)] = &[
    (&["Vec", ":", ":", "new"], "Vec::new"),
    (&["vec", "!"], "vec!"),
    (&["Box", ":", ":", "new"], "Box::new"),
    (&["String", ":", ":", "new"], "String::new"),
    (&["format", "!"], "format!"),
    (&[".", "collect"], ".collect()"),
    (&[".", "clone"], ".clone()"),
    (&[".", "to_vec"], ".to_vec()"),
    (&[".", "to_string"], ".to_string()"),
    (&[".", "to_owned"], ".to_owned()"),
];

/// Forbids syntactic allocation (and owned clones) inside the functions
/// `analysis.toml` declares hot, complementing the dynamic
/// counting-allocator test.  A configured function that no longer exists
/// is itself a violation, so the hot list cannot silently rot after a
/// rename.
fn hot_path_no_alloc(config: &AnalysisConfig, files: &[SourceFile], out: &mut Vec<Violation>) {
    for hot in &config.hot_functions {
        let Some(file) = files.iter().find(|f| f.path == hot.file) else {
            out.push(Violation {
                lint: "hot-path-no-alloc",
                file: hot.file.clone(),
                line: 0,
                snippet: format!("{}::{}", hot.file, hot.function),
                message: "hot-declared file not found in the scanned workspace".to_owned(),
            });
            continue;
        };
        let spans: Vec<&FnSpan> = file
            .fns
            .iter()
            .filter(|s| hot.function == "*" || s.name == hot.function)
            .collect();
        if spans.is_empty() {
            out.push(Violation {
                lint: "hot-path-no-alloc",
                file: hot.file.clone(),
                line: 0,
                snippet: format!("{}::{}", hot.file, hot.function),
                message: "hot-declared function not found — update analysis.toml after renames"
                    .to_owned(),
            });
            continue;
        }
        for span in spans {
            let body = &file.code[span.body_start..=span.body_end.min(file.code.len() - 1)];
            for i in 0..body.len() {
                for (pattern, label) in ALLOC_PATTERNS {
                    if seq_at(body, i, pattern) {
                        out.push(Violation {
                            lint: "hot-path-no-alloc",
                            file: file.path.clone(),
                            line: body[i].line,
                            snippet: (*label).to_owned(),
                            message: format!(
                                "`{label}` inside hot function `{}`: steady-state dispatch \
                                 paths must not allocate (see tests/zero_alloc_steady_state.rs)",
                                span.name
                            ),
                        });
                    }
                }
            }
        }
    }
}

/// Flags `f64` seconds parameters (`*_s`, `*_secs`, `seconds`) in
/// function signatures of integer-time crates.  Time crosses the host
/// boundary as integer-microsecond `SimTime`; the surviving f64 edges
/// are allowlisted with justifications.
fn integer_time(config: &AnalysisConfig, file: &SourceFile, out: &mut Vec<Violation>) {
    if !in_scope(&file.path, &config.integer_time_paths) {
        return;
    }
    let code = &file.code;
    let mut i = 0usize;
    while i < code.len() {
        if !code[i].is_ident("fn") {
            i += 1;
            continue;
        }
        let Some(name) = code.get(i + 1).filter(|t| t.kind == TokenKind::Ident) else {
            i += 1;
            continue;
        };
        // Scan the signature up to the body `{` or declaration `;`.
        let mut j = i + 2;
        let mut depth = 0i64;
        while j < code.len() {
            let t = &code[j];
            if t.kind == TokenKind::Punct {
                match t.text.as_str() {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    "{" | ";" if depth == 0 => break,
                    _ => {}
                }
            }
            if t.kind == TokenKind::Ident
                && seconds_name(&t.text)
                && seq_at(code, j + 1, &[":", "f64"])
            {
                out.push(Violation {
                    lint: "integer-time",
                    file: file.path.clone(),
                    line: t.line,
                    snippet: format!("{}({}: f64)", name.text, t.text),
                    message: format!(
                        "f64-seconds parameter `{}` in `{}`: time crosses this layer as \
                         integer-microsecond SimTime; f64 seconds survive only at the \
                         deprecated API edge",
                        t.text, name.text
                    ),
                });
            }
            j += 1;
        }
        i = j.max(i + 1);
    }
}

fn seconds_name(name: &str) -> bool {
    name.ends_with("_s") || name.ends_with("_secs") || name == "seconds" || name == "secs"
}

/// Confines `by_id` map access to the declared public-API-edge files, and
/// bans it outright inside hot-declared functions even there (the PR 7
/// contract: steady-state spans are dense-handle only).
fn edge_only_by_id(config: &AnalysisConfig, file: &SourceFile, out: &mut Vec<Violation>) {
    if !in_scope(&file.path, &config.edge_paths) {
        return;
    }
    let is_edge_file = config.edge_files.iter().any(|f| f == &file.path);
    let hot_spans: Vec<&FnSpan> = config
        .hot_functions
        .iter()
        .filter(|h| h.file == file.path)
        .flat_map(|h| {
            file.fns
                .iter()
                .filter(move |s| h.function == "*" || s.name == h.function)
        })
        .collect();
    for (i, t) in file.code.iter().enumerate() {
        if !t.is_ident("by_id") {
            continue;
        }
        let in_hot = hot_spans
            .iter()
            .find(|s| i >= s.body_start && i <= s.body_end);
        if let Some(span) = in_hot {
            out.push(Violation {
                lint: "edge-only-by-id",
                file: file.path.clone(),
                line: t.line,
                snippet: format!("by_id in {}", span.name),
                message: format!(
                    "`by_id` inside hot function `{}`: steady-state spans must use dense \
                     slot handles, id maps survive only at the public API edge",
                    span.name
                ),
            });
        } else if !is_edge_file {
            out.push(Violation {
                lint: "edge-only-by-id",
                file: file.path.clone(),
                line: t.line,
                snippet: "by_id".to_owned(),
                message: "`by_id` outside the declared public-API-edge files (see \
                          analysis.toml [lints.edge-only-by-id] edge_files)"
                    .to_owned(),
            });
        }
    }
}

/// Forbids bare `unwrap()` and empty `expect("")` in steady-state crates:
/// a slot-invariant panic must name the invariant that broke.
fn panic_discipline(config: &AnalysisConfig, file: &SourceFile, out: &mut Vec<Violation>) {
    if !in_scope(&file.path, &config.panic_paths) {
        return;
    }
    let code = &file.code;
    for i in 0..code.len() {
        if seq_at(code, i, &[".", "unwrap", "(", ")"]) {
            out.push(Violation {
                lint: "panic-discipline",
                file: file.path.clone(),
                line: code[i + 1].line,
                snippet: ".unwrap()".to_owned(),
                message: "bare `unwrap()` on a steady-state path: use \
                          `expect(\"<named invariant>\")` so a panic identifies which \
                          invariant broke, or add a justified allowlist entry"
                    .to_owned(),
            });
        }
        if seq_at(code, i, &[".", "expect", "("])
            && code.get(i + 3).is_some_and(|t| {
                t.kind == TokenKind::Literal && (t.text == "\"\"" || t.text == "r\"\"")
            })
        {
            out.push(Violation {
                lint: "panic-discipline",
                file: file.path.clone(),
                line: code[i + 1].line,
                snippet: "expect(\"\")".to_owned(),
                message: "empty `expect(\"\")` message: name the invariant that broke".to_owned(),
            });
        }
    }
}

/// Enumerates every `unsafe` occurrence (tests included) into the
/// inventory and flags any without a `// SAFETY:` comment on the same
/// line or within the three lines above.
fn unsafe_inventory(
    config: &AnalysisConfig,
    file: &SourceFile,
    out: &mut Vec<Violation>,
    inventory: &mut Vec<UnsafeSite>,
) {
    if !in_scope(&file.path, &config.unsafe_paths) {
        return;
    }
    for (i, t) in file.tokens.iter().enumerate() {
        if !t.is_ident("unsafe") {
            continue;
        }
        let kind = file
            .tokens
            .iter()
            .skip(i + 1)
            .find(|n| n.kind != TokenKind::Comment)
            .map(|n| match n.text.as_str() {
                "impl" | "fn" | "trait" => n.text.clone(),
                _ => "block".to_owned(),
            })
            .unwrap_or_else(|| "block".to_owned());
        let line = t.line as usize;
        let documented = (line.saturating_sub(3)..=line)
            .filter_map(|l| file.lines.get(l.saturating_sub(1)))
            .any(|text| text.contains("SAFETY:"));
        if !documented {
            out.push(Violation {
                lint: "unsafe-inventory",
                file: file.path.clone(),
                line: t.line,
                snippet: format!("unsafe {kind}"),
                message: format!(
                    "`unsafe {kind}` without a `// SAFETY:` comment on the same line or \
                     the three lines above"
                ),
            });
        }
        inventory.push(UnsafeSite {
            file: file.path.clone(),
            line: t.line,
            kind,
            documented,
        });
    }
}

/// Audits the sharded parallel region: inside every
/// `std::thread::scope(...)` call in the configured file, `self.<field>`
/// may touch only the per-shard handles, and the barrier-merge machinery
/// (trace merge, rebalancer state) must not be reachable at all.
fn parallel_region(config: &AnalysisConfig, file: &SourceFile, out: &mut Vec<Violation>) {
    if file.path != config.parallel_file || config.parallel_file.is_empty() {
        return;
    }
    let code = &file.code;
    let mut i = 0usize;
    while i < code.len() {
        if !(seq_at(code, i, &["thread", ":", ":", "scope"]) && seq_at(code, i + 4, &["("])) {
            i += 1;
            continue;
        }
        let open = i + 4;
        let close = lexer::matching_close(code, open);
        let region = &code[open..close.min(code.len())];
        for (k, t) in region.iter().enumerate() {
            if t.is_ident("self") && seq_at(region, k + 1, &["."]) {
                if let Some(field) = region.get(k + 2).filter(|f| f.kind == TokenKind::Ident) {
                    if !config
                        .parallel_allowed_self_fields
                        .iter()
                        .any(|a| a == &field.text)
                    {
                        out.push(Violation {
                            lint: "parallel-region",
                            file: file.path.clone(),
                            line: field.line,
                            snippet: format!("self.{}", field.text),
                            message: format!(
                                "`self.{}` inside the scoped-thread parallel region: shards \
                                 may reach shared state only through the allowlisted \
                                 per-shard handles (shared state merges at barriers)",
                                field.text
                            ),
                        });
                    }
                }
            }
            if t.kind == TokenKind::Ident && config.parallel_forbidden.iter().any(|f| f == &t.text)
            {
                out.push(Violation {
                    lint: "parallel-region",
                    file: file.path.clone(),
                    line: t.line,
                    snippet: t.text.clone(),
                    message: format!(
                        "barrier-merge machinery `{}` referenced inside the parallel \
                         region: merges must happen at barriers, after every shard joined",
                        t.text
                    ),
                });
            }
        }
        i = close.max(i + 1);
    }
}

/// The parallel region must *exist*: if the configured file no longer
/// contains a `thread::scope` call the audit has silently lost its
/// subject, which is itself an error.
fn parallel_region_presence(
    config: &AnalysisConfig,
    files: &[SourceFile],
    out: &mut Vec<Violation>,
) {
    if config.parallel_file.is_empty() {
        return;
    }
    let found = files.iter().any(|f| {
        f.path == config.parallel_file
            && (0..f.code.len()).any(|i| seq_at(&f.code, i, &["thread", ":", ":", "scope"]))
    });
    if !found {
        out.push(Violation {
            lint: "parallel-region",
            file: config.parallel_file.clone(),
            line: 0,
            snippet: "thread::scope".to_owned(),
            message: "no `thread::scope` parallel region found in the configured file — \
                      update analysis.toml if the sharded executor moved"
                .to_owned(),
        });
    }
}
