//! Violation and report types, and the allowlist reconciliation that
//! turns raw lint findings into the final verdict.

use crate::config::AllowEntry;

/// One lint finding at a specific source location.
#[derive(Debug, Clone)]
pub struct Violation {
    /// The lint that fired.
    pub lint: &'static str,
    /// Workspace-relative file.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// The matched construct (`Instant::now`, `self.loads`, ...); this is
    /// what allowlist patterns are tested against, alongside the raw
    /// source line.
    pub snippet: String,
    /// Human-readable explanation of the broken invariant.
    pub message: String,
}

/// One `unsafe` occurrence, for the inventory report.
#[derive(Debug, Clone)]
pub struct UnsafeSite {
    /// Workspace-relative file.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// What the keyword introduces: `impl`, `fn`, `trait` or `block`.
    pub kind: String,
    /// Whether a `// SAFETY:` comment accompanies it.
    pub documented: bool,
}

/// The outcome of one analysis run.
#[derive(Debug, Default)]
pub struct AnalysisReport {
    /// Findings that survived allowlist reconciliation.
    pub violations: Vec<Violation>,
    /// Findings absorbed by an allowlist entry, with that entry's index
    /// into [`AnalysisReport::allows`].
    pub allowed: Vec<(Violation, usize)>,
    /// Indices of allowlist entries that matched nothing — stale entries
    /// are themselves a failure, so exemptions cannot outlive their
    /// reason.
    pub stale_allows: Vec<usize>,
    /// The allowlist the run was reconciled against (for reporting).
    pub allows: Vec<AllowEntry>,
    /// Every `unsafe` occurrence found, documented or not (undocumented
    /// ones additionally surface as `unsafe-inventory` violations).
    pub unsafe_inventory: Vec<UnsafeSite>,
    /// Number of source files scanned.
    pub files_scanned: usize,
}

impl AnalysisReport {
    /// `true` when there are no violations and no stale allowlist entries.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty() && self.stale_allows.is_empty()
    }

    /// Reconciles raw findings against the allowlist: each entry may
    /// absorb up to `count` matching findings in its file; everything
    /// else (and every entry left unused) is reported.
    pub fn reconcile(
        raw: Vec<Violation>,
        allows: Vec<AllowEntry>,
        line_text: impl Fn(&Violation) -> String,
    ) -> Self {
        let mut used = vec![0usize; allows.len()];
        let mut report = AnalysisReport {
            allows,
            ..Default::default()
        };
        for v in raw {
            let line = line_text(&v);
            let slot = report.allows.iter().enumerate().position(|(k, a)| {
                a.lint == v.lint
                    && a.file == v.file
                    && used[k] < a.count
                    && (v.snippet.contains(&a.pattern) || line.contains(&a.pattern))
            });
            match slot {
                Some(k) => {
                    used[k] += 1;
                    report.allowed.push((v, k));
                }
                None => report.violations.push(v),
            }
        }
        report.stale_allows = used
            .iter()
            .enumerate()
            .filter(|&(_, &n)| n == 0)
            .map(|(k, _)| k)
            .collect();
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(lint: &'static str, file: &str, snippet: &str) -> Violation {
        Violation {
            lint,
            file: file.to_owned(),
            line: 1,
            snippet: snippet.to_owned(),
            message: String::new(),
        }
    }

    fn allow(lint: &str, file: &str, pattern: &str, count: usize) -> AllowEntry {
        AllowEntry {
            lint: lint.to_owned(),
            file: file.to_owned(),
            pattern: pattern.to_owned(),
            count,
            why: "test".to_owned(),
        }
    }

    #[test]
    fn allow_entries_absorb_up_to_count_and_go_stale_when_unused() {
        let raw = vec![
            v("determinism", "a.rs", "Instant::now"),
            v("determinism", "a.rs", "Instant::now"),
            v("determinism", "a.rs", "Instant::now"),
            v("determinism", "b.rs", "HashMap"),
        ];
        let allows = vec![
            allow("determinism", "a.rs", "Instant::now", 2),
            allow("determinism", "c.rs", "HashSet", 1),
        ];
        let report = AnalysisReport::reconcile(raw, allows, |_| String::new());
        // Two absorbed, the third Instant::now and the HashMap remain.
        assert_eq!(report.allowed.len(), 2);
        assert_eq!(report.violations.len(), 2);
        // The c.rs entry matched nothing.
        assert_eq!(report.stale_allows, vec![1]);
        assert!(!report.is_clean());
    }

    #[test]
    fn wrong_lint_or_file_never_matches() {
        let raw = vec![v("panic-discipline", "a.rs", "unwrap()")];
        let allows = vec![allow("determinism", "a.rs", "unwrap()", 1)];
        let report = AnalysisReport::reconcile(raw, allows, |_| String::new());
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.stale_allows, vec![0]);
    }
}
