//! # rrs-analysis — the workspace invariant linter
//!
//! A self-contained static-analysis pass over the workspace source that
//! machine-checks the load-bearing contracts every other crate relies
//! on: steady-state paths allocate nothing, the sim core is
//! replay-deterministic, `by_id` maps survive only at the public API
//! edge, panics name their invariant, `unsafe` carries `SAFETY:`
//! documentation, and the sharded parallel region touches shared state
//! only at barriers.  Each lint is grounded in an invariant the repo
//! already tests *dynamically*; the linter makes the same contract fail
//! at the source level, before a golden re-record or a counting-
//! allocator test has to catch it.
//!
//! The pass ships its own small Rust [`lexer`] (comment-, string- and
//! attribute-aware; `#[cfg(test)]` items are elided for production-path
//! lints) and a minimal [`toml`] reader for the checked-in
//! `analysis.toml` of per-lint path scopes and justified allowlist
//! entries — no external parser, because the workspace builds offline.
//!
//! Run it with:
//!
//! ```text
//! cargo run -p rrs-analysis -- --deny
//! ```
//!
//! which exits non-zero on any violation *or* any stale allowlist entry
//! (an exemption that no longer matches anything must be deleted).  See
//! the README's "Static analysis" section for the lint catalogue and the
//! allowlist policy.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod config;
pub mod lexer;
pub mod lints;
pub mod report;
pub mod toml;
pub mod walk;

use std::path::Path;

pub use config::AnalysisConfig;
pub use lints::SourceFile;
pub use report::{AnalysisReport, UnsafeSite, Violation};

/// Loads `analysis.toml` from `path`.
pub fn load_config(path: &Path) -> Result<AnalysisConfig, String> {
    let src = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let doc = toml::parse(&src)?;
    AnalysisConfig::from_toml(&doc)
}

/// Walks the workspace at `root`, lexes every source file in the
/// configured include set, and runs the full lint registry.
pub fn analyze_workspace(root: &Path, config: &AnalysisConfig) -> Result<AnalysisReport, String> {
    let sources = walk::collect_sources(root, &config.include)
        .map_err(|e| format!("source walk failed: {e}"))?;
    let files: Vec<SourceFile> = sources
        .into_iter()
        .map(|(path, src)| SourceFile::parse(path, &src))
        .collect();
    Ok(lints::run(config, &files))
}

/// Locates the workspace root from the crate's own manifest directory
/// (`crates/analysis` → two levels up), falling back to the current
/// directory.  Lets `cargo run -p rrs-analysis` work from any cwd inside
/// the workspace.
pub fn default_root() -> std::path::PathBuf {
    match option_env!("CARGO_MANIFEST_DIR") {
        Some(dir) => {
            let p = Path::new(dir);
            p.parent().and_then(Path::parent).unwrap_or(p).to_path_buf()
        }
        None => std::path::PathBuf::from("."),
    }
}
