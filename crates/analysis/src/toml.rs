//! A minimal TOML-subset reader for `analysis.toml`.
//!
//! The workspace is offline-vendored, so the linter ships its own reader
//! for exactly the subset its config uses: `[table.paths]` headers,
//! `[[array.of.tables]]` headers, and `key = value` pairs where a value
//! is a basic string, an integer, a boolean, or a (possibly multi-line)
//! array of those.  Bare keys may contain letters, digits, `-` and `_`
//! (lint names are kebab-case).  `#` comments are stripped outside
//! strings.  Anything outside this subset is a hard error — the config
//! is checked in, so failing loudly beats guessing.

use std::collections::BTreeMap;

/// A parsed TOML value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A basic string.
    Str(String),
    /// An integer.
    Int(i64),
    /// A boolean.
    Bool(bool),
    /// An array of values.
    Array(Vec<Value>),
    /// A table of key/value pairs (also used for the document root).
    Table(BTreeMap<String, Value>),
}

impl Value {
    /// Looks up a nested table entry by dotted path.
    pub fn get(&self, path: &str) -> Option<&Value> {
        let mut cur = self;
        for part in path.split('.') {
            match cur {
                Value::Table(map) => cur = map.get(part)?,
                _ => return None,
            }
        }
        Some(cur)
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an integer, if it is one.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value as a table, if it is one.
    pub fn as_table(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Table(map) => Some(map),
            _ => None,
        }
    }

    /// Convenience: the entry at `path` as a list of strings (empty when
    /// absent).
    pub fn str_list(&self, path: &str) -> Vec<String> {
        self.get(path)
            .and_then(Value::as_array)
            .map(|items| {
                items
                    .iter()
                    .filter_map(|v| v.as_str().map(str::to_owned))
                    .collect()
            })
            .unwrap_or_default()
    }
}

/// Parses a TOML-subset document into its root table.
pub fn parse(src: &str) -> Result<Value, String> {
    let mut root = BTreeMap::new();
    // Path of the table currently being filled; for `[[...]]` headers the
    // last element of the array at that path.
    let mut current: Vec<String> = Vec::new();
    let mut lines = src.lines().enumerate().peekable();
    while let Some((lineno, raw)) = lines.next() {
        let line = strip_comment(raw).trim().to_owned();
        if line.is_empty() {
            continue;
        }
        let err = |msg: &str| format!("analysis.toml line {}: {}", lineno + 1, msg);
        if let Some(header) = line.strip_prefix("[[").and_then(|s| s.strip_suffix("]]")) {
            let path = split_key_path(header).map_err(|e| err(&e))?;
            push_array_table(&mut root, &path).map_err(|e| err(&e))?;
            current = path;
        } else if let Some(header) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
            let path = split_key_path(header).map_err(|e| err(&e))?;
            ensure_table(&mut root, &path).map_err(|e| err(&e))?;
            current = path;
        } else if let Some(eq) = line.find('=') {
            let key = line[..eq].trim();
            if !is_bare_key(key) {
                return Err(err(&format!("invalid key {key:?}")));
            }
            let mut value_src = line[eq + 1..].trim().to_owned();
            // Multi-line arrays: keep appending lines until brackets
            // balance outside strings.
            while !brackets_balanced(&value_src) {
                match lines.next() {
                    Some((_, next)) => {
                        value_src.push(' ');
                        value_src.push_str(strip_comment(next).trim());
                    }
                    None => return Err(err("unterminated array")),
                }
            }
            let value = parse_value(value_src.trim()).map_err(|e| err(&e))?;
            let table = current_table(&mut root, &current).map_err(|e| err(&e))?;
            if table.insert(key.to_owned(), value).is_some() {
                return Err(err(&format!("duplicate key {key:?}")));
            }
        } else {
            return Err(err(&format!("unrecognised line {line:?}")));
        }
    }
    Ok(Value::Table(root))
}

fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let bytes = line.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'"' => in_str = !in_str,
            b'\\' if in_str => i += 1,
            b'#' if !in_str => return &line[..i],
            _ => {}
        }
        i += 1;
    }
    line
}

fn is_bare_key(key: &str) -> bool {
    !key.is_empty()
        && key
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
}

fn split_key_path(header: &str) -> Result<Vec<String>, String> {
    let parts: Vec<String> = header.trim().split('.').map(str::to_owned).collect();
    for p in &parts {
        if !is_bare_key(p) {
            return Err(format!("invalid table name part {p:?}"));
        }
    }
    Ok(parts)
}

fn brackets_balanced(src: &str) -> bool {
    let mut depth = 0i64;
    let mut in_str = false;
    let bytes = src.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'"' => in_str = !in_str,
            b'\\' if in_str => i += 1,
            b'[' if !in_str => depth += 1,
            b']' if !in_str => depth -= 1,
            _ => {}
        }
        i += 1;
    }
    depth <= 0
}

/// Walks to (creating as needed) the table at `path`, descending into the
/// last element of any array-of-tables met along the way.
fn ensure_table<'a>(
    root: &'a mut BTreeMap<String, Value>,
    path: &[String],
) -> Result<&'a mut BTreeMap<String, Value>, String> {
    let mut cur = root;
    for part in path {
        let entry = cur
            .entry(part.clone())
            .or_insert_with(|| Value::Table(BTreeMap::new()));
        cur = match entry {
            Value::Table(map) => map,
            Value::Array(items) => match items.last_mut() {
                Some(Value::Table(map)) => map,
                _ => return Err(format!("{part:?} is not a table")),
            },
            _ => return Err(format!("{part:?} is not a table")),
        };
    }
    Ok(cur)
}

fn push_array_table(root: &mut BTreeMap<String, Value>, path: &[String]) -> Result<(), String> {
    let (last, parents) = path
        .split_last()
        .ok_or_else(|| "empty table name".to_owned())?;
    let parent = ensure_table(root, parents)?;
    let entry = parent
        .entry(last.clone())
        .or_insert_with(|| Value::Array(Vec::new()));
    match entry {
        Value::Array(items) => {
            items.push(Value::Table(BTreeMap::new()));
            Ok(())
        }
        _ => Err(format!("{last:?} is not an array of tables")),
    }
}

fn current_table<'a>(
    root: &'a mut BTreeMap<String, Value>,
    current: &[String],
) -> Result<&'a mut BTreeMap<String, Value>, String> {
    ensure_table(root, current)
}

fn parse_value(src: &str) -> Result<Value, String> {
    let src = src.trim();
    if let Some(rest) = src.strip_prefix('"') {
        let (s, consumed) = parse_string(rest)?;
        if rest[consumed..].trim_start().is_empty() {
            Ok(Value::Str(s))
        } else {
            Err(format!("trailing content after string in {src:?}"))
        }
    } else if src == "true" {
        Ok(Value::Bool(true))
    } else if src == "false" {
        Ok(Value::Bool(false))
    } else if let Some(inner) = src.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
        let mut items = Vec::new();
        for piece in split_top_level(inner)? {
            let piece = piece.trim();
            if !piece.is_empty() {
                items.push(parse_value(piece)?);
            }
        }
        Ok(Value::Array(items))
    } else if let Ok(n) = src.replace('_', "").parse::<i64>() {
        Ok(Value::Int(n))
    } else {
        Err(format!("unsupported value {src:?}"))
    }
}

/// Parses a basic string body (after the opening quote); returns the
/// unescaped text and the number of bytes consumed **including** the
/// closing quote.
fn parse_string(rest: &str) -> Result<(String, usize), String> {
    let mut out = String::new();
    let mut chars = rest.char_indices();
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => return Ok((out, i + 1)),
            '\\' => match chars.next() {
                Some((_, 'n')) => out.push('\n'),
                Some((_, 't')) => out.push('\t'),
                Some((_, '"')) => out.push('"'),
                Some((_, '\\')) => out.push('\\'),
                Some((_, other)) => return Err(format!("unsupported escape \\{other}")),
                None => return Err("unterminated escape".to_owned()),
            },
            _ => out.push(c),
        }
    }
    Err("unterminated string".to_owned())
}

/// Splits an array body on commas at bracket depth zero, respecting
/// strings.
fn split_top_level(src: &str) -> Result<Vec<String>, String> {
    let mut out = Vec::new();
    let mut piece = String::new();
    let mut depth = 0i64;
    let mut in_str = false;
    let mut chars = src.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => {
                in_str = !in_str;
                piece.push(c);
            }
            '\\' if in_str => {
                piece.push(c);
                if let Some(n) = chars.next() {
                    piece.push(n);
                }
            }
            '[' if !in_str => {
                depth += 1;
                piece.push(c);
            }
            ']' if !in_str => {
                depth -= 1;
                piece.push(c);
            }
            ',' if !in_str && depth == 0 => {
                out.push(std::mem::take(&mut piece));
            }
            _ => piece.push(c),
        }
    }
    if in_str {
        return Err("unterminated string in array".to_owned());
    }
    out.push(piece);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_tables_arrays_and_scalars() {
        let doc = r#"
            # top comment
            [paths]
            include = ["crates", "src"] # trailing comment

            [lints.determinism]
            paths = [
                "crates/core/src",
                "crates/sim/src",
            ]
            enabled = true
            max = 2

            [[lints.determinism.allow]]
            file = "a.rs"
            why = "says \"so\""

            [[lints.determinism.allow]]
            file = "b.rs"
            why = "other"
        "#;
        let v = parse(doc).unwrap();
        assert_eq!(v.str_list("paths.include"), vec!["crates", "src"]);
        assert_eq!(
            v.str_list("lints.determinism.paths"),
            vec!["crates/core/src", "crates/sim/src"]
        );
        assert_eq!(v.get("lints.determinism.enabled"), Some(&Value::Bool(true)));
        assert_eq!(
            v.get("lints.determinism.max").and_then(Value::as_int),
            Some(2)
        );
        let allows = v
            .get("lints.determinism.allow")
            .unwrap()
            .as_array()
            .unwrap();
        assert_eq!(allows.len(), 2);
        assert_eq!(
            allows[0].get("why").and_then(Value::as_str),
            Some("says \"so\"")
        );
        assert_eq!(allows[1].get("file").and_then(Value::as_str), Some("b.rs"));
    }

    #[test]
    fn keys_after_array_of_tables_land_in_the_last_entry() {
        let doc = "[[x.y]]\na = 1\n[[x.y]]\na = 2\n";
        let v = parse(doc).unwrap();
        let items = v.get("x.y").unwrap().as_array().unwrap();
        assert_eq!(items[0].get("a").and_then(Value::as_int), Some(1));
        assert_eq!(items[1].get("a").and_then(Value::as_int), Some(2));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("key key key").is_err());
        assert!(parse("k = {inline = 1}").is_err());
        assert!(parse("k = \"unterminated").is_err());
        assert!(parse("[a]\nk = 1\nk = 2").is_err());
    }
}
