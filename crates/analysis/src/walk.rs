//! Deterministic workspace source walker.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directory names never descended into: build output, the vendored
/// dependency miniatures (external code, not under the workspace's
/// invariants), the lint fixture corpus (violations on purpose), and VCS
/// metadata.
const SKIP_DIRS: &[&str] = &["target", "vendor", "analysis_fixtures", ".git", "results"];

/// Collects every `.rs` file under the `include` directories of `root`,
/// returning `(workspace-relative path, contents)` pairs sorted by path
/// so runs are deterministic.
pub fn collect_sources(root: &Path, include: &[String]) -> io::Result<Vec<(String, String)>> {
    let mut out = Vec::new();
    for dir in include {
        let abs = root.join(dir);
        if abs.is_dir() {
            visit(&abs, &mut out)?;
        } else if abs.extension().is_some_and(|e| e == "rs") {
            out.push(abs);
        }
    }
    let mut sources = Vec::with_capacity(out.len());
    for path in out {
        let rel = rel_path(root, &path);
        let src = fs::read_to_string(&path)?;
        sources.push((rel, src));
    }
    sources.sort_by(|a, b| a.0.cmp(&b.0));
    sources.dedup_by(|a, b| a.0 == b.0);
    Ok(sources)
}

fn visit(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(dir)?.collect::<io::Result<_>>()?;
    entries.sort_by_key(|e| e.path());
    for entry in entries {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_ref()) {
                visit(&path, out)?;
            }
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}
