//! `rrs-analysis` — run the workspace invariant linter.
//!
//! ```text
//! cargo run -p rrs-analysis -- [--deny] [--root <dir>] [--config <file>] [--list]
//! ```
//!
//! Without flags the run is report-only (exit 0).  With `--deny` any
//! violation, stale allowlist entry, or config error exits non-zero —
//! this is the mode CI blocks on.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut deny = false;
    let mut list = false;
    let mut root = rrs_analysis::default_root();
    let mut config_path: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny" => deny = true,
            "--list" => list = true,
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => return usage("--root needs a directory"),
            },
            "--config" => match args.next() {
                Some(file) => config_path = Some(PathBuf::from(file)),
                None => return usage("--config needs a file"),
            },
            other => return usage(&format!("unknown flag {other:?}")),
        }
    }
    if list {
        println!("lints enforced by rrs-analysis (scopes in analysis.toml):");
        for name in rrs_analysis::config::LINT_NAMES {
            println!("  {name}");
        }
        return ExitCode::SUCCESS;
    }
    let config_path = config_path.unwrap_or_else(|| root.join("analysis.toml"));
    let config = match rrs_analysis::load_config(&config_path) {
        Ok(config) => config,
        Err(e) => {
            eprintln!("rrs-analysis: config error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let report = match rrs_analysis::analyze_workspace(&root, &config) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("rrs-analysis: {e}");
            return ExitCode::FAILURE;
        }
    };

    for v in &report.violations {
        println!(
            "violation[{}] {}:{}: {} — {}",
            v.lint, v.file, v.line, v.snippet, v.message
        );
    }
    for idx in &report.stale_allows {
        let a = &report.allows[*idx];
        println!(
            "stale-allow[{}] {}: pattern {:?} matched nothing — delete the entry (why was: {})",
            a.lint, a.file, a.pattern, a.why
        );
    }

    let documented = report
        .unsafe_inventory
        .iter()
        .filter(|s| s.documented)
        .count();
    println!(
        "unsafe inventory: {} site(s), {} documented",
        report.unsafe_inventory.len(),
        documented
    );
    for site in &report.unsafe_inventory {
        println!(
            "  unsafe {} at {}:{} {}",
            site.kind,
            site.file,
            site.line,
            if site.documented {
                "(SAFETY documented)"
            } else {
                "(UNDOCUMENTED)"
            }
        );
    }
    println!(
        "scanned {} files: {} violation(s), {} allowed by {} justified entr{}, {} stale",
        report.files_scanned,
        report.violations.len(),
        report.allowed.len(),
        report.allows.len(),
        if report.allows.len() == 1 { "y" } else { "ies" },
        report.stale_allows.len(),
    );

    if report.is_clean() {
        println!("rrs-analysis: clean");
        ExitCode::SUCCESS
    } else if deny {
        eprintln!("rrs-analysis: FAILED (--deny)");
        ExitCode::FAILURE
    } else {
        println!("rrs-analysis: violations found (report-only; pass --deny to fail)");
        ExitCode::SUCCESS
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("rrs-analysis: {msg}");
    eprintln!("usage: rrs-analysis [--deny] [--root <dir>] [--config <file>] [--list]");
    ExitCode::FAILURE
}
