//! Typed view of `analysis.toml`: per-lint path scopes and the justified
//! allowlist.
//!
//! The config is checked in at the workspace root and is itself part of
//! the contract: every allowlist entry **must** carry a non-empty `why`,
//! and entries that no longer match anything are reported as stale so
//! the file cannot rot into a pile of blanket exemptions.

use crate::toml::Value;

/// One justified exemption from a lint.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    /// The lint this entry exempts (`determinism`, `panic-discipline`, ...).
    pub lint: String,
    /// Workspace-relative file the exemption applies to.
    pub file: String,
    /// Substring matched against the violation's snippet or source line.
    pub pattern: String,
    /// Maximum number of matches this entry may absorb (default 1); more
    /// matches than `count` surface as violations again.
    pub count: usize,
    /// The human justification.  Mandatory and non-empty by construction.
    pub why: String,
}

/// One `file::function` declared hot (allocation-free steady state).
/// `function` may be `*` for every function in the file.
#[derive(Debug, Clone)]
pub struct HotFn {
    /// Workspace-relative file path.
    pub file: String,
    /// Function name within the file, or `*`.
    pub function: String,
}

/// The whole parsed configuration.
#[derive(Debug, Clone, Default)]
pub struct AnalysisConfig {
    /// Directories (workspace-relative) scanned for `.rs` sources.
    pub include: Vec<String>,
    /// Scope of the `determinism` lint.
    pub determinism_paths: Vec<String>,
    /// Functions declared hot for `hot-path-no-alloc` (and `by_id`-free
    /// for `edge-only-by-id`).
    pub hot_functions: Vec<HotFn>,
    /// Scope of the `integer-time` lint.
    pub integer_time_paths: Vec<String>,
    /// Scope of the `edge-only-by-id` lint.
    pub edge_paths: Vec<String>,
    /// Files allowed to touch `by_id` maps (the public-API edge).
    pub edge_files: Vec<String>,
    /// Scope of the `panic-discipline` lint.
    pub panic_paths: Vec<String>,
    /// Scope of the `unsafe-inventory` lint.
    pub unsafe_paths: Vec<String>,
    /// File holding the sharded parallel region.
    pub parallel_file: String,
    /// `self.<field>` accesses permitted inside the parallel region.
    pub parallel_allowed_self_fields: Vec<String>,
    /// Identifiers (barrier-merge machinery) forbidden inside it.
    pub parallel_forbidden: Vec<String>,
    /// Every justified allowlist entry, across all lints.
    pub allows: Vec<AllowEntry>,
}

/// The lint names recognised in `[lints.<name>]` tables.
pub const LINT_NAMES: &[&str] = &[
    "determinism",
    "hot-path-no-alloc",
    "integer-time",
    "edge-only-by-id",
    "panic-discipline",
    "unsafe-inventory",
    "parallel-region",
];

impl AnalysisConfig {
    /// Builds the typed config from a parsed TOML document, validating
    /// the allowlist (`file`, `pattern` and a non-empty `why` are
    /// mandatory on every entry).
    pub fn from_toml(doc: &Value) -> Result<Self, String> {
        if let Some(lints) = doc.get("lints").and_then(Value::as_table) {
            for name in lints.keys() {
                if !LINT_NAMES.contains(&name.as_str()) {
                    return Err(format!(
                        "analysis.toml: unknown lint {name:?} (known: {LINT_NAMES:?})"
                    ));
                }
            }
        }
        let mut cfg = AnalysisConfig {
            include: doc.str_list("paths.include"),
            determinism_paths: doc.str_list("lints.determinism.paths"),
            integer_time_paths: doc.str_list("lints.integer-time.paths"),
            edge_paths: doc.str_list("lints.edge-only-by-id.paths"),
            edge_files: doc.str_list("lints.edge-only-by-id.edge_files"),
            panic_paths: doc.str_list("lints.panic-discipline.paths"),
            unsafe_paths: doc.str_list("lints.unsafe-inventory.paths"),
            parallel_file: doc
                .get("lints.parallel-region.file")
                .and_then(Value::as_str)
                .unwrap_or_default()
                .to_owned(),
            parallel_allowed_self_fields: doc.str_list("lints.parallel-region.allowed_self_fields"),
            parallel_forbidden: doc.str_list("lints.parallel-region.forbidden"),
            ..Default::default()
        };
        if cfg.include.is_empty() {
            return Err("analysis.toml: [paths] include must list at least one directory".into());
        }
        for entry in doc.str_list("lints.hot-path-no-alloc.hot") {
            let (file, function) = entry
                .split_once("::")
                .ok_or_else(|| format!("hot entry {entry:?} must be \"<file>::<fn>\""))?;
            cfg.hot_functions.push(HotFn {
                file: file.to_owned(),
                function: function.to_owned(),
            });
        }
        for lint in LINT_NAMES {
            let Some(list) = doc.get(&format!("lints.{lint}.allow")) else {
                continue;
            };
            let items = list
                .as_array()
                .ok_or_else(|| format!("lints.{lint}.allow must be an array of tables"))?;
            for item in items {
                cfg.allows.push(parse_allow(lint, item)?);
            }
        }
        Ok(cfg)
    }
}

fn parse_allow(lint: &str, item: &Value) -> Result<AllowEntry, String> {
    let field = |name: &str| {
        item.get(name)
            .and_then(Value::as_str)
            .map(str::to_owned)
            .ok_or_else(|| format!("allow entry for {lint} is missing {name:?}"))
    };
    let why = field("why")?;
    if why.trim().is_empty() {
        return Err(format!(
            "allow entry for {lint} has an empty \"why\" — every exemption needs a justification"
        ));
    }
    Ok(AllowEntry {
        lint: lint.to_owned(),
        file: field("file")?,
        pattern: field("pattern")?,
        count: item
            .get("count")
            .and_then(Value::as_int)
            .map(|n| n.max(0) as usize)
            .unwrap_or(1),
        why,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::toml;

    #[test]
    fn loads_a_full_config() {
        let doc = toml::parse(
            r#"
            [paths]
            include = ["crates"]
            [lints.determinism]
            paths = ["crates/core/src"]
            [[lints.determinism.allow]]
            file = "crates/core/src/controller.rs"
            pattern = "Instant::now"
            count = 2
            why = "telemetry stage timing"
            [lints.hot-path-no-alloc]
            hot = ["crates/scheduler/src/runqueue.rs::*", "a.rs::dispatch"]
            [lints.parallel-region]
            file = "crates/sim/src/sharded.rs"
            allowed_self_fields = ["shards"]
            forbidden = ["merge_traces"]
            "#,
        )
        .unwrap();
        let cfg = AnalysisConfig::from_toml(&doc).unwrap();
        assert_eq!(cfg.determinism_paths, vec!["crates/core/src"]);
        assert_eq!(cfg.allows.len(), 1);
        assert_eq!(cfg.allows[0].count, 2);
        assert_eq!(cfg.hot_functions.len(), 2);
        assert_eq!(cfg.hot_functions[0].function, "*");
        assert_eq!(cfg.parallel_allowed_self_fields, vec!["shards"]);
    }

    #[test]
    fn rejects_unjustified_allow_entries() {
        let doc = toml::parse(
            "[paths]\ninclude = [\"crates\"]\n[[lints.determinism.allow]]\nfile = \"a.rs\"\npattern = \"x\"\nwhy = \"\"\n",
        )
        .unwrap();
        let err = AnalysisConfig::from_toml(&doc).unwrap_err();
        assert!(err.contains("justification"), "{err}");
    }

    #[test]
    fn rejects_unknown_lints() {
        let doc = toml::parse("[paths]\ninclude = [\"crates\"]\n[lints.typo-lint]\npaths = []\n")
            .unwrap();
        assert!(AnalysisConfig::from_toml(&doc)
            .unwrap_err()
            .contains("typo-lint"));
    }
}
