//! A minimal, self-contained Rust lexer for lint scanning.
//!
//! Produces a flat token stream that is **comment-, string- and
//! attribute-aware**: comments become [`TokenKind::Comment`] tokens (so a
//! `HashMap` mentioned in prose never trips a lint, while a `// SAFETY:`
//! comment stays findable), string/char literals become single
//! [`TokenKind::Literal`] tokens (a `"{"` in a format string cannot
//! unbalance brace matching), and `#[cfg(test)]`-gated items can be
//! elided wholesale with [`elide_cfg_test`] so test-only code is exempt
//! from production-path lints.
//!
//! This is deliberately *not* a parser: lints match small token
//! sequences (`Instant :: now`, `. unwrap ( )`) plus two structural
//! helpers — attribute groups and function body spans found by brace
//! matching.  That is exactly enough to enforce the workspace's
//! invariants without an external syntax crate (the build is
//! offline-vendored).

/// The coarse classification of one lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`fn`, `unsafe`, `HashMap`, ...).
    Ident,
    /// A single punctuation character (`{`, `:`, `#`, ...).
    Punct,
    /// A string, raw string, byte string, char or numeric literal.
    Literal,
    /// A line (`//`) or block (`/* */`) comment, text included.
    Comment,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// The token's verbatim text (for comments and literals, the whole
    /// lexeme including delimiters).
    pub text: String,
    /// 1-based line on which the token starts.
    pub line: u32,
}

impl Token {
    fn new(kind: TokenKind, text: impl Into<String>, line: u32) -> Self {
        Token {
            kind,
            text: text.into(),
            line,
        }
    }

    /// `true` if this is an identifier with exactly the given text.
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == text
    }

    /// `true` if this is a punctuation token with exactly the given text.
    pub fn is_punct(&self, text: &str) -> bool {
        self.kind == TokenKind::Punct && self.text == text
    }
}

/// Lexes Rust source into a token stream.  Never fails: unterminated
/// constructs simply run to end of input (good enough for linting real,
/// compiling source).
pub fn lex(src: &str) -> Vec<Token> {
    let chars: Vec<char> = src.chars().collect();
    let mut out = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Line comment (also covers `///` and `//!` doc comments).
        if c == '/' && chars.get(i + 1) == Some(&'/') {
            let start = i;
            while i < chars.len() && chars[i] != '\n' {
                i += 1;
            }
            let text: String = chars[start..i].iter().collect();
            out.push(Token::new(TokenKind::Comment, text, line));
            continue;
        }
        // Block comment, nested per Rust rules.
        if c == '/' && chars.get(i + 1) == Some(&'*') {
            let start = i;
            let start_line = line;
            let mut depth = 0usize;
            while i < chars.len() {
                if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    depth += 1;
                    i += 2;
                } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    i += 2;
                    if depth == 0 {
                        break;
                    }
                } else {
                    if chars[i] == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
            }
            let text: String = chars[start..i].iter().collect();
            out.push(Token::new(TokenKind::Comment, text, start_line));
            continue;
        }
        // Raw strings: r"...", r#"..."#, br"...", br#"..."# etc.
        if c == 'r' || (c == 'b' && chars.get(i + 1) == Some(&'r')) {
            let mut j = i + if c == 'b' { 2 } else { 1 };
            let mut hashes = 0usize;
            while chars.get(j) == Some(&'#') {
                hashes += 1;
                j += 1;
            }
            if chars.get(j) == Some(&'"') {
                let start = i;
                let start_line = line;
                j += 1;
                // Scan for `"` followed by `hashes` hash marks.
                'raw: while j < chars.len() {
                    if chars[j] == '\n' {
                        line += 1;
                        j += 1;
                        continue;
                    }
                    if chars[j] == '"' {
                        let mut k = 0usize;
                        while k < hashes && chars.get(j + 1 + k) == Some(&'#') {
                            k += 1;
                        }
                        if k == hashes {
                            j += 1 + hashes;
                            break 'raw;
                        }
                    }
                    j += 1;
                }
                let text: String = chars[start..j.min(chars.len())].iter().collect();
                out.push(Token::new(TokenKind::Literal, text, start_line));
                i = j;
                continue;
            }
            // Not a raw string: fall through to identifier handling.
        }
        // Plain and byte strings.
        if c == '"' || (c == 'b' && chars.get(i + 1) == Some(&'"')) {
            let start = i;
            let start_line = line;
            i += if c == 'b' { 2 } else { 1 };
            while i < chars.len() {
                match chars[i] {
                    '\\' => i += 2,
                    '"' => {
                        i += 1;
                        break;
                    }
                    '\n' => {
                        line += 1;
                        i += 1;
                    }
                    _ => i += 1,
                }
            }
            let text: String = chars[start..i.min(chars.len())].iter().collect();
            out.push(Token::new(TokenKind::Literal, text, start_line));
            continue;
        }
        // Char literal or lifetime.
        if c == '\'' {
            let next = chars.get(i + 1).copied();
            let is_ident_start = next.is_some_and(|n| n.is_alphanumeric() || n == '_');
            if is_ident_start && chars.get(i + 2) != Some(&'\'') {
                // Lifetime (`'a`, `'static`): skip it; lints never need one.
                i += 1;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                continue;
            }
            // Char literal: `'x'`, `'\n'`, `'\''`, `'{'`.
            let start = i;
            i += 1;
            if chars.get(i) == Some(&'\\') {
                i += 2;
            } else {
                i += 1;
            }
            if chars.get(i) == Some(&'\'') {
                i += 1;
            }
            let text: String = chars[start..i.min(chars.len())].iter().collect();
            out.push(Token::new(TokenKind::Literal, text, line));
            continue;
        }
        // Identifier or keyword.
        if c.is_alphabetic() || c == '_' {
            let start = i;
            while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            let text: String = chars[start..i].iter().collect();
            out.push(Token::new(TokenKind::Ident, text, line));
            continue;
        }
        // Number: digits/underscores, one fraction part, then any
        // alphanumeric suffix (`1_000`, `1.5e6`, `0xFF`, `10u64`).
        if c.is_ascii_digit() {
            let start = i;
            while i < chars.len() {
                let d = chars[i];
                // `.` joins the number only when a digit follows, so range
                // expressions like `0..n` are not swallowed.
                let continues = d.is_alphanumeric()
                    || d == '_'
                    || (d == '.' && chars.get(i + 1).is_some_and(|n| n.is_ascii_digit()));
                if !continues {
                    break;
                }
                i += 1;
            }
            let text: String = chars[start..i].iter().collect();
            out.push(Token::new(TokenKind::Literal, text, line));
            continue;
        }
        // Anything else is single-character punctuation.
        out.push(Token::new(TokenKind::Punct, c.to_string(), line));
        i += 1;
    }
    out
}

/// Returns the index of the token closing the bracket group opened at
/// `open` (which must be `(`, `[` or `{`), or `tokens.len()` if
/// unbalanced.  Counts all three bracket kinds together, which is safe
/// because literals and comments are opaque single tokens.
pub fn matching_close(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0i64;
    for (k, t) in tokens.iter().enumerate().skip(open) {
        if t.kind == TokenKind::Punct {
            match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    depth -= 1;
                    if depth <= 0 {
                        return k;
                    }
                }
                _ => {}
            }
        }
    }
    tokens.len()
}

/// Removes every item gated behind a `#[cfg(test)]`-style attribute
/// (an attribute naming `cfg` and `test` but not `not`), including the
/// attribute itself, any stacked attributes after it, and the item's
/// whole body.  Everything else passes through unchanged.
pub fn elide_cfg_test(tokens: &[Token]) -> Vec<Token> {
    let mut out = Vec::with_capacity(tokens.len());
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].is_punct("#") && tokens.get(i + 1).is_some_and(|t| t.is_punct("[")) {
            let close = matching_close(tokens, i + 1);
            let attr = &tokens[i + 1..close.min(tokens.len())];
            let has = |name: &str| attr.iter().any(|t| t.is_ident(name));
            if has("cfg") && has("test") && !has("not") {
                i = close + 1;
                // Skip stacked attributes and comments between the cfg
                // gate and the item it gates.
                loop {
                    while tokens.get(i).is_some_and(|t| t.kind == TokenKind::Comment) {
                        i += 1;
                    }
                    if tokens.get(i).is_some_and(|t| t.is_punct("#"))
                        && tokens.get(i + 1).is_some_and(|t| t.is_punct("["))
                    {
                        i = matching_close(tokens, i + 1) + 1;
                    } else {
                        break;
                    }
                }
                // Skip the gated item: through the first `;` at bracket
                // depth zero, or through its complete `{...}` body.
                let mut depth = 0i64;
                while i < tokens.len() {
                    let t = &tokens[i];
                    if t.kind == TokenKind::Punct {
                        match t.text.as_str() {
                            "(" | "[" | "{" => depth += 1,
                            ")" | "]" | "}" => {
                                depth -= 1;
                                if depth <= 0 && t.text == "}" {
                                    i += 1;
                                    break;
                                }
                            }
                            ";" if depth == 0 => {
                                i += 1;
                                break;
                            }
                            _ => {}
                        }
                    }
                    i += 1;
                }
                continue;
            }
        }
        out.push(tokens[i].clone());
        i += 1;
    }
    out
}

/// A function found in the token stream, with the token-index span of
/// its brace-delimited body (inclusive of both braces).
#[derive(Debug, Clone)]
pub struct FnSpan {
    /// The function's name.
    pub name: String,
    /// Index of the body's opening `{` token.
    pub body_start: usize,
    /// Index of the body's closing `}` token.
    pub body_end: usize,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
}

/// Finds every `fn name ... { ... }` in the stream, including nested
/// functions.  Bodiless declarations (trait methods ending in `;`) are
/// skipped; `fn`-pointer types never match because the next token is not
/// an identifier.
pub fn fn_spans(tokens: &[Token]) -> Vec<FnSpan> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].is_ident("fn") {
            if let Some(name_tok) = tokens.get(i + 1).filter(|t| t.kind == TokenKind::Ident) {
                // Walk the signature to the body `{` (or `;`) at depth 0.
                let mut j = i + 2;
                let mut depth = 0i64;
                let mut body_start = None;
                while j < tokens.len() {
                    let t = &tokens[j];
                    if t.kind == TokenKind::Punct {
                        match t.text.as_str() {
                            "(" | "[" => depth += 1,
                            ")" | "]" => depth -= 1,
                            "{" if depth == 0 => {
                                body_start = Some(j);
                                break;
                            }
                            ";" if depth == 0 => break,
                            _ => {}
                        }
                    }
                    j += 1;
                }
                if let Some(start) = body_start {
                    let end = matching_close(tokens, start);
                    out.push(FnSpan {
                        name: name_tok.text.clone(),
                        body_start: start,
                        body_end: end,
                        line: tokens[i].line,
                    });
                }
            }
        }
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(tokens: &[Token]) -> Vec<&str> {
        tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text.as_str())
            .collect()
    }

    #[test]
    fn comments_and_strings_are_opaque() {
        let src = r##"
            // a HashMap in prose
            /* block HashMap /* nested */ still comment */
            let s = "HashMap { unbalanced";
            let r = r#"raw "quoted" HashMap"#;
            let c = '{';
            let real = HashMap::new();
        "##;
        let toks = lex(src);
        let real_idents = idents(&toks);
        assert_eq!(
            real_idents.iter().filter(|&&t| t == "HashMap").count(),
            1,
            "only the real code HashMap is an identifier: {real_idents:?}"
        );
        let comments: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Comment)
            .collect();
        assert_eq!(comments.len(), 2);
        assert!(comments[1].text.contains("nested"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) -> &'a str { x } let c = 'x';");
        assert!(toks.iter().any(|t| t.is_ident("str")));
        let lits: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Literal)
            .collect();
        assert_eq!(lits.len(), 1);
        assert_eq!(lits[0].text, "'x'");
    }

    #[test]
    fn numbers_do_not_swallow_range_operators() {
        let toks = lex("for i in 0..self.entries.len() { x += 1.5e3; }");
        assert!(toks.iter().any(|t| t.is_ident("entries")));
        assert!(toks
            .iter()
            .any(|t| t.kind == TokenKind::Literal && t.text == "1.5e3"));
    }

    #[test]
    fn lines_are_tracked() {
        let toks = lex("a\nb\n\nc");
        let lines: Vec<u32> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn elides_cfg_test_items() {
        let src = r#"
            fn keep() { used(); }
            #[cfg(test)]
            mod tests {
                use std::collections::HashMap;
                #[test]
                fn t() { HashMap::new(); }
            }
            #[cfg(not(test))]
            fn also_keep() {}
            #[cfg(test)]
            use std::collections::HashSet;
            fn tail() {}
        "#;
        let toks = elide_cfg_test(&lex(src));
        let names = idents(&toks);
        assert!(names.contains(&"keep"));
        assert!(names.contains(&"also_keep"));
        assert!(names.contains(&"tail"));
        assert!(!names.contains(&"HashMap"));
        assert!(!names.contains(&"HashSet"));
    }

    #[test]
    fn finds_function_bodies() {
        let src = r#"
            impl Foo {
                pub fn hot(&mut self, x: [u8; 4]) -> Option<u32> {
                    if x[0] > 0 { Some(1) } else { None }
                }
                fn other(&self) {}
            }
            trait T { fn decl(&self); }
        "#;
        let toks = lex(src);
        let spans = fn_spans(&toks);
        let names: Vec<&str> = spans.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["hot", "other"]);
        let hot = &spans[0];
        let body = &toks[hot.body_start..=hot.body_end];
        assert!(body.iter().any(|t| t.is_ident("Some")));
        assert!(!body.iter().any(|t| t.is_ident("other")));
    }
}
