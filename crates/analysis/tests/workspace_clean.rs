//! The workspace's own sources must satisfy the invariant linter — the
//! same check CI blocks on via `cargo run -p rrs-analysis -- --deny`,
//! enforced from the test suite too so a plain `cargo test` catches
//! regressions without the extra CI step.

use std::path::Path;

#[test]
fn workspace_passes_the_invariant_linter() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let config =
        rrs_analysis::load_config(&root.join("analysis.toml")).expect("analysis.toml is valid");
    let report = rrs_analysis::analyze_workspace(&root, &config).expect("workspace scan succeeds");
    let mut problems = Vec::new();
    for v in &report.violations {
        problems.push(format!("[{}] {}:{}: {}", v.lint, v.file, v.line, v.snippet));
    }
    for idx in &report.stale_allows {
        let a = &report.allows[*idx];
        problems.push(format!(
            "stale allow [{}] {}: pattern {:?} matched nothing",
            a.lint, a.file, a.pattern
        ));
    }
    assert!(
        report.is_clean(),
        "rrs-analysis found problems in the workspace:\n{}",
        problems.join("\n")
    );
    assert!(report.files_scanned > 0, "the walker found no sources");
    // Every unsafe site must be documented (the violations above would
    // already say so; this keeps the inventory itself honest).
    for site in &report.unsafe_inventory {
        assert!(
            site.documented,
            "undocumented unsafe at {}:{}",
            site.file, site.line
        );
    }
}
