//! Runs every lint against its fixture pair in `tests/analysis_fixtures/`
//! (at the workspace root): the `*_trigger.rs` file must fire the lint,
//! the `*_clean.rs` file must stay quiet.  Each test builds its config
//! through the real TOML parser, so the fixtures also exercise the
//! config path end to end.

use rrs_analysis::config::AnalysisConfig;
use rrs_analysis::lints::{self, SourceFile};
use rrs_analysis::report::AnalysisReport;
use rrs_analysis::toml;
use std::path::Path;

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/analysis_fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("fixture {}: {e}", path.display()))
}

fn run_lints(cfg: &str, files: &[(&str, String)]) -> AnalysisReport {
    let doc = toml::parse(cfg).expect("fixture config parses");
    let config = AnalysisConfig::from_toml(&doc).expect("fixture config is valid");
    let parsed: Vec<SourceFile> = files
        .iter()
        .map(|(path, src)| SourceFile::parse(*path, src))
        .collect();
    lints::run(&config, &parsed)
}

fn fired(report: &AnalysisReport, lint: &str) -> usize {
    report.violations.iter().filter(|v| v.lint == lint).count()
}

fn assert_quiet(report: &AnalysisReport) {
    assert!(
        report.violations.is_empty(),
        "clean fixture fired: {:?}",
        report
            .violations
            .iter()
            .map(|v| format!("[{}] {}:{} {}", v.lint, v.file, v.line, v.snippet))
            .collect::<Vec<_>>()
    );
}

const DETERMINISM_CFG: &str = r#"
[paths]
include = ["fixtures"]
[lints.determinism]
paths = ["fixtures"]
"#;

#[test]
fn determinism_fires_on_clocks_and_hash_containers() {
    let report = run_lints(
        DETERMINISM_CFG,
        &[(
            "fixtures/determinism_trigger.rs",
            fixture("determinism_trigger.rs"),
        )],
    );
    assert!(fired(&report, "determinism") >= 2, "{report:?}");
    assert!(
        report
            .violations
            .iter()
            .any(|v| v.snippet == "Instant::now"),
        "the called clock is reported as Instant::now"
    );
    assert!(report.violations.iter().any(|v| v.snippet == "HashMap"));
}

#[test]
fn determinism_stays_quiet_on_ordered_containers_and_test_code() {
    let report = run_lints(
        DETERMINISM_CFG,
        &[(
            "fixtures/determinism_clean.rs",
            fixture("determinism_clean.rs"),
        )],
    );
    assert_quiet(&report);
}

const HOT_TRIGGER_CFG: &str = r#"
[paths]
include = ["fixtures"]
[lints.hot-path-no-alloc]
hot = ["fixtures/hot_alloc_trigger.rs::dispatch"]
"#;

const HOT_CLEAN_CFG: &str = r#"
[paths]
include = ["fixtures"]
[lints.hot-path-no-alloc]
hot = ["fixtures/hot_alloc_clean.rs::dispatch"]
"#;

#[test]
fn hot_path_fires_on_allocation_in_a_hot_function() {
    let report = run_lints(
        HOT_TRIGGER_CFG,
        &[(
            "fixtures/hot_alloc_trigger.rs",
            fixture("hot_alloc_trigger.rs"),
        )],
    );
    assert_eq!(fired(&report, "hot-path-no-alloc"), 1, "{report:?}");
    assert_eq!(report.violations[0].snippet, "Vec::new");
}

#[test]
fn hot_path_ignores_allocation_outside_the_hot_set() {
    let report = run_lints(
        HOT_CLEAN_CFG,
        &[("fixtures/hot_alloc_clean.rs", fixture("hot_alloc_clean.rs"))],
    );
    assert_quiet(&report);
}

#[test]
fn hot_path_flags_stale_hot_entries() {
    // A hot entry naming a function that no longer exists is itself a
    // violation — the list cannot silently rot after a rename.
    let cfg = r#"
[paths]
include = ["fixtures"]
[lints.hot-path-no-alloc]
hot = ["fixtures/hot_alloc_clean.rs::renamed_away"]
"#;
    let report = run_lints(
        cfg,
        &[("fixtures/hot_alloc_clean.rs", fixture("hot_alloc_clean.rs"))],
    );
    assert_eq!(fired(&report, "hot-path-no-alloc"), 1, "{report:?}");
    assert!(report.violations[0].message.contains("not found"));
}

const INTEGER_TIME_CFG: &str = r#"
[paths]
include = ["fixtures"]
[lints.integer-time]
paths = ["fixtures"]
"#;

#[test]
fn integer_time_fires_on_f64_seconds_parameters() {
    let report = run_lints(
        INTEGER_TIME_CFG,
        &[(
            "fixtures/integer_time_trigger.rs",
            fixture("integer_time_trigger.rs"),
        )],
    );
    assert_eq!(fired(&report, "integer-time"), 1, "{report:?}");
    assert!(report.violations[0].snippet.contains("duration_s"));
}

#[test]
fn integer_time_allows_integer_micros_and_non_second_f64s() {
    let report = run_lints(
        INTEGER_TIME_CFG,
        &[(
            "fixtures/integer_time_clean.rs",
            fixture("integer_time_clean.rs"),
        )],
    );
    assert_quiet(&report);
}

#[test]
fn edge_only_by_id_fires_outside_edge_files_and_inside_hot_fns() {
    let cfg = r#"
[paths]
include = ["fixtures"]
[lints.edge-only-by-id]
paths = ["fixtures"]
edge_files = ["fixtures/edge_by_id_clean.rs"]
[lints.hot-path-no-alloc]
hot = ["fixtures/edge_by_id_trigger.rs::dispatch"]
"#;
    let report = run_lints(
        cfg,
        &[(
            "fixtures/edge_by_id_trigger.rs",
            fixture("edge_by_id_trigger.rs"),
        )],
    );
    // Struct field + lookup() access in a non-edge file, and the hot
    // dispatch() touch reported with its function name.
    assert!(fired(&report, "edge-only-by-id") >= 2, "{report:?}");
    assert!(report
        .violations
        .iter()
        .any(|v| v.snippet == "by_id in dispatch"));
}

#[test]
fn edge_only_by_id_allows_edge_files() {
    let cfg = r#"
[paths]
include = ["fixtures"]
[lints.edge-only-by-id]
paths = ["fixtures"]
edge_files = ["fixtures/edge_by_id_clean.rs"]
"#;
    let report = run_lints(
        cfg,
        &[(
            "fixtures/edge_by_id_clean.rs",
            fixture("edge_by_id_clean.rs"),
        )],
    );
    assert_quiet(&report);
}

const PANIC_CFG: &str = r#"
[paths]
include = ["fixtures"]
[lints.panic-discipline]
paths = ["fixtures"]
"#;

#[test]
fn panic_discipline_fires_on_bare_unwrap_and_empty_expect() {
    let report = run_lints(
        PANIC_CFG,
        &[("fixtures/panic_trigger.rs", fixture("panic_trigger.rs"))],
    );
    assert_eq!(fired(&report, "panic-discipline"), 2, "{report:?}");
    assert!(report.violations.iter().any(|v| v.snippet == ".unwrap()"));
    assert!(report
        .violations
        .iter()
        .any(|v| v.snippet == "expect(\"\")"));
}

#[test]
fn panic_discipline_accepts_named_invariants_and_test_unwraps() {
    let report = run_lints(
        PANIC_CFG,
        &[("fixtures/panic_clean.rs", fixture("panic_clean.rs"))],
    );
    assert_quiet(&report);
}

const UNSAFE_CFG: &str = r#"
[paths]
include = ["fixtures"]
[lints.unsafe-inventory]
paths = ["fixtures"]
"#;

#[test]
fn unsafe_inventory_fires_on_undocumented_unsafe() {
    let report = run_lints(
        UNSAFE_CFG,
        &[("fixtures/unsafe_trigger.rs", fixture("unsafe_trigger.rs"))],
    );
    assert_eq!(fired(&report, "unsafe-inventory"), 1, "{report:?}");
    assert_eq!(report.unsafe_inventory.len(), 1);
    assert!(!report.unsafe_inventory[0].documented);
}

#[test]
fn unsafe_inventory_accepts_safety_comments_but_still_inventories() {
    let report = run_lints(
        UNSAFE_CFG,
        &[("fixtures/unsafe_clean.rs", fixture("unsafe_clean.rs"))],
    );
    assert_quiet(&report);
    assert_eq!(report.unsafe_inventory.len(), 1);
    assert!(report.unsafe_inventory[0].documented);
}

fn parallel_cfg(file: &str) -> String {
    format!(
        r#"
[paths]
include = ["fixtures"]
[lints.parallel-region]
file = "fixtures/{file}"
allowed_self_fields = ["shards"]
forbidden = ["merge_traces", "loads"]
"#
    )
}

#[test]
fn parallel_region_fires_on_shared_state_inside_the_scope() {
    let report = run_lints(
        &parallel_cfg("parallel_trigger.rs"),
        &[(
            "fixtures/parallel_trigger.rs",
            fixture("parallel_trigger.rs"),
        )],
    );
    assert!(fired(&report, "parallel-region") >= 1, "{report:?}");
    assert!(report.violations.iter().any(|v| v.snippet == "self.loads"));
}

#[test]
fn parallel_region_accepts_barrier_merges_after_the_scope() {
    let report = run_lints(
        &parallel_cfg("parallel_clean.rs"),
        &[("fixtures/parallel_clean.rs", fixture("parallel_clean.rs"))],
    );
    assert_quiet(&report);
}

#[test]
fn parallel_region_presence_fires_when_the_scope_disappears() {
    // Configure the audit against a file with no thread::scope at all:
    // the audit losing its subject is itself an error.
    let report = run_lints(
        &parallel_cfg("panic_clean.rs"),
        &[("fixtures/panic_clean.rs", fixture("panic_clean.rs"))],
    );
    assert_eq!(fired(&report, "parallel-region"), 1, "{report:?}");
    assert!(report.violations[0].message.contains("no `thread::scope`"));
}

#[test]
fn allowlist_absorbs_bounded_matches_and_reports_stale_entries() {
    let cfg = r#"
[paths]
include = ["fixtures"]
[lints.determinism]
paths = ["fixtures"]
[[lints.determinism.allow]]
file = "fixtures/determinism_trigger.rs"
pattern = "Instant"
count = 2
why = "fixture exercising the absorption path"
[[lints.determinism.allow]]
file = "fixtures/determinism_trigger.rs"
pattern = "ThisNeverMatches"
why = "fixture exercising staleness detection"
"#;
    let report = run_lints(
        cfg,
        &[(
            "fixtures/determinism_trigger.rs",
            fixture("determinism_trigger.rs"),
        )],
    );
    // Both Instant sites (the use and the call) are absorbed; the
    // HashMap sites are not; the second entry matched nothing.
    assert_eq!(report.allowed.len(), 2, "{report:?}");
    assert!(report.violations.iter().all(|v| v.snippet.contains("Hash")));
    assert_eq!(report.stale_allows.len(), 1);
    assert!(!report.is_clean(), "stale entries fail the run");
}
