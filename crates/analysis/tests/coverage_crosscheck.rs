//! Cross-checks the static hot list against the dynamic zero-alloc test:
//! every file with functions declared hot in `analysis.toml` must carry a
//! `// hot-coverage: <file>` marker in `tests/zero_alloc_steady_state.rs`
//! (placed where the counting-allocator run actually drives that module),
//! and every marker must name a file still in the hot set — so the static
//! and dynamic halves of the no-alloc contract cannot drift apart.

use std::collections::BTreeSet;
use std::path::Path;

#[test]
fn hot_list_and_zero_alloc_test_cover_each_other() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let config =
        rrs_analysis::load_config(&root.join("analysis.toml")).expect("analysis.toml is valid");
    let declared: BTreeSet<String> = config
        .hot_functions
        .iter()
        .map(|h| h.file.clone())
        .collect();
    assert!(
        !declared.is_empty(),
        "analysis.toml declares no hot functions — the zero-alloc contract lost its subject"
    );
    let test_src = std::fs::read_to_string(root.join("tests/zero_alloc_steady_state.rs"))
        .expect("tests/zero_alloc_steady_state.rs exists");
    let marked: BTreeSet<String> = test_src
        .lines()
        .filter_map(|l| l.trim().strip_prefix("// hot-coverage:"))
        .map(|s| s.trim().to_owned())
        .collect();
    let uncovered: Vec<&String> = declared.difference(&marked).collect();
    assert!(
        uncovered.is_empty(),
        "files declared hot in analysis.toml but not marked as covered by the \
         zero-alloc test (add the coverage, then the marker): {uncovered:?}"
    );
    let undeclared: Vec<&String> = marked.difference(&declared).collect();
    assert!(
        undeclared.is_empty(),
        "hot-coverage markers in tests/zero_alloc_steady_state.rs for files no \
         longer declared hot in analysis.toml: {undeclared:?}"
    );
}
