//! Primitive discrete-time feedback blocks.
//!
//! SWiFT composes controllers out of small transfer elements; this module
//! provides the equivalent building blocks.  Every block implements
//! [`Block`]: it is stepped with an input sample and a time step and
//! produces one output sample.

use serde::{Deserialize, Serialize};

/// A discrete-time single-input single-output transfer element.
pub trait Block {
    /// Advances the block by `dt` seconds with input `input` and returns the
    /// output sample.
    fn step(&mut self, input: f64, dt: f64) -> f64;

    /// Resets the internal state.
    fn reset(&mut self);
}

/// Pure gain: `y = k · x`.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Gain {
    /// Multiplicative gain.
    pub k: f64,
}

impl Gain {
    /// Creates a gain block.
    pub fn new(k: f64) -> Self {
        Self { k }
    }
}

impl Block for Gain {
    fn step(&mut self, input: f64, _dt: f64) -> f64 {
        self.k * input
    }

    fn reset(&mut self) {}
}

/// Discrete integrator: `y += x · dt`, optionally clamped.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Integrator {
    state: f64,
    limit: f64,
}

impl Integrator {
    /// Creates an unclamped integrator.
    pub fn new() -> Self {
        Self {
            state: 0.0,
            limit: f64::INFINITY,
        }
    }

    /// Creates an integrator whose state magnitude is clamped to `limit`.
    pub fn with_limit(limit: f64) -> Self {
        Self {
            state: 0.0,
            limit: limit.abs(),
        }
    }

    /// Returns the current integrator state.
    pub fn state(&self) -> f64 {
        self.state
    }
}

impl Default for Integrator {
    fn default() -> Self {
        Self::new()
    }
}

impl Block for Integrator {
    fn step(&mut self, input: f64, dt: f64) -> f64 {
        if dt > 0.0 {
            self.state = (self.state + input * dt).clamp(-self.limit, self.limit);
        }
        self.state
    }

    fn reset(&mut self) {
        self.state = 0.0;
    }
}

/// First-difference differentiator: `y = (x - x_prev) / dt`.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct Differentiator {
    prev: Option<f64>,
}

impl Differentiator {
    /// Creates a differentiator with no history.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Block for Differentiator {
    fn step(&mut self, input: f64, dt: f64) -> f64 {
        let out = match (self.prev, dt > 0.0) {
            (Some(prev), true) => (input - prev) / dt,
            _ => 0.0,
        };
        self.prev = Some(input);
        out
    }

    fn reset(&mut self) {
        self.prev = None;
    }
}

/// Saturation: clamps the input to `[lo, hi]`.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Saturation {
    lo: f64,
    hi: f64,
}

impl Saturation {
    /// Creates a saturation block clamping to `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(lo <= hi, "saturation bounds must be ordered");
        Self { lo, hi }
    }

    /// Symmetric saturation to `[-limit, limit]`.
    pub fn symmetric(limit: f64) -> Self {
        Self::new(-limit.abs(), limit.abs())
    }
}

impl Block for Saturation {
    fn step(&mut self, input: f64, _dt: f64) -> f64 {
        input.clamp(self.lo, self.hi)
    }

    fn reset(&mut self) {}
}

/// Rate limiter: the output follows the input but changes no faster than
/// `max_rate` units per second.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct RateLimiter {
    max_rate: f64,
    state: Option<f64>,
}

impl RateLimiter {
    /// Creates a rate limiter with the given maximum slew rate (units/sec).
    ///
    /// # Panics
    ///
    /// Panics if `max_rate` is not positive.
    pub fn new(max_rate: f64) -> Self {
        assert!(max_rate > 0.0, "max_rate must be positive");
        Self {
            max_rate,
            state: None,
        }
    }
}

impl Block for RateLimiter {
    fn step(&mut self, input: f64, dt: f64) -> f64 {
        let out = match self.state {
            None => input,
            Some(prev) => {
                let max_delta = self.max_rate * dt.max(0.0);
                prev + (input - prev).clamp(-max_delta, max_delta)
            }
        };
        self.state = Some(out);
        out
    }

    fn reset(&mut self) {
        self.state = None;
    }
}

/// Hysteresis (Schmitt trigger): output switches to 1.0 when the input rises
/// above `high` and back to 0.0 when it falls below `low`.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Hysteresis {
    low: f64,
    high: f64,
    on: bool,
}

impl Hysteresis {
    /// Creates a hysteresis block with the given thresholds.
    ///
    /// # Panics
    ///
    /// Panics if `low > high`.
    pub fn new(low: f64, high: f64) -> Self {
        assert!(low <= high, "hysteresis thresholds must be ordered");
        Self {
            low,
            high,
            on: false,
        }
    }

    /// Returns whether the output is currently on.
    pub fn is_on(&self) -> bool {
        self.on
    }
}

impl Block for Hysteresis {
    fn step(&mut self, input: f64, _dt: f64) -> f64 {
        if input >= self.high {
            self.on = true;
        } else if input <= self.low {
            self.on = false;
        }
        if self.on {
            1.0
        } else {
            0.0
        }
    }

    fn reset(&mut self) {
        self.on = false;
    }
}

/// Dead band: inputs within `[-width, width]` produce zero output; inputs
/// outside have the band width subtracted so the output is continuous.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct DeadBand {
    width: f64,
}

impl DeadBand {
    /// Creates a dead band of the given half-width.
    ///
    /// # Panics
    ///
    /// Panics if `width` is negative.
    pub fn new(width: f64) -> Self {
        assert!(width >= 0.0, "dead band width must be non-negative");
        Self { width }
    }
}

impl Block for DeadBand {
    fn step(&mut self, input: f64, _dt: f64) -> f64 {
        if input > self.width {
            input - self.width
        } else if input < -self.width {
            input + self.width
        } else {
            0.0
        }
    }

    fn reset(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn gain_scales() {
        let mut g = Gain::new(2.5);
        assert_eq!(g.step(4.0, 0.1), 10.0);
        g.reset();
        assert_eq!(g.step(-4.0, 0.1), -10.0);
    }

    #[test]
    fn integrator_accumulates_and_resets() {
        let mut i = Integrator::new();
        assert_eq!(i.step(2.0, 0.5), 1.0);
        assert_eq!(i.step(2.0, 0.5), 2.0);
        assert_eq!(i.state(), 2.0);
        i.reset();
        assert_eq!(i.state(), 0.0);
    }

    #[test]
    fn integrator_with_limit_clamps() {
        let mut i = Integrator::with_limit(1.0);
        for _ in 0..100 {
            i.step(10.0, 0.1);
        }
        assert_eq!(i.state(), 1.0);
        for _ in 0..200 {
            i.step(-10.0, 0.1);
        }
        assert_eq!(i.state(), -1.0);
    }

    #[test]
    fn integrator_ignores_non_positive_dt() {
        let mut i = Integrator::new();
        i.step(5.0, 0.0);
        i.step(5.0, -1.0);
        assert_eq!(i.state(), 0.0);
    }

    #[test]
    fn differentiator_first_step_is_zero() {
        let mut d = Differentiator::new();
        assert_eq!(d.step(5.0, 0.1), 0.0);
        assert_eq!(d.step(6.0, 0.1), 10.0);
    }

    #[test]
    fn differentiator_reset_forgets_history() {
        let mut d = Differentiator::new();
        d.step(5.0, 0.1);
        d.reset();
        assert_eq!(d.step(10.0, 0.1), 0.0);
    }

    #[test]
    fn saturation_clamps_both_sides() {
        let mut s = Saturation::new(-1.0, 2.0);
        assert_eq!(s.step(-5.0, 0.1), -1.0);
        assert_eq!(s.step(5.0, 0.1), 2.0);
        assert_eq!(s.step(0.5, 0.1), 0.5);
    }

    #[test]
    fn symmetric_saturation() {
        let mut s = Saturation::symmetric(0.5);
        assert_eq!(s.step(1.0, 0.1), 0.5);
        assert_eq!(s.step(-1.0, 0.1), -0.5);
    }

    #[test]
    #[should_panic(expected = "saturation bounds must be ordered")]
    fn saturation_rejects_inverted_bounds() {
        let _ = Saturation::new(1.0, -1.0);
    }

    #[test]
    fn rate_limiter_limits_slew() {
        let mut r = RateLimiter::new(1.0);
        assert_eq!(r.step(0.0, 0.1), 0.0);
        // Input jumps to 10 but output may only move 0.1 per step.
        let out = r.step(10.0, 0.1);
        assert!((out - 0.1).abs() < 1e-12);
    }

    #[test]
    fn rate_limiter_tracks_slow_input() {
        let mut r = RateLimiter::new(100.0);
        r.step(0.0, 0.1);
        assert_eq!(r.step(1.0, 0.1), 1.0);
    }

    #[test]
    fn hysteresis_switches_with_memory() {
        let mut h = Hysteresis::new(0.25, 0.75);
        assert_eq!(h.step(0.5, 0.1), 0.0);
        assert_eq!(h.step(0.8, 0.1), 1.0);
        // Stays on in the middle band.
        assert_eq!(h.step(0.5, 0.1), 1.0);
        assert!(h.is_on());
        assert_eq!(h.step(0.2, 0.1), 0.0);
        assert!(!h.is_on());
    }

    #[test]
    fn dead_band_zeroes_small_inputs_and_is_continuous() {
        let mut d = DeadBand::new(0.1);
        assert_eq!(d.step(0.05, 0.1), 0.0);
        assert_eq!(d.step(-0.05, 0.1), 0.0);
        assert!((d.step(0.2, 0.1) - 0.1).abs() < 1e-12);
        assert!((d.step(-0.2, 0.1) + 0.1).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn saturation_output_within_bounds(x in -1e6f64..1e6, lo in -10.0f64..0.0, hi in 0.0f64..10.0) {
            let mut s = Saturation::new(lo, hi);
            let y = s.step(x, 0.1);
            prop_assert!(y >= lo && y <= hi);
        }

        #[test]
        fn rate_limiter_never_exceeds_rate(
            inputs in proptest::collection::vec(-100.0f64..100.0, 2..100),
            rate in 0.1f64..50.0,
            dt in 0.001f64..0.5,
        ) {
            let mut r = RateLimiter::new(rate);
            let mut prev: Option<f64> = None;
            for &x in &inputs {
                let y = r.step(x, dt);
                if let Some(p) = prev {
                    prop_assert!((y - p).abs() <= rate * dt + 1e-9);
                }
                prev = Some(y);
            }
        }

        #[test]
        fn dead_band_shrinks_magnitude(x in -100.0f64..100.0, w in 0.0f64..5.0) {
            let mut d = DeadBand::new(w);
            let y = d.step(x, 0.1);
            prop_assert!(y.abs() <= x.abs() + 1e-12);
            prop_assert!(y * x >= 0.0); // Sign is preserved or output is zero.
        }
    }
}
