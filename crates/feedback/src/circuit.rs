//! Series composition of feedback blocks, mirroring SWiFT "circuits".

use crate::block::Block;

/// A series chain of [`Block`]s: the output of each block feeds the next.
///
/// SWiFT expresses controllers as circuits that "calculate a function based
/// on their inputs, and use the function's output for actuation" (§3.3); a
/// `Circuit` is the equivalent composition primitive here.
///
/// # Examples
///
/// ```
/// use rrs_feedback::{Block, Circuit, Gain, Saturation};
///
/// let mut c = Circuit::new()
///     .then(Gain::new(10.0))
///     .then(Saturation::symmetric(1.0));
/// assert_eq!(c.step(0.05, 0.01), 0.5);
/// assert_eq!(c.step(0.5, 0.01), 1.0); // saturated
/// ```
#[derive(Default)]
pub struct Circuit {
    blocks: Vec<Box<dyn Block + Send>>,
}

impl Circuit {
    /// Creates an empty circuit (identity function).
    pub fn new() -> Self {
        Self { blocks: Vec::new() }
    }

    /// Appends a block to the chain, consuming and returning the circuit so
    /// construction can be chained.
    pub fn then<B: Block + Send + 'static>(mut self, block: B) -> Self {
        self.blocks.push(Box::new(block));
        self
    }

    /// Appends a boxed block.
    pub fn push(&mut self, block: Box<dyn Block + Send>) {
        self.blocks.push(block);
    }

    /// Number of blocks in the chain.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Returns `true` if the circuit has no blocks.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }
}

impl std::fmt::Debug for Circuit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Circuit")
            .field("blocks", &self.blocks.len())
            .finish()
    }
}

impl Block for Circuit {
    fn step(&mut self, input: f64, dt: f64) -> f64 {
        let mut x = input;
        for b in &mut self.blocks {
            x = b.step(x, dt);
        }
        x
    }

    fn reset(&mut self) {
        for b in &mut self.blocks {
            b.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{Gain, Integrator, Saturation};

    #[test]
    fn empty_circuit_is_identity() {
        let mut c = Circuit::new();
        assert!(c.is_empty());
        assert_eq!(c.step(3.5, 0.1), 3.5);
    }

    #[test]
    fn blocks_compose_in_order() {
        // Gain then saturation differs from saturation then gain.
        let mut gain_first = Circuit::new()
            .then(Gain::new(10.0))
            .then(Saturation::symmetric(1.0));
        let mut sat_first = Circuit::new()
            .then(Saturation::symmetric(1.0))
            .then(Gain::new(10.0));
        assert_eq!(gain_first.step(0.5, 0.1), 1.0);
        assert_eq!(sat_first.step(0.5, 0.1), 5.0);
    }

    #[test]
    fn reset_propagates_to_all_blocks() {
        let mut c = Circuit::new().then(Integrator::new()).then(Gain::new(1.0));
        c.step(1.0, 1.0);
        assert_eq!(c.step(0.0, 1.0), 1.0); // integrator holds state
        c.reset();
        assert_eq!(c.step(0.0, 1.0), 0.0);
    }

    #[test]
    fn push_boxed_block() {
        let mut c = Circuit::new();
        c.push(Box::new(Gain::new(2.0)));
        assert_eq!(c.len(), 1);
        assert_eq!(c.step(2.0, 0.1), 4.0);
    }

    #[test]
    fn debug_format_mentions_block_count() {
        let c = Circuit::new().then(Gain::new(1.0));
        assert!(format!("{c:?}").contains('1'));
    }
}
