//! Software feedback toolkit — a reimplementation of the role SWiFT plays in
//! the paper.
//!
//! The paper's adaptive controller is "implemented using the SWiFT software
//! feedback toolkit", a library of composable control-theory blocks (§3.3).
//! SWiFT itself is not available, so this crate provides the equivalent
//! substrate used by `rrs-core`:
//!
//! * [`PidController`] — proportional-integral-derivative control with
//!   anti-windup and output clamping; this computes the cumulative progress
//!   pressure `Q_t` of Figure 3.
//! * [`filter`] — low-pass filters (exponentially weighted moving average,
//!   windowed moving average, median) used to smooth noisy progress metrics.
//! * [`block`] — primitive feedback blocks (gain, integrator, differentiator,
//!   saturation, rate limiter, hysteresis, dead band) with a shared
//!   [`block::Block`] trait.
//! * [`circuit`] — series composition of blocks into a single transfer
//!   element, mirroring SWiFT's "circuit" concept.
//! * [`signal`] — deterministic signal generators (pulse trains, square,
//!   sine, ramp, step) used by the workloads to reproduce the paper's
//!   rising/falling production-rate pulses (Figure 6).
//!
//! All blocks are discrete-time: they are stepped with an explicit `dt` so
//! the same code runs under the simulator clock and under wall-clock time.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod block;
pub mod circuit;
pub mod filter;
pub mod pid;
pub mod signal;

pub use block::{
    Block, DeadBand, Differentiator, Gain, Hysteresis, Integrator, RateLimiter, Saturation,
};
pub use circuit::Circuit;
pub use filter::{Ewma, MedianFilter, MovingAverage};
pub use pid::{PidConfig, PidController};
pub use signal::{PulseTrain, RampWave, SineWave, SquareWave, StepSignal};
