//! Deterministic signal generators.
//!
//! The responsiveness experiment (Figure 6) drives the producer with "rising
//! pulses of various widths, doubling its rate of production ... before
//! falling back to the original rate", followed by falling pulses.  These
//! generators express that and related test signals as pure functions of
//! time so simulator runs are reproducible.

use serde::{Deserialize, Serialize};

/// A pulse train: a base level with rectangular pulses of a different level.
///
/// Each pulse `i` starts at `starts[i]` and lasts `widths[i]` seconds; during
/// a pulse the output is `pulse_level`, otherwise `base_level`.
///
/// # Examples
///
/// ```
/// use rrs_feedback::PulseTrain;
///
/// // Production rate doubles from 50 to 100 bytes/cycle for 4 seconds at t=10.
/// let p = PulseTrain::new(50.0, 100.0, vec![(10.0, 4.0)]);
/// assert_eq!(p.value(5.0), 50.0);
/// assert_eq!(p.value(12.0), 100.0);
/// assert_eq!(p.value(14.5), 50.0);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PulseTrain {
    base_level: f64,
    pulse_level: f64,
    /// `(start, width)` pairs in seconds.
    pulses: Vec<(f64, f64)>,
}

impl PulseTrain {
    /// Creates a pulse train with the given base level, pulse level and
    /// `(start, width)` pulse list.
    pub fn new(base_level: f64, pulse_level: f64, pulses: Vec<(f64, f64)>) -> Self {
        Self {
            base_level,
            pulse_level,
            pulses,
        }
    }

    /// Reproduces the Figure 6 stimulus: three rising pulses of the given
    /// widths, then the signal stays at the pulse level and emits three
    /// falling pulses (drops back to the base level) of the same widths.
    ///
    /// `start` is the time of the first pulse and `gap` the idle time
    /// between pulses.
    pub fn rising_then_falling(
        base_level: f64,
        pulse_level: f64,
        start: f64,
        widths: &[f64],
        gap: f64,
    ) -> Self {
        let mut pulses = Vec::new();
        let mut t = start;
        // Rising pulses: base -> pulse -> base.
        for &w in widths {
            pulses.push((t, w));
            t += w + gap;
        }
        // After the rising phase the level stays high; falling pulses are
        // represented as gaps in one long pulse.
        let high_start = t;
        let mut falling_edges = Vec::new();
        let mut ft = t + gap;
        for &w in widths {
            falling_edges.push((ft, w));
            ft += w + gap;
        }
        let high_end = ft + gap;
        // Build the "high" stretch with holes at the falling pulses.
        let mut cursor = high_start;
        for (fs, fw) in falling_edges {
            pulses.push((cursor, fs - cursor));
            cursor = fs + fw;
        }
        pulses.push((cursor, high_end - cursor));
        Self::new(base_level, pulse_level, pulses)
    }

    /// Returns the signal value at time `t` (seconds).
    pub fn value(&self, t: f64) -> f64 {
        for &(start, width) in &self.pulses {
            if t >= start && t < start + width {
                return self.pulse_level;
            }
        }
        self.base_level
    }

    /// Returns the base (non-pulse) level.
    pub fn base_level(&self) -> f64 {
        self.base_level
    }

    /// Returns the pulse level.
    pub fn pulse_level(&self) -> f64 {
        self.pulse_level
    }

    /// Returns the pulse list as `(start, width)` pairs.
    pub fn pulses(&self) -> &[(f64, f64)] {
        &self.pulses
    }
}

/// A square wave alternating between `low` and `high` with the given period
/// and duty cycle.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SquareWave {
    low: f64,
    high: f64,
    period: f64,
    duty: f64,
}

impl SquareWave {
    /// Creates a square wave.
    ///
    /// # Panics
    ///
    /// Panics if `period` is not positive or `duty` is outside `[0, 1]`.
    pub fn new(low: f64, high: f64, period: f64, duty: f64) -> Self {
        assert!(period > 0.0, "period must be positive");
        assert!((0.0..=1.0).contains(&duty), "duty must be in [0, 1]");
        Self {
            low,
            high,
            period,
            duty,
        }
    }

    /// Returns the value at time `t`; the wave is high for the first
    /// `duty`-fraction of each period.
    pub fn value(&self, t: f64) -> f64 {
        let phase = (t / self.period).rem_euclid(1.0);
        if phase < self.duty {
            self.high
        } else {
            self.low
        }
    }
}

/// A sine wave `offset + amplitude · sin(2π·t/period)`.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SineWave {
    offset: f64,
    amplitude: f64,
    period: f64,
}

impl SineWave {
    /// Creates a sine wave.
    ///
    /// # Panics
    ///
    /// Panics if `period` is not positive.
    pub fn new(offset: f64, amplitude: f64, period: f64) -> Self {
        assert!(period > 0.0, "period must be positive");
        Self {
            offset,
            amplitude,
            period,
        }
    }

    /// Returns the value at time `t`.
    pub fn value(&self, t: f64) -> f64 {
        self.offset + self.amplitude * (2.0 * std::f64::consts::PI * t / self.period).sin()
    }
}

/// A bounded linear ramp from `start_value` to `end_value` over
/// `[start_time, end_time]`, constant outside that interval.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct RampWave {
    start_time: f64,
    end_time: f64,
    start_value: f64,
    end_value: f64,
}

impl RampWave {
    /// Creates a ramp.
    ///
    /// # Panics
    ///
    /// Panics if `end_time <= start_time`.
    pub fn new(start_time: f64, end_time: f64, start_value: f64, end_value: f64) -> Self {
        assert!(end_time > start_time, "ramp must have positive duration");
        Self {
            start_time,
            end_time,
            start_value,
            end_value,
        }
    }

    /// Returns the value at time `t`.
    pub fn value(&self, t: f64) -> f64 {
        if t <= self.start_time {
            self.start_value
        } else if t >= self.end_time {
            self.end_value
        } else {
            let frac = (t - self.start_time) / (self.end_time - self.start_time);
            self.start_value + frac * (self.end_value - self.start_value)
        }
    }
}

/// A step: `before` until `at`, `after` afterwards.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct StepSignal {
    at: f64,
    before: f64,
    after: f64,
}

impl StepSignal {
    /// Creates a step signal switching at time `at`.
    pub fn new(at: f64, before: f64, after: f64) -> Self {
        Self { at, before, after }
    }

    /// Returns the value at time `t`.
    pub fn value(&self, t: f64) -> f64 {
        if t < self.at {
            self.before
        } else {
            self.after
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pulse_train_levels() {
        let p = PulseTrain::new(1.0, 2.0, vec![(5.0, 2.0), (10.0, 1.0)]);
        assert_eq!(p.value(0.0), 1.0);
        assert_eq!(p.value(5.0), 2.0);
        assert_eq!(p.value(6.9), 2.0);
        assert_eq!(p.value(7.0), 1.0);
        assert_eq!(p.value(10.5), 2.0);
        assert_eq!(p.base_level(), 1.0);
        assert_eq!(p.pulse_level(), 2.0);
        assert_eq!(p.pulses().len(), 2);
    }

    #[test]
    fn rising_then_falling_starts_low_and_has_falling_gaps() {
        let p = PulseTrain::rising_then_falling(50.0, 100.0, 2.0, &[4.0, 2.0, 1.0], 2.0);
        // Before the first pulse: base rate.
        assert_eq!(p.value(0.0), 50.0);
        // During the first rising pulse: doubled rate.
        assert_eq!(p.value(3.0), 100.0);
        // Between rising pulses: back to base.
        assert_eq!(p.value(7.0), 50.0);
        // Well into the high stretch the value is high most of the time but
        // drops to base during falling pulses; verify both levels occur.
        let mut saw_high = false;
        let mut saw_low = false;
        let high_phase_start = 2.0 + (4.0 + 2.0) + (2.0 + 2.0) + (1.0 + 2.0);
        let mut t = high_phase_start;
        while t < high_phase_start + 15.0 {
            let v = p.value(t);
            if v == 100.0 {
                saw_high = true;
            } else if v == 50.0 {
                saw_low = true;
            }
            t += 0.1;
        }
        assert!(saw_high && saw_low);
    }

    #[test]
    fn square_wave_respects_duty_cycle() {
        let s = SquareWave::new(0.0, 1.0, 10.0, 0.3);
        assert_eq!(s.value(0.0), 1.0);
        assert_eq!(s.value(2.9), 1.0);
        assert_eq!(s.value(3.1), 0.0);
        assert_eq!(s.value(9.9), 0.0);
        assert_eq!(s.value(10.1), 1.0);
    }

    #[test]
    fn square_wave_handles_negative_time() {
        let s = SquareWave::new(0.0, 1.0, 4.0, 0.5);
        // rem_euclid keeps the phase in [0, 1) for negative times.
        let v = s.value(-1.0);
        assert!(v == 0.0 || v == 1.0);
    }

    #[test]
    #[should_panic(expected = "duty must be in [0, 1]")]
    fn square_wave_rejects_bad_duty() {
        let _ = SquareWave::new(0.0, 1.0, 1.0, 1.5);
    }

    #[test]
    fn sine_wave_oscillates_around_offset() {
        let s = SineWave::new(5.0, 2.0, 1.0);
        assert!((s.value(0.0) - 5.0).abs() < 1e-12);
        assert!((s.value(0.25) - 7.0).abs() < 1e-9);
        assert!((s.value(0.75) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn ramp_is_clamped_outside_interval() {
        let r = RampWave::new(1.0, 3.0, 0.0, 10.0);
        assert_eq!(r.value(0.0), 0.0);
        assert_eq!(r.value(2.0), 5.0);
        assert_eq!(r.value(5.0), 10.0);
    }

    #[test]
    fn step_switches_at_threshold() {
        let s = StepSignal::new(2.0, 1.0, 9.0);
        assert_eq!(s.value(1.999), 1.0);
        assert_eq!(s.value(2.0), 9.0);
    }

    proptest! {
        #[test]
        fn pulse_train_only_emits_two_levels(
            t in 0.0f64..100.0,
            starts in proptest::collection::vec(0.0f64..100.0, 0..5),
        ) {
            let pulses: Vec<(f64, f64)> = starts.iter().map(|&s| (s, 1.0)).collect();
            let p = PulseTrain::new(10.0, 20.0, pulses);
            let v = p.value(t);
            prop_assert!(v == 10.0 || v == 20.0);
        }

        #[test]
        fn sine_is_bounded(t in -100.0f64..100.0, offset in -5.0f64..5.0, amp in 0.0f64..5.0) {
            let s = SineWave::new(offset, amp, 3.0);
            let v = s.value(t);
            prop_assert!(v >= offset - amp - 1e-9 && v <= offset + amp + 1e-9);
        }

        #[test]
        fn ramp_is_monotone_when_increasing(t1 in 0.0f64..10.0, t2 in 0.0f64..10.0) {
            let r = RampWave::new(2.0, 8.0, 0.0, 1.0);
            let (lo, hi) = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
            prop_assert!(r.value(lo) <= r.value(hi) + 1e-12);
        }
    }
}
