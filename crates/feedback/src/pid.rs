//! Proportional-integral-derivative control.
//!
//! The controller of the paper computes the cumulative progress pressure
//! `Q_t = G(Σ_i R_{t,i} · F_{t,i})` where `G` is a PID control function
//! (Figure 3): the magnitude of the summed pressures (P) is combined with
//! their integral (I) and first derivative (D) to provide "error reduction
//! together with acceptable stability and damping".

use serde::{Deserialize, Serialize};

/// Gains and limits for a [`PidController`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PidConfig {
    /// Proportional gain.
    pub kp: f64,
    /// Integral gain.
    pub ki: f64,
    /// Derivative gain.
    pub kd: f64,
    /// Clamp on the magnitude of the integral term (anti-windup).
    pub integral_limit: f64,
    /// Clamp on the magnitude of the output; `f64::INFINITY` disables it.
    pub output_limit: f64,
}

impl Default for PidConfig {
    fn default() -> Self {
        // Defaults chosen to reproduce the paper's behaviour on the pulse
        // experiment: strongly proportional, a small integral term to remove
        // steady-state error, and a small derivative term for damping.
        Self {
            kp: 1.0,
            ki: 0.2,
            kd: 0.05,
            integral_limit: 2.0,
            output_limit: f64::INFINITY,
        }
    }
}

impl PidConfig {
    /// A purely proportional configuration (used by the ablation benches).
    pub fn p_only(kp: f64) -> Self {
        Self {
            kp,
            ki: 0.0,
            kd: 0.0,
            ..Self::default()
        }
    }

    /// A proportional-integral configuration.
    pub fn pi(kp: f64, ki: f64) -> Self {
        Self {
            kp,
            ki,
            kd: 0.0,
            ..Self::default()
        }
    }

    /// A full PID configuration.
    pub fn pid(kp: f64, ki: f64, kd: f64) -> Self {
        Self {
            kp,
            ki,
            kd,
            ..Self::default()
        }
    }
}

/// Discrete-time PID controller with anti-windup and output clamping.
///
/// # Examples
///
/// ```
/// use rrs_feedback::{PidConfig, PidController};
///
/// let mut pid = PidController::new(PidConfig::p_only(2.0));
/// // A constant error of 0.5 with a purely proportional controller
/// // produces a constant output of 1.0.
/// assert_eq!(pid.update(0.5, 0.01), 1.0);
/// assert_eq!(pid.update(0.5, 0.01), 1.0);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PidController {
    config: PidConfig,
    integral: f64,
    last_error: Option<f64>,
    last_output: f64,
}

impl PidController {
    /// Creates a controller with the given configuration.
    pub fn new(config: PidConfig) -> Self {
        Self {
            config,
            integral: 0.0,
            last_error: None,
            last_output: 0.0,
        }
    }

    /// Returns the configuration.
    pub fn config(&self) -> PidConfig {
        self.config
    }

    /// Replaces the configuration, keeping the accumulated state.
    pub fn set_config(&mut self, config: PidConfig) {
        self.config = config;
    }

    /// Advances the controller by one step with the given error and time
    /// step `dt` (seconds) and returns the control output.
    ///
    /// A non-positive `dt` is treated as "no time has passed": the integral
    /// and derivative terms are left unchanged and only the proportional
    /// term is recomputed.
    pub fn update(&mut self, error: f64, dt: f64) -> f64 {
        let p = self.config.kp * error;

        let mut d = 0.0;
        if dt > 0.0 {
            self.integral += error * dt;
            let lim = self.config.integral_limit.abs();
            self.integral = self.integral.clamp(-lim, lim);
            if let Some(prev) = self.last_error {
                d = self.config.kd * (error - prev) / dt;
            }
            self.last_error = Some(error);
        }

        let i = self.config.ki * self.integral;
        let lim = self.config.output_limit.abs();
        let out = (p + i + d).clamp(-lim, lim);
        self.last_output = out;
        out
    }

    /// Returns the most recent output without stepping the controller.
    pub fn last_output(&self) -> f64 {
        self.last_output
    }

    /// Returns the current value of the integral accumulator.
    pub fn integral(&self) -> f64 {
        self.integral
    }

    /// Returns the error fed to the most recent update with positive `dt`,
    /// if any — the state the derivative term differentiates against.
    pub fn last_error(&self) -> Option<f64> {
        self.last_error
    }

    /// Clears the accumulated integral and derivative state.
    pub fn reset(&mut self) {
        self.integral = 0.0;
        self.last_error = None;
        self.last_output = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn proportional_only_scales_error() {
        let mut pid = PidController::new(PidConfig::p_only(3.0));
        assert_eq!(pid.update(0.5, 0.1), 1.5);
        assert_eq!(pid.update(-0.5, 0.1), -1.5);
    }

    #[test]
    fn integral_accumulates_constant_error() {
        let mut pid = PidController::new(PidConfig::pi(0.0, 1.0));
        let mut last = 0.0;
        for _ in 0..10 {
            last = pid.update(1.0, 0.1);
        }
        // Integral of a unit error over 1 second is 1.0.
        assert!((last - 1.0).abs() < 1e-9);
        assert!((pid.integral() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn integral_is_clamped_by_anti_windup() {
        let config = PidConfig {
            kp: 0.0,
            ki: 1.0,
            kd: 0.0,
            integral_limit: 0.5,
            output_limit: f64::INFINITY,
        };
        let mut pid = PidController::new(config);
        for _ in 0..1000 {
            pid.update(1.0, 0.1);
        }
        assert!(pid.integral() <= 0.5 + 1e-12);
        assert!(pid.last_output() <= 0.5 + 1e-12);
    }

    #[test]
    fn derivative_responds_to_error_change() {
        let mut pid = PidController::new(PidConfig::pid(0.0, 0.0, 1.0));
        pid.update(0.0, 0.1);
        let out = pid.update(1.0, 0.1);
        // d(error)/dt = (1 - 0) / 0.1 = 10.
        assert!((out - 10.0).abs() < 1e-9);
        // Constant error afterwards -> derivative returns to zero.
        let out2 = pid.update(1.0, 0.1);
        assert!(out2.abs() < 1e-9);
    }

    #[test]
    fn first_update_has_no_derivative_kick() {
        let mut pid = PidController::new(PidConfig::pid(0.0, 0.0, 5.0));
        // Without a previous error there is nothing to differentiate.
        assert_eq!(pid.update(10.0, 0.1), 0.0);
    }

    #[test]
    fn output_is_clamped() {
        let config = PidConfig {
            kp: 100.0,
            ki: 0.0,
            kd: 0.0,
            integral_limit: 1.0,
            output_limit: 2.0,
        };
        let mut pid = PidController::new(config);
        assert_eq!(pid.update(1.0, 0.1), 2.0);
        assert_eq!(pid.update(-1.0, 0.1), -2.0);
    }

    #[test]
    fn zero_dt_skips_integral_and_derivative() {
        let mut pid = PidController::new(PidConfig::pid(1.0, 1.0, 1.0));
        let out = pid.update(0.5, 0.0);
        assert_eq!(out, 0.5);
        assert_eq!(pid.integral(), 0.0);
    }

    #[test]
    fn reset_clears_state() {
        let mut pid = PidController::new(PidConfig::default());
        pid.update(1.0, 0.1);
        pid.update(1.0, 0.1);
        assert!(pid.integral() > 0.0);
        pid.reset();
        assert_eq!(pid.integral(), 0.0);
        assert_eq!(pid.last_output(), 0.0);
    }

    #[test]
    fn closed_loop_converges_to_setpoint() {
        // A trivial first-order plant: state += output * dt. The PID should
        // drive the state to the setpoint without oscillating wildly.
        let mut pid = PidController::new(PidConfig::pid(4.0, 1.0, 0.1));
        let mut state = 0.0;
        let setpoint = 1.0;
        let dt = 0.01;
        for _ in 0..2000 {
            let error = setpoint - state;
            let u = pid.update(error, dt);
            state += u * dt;
        }
        assert!((state - setpoint).abs() < 0.01, "state={state}");
    }

    proptest! {
        #[test]
        fn output_respects_limit(
            errors in proptest::collection::vec(-10.0f64..10.0, 1..200),
            limit in 0.1f64..5.0,
        ) {
            let config = PidConfig {
                kp: 3.0,
                ki: 1.0,
                kd: 0.5,
                integral_limit: 10.0,
                output_limit: limit,
            };
            let mut pid = PidController::new(config);
            for e in errors {
                let out = pid.update(e, 0.01);
                prop_assert!(out.abs() <= limit + 1e-9);
            }
        }

        #[test]
        fn zero_error_keeps_zero_output(dt in 0.001f64..1.0, steps in 1usize..100) {
            let mut pid = PidController::new(PidConfig::default());
            for _ in 0..steps {
                let out = pid.update(0.0, dt);
                prop_assert!(out.abs() < 1e-12);
            }
        }
    }
}
