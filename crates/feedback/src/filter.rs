//! Low-pass filters for smoothing noisy progress metrics.
//!
//! §4.1 of the paper: "Using a suitable low-pass filter, we can schedule
//! jobs with reasonable responsiveness and low overhead while keeping the
//! sampling rate reasonably high."  The controller smooths sampled fill
//! levels and usage measurements before acting on them.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Exponentially weighted moving average (first-order IIR low-pass filter).
///
/// `alpha` is the weight of the newest sample: `y ← α·x + (1-α)·y`.
///
/// # Examples
///
/// ```
/// use rrs_feedback::Ewma;
///
/// let mut f = Ewma::new(0.5);
/// assert_eq!(f.update(10.0), 10.0); // first sample initialises the state
/// assert_eq!(f.update(0.0), 5.0);
/// ```
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Ewma {
    alpha: f64,
    state: Option<f64>,
}

impl Ewma {
    /// Creates a filter with smoothing factor `alpha`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < alpha <= 1`.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        Self { alpha, state: None }
    }

    /// Creates a filter whose time constant is `tau` seconds when sampled
    /// every `dt` seconds (`alpha = dt / (tau + dt)`).
    ///
    /// # Panics
    ///
    /// Panics unless both `tau` and `dt` are positive.
    pub fn with_time_constant(tau: f64, dt: f64) -> Self {
        assert!(tau > 0.0 && dt > 0.0, "tau and dt must be positive");
        Self::new(dt / (tau + dt))
    }

    /// Feeds a sample and returns the filtered value.
    pub fn update(&mut self, x: f64) -> f64 {
        let next = match self.state {
            None => x,
            Some(prev) => self.alpha * x + (1.0 - self.alpha) * prev,
        };
        self.state = Some(next);
        next
    }

    /// Returns the current filtered value, if any sample has been seen.
    pub fn value(&self) -> Option<f64> {
        self.state
    }

    /// Clears the filter state.
    pub fn reset(&mut self) {
        self.state = None;
    }
}

/// Windowed (simple) moving average.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MovingAverage {
    window: usize,
    samples: VecDeque<f64>,
    sum: f64,
}

impl MovingAverage {
    /// Creates a moving average over the last `window` samples.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "window must be non-zero");
        Self {
            window,
            samples: VecDeque::with_capacity(window),
            sum: 0.0,
        }
    }

    /// Feeds a sample and returns the current average.
    pub fn update(&mut self, x: f64) -> f64 {
        self.samples.push_back(x);
        self.sum += x;
        if self.samples.len() > self.window {
            if let Some(old) = self.samples.pop_front() {
                self.sum -= old;
            }
        }
        self.value()
    }

    /// Returns the current average (0.0 with no samples).
    pub fn value(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.sum / self.samples.len() as f64
        }
    }

    /// Number of samples currently in the window.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Returns `true` if no samples have been fed.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Clears the window.
    pub fn reset(&mut self) {
        self.samples.clear();
        self.sum = 0.0;
    }
}

/// Median filter over a sliding window; robust to single-sample spikes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MedianFilter {
    window: usize,
    samples: VecDeque<f64>,
}

impl MedianFilter {
    /// Creates a median filter over the last `window` samples.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "window must be non-zero");
        Self {
            window,
            samples: VecDeque::with_capacity(window),
        }
    }

    /// Feeds a sample and returns the median of the window.
    pub fn update(&mut self, x: f64) -> f64 {
        self.samples.push_back(x);
        if self.samples.len() > self.window {
            self.samples.pop_front();
        }
        self.value()
    }

    /// Returns the median of the current window (0.0 with no samples).
    pub fn value(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let mut sorted: Vec<f64> = self.samples.iter().copied().collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("samples must not be NaN"));
        let n = sorted.len();
        if n % 2 == 1 {
            sorted[n / 2]
        } else {
            0.5 * (sorted[n / 2 - 1] + sorted[n / 2])
        }
    }

    /// Clears the window.
    pub fn reset(&mut self) {
        self.samples.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn ewma_first_sample_initialises() {
        let mut f = Ewma::new(0.1);
        assert_eq!(f.value(), None);
        assert_eq!(f.update(4.0), 4.0);
        assert_eq!(f.value(), Some(4.0));
    }

    #[test]
    fn ewma_converges_to_constant_input() {
        let mut f = Ewma::new(0.2);
        f.update(0.0);
        let mut last = 0.0;
        for _ in 0..200 {
            last = f.update(10.0);
        }
        assert!((last - 10.0).abs() < 1e-6);
    }

    #[test]
    fn ewma_time_constant_constructor() {
        let f = Ewma::with_time_constant(1.0, 1.0);
        // alpha = 1 / 2.
        let mut f = f;
        f.update(0.0);
        assert_eq!(f.update(10.0), 5.0);
    }

    #[test]
    #[should_panic(expected = "alpha must be in (0, 1]")]
    fn ewma_rejects_zero_alpha() {
        let _ = Ewma::new(0.0);
    }

    #[test]
    fn ewma_reset_clears_state() {
        let mut f = Ewma::new(0.5);
        f.update(3.0);
        f.reset();
        assert_eq!(f.value(), None);
        assert_eq!(f.update(7.0), 7.0);
    }

    #[test]
    fn moving_average_over_partial_window() {
        let mut m = MovingAverage::new(4);
        assert_eq!(m.update(2.0), 2.0);
        assert_eq!(m.update(4.0), 3.0);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn moving_average_evicts_old_samples() {
        let mut m = MovingAverage::new(2);
        m.update(1.0);
        m.update(3.0);
        assert_eq!(m.update(5.0), 4.0); // window is now [3, 5]
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn moving_average_empty_is_zero() {
        let m = MovingAverage::new(3);
        assert!(m.is_empty());
        assert_eq!(m.value(), 0.0);
    }

    #[test]
    fn moving_average_reset() {
        let mut m = MovingAverage::new(3);
        m.update(9.0);
        m.reset();
        assert!(m.is_empty());
        assert_eq!(m.value(), 0.0);
    }

    #[test]
    #[should_panic(expected = "window must be non-zero")]
    fn moving_average_rejects_zero_window() {
        let _ = MovingAverage::new(0);
    }

    #[test]
    fn median_filter_rejects_spikes() {
        let mut f = MedianFilter::new(3);
        f.update(1.0);
        f.update(1.0);
        // A single spike does not move the median.
        assert_eq!(f.update(100.0), 1.0);
    }

    #[test]
    fn median_of_even_window_averages_middle_pair() {
        let mut f = MedianFilter::new(4);
        for v in [1.0, 2.0, 3.0, 4.0] {
            f.update(v);
        }
        assert_eq!(f.value(), 2.5);
    }

    #[test]
    fn median_empty_is_zero() {
        let f = MedianFilter::new(3);
        assert_eq!(f.value(), 0.0);
    }

    proptest! {
        #[test]
        fn ewma_output_is_bounded_by_input_range(
            alpha in 0.01f64..1.0,
            values in proptest::collection::vec(-100.0f64..100.0, 1..100),
        ) {
            let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let mut f = Ewma::new(alpha);
            for &v in &values {
                let y = f.update(v);
                prop_assert!(y >= lo - 1e-9 && y <= hi + 1e-9);
            }
        }

        #[test]
        fn moving_average_is_bounded_by_window_extremes(
            window in 1usize..10,
            values in proptest::collection::vec(-50.0f64..50.0, 1..100),
        ) {
            let mut m = MovingAverage::new(window);
            for &v in &values {
                m.update(v);
            }
            let tail: Vec<f64> = values.iter().rev().take(window).copied().collect();
            let lo = tail.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = tail.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(m.value() >= lo - 1e-9 && m.value() <= hi + 1e-9);
        }

        #[test]
        fn median_is_an_element_or_midpoint(
            values in proptest::collection::vec(-50.0f64..50.0, 1..50),
        ) {
            let mut f = MedianFilter::new(5);
            for &v in &values {
                let med = f.update(v);
                prop_assert!(med.is_finite());
            }
        }
    }
}
