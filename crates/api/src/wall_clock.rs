//! [`Host`] over the wall-clock executor: real OS threads running
//! [`WorkModel`]s.
//!
//! The simulator *books* a work model's computed CPU consumption against
//! a simulated clock; this host *realises* it — each job's model runs on
//! a dedicated worker thread that computes its consumption for the
//! granted quantum (same cycles-to-time arithmetic, same virtual clock
//! rate) and then actually burns that much CPU before reporting back.
//! Blocking works the same way as in the simulator: a model that blocks
//! is re-polled (`poll_unblock`) until it reports runnable.
//!
//! Everything above the work model is the production code path: the real
//! `rrs-scheduler` machine decides who runs, the real `rrs-core`
//! controller adapts reservations from the real `rrs-queue` progress
//! metrics.  Results match the simulator within scheduling tolerance, not
//! bit-for-bit — OS timing noise is the point of this backend.

use crate::host::{Backend, Host, HostStats};
use crate::time::SimTime;
use parking_lot::Mutex;
use rrs_core::{controller::AdmitError, Controller, JobHandle, JobSpec};
use rrs_queue::MetricRegistry;
use rrs_realtime::{ExecutorConfig, RealTimeExecutor, StepOutcome};
use rrs_scheduler::{CpuId, Machine, Reservation, ThreadId, UsageAccount};
use rrs_sim::{Trace, WorkModel};
use rrs_telemetry::{Recorder, TelemetryConfig, TelemetrySnapshot};
use std::any::Any;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Configuration of the wall-clock host.
#[derive(Debug, Clone, Copy)]
pub struct WallClockConfig {
    /// Executor configuration (dispatcher, controller, idle sleeps).
    pub executor: ExecutorConfig,
    /// The virtual clock rate work models convert cycles to time with,
    /// in Hz.  Defaults to the simulator's 400 MHz so a workload's CPU
    /// demand means the same thing on both backends.
    pub cpu_hz: f64,
    /// Interval between trace samples.
    pub trace_interval: SimTime,
}

impl Default for WallClockConfig {
    fn default() -> Self {
        Self {
            executor: ExecutorConfig::default(),
            cpu_hz: 400e6,
            trace_interval: SimTime::from_millis(100),
        }
    }
}

/// A work model plus its blocked flag, shared between the worker thread
/// that steps it and the host thread that samples its progress counter.
struct ModelCell {
    model: Box<dyn WorkModel>,
    blocked: bool,
}

struct WallJob {
    name: String,
    handle: JobHandle,
    cell: Arc<Mutex<ModelCell>>,
    last_progress: f64,
}

/// The wall-clock backend: [`WorkModel`]s running for real on OS threads.
///
/// Build one with [`crate::Runtime::wall_clock`].
pub struct WallClockHost {
    exec: RealTimeExecutor,
    config: WallClockConfig,
    /// The epoch worker closures timestamp `WorkModel::run` calls with;
    /// created alongside the executor so both clocks agree.
    epoch: Instant,
    jobs: BTreeMap<ThreadId, WallJob>,
    trace: Trace,
    next_trace: SimTime,
    last_trace: SimTime,
}

impl WallClockHost {
    /// Creates a wall-clock host.
    pub fn new(mut config: WallClockConfig) -> Self {
        // A zero interval would make the trace sampler spin without
        // progress; clamp rather than hang the first `advance`.
        config.trace_interval = config.trace_interval.max(SimTime::from_micros(1));
        Self {
            exec: RealTimeExecutor::new(config.executor),
            config,
            epoch: Instant::now(),
            jobs: BTreeMap::new(),
            trace: Trace::new(),
            next_trace: SimTime::ZERO,
            last_trace: SimTime::ZERO,
        }
    }

    /// Read-only access to the underlying executor.
    pub fn executor(&self) -> &RealTimeExecutor {
        &self.exec
    }

    /// Burns `us` microseconds of real CPU.
    fn spin_for_us(us: u64) {
        let t0 = Instant::now();
        while (t0.elapsed().as_micros() as u64) < us {
            std::hint::spin_loop();
        }
    }

    /// Records one trace sample round if one is due, mirroring the
    /// simulator's `alloc/`, `period/`, `rate/` and `fill/` series.
    fn maybe_record_trace(&mut self) {
        let now = Host::now(self);
        if now < self.next_trace {
            return;
        }
        let t = now.as_secs_f64();
        let interval_s = (now.saturating_sub(self.last_trace))
            .as_secs_f64()
            .max(1e-9);
        for job in self.jobs.values_mut() {
            if let Some(r) = self.exec.reservation(job.handle) {
                self.trace
                    .record(&format!("alloc/{}", job.name), t, r.proportion.ppt() as f64);
                self.trace.record(
                    &format!("period/{}", job.name),
                    t,
                    r.period.as_secs_f64() * 1e3,
                );
            }
            let progress = job.cell.lock().model.progress_counter();
            if let Some(progress) = progress {
                let rate = (progress - job.last_progress) / interval_s;
                job.last_progress = progress;
                self.trace.record(&format!("rate/{}", job.name), t, rate);
            }
        }
        let mut seen = std::collections::BTreeSet::new();
        for attachment in self.exec.registry().all_attachments() {
            let name = attachment.metric.name().to_string();
            if seen.insert(name.clone()) {
                self.trace
                    .record(&format!("fill/{name}"), t, attachment.sample().fraction());
            }
        }
        self.last_trace = now;
        while self.next_trace <= now {
            self.next_trace += self.config.trace_interval;
        }
    }
}

impl Host for WallClockHost {
    fn backend(&self) -> Backend {
        Backend::WallClock
    }

    fn add_job(
        &mut self,
        name: &str,
        spec: JobSpec,
        work: Box<dyn WorkModel>,
    ) -> Result<JobHandle, AdmitError> {
        let cell = Arc::new(Mutex::new(ModelCell {
            model: work,
            blocked: false,
        }));
        let worker_cell = Arc::clone(&cell);
        let epoch = self.epoch;
        let cpu_hz = self.config.cpu_hz;
        let handle = self.exec.try_spawn(name, spec, move |quantum: Duration| {
            let now_us = epoch.elapsed().as_micros() as u64;
            let quantum_us = (quantum.as_micros() as u64).max(1);
            let mut cell = worker_cell.lock();
            if cell.blocked {
                if !cell.model.poll_unblock(now_us) {
                    return StepOutcome::Blocked;
                }
                cell.blocked = false;
            }
            let result = cell.model.run(now_us, quantum_us, cpu_hz);
            cell.blocked = result.blocked;
            drop(cell);
            // Realise the model's computed consumption: burn that much
            // real CPU (the simulator books it; we spend it).
            WallClockHost::spin_for_us(result.used_us.min(quantum_us));
            if result.blocked {
                StepOutcome::Blocked
            } else {
                StepOutcome::Continue
            }
        })?;
        self.jobs.insert(
            handle.thread,
            WallJob {
                name: name.to_string(),
                handle,
                cell,
                last_progress: 0.0,
            },
        );
        Ok(handle)
    }

    fn remove_job(&mut self, handle: JobHandle) {
        self.jobs.remove(&handle.thread);
        self.exec.remove(handle);
    }

    fn advance(&mut self, dt: SimTime) {
        let target = Host::now(self) + dt;
        loop {
            self.maybe_record_trace();
            let now = Host::now(self);
            if now >= target {
                break;
            }
            // Run up to the next trace sample (at least 1 ms so the
            // executor always makes progress), then sample.
            let until_trace = self.next_trace.saturating_sub(now);
            let chunk = (target - now)
                .as_micros()
                .min(until_trace.as_micros().max(1_000));
            self.exec.run_for(Duration::from_micros(chunk));
        }
        self.maybe_record_trace();
    }

    fn now(&self) -> SimTime {
        SimTime::from(self.exec.elapsed())
    }

    fn allocation_ppt(&self, handle: JobHandle) -> u32 {
        self.exec.current_allocation_ppt(handle)
    }

    fn reservation(&self, handle: JobHandle) -> Option<Reservation> {
        self.exec.reservation(handle)
    }

    fn cpu_of(&self, handle: JobHandle) -> Option<CpuId> {
        self.exec.cpu_of(handle)
    }

    fn cpu_used(&self, handle: JobHandle) -> SimTime {
        SimTime::from(self.exec.cpu_time(handle))
    }

    fn usage(&self, handle: JobHandle) -> Option<UsageAccount> {
        self.exec.usage(handle)
    }

    fn grow_cpus(&mut self, cpus: usize) -> usize {
        self.exec.grow_cpus(cpus)
    }

    fn cpu_count(&self) -> usize {
        self.exec.cpu_count()
    }

    fn cpu_hz(&self) -> f64 {
        self.config.cpu_hz
    }

    fn controller(&self) -> &Controller {
        self.exec.controller()
    }

    fn machine(&self) -> &Machine {
        self.exec.machine()
    }

    fn registry(&self) -> MetricRegistry {
        self.exec.registry()
    }

    fn force_reservation(&mut self, handle: JobHandle, reservation: Reservation) {
        self.exec.force_reservation(handle, reservation)
    }

    fn stats(&self) -> HostStats {
        let stats = self.exec.stats();
        HostStats {
            controller_invocations: stats.controller_invocations,
            quality_exceptions: stats.quality_exceptions,
            squish_events: stats.squish_events,
            admission_rejections: stats.admission_rejections,
            migrations: stats.migrations,
            steps: stats.rounds,
            per_cpu: stats.per_cpu,
        }
    }

    fn telemetry(&self) -> TelemetrySnapshot {
        self.exec.telemetry_snapshot()
    }

    fn enable_telemetry(&mut self, config: TelemetryConfig) -> Arc<Recorder> {
        self.exec.enable_telemetry(config)
    }

    fn telemetry_recorder(&self) -> Option<Arc<Recorder>> {
        self.exec.telemetry_recorder()
    }

    fn trace(&self) -> &Trace {
        &self.trace
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

impl std::fmt::Debug for WallClockHost {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WallClockHost")
            .field("jobs", &self.jobs.len())
            .field("cpus", &self.exec.cpu_count())
            .finish()
    }
}
