//! Building hosts: `Runtime::sim().cpus(8).build()`.

use crate::host::{Backend, Host};
use crate::wall_clock::{WallClockConfig, WallClockHost};
use rrs_core::ControllerConfig;
use rrs_sim::{ShardConfig, ShardedSim, SimConfig, Simulation};
use rrs_telemetry::TelemetryConfig;

/// Entry point of the backend-agnostic API.
///
/// ```
/// use rrs_api::Runtime;
///
/// let sim = Runtime::sim().cpus(8).build();
/// assert_eq!(sim.cpu_count(), 8);
/// let wall = Runtime::wall_clock().cpus(2).build();
/// assert_eq!(wall.cpu_count(), 2);
/// ```
pub struct Runtime;

impl Runtime {
    /// A builder for the deterministic simulator backend.
    pub fn sim() -> RuntimeBuilder {
        RuntimeBuilder::new(Backend::Sim)
    }

    /// A builder for the wall-clock (real OS threads) backend.
    pub fn wall_clock() -> RuntimeBuilder {
        RuntimeBuilder::new(Backend::WallClock)
    }

    /// A builder for the given backend — for callers that carry the
    /// choice as data (scenario specs, CLI flags).
    pub fn backend(backend: Backend) -> RuntimeBuilder {
        RuntimeBuilder::new(backend)
    }
}

/// Configures and builds a [`Host`].
///
/// The defaults are the paper's machine — one 400 MHz CPU, the
/// prototype's controller gains — on either backend.  `cpus(n)` is the
/// common knob; `sim_config` / `wall_clock_config` are the full escape
/// hatches for experiment-grade control.
#[derive(Debug, Clone, Copy)]
pub struct RuntimeBuilder {
    backend: Backend,
    cpus: Option<usize>,
    sim: SimConfig,
    shard: ShardConfig,
    wall: WallClockConfig,
    telemetry: Option<TelemetryConfig>,
}

impl RuntimeBuilder {
    fn new(backend: Backend) -> Self {
        Self {
            backend,
            cpus: None,
            sim: SimConfig::default(),
            shard: ShardConfig::default(),
            wall: WallClockConfig::default(),
            telemetry: None,
        }
    }

    /// The backend this builder will construct.
    pub fn backend_kind(&self) -> Backend {
        self.backend
    }

    /// Number of CPUs (simulated CPUs, or logical worker shards on the
    /// wall-clock backend).  Overrides whatever the backend config says.
    pub fn cpus(mut self, cpus: usize) -> Self {
        self.cpus = Some(cpus);
        self
    }

    /// Number of machine shards on the simulator backend (see
    /// [`rrs_sim::ShardedSim`]).  `shards > 1` builds the two-level
    /// sharded machine: per-shard controller/calendar/dispatchers plus a
    /// slow-cadence rebalancer.  The default (and `shards <= 1`) builds
    /// the plain unsharded [`Simulation`], so existing behaviour — golden
    /// statistics included — is untouched.  Ignored on the wall-clock
    /// backend.
    pub fn shards(mut self, shards: usize) -> Self {
        self.shard.shards = shards.max(1);
        self
    }

    /// Full sharding configuration (rebalance cadence and threshold,
    /// parallel shard execution) for the simulator backend.
    pub fn shard_config(mut self, config: ShardConfig) -> Self {
        self.shard = config;
        self
    }

    /// Replaces the controller configuration (applies to whichever
    /// backend is built).
    pub fn controller_config(mut self, config: ControllerConfig) -> Self {
        self.sim.controller = config;
        self.wall.executor.controller = config;
        self
    }

    /// Full simulator configuration (used only when the backend is
    /// [`Backend::Sim`]).
    pub fn sim_config(mut self, config: SimConfig) -> Self {
        self.sim = config;
        self
    }

    /// Full wall-clock configuration (used only when the backend is
    /// [`Backend::WallClock`]).
    pub fn wall_clock_config(mut self, config: WallClockConfig) -> Self {
        self.wall = config;
        self
    }

    /// Enables structured trace recording on the built host (see
    /// [`Host::enable_telemetry`]).  Without this call the host records
    /// nothing and its hot paths carry only the always-on counters.
    pub fn telemetry(mut self, config: TelemetryConfig) -> Self {
        self.telemetry = Some(config);
        self
    }

    /// Builds the host.
    pub fn build(self) -> Box<dyn Host> {
        let mut host: Box<dyn Host> = match self.backend {
            Backend::Sim => {
                let config = match self.cpus {
                    Some(n) => self.sim.with_cpus(n),
                    None => self.sim,
                };
                if self.shard.shards > 1 {
                    Box::new(ShardedSim::new(config, self.shard))
                } else {
                    Box::new(Simulation::new(config))
                }
            }
            Backend::WallClock => {
                let mut config = self.wall;
                if let Some(n) = self.cpus {
                    config.executor = config.executor.with_cpus(n);
                }
                Box::new(WallClockHost::new(config))
            }
        };
        if let Some(config) = self.telemetry {
            host.enable_telemetry(config);
        }
        host
    }
}
