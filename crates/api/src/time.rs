//! The one time type every host speaks.
//!
//! [`SimTime`] now lives in `rrs-core` (the event-calendar simulator keys
//! its schedule by it, and `rrs-sim` sits below this crate in the
//! dependency graph); this module re-exports it so `rrs_api::SimTime` and
//! `rrs_api::time::SimTime` keep working unchanged.

pub use rrs_core::time::{Micros, SimTime};
