//! The backend-agnostic host surface.
//!
//! A [`Host`] is anywhere jobs can run under the feedback allocator: the
//! deterministic simulator (`rrs-sim`) or the wall-clock executor
//! (`rrs-realtime`).  Workloads, scenarios and experiments written
//! against this trait run unchanged on either backend — the paper's
//! thesis ("one allocator serves every workload without per-app tuning")
//! extended to "…on any backend".

use crate::time::SimTime;
use rrs_core::{controller::AdmitError, Controller, JobHandle, JobSpec};
use rrs_queue::MetricRegistry;
use rrs_scheduler::{CpuId, CpuStats, Machine, Reservation, UsageAccount};
use rrs_sim::{Trace, WorkModel};
use rrs_telemetry::{Recorder, TelemetryConfig, TelemetrySnapshot};
use serde::{Deserialize, Serialize};
use std::any::Any;
use std::sync::Arc;

/// Which engine a host runs jobs on.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum Backend {
    /// The deterministic discrete-event simulator (`rrs-sim`): simulated
    /// time, bit-for-bit reproducible runs.
    #[default]
    Sim,
    /// The cooperative wall-clock executor (`rrs-realtime`): real OS
    /// threads, real time, results within tolerance rather than exact.
    WallClock,
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Backend::Sim => write!(f, "sim"),
            Backend::WallClock => write!(f, "wall_clock"),
        }
    }
}

impl std::str::FromStr for Backend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "sim" => Ok(Backend::Sim),
            "wall_clock" | "wall-clock" | "wallclock" => Ok(Backend::WallClock),
            other => Err(format!("unknown backend '{other}' (sim | wall_clock)")),
        }
    }
}

/// Aggregate statistics of a host run — the backend-neutral core both
/// `rrs_sim::SimStats` and `rrs_realtime::ExecutorStats` share.
///
/// Backend-specific extras (the simulator's modelled overhead sums, the
/// executor's timing jitter) stay on the concrete types; downcast with
/// [`Host::as_any`] when an experiment needs them.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct HostStats {
    /// Number of controller invocations.
    pub controller_invocations: u64,
    /// Number of quality exceptions raised.
    pub quality_exceptions: u64,
    /// Number of control cycles in which allocations were squished.
    pub squish_events: u64,
    /// Number of real-time admission rejections observed.
    pub admission_rejections: u64,
    /// Number of cross-CPU migrations applied.
    pub migrations: u64,
    /// Number of scheduling rounds executed (simulator steps or executor
    /// dispatch sweeps).
    pub steps: u64,
    /// Per-CPU breakdown (usage, idle, migrations), one entry per CPU.
    pub per_cpu: Vec<CpuStats>,
}

impl HostStats {
    /// Total CPU time consumed by jobs across all CPUs, in microseconds.
    pub fn total_used_us(&self) -> u64 {
        self.per_cpu.iter().map(|c| c.used_us).sum()
    }

    /// Total idle time across all CPUs, in microseconds.
    pub fn idle_us(&self) -> u64 {
        self.per_cpu.iter().map(|c| c.idle_us).sum()
    }
}

/// A place jobs run under the feedback allocator.
///
/// Both backends drive the *same* `rrs-scheduler` machine and `rrs-core`
/// controller; the trait is the thin waist over what differs — how time
/// passes and how a [`WorkModel`]'s computed CPU consumption is realised
/// (booked against the simulated clock, or actually burned on an OS
/// thread).
///
/// Obtain one with [`crate::Runtime`]:
///
/// ```
/// use rrs_api::{JobSpec, Runtime, SimTime};
/// use rrs_sim::{RunResult, WorkModel};
///
/// struct Spin;
/// impl WorkModel for Spin {
///     fn run(&mut self, _now: u64, quantum_us: u64, _hz: f64) -> RunResult {
///         RunResult::ran(quantum_us)
///     }
/// }
///
/// let mut host = Runtime::sim().build();
/// let job = host.add_job("spin", JobSpec::miscellaneous(), Box::new(Spin)).unwrap();
/// host.advance(SimTime::from_secs(2));
/// assert!(host.allocation_ppt(job) > 100);
/// // `Runtime::wall_clock().build()` runs the identical program on real
/// // OS threads.
/// ```
pub trait Host {
    /// Which engine this host runs on.
    fn backend(&self) -> Backend;

    /// Adds a job.  Real-time specs go through admission control; the
    /// importance weight is read from the spec
    /// ([`JobSpec::with_importance`]).
    fn add_job(
        &mut self,
        name: &str,
        spec: JobSpec,
        work: Box<dyn WorkModel>,
    ) -> Result<JobHandle, AdmitError>;

    /// Removes a job, deregistering it from the controller and
    /// withdrawing its reservation.  Unknown handles are a no-op.
    fn remove_job(&mut self, handle: JobHandle);

    /// Runs the host for `dt` of its own time (simulated or wall-clock).
    fn advance(&mut self, dt: SimTime);

    /// Time elapsed since the host was created.
    fn now(&self) -> SimTime;

    /// The proportion currently reserved for a job, in parts per
    /// thousand (zero for unknown handles).
    fn allocation_ppt(&self, handle: JobHandle) -> u32;

    /// The reservation currently held by a job.
    fn reservation(&self, handle: JobHandle) -> Option<Reservation>;

    /// The CPU a job's thread is currently placed on.
    fn cpu_of(&self, handle: JobHandle) -> Option<CpuId>;

    /// Total CPU time a job has consumed so far.
    fn cpu_used(&self, handle: JobHandle) -> SimTime;

    /// A job's dispatcher-side usage account (budget, period rollovers,
    /// missed deadlines).
    fn usage(&self, handle: JobHandle) -> Option<UsageAccount>;

    /// Grows the machine to `cpus` CPUs mid-run (hot-add), returning the
    /// resulting total CPU count.  Shrinking is unsupported — a `cpus` at
    /// or below the current count is a no-op returning the current total.
    fn grow_cpus(&mut self, cpus: usize) -> usize;

    /// Number of CPUs.
    fn cpu_count(&self) -> usize;

    /// The clock rate work models convert cycles to time with, in Hz.
    fn cpu_hz(&self) -> f64;

    /// Read-only access to the controller.
    fn controller(&self) -> &Controller;

    /// Read-only access to the multi-CPU machine.
    fn machine(&self) -> &Machine;

    /// The progress-metric registry; workloads register their queues
    /// here.
    fn registry(&self) -> MetricRegistry;

    /// Forces a reservation directly on the dispatcher, bypassing the
    /// controller (experiments that pin allocations).
    fn force_reservation(&mut self, handle: JobHandle, reservation: Reservation);

    /// Aggregate statistics of the run so far.
    fn stats(&self) -> HostStats;

    /// A point-in-time snapshot of the subsystem telemetry counters
    /// (quantum-cache hit rate, settles by reason, calendar event mix,
    /// controller cycle split) — one schema on both backends, so
    /// sim-vs-wall-clock runs compare directly.  The counters are always
    /// on; only the `trace_events_*` fields need
    /// [`Host::enable_telemetry`] first.
    fn telemetry(&self) -> TelemetrySnapshot;

    /// Enables structured trace recording (and controller stage timing),
    /// returning the shared recorder.  Export the captured events with
    /// [`rrs_telemetry::Recorder::chrome_trace_json`].
    fn enable_telemetry(&mut self, config: TelemetryConfig) -> Arc<Recorder>;

    /// The trace recorder installed by [`Host::enable_telemetry`], if
    /// any.
    fn telemetry_recorder(&self) -> Option<Arc<Recorder>>;

    /// The recorded trace (`alloc/<job>`, `rate/<job>`,
    /// `fill/<queue>`, … series).
    fn trace(&self) -> &Trace;

    /// Escape hatch to the concrete backend (see
    /// [`as_sim`](trait.Host.html#method.as_sim) on `dyn Host`).
    fn as_any(&self) -> &dyn Any;

    /// Mutable escape hatch to the concrete backend.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

impl dyn Host {
    /// Downcasts to the simulator backend, if that is what this host is.
    pub fn as_sim(&self) -> Option<&rrs_sim::Simulation> {
        self.as_any().downcast_ref()
    }

    /// Mutable downcast to the simulator backend.
    pub fn as_sim_mut(&mut self) -> Option<&mut rrs_sim::Simulation> {
        self.as_any_mut().downcast_mut()
    }

    /// Downcasts to the sharded simulator backend, if that is what this
    /// host is.
    pub fn as_sharded_sim(&self) -> Option<&rrs_sim::ShardedSim> {
        self.as_any().downcast_ref()
    }

    /// Mutable downcast to the sharded simulator backend.
    pub fn as_sharded_sim_mut(&mut self) -> Option<&mut rrs_sim::ShardedSim> {
        self.as_any_mut().downcast_mut()
    }

    /// Downcasts to the wall-clock backend, if that is what this host is.
    pub fn as_wall_clock(&self) -> Option<&crate::wall_clock::WallClockHost> {
        self.as_any().downcast_ref()
    }

    /// Mutable downcast to the wall-clock backend.
    pub fn as_wall_clock_mut(&mut self) -> Option<&mut crate::wall_clock::WallClockHost> {
        self.as_any_mut().downcast_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_parses_and_displays() {
        assert_eq!("sim".parse::<Backend>().unwrap(), Backend::Sim);
        assert_eq!("wall_clock".parse::<Backend>().unwrap(), Backend::WallClock);
        assert_eq!("wall-clock".parse::<Backend>().unwrap(), Backend::WallClock);
        assert!("gpu".parse::<Backend>().is_err());
        assert_eq!(Backend::Sim.to_string(), "sim");
        assert_eq!(Backend::WallClock.to_string(), "wall_clock");
        assert_eq!(Backend::default(), Backend::Sim);
    }

    #[test]
    fn host_stats_sums() {
        let stats = HostStats {
            per_cpu: vec![
                CpuStats {
                    used_us: 10,
                    idle_us: 5,
                    ..CpuStats::default()
                },
                CpuStats {
                    used_us: 7,
                    idle_us: 3,
                    ..CpuStats::default()
                },
            ],
            ..HostStats::default()
        };
        assert_eq!(stats.total_used_us(), 17);
        assert_eq!(stats.idle_us(), 8);
    }
}
