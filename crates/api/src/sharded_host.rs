//! [`Host`] implemented for the sharded simulator.
//!
//! Same veneer pattern as the unsharded impl in `sim_host.rs`: every
//! method forwards to the identically-behaved inherent method on
//! [`ShardedSim`].  Two methods deserve a note: [`Host::controller`] and
//! [`Host::machine`] return *shard 0's* instances (the anchor shard every
//! reservation and queue-coupled job runs on) because the trait promises
//! a single reference; machine-wide numbers come from [`Host::stats`] and
//! [`Host::telemetry`], which aggregate over every shard.

use crate::host::{Backend, Host, HostStats};
use crate::time::SimTime;
use rrs_core::{controller::AdmitError, Controller, JobHandle, JobSpec};
use rrs_queue::MetricRegistry;
use rrs_scheduler::{CpuId, Machine, Reservation, UsageAccount};
use rrs_sim::{ShardedSim, Trace, WorkModel};
use rrs_telemetry::{Recorder, TelemetryConfig, TelemetrySnapshot};
use std::any::Any;
use std::sync::Arc;

impl Host for ShardedSim {
    fn backend(&self) -> Backend {
        Backend::Sim
    }

    fn add_job(
        &mut self,
        name: &str,
        spec: JobSpec,
        work: Box<dyn WorkModel>,
    ) -> Result<JobHandle, AdmitError> {
        ShardedSim::add_job(self, name, spec, work)
    }

    fn remove_job(&mut self, handle: JobHandle) {
        ShardedSim::remove_job(self, handle)
    }

    fn advance(&mut self, dt: SimTime) {
        let end = self.now_micros() + dt.as_micros();
        self.run_until_micros(end);
    }

    fn now(&self) -> SimTime {
        SimTime::from_micros(self.now_micros())
    }

    fn allocation_ppt(&self, handle: JobHandle) -> u32 {
        self.current_allocation_ppt(handle)
    }

    fn reservation(&self, handle: JobHandle) -> Option<Reservation> {
        ShardedSim::reservation(self, handle)
    }

    fn cpu_of(&self, handle: JobHandle) -> Option<CpuId> {
        ShardedSim::cpu_of(self, handle)
    }

    fn cpu_used(&self, handle: JobHandle) -> SimTime {
        SimTime::from_micros(self.cpu_used_us(handle))
    }

    fn usage(&self, handle: JobHandle) -> Option<UsageAccount> {
        ShardedSim::usage(self, handle)
    }

    fn grow_cpus(&mut self, cpus: usize) -> usize {
        ShardedSim::grow_cpus(self, cpus)
    }

    fn cpu_count(&self) -> usize {
        ShardedSim::cpu_count(self)
    }

    fn cpu_hz(&self) -> f64 {
        self.config().cpu.clock_hz
    }

    fn controller(&self) -> &Controller {
        ShardedSim::controller(self)
    }

    fn machine(&self) -> &Machine {
        ShardedSim::machine(self)
    }

    fn registry(&self) -> MetricRegistry {
        ShardedSim::registry(self)
    }

    fn force_reservation(&mut self, handle: JobHandle, reservation: Reservation) {
        ShardedSim::force_reservation(self, handle, reservation.proportion, reservation.period)
    }

    fn stats(&self) -> HostStats {
        let stats = ShardedSim::stats(self);
        HostStats {
            controller_invocations: stats.controller_invocations,
            quality_exceptions: stats.quality_exceptions,
            squish_events: stats.squish_events,
            admission_rejections: stats.admission_rejections,
            migrations: stats.migrations,
            steps: stats.steps,
            per_cpu: stats.per_cpu,
        }
    }

    fn telemetry(&self) -> TelemetrySnapshot {
        ShardedSim::telemetry_snapshot(self)
    }

    fn enable_telemetry(&mut self, config: TelemetryConfig) -> Arc<Recorder> {
        ShardedSim::enable_telemetry(self, config)
    }

    fn telemetry_recorder(&self) -> Option<Arc<Recorder>> {
        ShardedSim::telemetry_recorder(self)
    }

    fn trace(&self) -> &Trace {
        ShardedSim::trace(self)
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}
