//! [`Host`] implemented for the deterministic simulator.
//!
//! The impl is a thin veneer: every trait method forwards to the
//! identically-behaved inherent method, so a program driven through
//! `dyn Host` takes the exact code path (and reproduces the exact
//! statistics, bit for bit) of one written against `rrs_sim::Simulation`
//! directly.  `tests/sim_golden_stats.rs` in the workspace root pins
//! this.

use crate::host::{Backend, Host, HostStats};
use crate::time::SimTime;
use rrs_core::{controller::AdmitError, Controller, JobHandle, JobSpec};
use rrs_queue::MetricRegistry;
use rrs_scheduler::{CpuId, Machine, Reservation, UsageAccount};
use rrs_sim::{Simulation, Trace, WorkModel};
use rrs_telemetry::{Recorder, TelemetryConfig, TelemetrySnapshot};
use std::any::Any;
use std::sync::Arc;

impl Host for Simulation {
    fn backend(&self) -> Backend {
        Backend::Sim
    }

    fn add_job(
        &mut self,
        name: &str,
        spec: JobSpec,
        work: Box<dyn WorkModel>,
    ) -> Result<JobHandle, AdmitError> {
        Simulation::add_job(self, name, spec, work)
    }

    fn remove_job(&mut self, handle: JobHandle) {
        Simulation::remove_job(self, handle)
    }

    fn advance(&mut self, dt: SimTime) {
        let end = self.now_micros() + dt.as_micros();
        self.run_until_micros(end);
    }

    fn now(&self) -> SimTime {
        SimTime::from_micros(self.now_micros())
    }

    fn allocation_ppt(&self, handle: JobHandle) -> u32 {
        self.current_allocation_ppt(handle)
    }

    fn reservation(&self, handle: JobHandle) -> Option<Reservation> {
        self.machine().reservation(handle.thread)
    }

    fn cpu_of(&self, handle: JobHandle) -> Option<CpuId> {
        Simulation::cpu_of(self, handle)
    }

    fn cpu_used(&self, handle: JobHandle) -> SimTime {
        SimTime::from_micros(self.cpu_used_us(handle))
    }

    fn usage(&self, handle: JobHandle) -> Option<UsageAccount> {
        self.machine().usage(handle.thread)
    }

    fn grow_cpus(&mut self, cpus: usize) -> usize {
        Simulation::grow_cpus(self, cpus)
    }

    fn cpu_count(&self) -> usize {
        self.machine().cpu_count()
    }

    fn cpu_hz(&self) -> f64 {
        self.config().cpu.clock_hz
    }

    fn controller(&self) -> &Controller {
        Simulation::controller(self)
    }

    fn machine(&self) -> &Machine {
        Simulation::machine(self)
    }

    fn registry(&self) -> MetricRegistry {
        Simulation::registry(self)
    }

    fn force_reservation(&mut self, handle: JobHandle, reservation: Reservation) {
        Simulation::force_reservation(self, handle, reservation.proportion, reservation.period)
    }

    fn stats(&self) -> HostStats {
        let stats = Simulation::stats(self);
        HostStats {
            controller_invocations: stats.controller_invocations,
            quality_exceptions: stats.quality_exceptions,
            squish_events: stats.squish_events,
            admission_rejections: stats.admission_rejections,
            migrations: stats.migrations,
            steps: stats.steps,
            per_cpu: stats.per_cpu,
        }
    }

    fn telemetry(&self) -> TelemetrySnapshot {
        Simulation::telemetry_snapshot(self)
    }

    fn enable_telemetry(&mut self, config: TelemetryConfig) -> Arc<Recorder> {
        Simulation::enable_telemetry(self, config)
    }

    fn telemetry_recorder(&self) -> Option<Arc<Recorder>> {
        Simulation::telemetry_recorder(self)
    }

    fn trace(&self) -> &Trace {
        Simulation::trace(self)
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}
