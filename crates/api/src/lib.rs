//! # `rrs-api` — one host API over every backend
//!
//! The workspace grows the paper's single-CPU prototype toward a
//! production system, and that growth had forked the front door:
//! `rrs_sim::Simulation` (`add_job`, `run_for(f64)` seconds) and
//! `rrs_realtime::RealTimeExecutor` (`spawn`, `run_for(Duration)`) were
//! two incompatible APIs for the same idea — *give the allocator jobs and
//! let it run them*.  This crate is the thin waist that ends the fork:
//!
//! * [`Host`] — the canonical host surface (`add_job` / `remove_job` /
//!   `advance` / `grow_cpus` / `stats` / `trace` / …), implemented by
//!   both backends;
//! * [`JobHandle`] — the single handle type (re-exported from
//!   `rrs-core`), carrying the controller's dense slot;
//! * [`SimTime`] / [`Micros`] — the one time type, integer microseconds,
//!   ending the `f64`-seconds-vs-`Duration` split;
//! * [`Runtime`] — the builder:
//!   `Runtime::sim().cpus(8).build()` or `Runtime::wall_clock().build()`,
//!   each returning a `Box<dyn Host>`.
//!
//! Workloads (`rrs-workloads`), scenarios (`rrs-scenario`) and the
//! examples are all written against [`Host`], so every experiment runs on
//! the deterministic simulator *and* on real OS threads — and every
//! future backend only has to implement one trait.
//!
//! ```
//! use rrs_api::{Backend, JobSpec, Runtime, SimTime};
//! use rrs_sim::{RunResult, WorkModel};
//!
//! struct Spin;
//! impl WorkModel for Spin {
//!     fn run(&mut self, _now: u64, quantum_us: u64, _hz: f64) -> RunResult {
//!         RunResult::ran(quantum_us)
//!     }
//! }
//!
//! // The identical program, parameterised only by backend:
//! for backend in [Backend::Sim, Backend::WallClock] {
//!     let mut host = Runtime::backend(backend).build();
//!     let advance = match backend {
//!         Backend::Sim => SimTime::from_secs(2),        // simulated seconds
//!         Backend::WallClock => SimTime::from_millis(120), // real milliseconds
//!     };
//!     let job = host.add_job("spin", JobSpec::miscellaneous(), Box::new(Spin)).unwrap();
//!     host.advance(advance);
//!     // On both backends the controller discovered the job can use CPU
//!     // and granted it a nonzero proportion without any tuning.
//!     assert!(host.allocation_ppt(job) > 0);
//! }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod host;
pub mod runtime;
mod sharded_host;
mod sim_host;
pub mod time;
pub mod wall_clock;

pub use host::{Backend, Host, HostStats};
pub use runtime::{Runtime, RuntimeBuilder};
pub use time::{Micros, SimTime};
pub use wall_clock::{WallClockConfig, WallClockHost};

// One-stop re-exports: everything a program written against the host API
// typically needs, so `use rrs_api::...` (or `realrate::api::...`)
// suffices.
pub use rrs_core::{
    controller::AdmitError, Controller, ControllerConfig, Importance, JobClass, JobHandle, JobId,
    JobSlot, JobSpec,
};
pub use rrs_queue::MetricRegistry;
pub use rrs_scheduler::{CpuId, CpuStats, Period, Proportion, Reservation, UsageAccount};
pub use rrs_sim::{RunResult, ShardConfig, ShardedSim, SimConfig, Simulation, Trace, WorkModel};
pub use rrs_telemetry::{Recorder, TelemetryConfig, TelemetrySnapshot};

#[cfg(test)]
mod tests {
    use super::*;

    struct Spin;
    impl WorkModel for Spin {
        fn run(&mut self, _now: u64, quantum_us: u64, _hz: f64) -> RunResult {
            RunResult::ran(quantum_us)
        }
        fn progress_counter(&self) -> Option<f64> {
            Some(1.0)
        }
    }

    #[test]
    fn sim_host_behaves_like_the_simulator() {
        let mut host = Runtime::sim().cpus(2).build();
        assert_eq!(host.backend(), Backend::Sim);
        assert_eq!(host.cpu_count(), 2);
        assert_eq!(host.cpu_hz(), 400e6);
        let a = host
            .add_job("a", JobSpec::miscellaneous(), Box::new(Spin))
            .unwrap();
        let b = host
            .add_job("b", JobSpec::miscellaneous(), Box::new(Spin))
            .unwrap();
        host.advance(SimTime::from_secs(3));
        assert_eq!(host.now(), SimTime::from_secs(3));
        assert_ne!(host.cpu_of(a), host.cpu_of(b));
        assert!(host.allocation_ppt(a) > 100);
        assert!(host.reservation(a).is_some());
        assert!(host.cpu_used(a) > SimTime::ZERO);
        assert!(host.usage(a).is_some());
        let stats = host.stats();
        assert!(stats.controller_invocations > 0);
        assert_eq!(stats.per_cpu.len(), 2);
        assert!(stats.total_used_us() > 0);
        assert!(host.trace().get("alloc/a").is_some());
        // The escape hatch reaches the concrete simulator.
        assert!(host.as_sim().is_some());
        assert!(host.as_wall_clock().is_none());
        host.remove_job(a);
        assert_eq!(host.controller().job_count(), 1);
    }

    #[test]
    fn sim_host_grow_cpus_and_force_reservation() {
        let mut host = Runtime::sim().build();
        let h = host
            .add_job("spin", JobSpec::miscellaneous(), Box::new(Spin))
            .unwrap();
        assert_eq!(host.grow_cpus(2), 2);
        assert_eq!(host.grow_cpus(1), 2, "shrinking is a no-op");
        host.force_reservation(
            h,
            Reservation::new(Proportion::from_ppt(123), Period::from_millis(10)),
        );
        assert_eq!(host.allocation_ppt(h), 123);
    }

    #[test]
    fn telemetry_shares_one_schema_across_backends() {
        // Built with `.telemetry(...)`, both backends record structured
        // events and report the same counter schema.
        let mut sim = Runtime::sim().telemetry(TelemetryConfig::default()).build();
        sim.add_job("spin", JobSpec::miscellaneous(), Box::new(Spin))
            .unwrap();
        sim.advance(SimTime::from_secs(1));
        let snap = sim.telemetry();
        assert!(snap.quantum_cache_hits > 0);
        assert!(snap.trace_events_recorded > 0);
        let recorder = sim.telemetry_recorder().expect("builder installed it");
        assert!(!recorder.is_empty());

        let mut wall = Runtime::wall_clock()
            .telemetry(TelemetryConfig::default())
            .build();
        wall.add_job("spin", JobSpec::miscellaneous(), Box::new(Spin))
            .unwrap();
        wall.advance(SimTime::from_millis(120));
        let snap = wall.telemetry();
        assert!(snap.dispatches > 0);
        assert!(
            snap.trace_events_recorded > 0,
            "controller cycles must be recorded"
        );
        assert!(wall.telemetry_recorder().is_some());

        // Without the builder knob the recorder is absent but the
        // always-on counters still read.
        let mut host = Runtime::sim().build();
        host.add_job("spin", JobSpec::miscellaneous(), Box::new(Spin))
            .unwrap();
        host.advance(SimTime::from_secs(1));
        assert!(host.telemetry_recorder().is_none());
        assert!(host.telemetry().dispatches > 0);
    }

    #[test]
    fn wall_clock_host_runs_the_same_program() {
        let mut host = Runtime::wall_clock().build();
        assert_eq!(host.backend(), Backend::WallClock);
        assert_eq!(host.cpu_count(), 1);
        let job = host
            .add_job("spin", JobSpec::miscellaneous(), Box::new(Spin))
            .unwrap();
        host.advance(SimTime::from_millis(150));
        assert!(host.now() >= SimTime::from_millis(150));
        assert!(host.allocation_ppt(job) > 0, "controller granted CPU");
        assert!(host.cpu_used(job) > SimTime::ZERO, "work really ran");
        let stats = host.stats();
        assert!(stats.controller_invocations > 0);
        assert!(host.as_wall_clock().is_some());
        assert!(host.as_sim().is_none());
        host.remove_job(job);
        assert_eq!(host.controller().job_count(), 0);
    }

    #[test]
    fn wall_clock_host_records_traces_and_honours_admission() {
        let mut host = Runtime::wall_clock().build();
        let rt = host
            .add_job(
                "rt",
                JobSpec::real_time(Proportion::from_ppt(900), Period::from_millis(10)),
                Box::new(Spin),
            )
            .unwrap();
        let err = host.add_job(
            "rt2",
            JobSpec::real_time(Proportion::from_ppt(400), Period::from_millis(10)),
            Box::new(Spin),
        );
        assert!(err.is_err(), "admission control rejects oversubscription");
        assert_eq!(host.stats().admission_rejections, 1);
        host.advance(SimTime::from_millis(250));
        assert_eq!(host.allocation_ppt(rt), 900, "reservation held");
        assert!(host.trace().get("alloc/rt").is_some());
        assert!(host.trace().get("rate/rt").is_some());
    }

    /// Blocks immediately and wakes on every poll.
    struct Blocky;
    impl WorkModel for Blocky {
        fn run(&mut self, _now: u64, _quantum_us: u64, _hz: f64) -> RunResult {
            RunResult::blocked_after(10)
        }
        fn poll_unblock(&mut self, _now_us: u64) -> bool {
            true
        }
    }

    #[test]
    fn wall_clock_host_drives_blocking_models() {
        let mut host = Runtime::wall_clock().build();
        let job = host
            .add_job("blocky", JobSpec::miscellaneous(), Box::new(Blocky))
            .unwrap();
        host.advance(SimTime::from_millis(150));
        // It blocks after every step but the executor re-polls it at
        // controller frequency, so it keeps making (small) progress.
        assert!(host.cpu_used(job) > SimTime::ZERO);
    }

    #[test]
    fn wall_clock_grow_cpus_hot_adds_worker_shards() {
        let mut host = Runtime::wall_clock().build();
        let a = host
            .add_job("a", JobSpec::miscellaneous(), Box::new(Spin))
            .unwrap();
        let b = host
            .add_job("b", JobSpec::miscellaneous(), Box::new(Spin))
            .unwrap();
        host.advance(SimTime::from_millis(60));
        assert_eq!(host.grow_cpus(2), 2);
        host.advance(SimTime::from_millis(300));
        let stats = host.stats();
        assert_eq!(stats.per_cpu.len(), 2);
        // The Place stage re-sharded one of the hogs onto the new CPU.
        assert_ne!(host.cpu_of(a), host.cpu_of(b));
        assert!(stats.migrations >= 1);
    }
}
