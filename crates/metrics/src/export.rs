//! Export of experiment results as CSV, JSON and aligned text tables.

use crate::timeseries::TimeSeries;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A record of one experiment run: named scalar results plus named series.
///
/// EXPERIMENTS.md is generated from these records, and the figure binaries
/// emit them as JSON so results can be post-processed outside Rust.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ExperimentRecord {
    /// Experiment identifier, e.g. `"figure5"`.
    pub id: String,
    /// Human-readable description of what was run.
    pub description: String,
    /// Named scalar outcomes (e.g. fitted slope, response time).
    pub scalars: BTreeMap<String, f64>,
    /// Named time series recorded during the run.
    pub series: Vec<TimeSeries>,
}

impl ExperimentRecord {
    /// Creates an empty record.
    pub fn new(id: impl Into<String>, description: impl Into<String>) -> Self {
        Self {
            id: id.into(),
            description: description.into(),
            scalars: BTreeMap::new(),
            series: Vec::new(),
        }
    }

    /// Adds a scalar outcome.
    pub fn scalar(&mut self, name: impl Into<String>, value: f64) -> &mut Self {
        self.scalars.insert(name.into(), value);
        self
    }

    /// Adds a time series.
    pub fn add_series(&mut self, series: TimeSeries) -> &mut Self {
        self.series.push(series);
        self
    }

    /// Looks up a scalar by name.
    pub fn get_scalar(&self, name: &str) -> Option<f64> {
        self.scalars.get(name).copied()
    }

    /// Serialises the record as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("experiment records are always serialisable")
    }

    /// Parses a record from JSON.
    pub fn from_json(text: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(text)
    }

    /// Renders the scalar outcomes as an aligned two-column text table.
    pub fn scalar_table(&self) -> String {
        let width = self
            .scalars
            .keys()
            .map(|k| k.len())
            .max()
            .unwrap_or(0)
            .max(6);
        let mut out = String::new();
        for (k, v) in &self.scalars {
            let _ = writeln!(out, "{k:<width$}  {v:>14.6}");
        }
        out
    }
}

/// A set of time series resampled onto a common grid for CSV emission.
///
/// The paper's figures plot several series against the same time axis
/// (allocation, fill level, production rate); `SeriesTable` lines the
/// series up column-wise so a single CSV file reproduces one figure.
#[derive(Debug, Clone, Default)]
pub struct SeriesTable {
    columns: Vec<TimeSeries>,
}

impl SeriesTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a column.
    pub fn add(&mut self, series: TimeSeries) -> &mut Self {
        self.columns.push(series);
        self
    }

    /// Number of columns.
    pub fn columns(&self) -> usize {
        self.columns.len()
    }

    /// Renders the table as CSV with a `time` column followed by one column
    /// per series, resampling every series onto the grid of the first one.
    ///
    /// Returns an empty string when the table has no columns or the first
    /// series is empty.
    pub fn to_csv(&self) -> String {
        let Some(first) = self.columns.first() else {
            return String::new();
        };
        if first.is_empty() {
            return String::new();
        }
        let times = first.times();
        let mut out = String::from("time");
        for c in &self.columns {
            out.push(',');
            out.push_str(&sanitize(c.name()));
        }
        out.push('\n');
        for (i, &t) in times.iter().enumerate() {
            let _ = write!(out, "{t:.6}");
            for c in &self.columns {
                let v = if i < c.len() {
                    c.samples()[i].value
                } else {
                    c.value_at(t).unwrap_or(0.0)
                };
                let _ = write!(out, ",{v:.6}");
            }
            out.push('\n');
        }
        out
    }
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c == ',' || c == '\n' { '_' } else { c })
        .collect()
}

/// Writes a CSV string for a single series (`time,value` per line).
pub fn series_to_csv(series: &TimeSeries) -> String {
    let mut out = format!("time,{}\n", sanitize(series.name()));
    for (t, v) in series.iter() {
        let _ = writeln!(out, "{t:.6},{v:.6}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(name: &str, values: &[(f64, f64)]) -> TimeSeries {
        let mut s = TimeSeries::new(name);
        for &(t, v) in values {
            s.push(t, v);
        }
        s
    }

    #[test]
    fn record_round_trips_through_json() {
        let mut rec = ExperimentRecord::new("figure5", "controller overhead");
        rec.scalar("slope", 0.00066).scalar("intercept", 0.00057);
        rec.add_series(ts("overhead", &[(0.0, 0.001), (1.0, 0.002)]));
        let json = rec.to_json();
        let parsed = ExperimentRecord::from_json(&json).unwrap();
        assert_eq!(parsed.id, "figure5");
        assert_eq!(parsed.get_scalar("slope"), Some(0.00066));
        assert_eq!(parsed.series.len(), 1);
        assert_eq!(parsed.series[0].len(), 2);
    }

    #[test]
    fn missing_scalar_is_none() {
        let rec = ExperimentRecord::new("x", "y");
        assert!(rec.get_scalar("nope").is_none());
    }

    #[test]
    fn scalar_table_contains_all_names() {
        let mut rec = ExperimentRecord::new("x", "y");
        rec.scalar("alpha", 1.0).scalar("beta", 2.0);
        let table = rec.scalar_table();
        assert!(table.contains("alpha"));
        assert!(table.contains("beta"));
    }

    #[test]
    fn series_table_csv_has_header_and_rows() {
        let mut table = SeriesTable::new();
        table.add(ts("fill", &[(0.0, 0.5), (1.0, 0.6)]));
        table.add(ts("alloc", &[(0.0, 100.0), (1.0, 200.0)]));
        let csv = table.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "time,fill,alloc");
        assert!(lines[1].starts_with("0.000000,0.500000,100.000000"));
    }

    #[test]
    fn series_table_with_mismatched_lengths_uses_hold() {
        let mut table = SeriesTable::new();
        table.add(ts("a", &[(0.0, 1.0), (1.0, 2.0), (2.0, 3.0)]));
        table.add(ts("b", &[(0.0, 5.0)]));
        let csv = table.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 4);
        // Column b holds its last value for later rows.
        assert!(lines[3].ends_with("5.000000"));
    }

    #[test]
    fn empty_table_renders_empty_csv() {
        let table = SeriesTable::new();
        assert!(table.to_csv().is_empty());
        let mut t2 = SeriesTable::new();
        t2.add(TimeSeries::new("empty"));
        assert!(t2.to_csv().is_empty());
    }

    #[test]
    fn commas_in_names_are_sanitised() {
        let csv = series_to_csv(&ts("a,b", &[(0.0, 1.0)]));
        assert!(csv.starts_with("time,a_b"));
    }
}
