//! Fixed-bucket histogram with percentile queries.

use serde::{Deserialize, Serialize};

/// A histogram over a fixed range `[lo, hi)` with uniformly sized buckets.
///
/// Values below the range are clamped into the first bucket and values at or
/// above the range into the last bucket, so no sample is ever dropped.
///
/// # Examples
///
/// ```
/// use rrs_metrics::Histogram;
///
/// let mut h = Histogram::new(0.0, 10.0, 10);
/// for v in [1.0, 1.5, 2.0, 8.0] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 4);
/// assert!(h.percentile(50.0) <= 3.0);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    buckets: Vec<u64>,
    count: u64,
    underflow_min: f64,
    overflow_max: f64,
}

impl Histogram {
    /// Creates a histogram covering `[lo, hi)` with `buckets` buckets.
    ///
    /// # Panics
    ///
    /// Panics if `hi <= lo` or `buckets == 0`.
    pub fn new(lo: f64, hi: f64, buckets: usize) -> Self {
        assert!(hi > lo, "histogram range must be non-empty");
        assert!(buckets > 0, "histogram must have at least one bucket");
        Self {
            lo,
            hi,
            buckets: vec![0; buckets],
            count: 0,
            underflow_min: f64::INFINITY,
            overflow_max: f64::NEG_INFINITY,
        }
    }

    /// Records a value.
    pub fn record(&mut self, value: f64) {
        let idx = self.bucket_index(value);
        self.buckets[idx] += 1;
        self.count += 1;
        if value < self.lo {
            self.underflow_min = self.underflow_min.min(value);
        }
        if value >= self.hi {
            self.overflow_max = self.overflow_max.max(value);
        }
    }

    fn bucket_index(&self, value: f64) -> usize {
        if value < self.lo {
            return 0;
        }
        let width = (self.hi - self.lo) / self.buckets.len() as f64;
        let idx = ((value - self.lo) / width) as usize;
        idx.min(self.buckets.len() - 1)
    }

    /// Total number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Returns the raw bucket counts.
    pub fn bucket_counts(&self) -> &[u64] {
        &self.buckets
    }

    /// Returns the lower edge of bucket `i`.
    pub fn bucket_lower_edge(&self, i: usize) -> f64 {
        let width = (self.hi - self.lo) / self.buckets.len() as f64;
        self.lo + width * i as f64
    }

    /// Approximates the `p`-th percentile (0–100) using the bucket midpoints.
    ///
    /// Returns 0.0 if the histogram is empty. `p` is clamped to `[0, 100]`.
    pub fn percentile(&self, p: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let p = p.clamp(0.0, 100.0);
        let target = (p / 100.0 * self.count as f64).ceil().max(1.0) as u64;
        let width = (self.hi - self.lo) / self.buckets.len() as f64;
        let mut cumulative = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cumulative += c;
            if cumulative >= target {
                return self.lo + width * (i as f64 + 0.5);
            }
        }
        self.hi
    }

    /// Fraction of values in `[lo, hi)` of the given bucket index.
    pub fn bucket_fraction(&self, i: usize) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.buckets[i] as f64 / self.count as f64
        }
    }

    /// Merges another histogram with the same shape into this one.
    ///
    /// # Panics
    ///
    /// Panics if the ranges or bucket counts differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.lo, other.lo, "histogram ranges must match");
        assert_eq!(self.hi, other.hi, "histogram ranges must match");
        assert_eq!(
            self.buckets.len(),
            other.buckets.len(),
            "histogram bucket counts must match"
        );
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.underflow_min = self.underflow_min.min(other.underflow_min);
        self.overflow_max = self.overflow_max.max(other.overflow_max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn records_land_in_expected_buckets() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.record(0.5);
        h.record(9.5);
        h.record(5.0);
        assert_eq!(h.bucket_counts()[0], 1);
        assert_eq!(h.bucket_counts()[9], 1);
        assert_eq!(h.bucket_counts()[5], 1);
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn out_of_range_values_are_clamped() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.record(-5.0);
        h.record(100.0);
        assert_eq!(h.bucket_counts()[0], 1);
        assert_eq!(h.bucket_counts()[3], 1);
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn percentile_of_empty_histogram_is_zero() {
        let h = Histogram::new(0.0, 1.0, 4);
        assert_eq!(h.percentile(50.0), 0.0);
    }

    #[test]
    fn percentile_ordering() {
        let mut h = Histogram::new(0.0, 100.0, 100);
        for i in 0..100 {
            h.record(i as f64);
        }
        let p10 = h.percentile(10.0);
        let p50 = h.percentile(50.0);
        let p99 = h.percentile(99.0);
        assert!(p10 < p50 && p50 < p99);
        assert!((p50 - 49.5).abs() < 1.0);
    }

    #[test]
    fn bucket_lower_edge_and_fraction() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.record(1.0);
        h.record(1.5);
        h.record(9.0);
        assert_eq!(h.bucket_lower_edge(0), 0.0);
        assert_eq!(h.bucket_lower_edge(4), 8.0);
        assert!((h.bucket_fraction(0) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn merge_accumulates_counts() {
        let mut a = Histogram::new(0.0, 10.0, 10);
        let mut b = Histogram::new(0.0, 10.0, 10);
        a.record(1.0);
        b.record(2.0);
        b.record(3.0);
        a.merge(&b);
        assert_eq!(a.count(), 3);
    }

    #[test]
    #[should_panic(expected = "histogram ranges must match")]
    fn merge_rejects_mismatched_ranges() {
        let mut a = Histogram::new(0.0, 10.0, 10);
        let b = Histogram::new(0.0, 5.0, 10);
        a.merge(&b);
    }

    #[test]
    #[should_panic(expected = "histogram range must be non-empty")]
    fn new_rejects_empty_range() {
        let _ = Histogram::new(1.0, 1.0, 4);
    }

    proptest! {
        #[test]
        fn count_equals_number_of_records(values in proptest::collection::vec(-100.0f64..100.0, 0..500)) {
            let mut h = Histogram::new(0.0, 50.0, 25);
            for &v in &values {
                h.record(v);
            }
            prop_assert_eq!(h.count(), values.len() as u64);
            let bucket_total: u64 = h.bucket_counts().iter().sum();
            prop_assert_eq!(bucket_total, values.len() as u64);
        }

        #[test]
        fn percentiles_are_monotone(values in proptest::collection::vec(0.0f64..100.0, 1..300)) {
            let mut h = Histogram::new(0.0, 100.0, 50);
            for &v in &values {
                h.record(v);
            }
            let mut prev = f64::NEG_INFINITY;
            for p in [0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0] {
                let q = h.percentile(p);
                prop_assert!(q >= prev);
                prev = q;
            }
        }
    }
}
