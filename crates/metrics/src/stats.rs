//! Scalar summary statistics.

use serde::{Deserialize, Serialize};

/// Summary statistics over a collection of values.
///
/// # Examples
///
/// ```
/// use rrs_metrics::Summary;
///
/// let s = Summary::from_values([1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(s.count, 4);
/// assert_eq!(s.mean, 2.5);
/// assert_eq!(s.min, 1.0);
/// assert_eq!(s.max, 4.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of values.
    pub count: usize,
    /// Arithmetic mean (0.0 when empty).
    pub mean: f64,
    /// Population variance (0.0 when empty).
    pub variance: f64,
    /// Population standard deviation.
    pub stddev: f64,
    /// Minimum value (0.0 when empty).
    pub min: f64,
    /// Maximum value (0.0 when empty).
    pub max: f64,
    /// Sum of all values.
    pub sum: f64,
}

impl Summary {
    /// Computes a summary from an iterator of values.
    pub fn from_values<I: IntoIterator<Item = f64>>(values: I) -> Self {
        let mut online = OnlineStats::new();
        for v in values {
            online.push(v);
        }
        online.summary()
    }

    /// Returns an all-zero summary for an empty collection.
    pub fn empty() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            variance: 0.0,
            stddev: 0.0,
            min: 0.0,
            max: 0.0,
            sum: 0.0,
        }
    }

    /// Coefficient of variation (stddev / mean), or 0.0 when the mean is 0.
    pub fn coefficient_of_variation(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.stddev / self.mean.abs()
        }
    }
}

/// Streaming (Welford) mean/variance accumulator.
///
/// Keeps O(1) state so the simulator can track statistics for long runs
/// without storing every sample.
///
/// # Examples
///
/// ```
/// use rrs_metrics::OnlineStats;
///
/// let mut s = OnlineStats::new();
/// for v in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.push(v);
/// }
/// assert_eq!(s.mean(), 5.0);
/// assert_eq!(s.variance(), 4.0);
/// ```
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct OnlineStats {
    count: usize,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    sum: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
        }
    }

    /// Adds a value.
    pub fn push(&mut self, value: f64) {
        self.count += 1;
        self.sum += value;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = value - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of values pushed so far.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Current mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0.0 when empty).
    pub fn variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample variance with Bessel's correction (0.0 with fewer than two
    /// values).
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum pushed value (0.0 when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Maximum pushed value (0.0 when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Sum of pushed values.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Converts the accumulated state into a [`Summary`].
    pub fn summary(&self) -> Summary {
        if self.count == 0 {
            return Summary::empty();
        }
        Summary {
            count: self.count,
            mean: self.mean(),
            variance: self.variance(),
            stddev: self.stddev(),
            min: self.min(),
            max: self.max(),
            sum: self.sum,
        }
    }

    /// Merges another accumulator into this one (parallel Welford merge).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = (self.count + other.count) as f64;
        let delta = other.mean - self.mean;
        let new_mean = self.mean + delta * other.count as f64 / total;
        let new_m2 =
            self.m2 + other.m2 + delta * delta * self.count as f64 * other.count as f64 / total;
        self.count += other.count;
        self.mean = new_mean;
        self.m2 = new_m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.sum += other.sum;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_summary_is_all_zero() {
        let s = Summary::from_values(std::iter::empty());
        assert_eq!(s, Summary::empty());
        assert_eq!(s.coefficient_of_variation(), 0.0);
    }

    #[test]
    fn single_value_summary() {
        let s = Summary::from_values([42.0]);
        assert_eq!(s.count, 1);
        assert_eq!(s.mean, 42.0);
        assert_eq!(s.variance, 0.0);
        assert_eq!(s.min, 42.0);
        assert_eq!(s.max, 42.0);
    }

    #[test]
    fn welford_matches_known_values() {
        let mut s = OnlineStats::new();
        for v in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(v);
        }
        assert_eq!(s.mean(), 5.0);
        assert_eq!(s.variance(), 4.0);
        assert_eq!(s.stddev(), 2.0);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert_eq!(s.sum(), 40.0);
    }

    #[test]
    fn sample_variance_uses_bessel_correction() {
        let mut s = OnlineStats::new();
        for v in [1.0, 2.0, 3.0] {
            s.push(v);
        }
        assert!((s.sample_variance() - 1.0).abs() < 1e-12);
        assert!((s.variance() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn merge_of_disjoint_accumulators_matches_single_pass() {
        let values = [1.0, 5.0, 2.0, 8.0, 3.0, 9.0, 4.0];
        let mut whole = OnlineStats::new();
        for &v in &values {
            whole.push(v);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &v in &values[..3] {
            a.push(v);
        }
        for &v in &values[3..] {
            b.push(v);
        }
        a.merge(&b);
        assert!((a.mean() - whole.mean()).abs() < 1e-12);
        assert!((a.variance() - whole.variance()).abs() < 1e-12);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.push(1.0);
        a.push(2.0);
        let before = a.summary();
        a.merge(&OnlineStats::new());
        assert_eq!(a.summary(), before);

        let mut empty = OnlineStats::new();
        empty.merge(&a);
        assert_eq!(empty.summary(), before);
    }

    #[test]
    fn coefficient_of_variation() {
        let s = Summary::from_values([10.0, 10.0, 10.0]);
        assert_eq!(s.coefficient_of_variation(), 0.0);
        let s2 = Summary::from_values([5.0, 15.0]);
        assert!(s2.coefficient_of_variation() > 0.0);
    }

    proptest! {
        #[test]
        fn mean_is_bounded_by_min_and_max(values in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
            let s = Summary::from_values(values.iter().copied());
            prop_assert!(s.min <= s.mean + 1e-9);
            prop_assert!(s.mean <= s.max + 1e-9);
            prop_assert!(s.variance >= 0.0);
        }

        #[test]
        fn merge_is_equivalent_to_concatenation(
            a in proptest::collection::vec(-1e3f64..1e3, 0..100),
            b in proptest::collection::vec(-1e3f64..1e3, 0..100),
        ) {
            let mut merged = OnlineStats::new();
            for &v in &a { merged.push(v); }
            let mut other = OnlineStats::new();
            for &v in &b { other.push(v); }
            merged.merge(&other);

            let mut whole = OnlineStats::new();
            for &v in a.iter().chain(b.iter()) { whole.push(v); }

            prop_assert_eq!(merged.count(), whole.count());
            prop_assert!((merged.mean() - whole.mean()).abs() < 1e-6);
            prop_assert!((merged.variance() - whole.variance()).abs() < 1e-6);
        }
    }
}
