//! Jitter and deadline accounting.
//!
//! The controller's period assignment trades off quantization error against
//! jitter (§3.3 of the paper), and the reservation scheduler reports missed
//! deadlines to the controller (§3.1).  These trackers give experiments a
//! uniform way to quantify both.

use crate::stats::OnlineStats;
use serde::{Deserialize, Serialize};

/// Tracks jitter of a recurring event from its observed timestamps.
///
/// Jitter is measured as the deviation of each inter-arrival gap from the
/// mean gap, which captures the "large oscillations" the paper's period
/// heuristic looks for.
///
/// # Examples
///
/// ```
/// use rrs_metrics::JitterTracker;
///
/// let mut j = JitterTracker::new();
/// for t in [0.0, 1.0, 2.0, 3.0] {
///     j.observe(t);
/// }
/// assert_eq!(j.intervals(), 3);
/// assert!(j.mean_abs_jitter() < 1e-12);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct JitterTracker {
    last: Option<f64>,
    gaps: Vec<f64>,
}

impl JitterTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that the event occurred at time `t` (seconds).
    pub fn observe(&mut self, t: f64) {
        if let Some(prev) = self.last {
            self.gaps.push(t - prev);
        }
        self.last = Some(t);
    }

    /// Number of recorded inter-arrival intervals.
    pub fn intervals(&self) -> usize {
        self.gaps.len()
    }

    /// Mean inter-arrival gap, or 0.0 with no intervals.
    pub fn mean_gap(&self) -> f64 {
        if self.gaps.is_empty() {
            0.0
        } else {
            self.gaps.iter().sum::<f64>() / self.gaps.len() as f64
        }
    }

    /// Mean absolute deviation of gaps from the mean gap.
    pub fn mean_abs_jitter(&self) -> f64 {
        if self.gaps.is_empty() {
            return 0.0;
        }
        let mean = self.mean_gap();
        self.gaps.iter().map(|g| (g - mean).abs()).sum::<f64>() / self.gaps.len() as f64
    }

    /// Largest absolute deviation of any gap from the mean gap.
    pub fn max_abs_jitter(&self) -> f64 {
        let mean = self.mean_gap();
        self.gaps
            .iter()
            .map(|g| (g - mean).abs())
            .fold(0.0, f64::max)
    }

    /// Standard deviation of the inter-arrival gaps.
    pub fn gap_stddev(&self) -> f64 {
        let mut s = OnlineStats::new();
        for &g in &self.gaps {
            s.push(g);
        }
        s.stddev()
    }
}

/// Per-thread deadline accounting for a proportion/period scheduler.
///
/// A deadline is "met" when the thread received its full allocation within
/// its period and "missed" otherwise.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeadlineTracker {
    met: u64,
    missed: u64,
}

impl DeadlineTracker {
    /// Creates a tracker with no recorded deadlines.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a met deadline.
    pub fn record_met(&mut self) {
        self.met += 1;
    }

    /// Records a missed deadline.
    pub fn record_missed(&mut self) {
        self.missed += 1;
    }

    /// Number of met deadlines.
    pub fn met(&self) -> u64 {
        self.met
    }

    /// Number of missed deadlines.
    pub fn missed(&self) -> u64 {
        self.missed
    }

    /// Total number of recorded deadlines.
    pub fn total(&self) -> u64 {
        self.met + self.missed
    }

    /// Miss ratio in `[0, 1]`, 0.0 when nothing was recorded.
    pub fn miss_ratio(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.missed as f64 / self.total() as f64
        }
    }

    /// Merges another tracker's counts into this one.
    pub fn merge(&mut self, other: &DeadlineTracker) {
        self.met += other.met;
        self.missed += other.missed;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn regular_arrivals_have_zero_jitter() {
        let mut j = JitterTracker::new();
        for i in 0..10 {
            j.observe(i as f64 * 0.03);
        }
        assert_eq!(j.intervals(), 9);
        assert!((j.mean_gap() - 0.03).abs() < 1e-12);
        assert!(j.mean_abs_jitter() < 1e-12);
        assert!(j.max_abs_jitter() < 1e-12);
        assert!(j.gap_stddev() < 1e-12);
    }

    #[test]
    fn irregular_arrivals_have_positive_jitter() {
        let mut j = JitterTracker::new();
        for t in [0.0, 0.01, 0.05, 0.06, 0.2] {
            j.observe(t);
        }
        assert!(j.mean_abs_jitter() > 0.0);
        assert!(j.max_abs_jitter() >= j.mean_abs_jitter());
    }

    #[test]
    fn empty_tracker_reports_zeros() {
        let j = JitterTracker::new();
        assert_eq!(j.intervals(), 0);
        assert_eq!(j.mean_gap(), 0.0);
        assert_eq!(j.mean_abs_jitter(), 0.0);
        assert_eq!(j.max_abs_jitter(), 0.0);
    }

    #[test]
    fn single_observation_has_no_intervals() {
        let mut j = JitterTracker::new();
        j.observe(5.0);
        assert_eq!(j.intervals(), 0);
    }

    #[test]
    fn deadline_tracker_counts_and_ratio() {
        let mut d = DeadlineTracker::new();
        assert_eq!(d.miss_ratio(), 0.0);
        d.record_met();
        d.record_met();
        d.record_met();
        d.record_missed();
        assert_eq!(d.met(), 3);
        assert_eq!(d.missed(), 1);
        assert_eq!(d.total(), 4);
        assert!((d.miss_ratio() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn deadline_tracker_merge() {
        let mut a = DeadlineTracker::new();
        a.record_met();
        let mut b = DeadlineTracker::new();
        b.record_missed();
        b.record_missed();
        a.merge(&b);
        assert_eq!(a.total(), 3);
        assert_eq!(a.missed(), 2);
    }

    proptest! {
        #[test]
        fn miss_ratio_is_bounded(met in 0u64..1000, missed in 0u64..1000) {
            let mut d = DeadlineTracker::new();
            for _ in 0..met { d.record_met(); }
            for _ in 0..missed { d.record_missed(); }
            let r = d.miss_ratio();
            prop_assert!((0.0..=1.0).contains(&r));
            prop_assert_eq!(d.total(), met + missed);
        }

        #[test]
        fn jitter_is_nonnegative(times in proptest::collection::vec(0.0f64..100.0, 0..100)) {
            let mut sorted = times.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let mut j = JitterTracker::new();
            for t in sorted {
                j.observe(t);
            }
            prop_assert!(j.mean_abs_jitter() >= 0.0);
            prop_assert!(j.max_abs_jitter() >= j.mean_abs_jitter() - 1e-12);
        }
    }
}
