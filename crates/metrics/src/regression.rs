//! Ordinary-least-squares linear regression.
//!
//! Figure 5 of the paper reports the controller overhead as a linear fit
//! `y = 0.00066·x + 0.00057` with a coefficient of determination of 0.999.
//! The benchmark harness uses [`linear_fit`] to compute the same slope,
//! intercept and R² from the measured overhead series.

use serde::{Deserialize, Serialize};

/// Result of a least-squares linear fit `y ≈ slope · x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinearFit {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination (R²), in `[0, 1]` for least-squares fits.
    pub r_squared: f64,
    /// Number of points used in the fit.
    pub n: usize,
}

impl LinearFit {
    /// Evaluates the fitted line at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.slope * x + self.intercept
    }
}

/// Fits a line to `(x, y)` pairs by ordinary least squares.
///
/// Returns `None` when fewer than two points are supplied or when all `x`
/// values are identical (the slope would be undefined).
///
/// # Examples
///
/// ```
/// use rrs_metrics::linear_fit;
///
/// let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 2.0 * i as f64 + 1.0)).collect();
/// let fit = linear_fit(&pts).unwrap();
/// assert!((fit.slope - 2.0).abs() < 1e-9);
/// assert!((fit.intercept - 1.0).abs() < 1e-9);
/// assert!(fit.r_squared > 0.999);
/// ```
pub fn linear_fit(points: &[(f64, f64)]) -> Option<LinearFit> {
    let n = points.len();
    if n < 2 {
        return None;
    }
    let nf = n as f64;
    let mean_x = points.iter().map(|p| p.0).sum::<f64>() / nf;
    let mean_y = points.iter().map(|p| p.1).sum::<f64>() / nf;

    let mut sxx = 0.0;
    let mut sxy = 0.0;
    let mut syy = 0.0;
    for &(x, y) in points {
        let dx = x - mean_x;
        let dy = y - mean_y;
        sxx += dx * dx;
        sxy += dx * dy;
        syy += dy * dy;
    }
    if sxx == 0.0 {
        return None;
    }
    let slope = sxy / sxx;
    let intercept = mean_y - slope * mean_x;

    // R² = 1 - SS_res / SS_tot. A constant y (syy == 0) is fit perfectly.
    let r_squared = if syy == 0.0 {
        1.0
    } else {
        let ss_res: f64 = points
            .iter()
            .map(|&(x, y)| {
                let e = y - (slope * x + intercept);
                e * e
            })
            .sum();
        (1.0 - ss_res / syy).clamp(0.0, 1.0)
    };

    Some(LinearFit {
        slope,
        intercept,
        r_squared,
        n,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn perfect_line_recovers_parameters() {
        let pts: Vec<(f64, f64)> = (0..20).map(|i| (i as f64, -3.0 * i as f64 + 7.0)).collect();
        let fit = linear_fit(&pts).unwrap();
        assert!((fit.slope + 3.0).abs() < 1e-9);
        assert!((fit.intercept - 7.0).abs() < 1e-9);
        assert!((fit.r_squared - 1.0).abs() < 1e-9);
        assert_eq!(fit.n, 20);
    }

    #[test]
    fn too_few_points_returns_none() {
        assert!(linear_fit(&[]).is_none());
        assert!(linear_fit(&[(1.0, 2.0)]).is_none());
    }

    #[test]
    fn vertical_line_returns_none() {
        let pts = [(2.0, 1.0), (2.0, 5.0), (2.0, 9.0)];
        assert!(linear_fit(&pts).is_none());
    }

    #[test]
    fn constant_y_has_zero_slope_and_perfect_fit() {
        let pts = [(0.0, 4.0), (1.0, 4.0), (2.0, 4.0)];
        let fit = linear_fit(&pts).unwrap();
        assert_eq!(fit.slope, 0.0);
        assert_eq!(fit.intercept, 4.0);
        assert_eq!(fit.r_squared, 1.0);
    }

    #[test]
    fn predict_evaluates_the_line() {
        let fit = LinearFit {
            slope: 0.5,
            intercept: 1.0,
            r_squared: 1.0,
            n: 2,
        };
        assert_eq!(fit.predict(4.0), 3.0);
    }

    #[test]
    fn noisy_line_has_high_but_imperfect_r_squared() {
        // Deterministic "noise" so the test is stable.
        let pts: Vec<(f64, f64)> = (0..50)
            .map(|i| {
                let x = i as f64;
                let noise = if i % 2 == 0 { 0.25 } else { -0.25 };
                (x, 0.1 * x + 2.0 + noise)
            })
            .collect();
        let fit = linear_fit(&pts).unwrap();
        assert!((fit.slope - 0.1).abs() < 0.01);
        assert!(fit.r_squared > 0.9 && fit.r_squared < 1.0);
    }

    proptest! {
        #[test]
        fn fit_of_exact_line_matches(slope in -100.0f64..100.0, intercept in -100.0f64..100.0) {
            let pts: Vec<(f64, f64)> = (0..10).map(|i| {
                let x = i as f64;
                (x, slope * x + intercept)
            }).collect();
            let fit = linear_fit(&pts).unwrap();
            prop_assert!((fit.slope - slope).abs() < 1e-6);
            prop_assert!((fit.intercept - intercept).abs() < 1e-6);
        }

        #[test]
        fn r_squared_is_bounded(ys in proptest::collection::vec(-1e3f64..1e3, 2..100)) {
            let pts: Vec<(f64, f64)> = ys.iter().enumerate().map(|(i, &y)| (i as f64, y)).collect();
            if let Some(fit) = linear_fit(&pts) {
                prop_assert!(fit.r_squared >= 0.0 && fit.r_squared <= 1.0);
            }
        }
    }
}
