//! Minimal ASCII plotting for the example binaries.
//!
//! The examples print the same curves the paper's figures show (allocation
//! over time, queue fill level over time) directly to the terminal so a run
//! of `cargo run --example ...` is self-contained.

use crate::timeseries::TimeSeries;

/// Configuration for an ASCII plot.
#[derive(Debug, Clone, Copy)]
pub struct PlotConfig {
    /// Plot width in character columns.
    pub width: usize,
    /// Plot height in character rows.
    pub height: usize,
    /// Lower bound of the y axis; `None` auto-scales to the data.
    pub y_min: Option<f64>,
    /// Upper bound of the y axis; `None` auto-scales to the data.
    pub y_max: Option<f64>,
}

impl Default for PlotConfig {
    fn default() -> Self {
        Self {
            width: 72,
            height: 16,
            y_min: None,
            y_max: None,
        }
    }
}

/// Renders a single time series as an ASCII chart.
///
/// Returns a multi-line string; empty series produce a one-line placeholder.
///
/// # Examples
///
/// ```
/// use rrs_metrics::{plot::{ascii_plot, PlotConfig}, TimeSeries};
///
/// let mut ts = TimeSeries::new("fill");
/// for i in 0..100 {
///     ts.push(i as f64, (i as f64 / 10.0).sin());
/// }
/// let chart = ascii_plot(&ts, PlotConfig::default());
/// assert!(chart.contains("fill"));
/// ```
pub fn ascii_plot(series: &TimeSeries, config: PlotConfig) -> String {
    if series.is_empty() {
        return format!("{} (no samples)\n", series.name());
    }
    let width = config.width.max(8);
    let height = config.height.max(2);

    let values = series.values();
    let data_min = values.iter().copied().fold(f64::INFINITY, f64::min);
    let data_max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mut y_min = config.y_min.unwrap_or(data_min);
    let mut y_max = config.y_max.unwrap_or(data_max);
    if (y_max - y_min).abs() < 1e-12 {
        y_min -= 0.5;
        y_max += 0.5;
    }

    // Downsample onto `width` columns by averaging each bucket.
    let t0 = series.first().map(|s| s.time).unwrap_or(0.0);
    let t1 = series.last().map(|s| s.time).unwrap_or(1.0);
    let span = (t1 - t0).max(1e-12);
    let mut sums = vec![0.0f64; width];
    let mut counts = vec![0usize; width];
    for (t, v) in series.iter() {
        let col = (((t - t0) / span) * (width as f64 - 1.0)).round() as usize;
        let col = col.min(width - 1);
        sums[col] += v;
        counts[col] += 1;
    }

    let mut grid = vec![vec![' '; width]; height];
    let mut last_row: Option<usize> = None;
    for col in 0..width {
        if counts[col] == 0 {
            continue;
        }
        let v = sums[col] / counts[col] as f64;
        let frac = ((v - y_min) / (y_max - y_min)).clamp(0.0, 1.0);
        let row = ((1.0 - frac) * (height as f64 - 1.0)).round() as usize;
        grid[row][col] = '*';
        // Connect vertically to the previous column for readability.
        if let Some(prev) = last_row {
            let (lo, hi) = if prev < row { (prev, row) } else { (row, prev) };
            for grid_row in &mut grid[lo..=hi] {
                if grid_row[col] == ' ' {
                    grid_row[col] = '|';
                }
            }
        }
        last_row = Some(row);
    }

    let mut out = String::new();
    out.push_str(&format!(
        "{}  [{:.3} .. {:.3}]\n",
        series.name(),
        y_min,
        y_max
    ));
    for (i, row) in grid.iter().enumerate() {
        let label = if i == 0 {
            format!("{y_max:>10.3} ")
        } else if i == height - 1 {
            format!("{y_min:>10.3} ")
        } else {
            " ".repeat(11)
        };
        out.push_str(&label);
        out.push('|');
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&" ".repeat(11));
    out.push('+');
    out.push_str(&"-".repeat(width));
    out.push('\n');
    out.push_str(&format!(
        "{:>12}{:>width$.2}\n",
        format!("{t0:.2}"),
        t1,
        width = width
    ));
    out
}

/// Renders several series stacked vertically, each with the same config.
pub fn ascii_plot_many(series: &[&TimeSeries], config: PlotConfig) -> String {
    let mut out = String::new();
    for s in series {
        out.push_str(&ascii_plot(s, config));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(n: usize) -> TimeSeries {
        let mut ts = TimeSeries::new("ramp");
        for i in 0..n {
            ts.push(i as f64, i as f64);
        }
        ts
    }

    #[test]
    fn empty_series_renders_placeholder() {
        let out = ascii_plot(&TimeSeries::new("empty"), PlotConfig::default());
        assert!(out.contains("no samples"));
    }

    #[test]
    fn plot_contains_name_and_data_marks() {
        let out = ascii_plot(&ramp(50), PlotConfig::default());
        assert!(out.contains("ramp"));
        assert!(out.contains('*'));
    }

    #[test]
    fn plot_has_expected_row_count() {
        let config = PlotConfig {
            width: 40,
            height: 10,
            y_min: None,
            y_max: None,
        };
        let out = ascii_plot(&ramp(100), config);
        // Header + height rows + axis + time labels.
        assert_eq!(out.lines().count(), 1 + 10 + 1 + 1);
    }

    #[test]
    fn constant_series_does_not_divide_by_zero() {
        let mut ts = TimeSeries::new("flat");
        for i in 0..10 {
            ts.push(i as f64, 3.0);
        }
        let out = ascii_plot(&ts, PlotConfig::default());
        assert!(out.contains('*'));
    }

    #[test]
    fn fixed_axis_bounds_are_respected() {
        let config = PlotConfig {
            width: 30,
            height: 8,
            y_min: Some(0.0),
            y_max: Some(1.0),
        };
        let mut ts = TimeSeries::new("clipped");
        ts.push(0.0, -5.0);
        ts.push(1.0, 5.0);
        let out = ascii_plot(&ts, config);
        assert!(out.contains("1.000"));
        assert!(out.contains("0.000"));
    }

    #[test]
    fn plot_many_concatenates() {
        let a = ramp(10);
        let b = ramp(10);
        let out = ascii_plot_many(&[&a, &b], PlotConfig::default());
        assert_eq!(out.matches("ramp").count(), 2);
    }
}
