//! Append-only time series of `(time, value)` samples.

use crate::stats::Summary;
use serde::{Deserialize, Serialize};

/// A single `(time, value)` sample.
///
/// Time is expressed in seconds from the start of the experiment; the value
/// is whatever quantity the experiment records (allocation in parts per
/// thousand, queue fill level, bytes per second, ...).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// Sample timestamp in seconds.
    pub time: f64,
    /// Sample value.
    pub value: f64,
}

/// An append-only series of [`Sample`]s ordered by insertion.
///
/// The series does not require strictly increasing timestamps, but every
/// experiment in this workspace appends in time order, and the windowing
/// helpers assume that ordering.
///
/// # Examples
///
/// ```
/// use rrs_metrics::TimeSeries;
///
/// let mut ts = TimeSeries::new("fill-level");
/// ts.push(0.0, 0.5);
/// ts.push(1.0, 0.75);
/// assert_eq!(ts.len(), 2);
/// assert_eq!(ts.last().unwrap().value, 0.75);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TimeSeries {
    name: String,
    samples: Vec<Sample>,
}

impl TimeSeries {
    /// Creates an empty series with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            samples: Vec::new(),
        }
    }

    /// Creates an empty series with the given name and reserved capacity.
    pub fn with_capacity(name: impl Into<String>, capacity: usize) -> Self {
        Self {
            name: name.into(),
            samples: Vec::with_capacity(capacity),
        }
    }

    /// Returns the series name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends a sample.
    pub fn push(&mut self, time: f64, value: f64) {
        self.samples.push(Sample { time, value });
    }

    /// Returns the number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Returns `true` if the series has no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Returns the samples as a slice.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Returns the last sample, if any.
    pub fn last(&self) -> Option<Sample> {
        self.samples.last().copied()
    }

    /// Returns the first sample, if any.
    pub fn first(&self) -> Option<Sample> {
        self.samples.first().copied()
    }

    /// Returns an iterator over `(time, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.samples.iter().map(|s| (s.time, s.value))
    }

    /// Returns the values only.
    pub fn values(&self) -> Vec<f64> {
        self.samples.iter().map(|s| s.value).collect()
    }

    /// Returns the timestamps only.
    pub fn times(&self) -> Vec<f64> {
        self.samples.iter().map(|s| s.time).collect()
    }

    /// Returns a summary of the sample values.
    pub fn summary(&self) -> Summary {
        Summary::from_values(self.samples.iter().map(|s| s.value))
    }

    /// Returns the sub-series with `start <= time < end`.
    ///
    /// Assumes samples were appended in non-decreasing time order.
    pub fn window(&self, start: f64, end: f64) -> TimeSeries {
        let samples = self
            .samples
            .iter()
            .filter(|s| s.time >= start && s.time < end)
            .copied()
            .collect();
        TimeSeries {
            name: format!("{}[{start:.3}..{end:.3}]", self.name),
            samples,
        }
    }

    /// Returns the mean value over `start <= time < end`, or `None` if the
    /// window is empty.
    pub fn window_mean(&self, start: f64, end: f64) -> Option<f64> {
        let w = self.window(start, end);
        if w.is_empty() {
            None
        } else {
            Some(w.summary().mean)
        }
    }

    /// Returns the value at the given time using zero-order hold (the value
    /// of the latest sample at or before `time`), or `None` if `time`
    /// precedes the first sample.
    pub fn value_at(&self, time: f64) -> Option<f64> {
        let mut result = None;
        for s in &self.samples {
            if s.time <= time {
                result = Some(s.value);
            } else {
                break;
            }
        }
        result
    }

    /// Resamples the series onto a fixed grid `[t0, t0 + dt, ...]` with
    /// zero-order hold, producing `count` samples.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is not strictly positive.
    pub fn resample(&self, t0: f64, dt: f64, count: usize) -> TimeSeries {
        assert!(dt > 0.0, "resample interval must be positive");
        let mut out = TimeSeries::with_capacity(self.name.clone(), count);
        let mut idx = 0usize;
        let mut held = self.samples.first().map(|s| s.value).unwrap_or(0.0);
        for k in 0..count {
            let t = t0 + dt * k as f64;
            while idx < self.samples.len() && self.samples[idx].time <= t {
                held = self.samples[idx].value;
                idx += 1;
            }
            out.push(t, held);
        }
        out
    }

    /// Returns the time of the first sample (at or after `from`) whose value
    /// satisfies `pred`, or `None` if none does.
    ///
    /// Used to measure controller response times: "when did the consumer's
    /// allocation first reach 90 % of its final value after the pulse?".
    pub fn first_time_where<F: Fn(f64) -> bool>(&self, from: f64, pred: F) -> Option<f64> {
        self.samples
            .iter()
            .find(|s| s.time >= from && pred(s.value))
            .map(|s| s.time)
    }

    /// Computes a new series of the point-wise difference `self - other`
    /// over the shorter of the two lengths, pairing samples by index.
    pub fn pointwise_sub(&self, other: &TimeSeries) -> TimeSeries {
        let n = self.len().min(other.len());
        let mut out = TimeSeries::with_capacity(format!("{}-{}", self.name, other.name), n);
        for i in 0..n {
            out.push(
                self.samples[i].time,
                self.samples[i].value - other.samples[i].value,
            );
        }
        out
    }

    /// Returns the maximum absolute deviation of the values from `target`.
    pub fn max_abs_deviation(&self, target: f64) -> f64 {
        self.samples
            .iter()
            .map(|s| (s.value - target).abs())
            .fold(0.0, f64::max)
    }

    /// Integrates the series over time using the trapezoidal rule.
    ///
    /// Returns 0.0 for series with fewer than two samples.
    pub fn integrate(&self) -> f64 {
        let mut acc = 0.0;
        for pair in self.samples.windows(2) {
            let dt = pair[1].time - pair[0].time;
            acc += 0.5 * (pair[0].value + pair[1].value) * dt;
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(values: &[(f64, f64)]) -> TimeSeries {
        let mut ts = TimeSeries::new("test");
        for &(t, v) in values {
            ts.push(t, v);
        }
        ts
    }

    #[test]
    fn push_and_len() {
        let ts = series(&[(0.0, 1.0), (1.0, 2.0)]);
        assert_eq!(ts.len(), 2);
        assert!(!ts.is_empty());
        assert_eq!(ts.first().unwrap().value, 1.0);
        assert_eq!(ts.last().unwrap().value, 2.0);
    }

    #[test]
    fn empty_series_has_no_first_or_last() {
        let ts = TimeSeries::new("empty");
        assert!(ts.is_empty());
        assert!(ts.first().is_none());
        assert!(ts.last().is_none());
        assert!(ts.value_at(1.0).is_none());
    }

    #[test]
    fn window_selects_half_open_interval() {
        let ts = series(&[(0.0, 1.0), (1.0, 2.0), (2.0, 3.0), (3.0, 4.0)]);
        let w = ts.window(1.0, 3.0);
        assert_eq!(w.len(), 2);
        assert_eq!(w.values(), vec![2.0, 3.0]);
    }

    #[test]
    fn window_mean_of_empty_window_is_none() {
        let ts = series(&[(0.0, 1.0)]);
        assert!(ts.window_mean(5.0, 6.0).is_none());
        assert_eq!(ts.window_mean(0.0, 1.0), Some(1.0));
    }

    #[test]
    fn value_at_uses_zero_order_hold() {
        let ts = series(&[(0.0, 1.0), (2.0, 5.0)]);
        assert_eq!(ts.value_at(0.0), Some(1.0));
        assert_eq!(ts.value_at(1.0), Some(1.0));
        assert_eq!(ts.value_at(2.0), Some(5.0));
        assert_eq!(ts.value_at(10.0), Some(5.0));
        assert_eq!(ts.value_at(-1.0), None);
    }

    #[test]
    fn resample_holds_last_value() {
        let ts = series(&[(0.0, 1.0), (1.0, 3.0)]);
        let r = ts.resample(0.0, 0.5, 4);
        assert_eq!(r.values(), vec![1.0, 1.0, 3.0, 3.0]);
        assert_eq!(r.times(), vec![0.0, 0.5, 1.0, 1.5]);
    }

    #[test]
    #[should_panic(expected = "resample interval must be positive")]
    fn resample_rejects_zero_dt() {
        let ts = series(&[(0.0, 1.0)]);
        let _ = ts.resample(0.0, 0.0, 4);
    }

    #[test]
    fn first_time_where_finds_threshold_crossing() {
        let ts = series(&[(0.0, 0.0), (1.0, 0.4), (2.0, 0.9), (3.0, 1.0)]);
        assert_eq!(ts.first_time_where(0.0, |v| v >= 0.9), Some(2.0));
        assert_eq!(ts.first_time_where(2.5, |v| v >= 0.9), Some(3.0));
        assert_eq!(ts.first_time_where(0.0, |v| v >= 2.0), None);
    }

    #[test]
    fn pointwise_sub_pairs_by_index() {
        let a = series(&[(0.0, 5.0), (1.0, 6.0), (2.0, 7.0)]);
        let b = series(&[(0.0, 1.0), (1.0, 2.0)]);
        let d = a.pointwise_sub(&b);
        assert_eq!(d.values(), vec![4.0, 4.0]);
    }

    #[test]
    fn max_abs_deviation_from_target() {
        let ts = series(&[(0.0, 0.4), (1.0, 0.7), (2.0, 0.45)]);
        let dev = ts.max_abs_deviation(0.5);
        assert!((dev - 0.2).abs() < 1e-12);
    }

    #[test]
    fn integrate_trapezoid() {
        // f(t) = t on [0, 2] integrates to 2.0.
        let ts = series(&[(0.0, 0.0), (1.0, 1.0), (2.0, 2.0)]);
        assert!((ts.integrate() - 2.0).abs() < 1e-12);
        // Fewer than two samples integrates to zero.
        assert_eq!(series(&[(0.0, 7.0)]).integrate(), 0.0);
    }

    #[test]
    fn summary_reflects_values() {
        let ts = series(&[(0.0, 1.0), (1.0, 3.0)]);
        let s = ts.summary();
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
    }
}
