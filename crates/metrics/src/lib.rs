//! Measurement and reporting support for the real-rate scheduling reproduction.
//!
//! The paper's evaluation (Figures 5–8) reports time series of allocations,
//! queue fill levels, progress rates, controller overhead and dispatch
//! overhead.  This crate provides the small amount of numerical
//! infrastructure those experiments need:
//!
//! * [`TimeSeries`] — an append-only `(time, value)` series with windowing,
//!   resampling and summary statistics.
//! * [`stats`] — scalar summaries ([`stats::Summary`]) and streaming
//!   statistics ([`stats::OnlineStats`]).
//! * [`histogram`] — a fixed-bucket histogram with percentile queries.
//! * [`regression`] — ordinary-least-squares linear regression, used to fit
//!   the controller-overhead line of Figure 5.
//! * [`jitter`] — inter-sample jitter and deadline-miss accounting.
//! * [`export`] — CSV and JSON emission of experiment records.
//! * [`plot`] — terminal-friendly ASCII plots for the example binaries.
//!
//! The crate is deliberately free of scheduling concepts: it only knows about
//! numbers over time, so every other crate in the workspace can depend on it.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod export;
pub mod histogram;
pub mod jitter;
pub mod plot;
pub mod regression;
pub mod stats;
pub mod timeseries;

pub use export::{ExperimentRecord, SeriesTable};
pub use histogram::Histogram;
pub use jitter::{DeadlineTracker, JitterTracker};
pub use regression::{linear_fit, LinearFit};
pub use stats::{OnlineStats, Summary};
pub use timeseries::TimeSeries;
