//! The event calendar: a binary-heap schedule keyed by [`SimTime`].
//!
//! Modelled on the classic discrete-event `Schedule` loop: the simulator
//! pops the earliest event, jumps the clock straight to it, handles it,
//! and repeats.  Ordering is fully deterministic — ties on the timestamp
//! are broken first by the event's fixed priority rank and then
//! by insertion order, so two runs of the same workload pop the same
//! events in the same order.
//!
//! Entries are cancelled lazily: [`Schedule::cancel`] marks the token and
//! the heap drops the entry when it surfaces, which keeps cancellation
//! `O(log n)`-amortised without a decrease-key structure.
//!
//! Liveness is tracked in a slot/generation slab rather than a hash set:
//! every pending entry owns a slot for its heap lifetime, the slot index
//! and its generation pack into the [`EventId`] token, and a freed slot
//! bumps its generation so stale tokens can never alias a newer entry.
//! Lookups are a bounds check plus a generation compare — `O(1)`,
//! deterministic, and allocation-free once the slab has warmed up, which
//! is what lets `schedule`/`cancel`/`pop` sit on the zero-alloc
//! steady-state paths.

use crate::event::Event;
use rrs_core::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A token identifying one scheduled entry, for cancellation.  Packs the
/// slab slot in the low 32 bits and the slot's generation in the high 32.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId(u64);

impl EventId {
    fn pack(slot: u32, gen: u32) -> Self {
        EventId(u64::from(slot) | (u64::from(gen) << 32))
    }

    fn slot(self) -> u32 {
        self.0 as u32
    }

    fn gen(self) -> u32 {
        (self.0 >> 32) as u32
    }
}

#[derive(Debug, PartialEq, Eq)]
struct Entry {
    time: SimTime,
    priority: u8,
    seq: u64,
    slot: u32,
    event: Event,
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.priority, self.seq).cmp(&(other.time, other.priority, other.seq))
    }
}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// One slab slot: owned by a heap entry from `schedule` until the entry
/// surfaces and is dropped, so `live` alone answers "still pending?" for
/// in-heap entries while `gen` invalidates tokens from earlier tenancies.
#[derive(Debug, Clone, Copy)]
struct Slot {
    gen: u32,
    live: bool,
}

/// The simulator's event calendar.
#[derive(Debug, Default)]
pub struct Schedule {
    heap: BinaryHeap<Reverse<Entry>>,
    slots: Vec<Slot>,
    free: Vec<u32>,
    live_count: usize,
    next_seq: u64,
}

impl Schedule {
    /// Creates an empty calendar.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `event` at `time` and returns a token that can cancel it.
    pub fn schedule(&mut self, time: SimTime, event: Event) -> EventId {
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = match self.free.pop() {
            Some(slot) => {
                self.slots[slot as usize].live = true;
                slot
            }
            None => {
                let slot = self.slots.len() as u32;
                self.slots.push(Slot { gen: 0, live: true });
                slot
            }
        };
        self.live_count += 1;
        let gen = self.slots[slot as usize].gen;
        self.heap.push(Reverse(Entry {
            time,
            priority: event.priority(),
            seq,
            slot,
            event,
        }));
        EventId::pack(slot, gen)
    }

    /// Cancels a scheduled entry.  Returns `true` if the entry was still
    /// pending (scheduled, not yet popped, not already cancelled).  The
    /// heap itself is pruned lazily when the dead entry reaches the top.
    pub fn cancel(&mut self, id: EventId) -> bool {
        let Some(slot) = self.slots.get_mut(id.slot() as usize) else {
            return false;
        };
        if slot.gen != id.gen() || !slot.live {
            return false;
        }
        slot.live = false;
        self.live_count -= 1;
        true
    }

    /// The time of the next live event, pruning cancelled entries off the
    /// top of the heap.
    pub fn next_time(&mut self) -> Option<SimTime> {
        self.prune();
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    /// Pops the earliest live event.
    pub fn pop(&mut self) -> Option<(SimTime, Event)> {
        self.prune();
        self.heap.pop().map(|Reverse(e)| {
            self.slots[e.slot as usize].live = false;
            self.live_count -= 1;
            self.release(e.slot);
            (e.time, e.event)
        })
    }

    fn prune(&mut self) {
        while let Some(Reverse(top)) = self.heap.peek() {
            if self.slots[top.slot as usize].live {
                break;
            }
            let slot = top.slot;
            self.heap.pop();
            self.release(slot);
        }
    }

    /// Retires a slot once its heap entry is gone: the generation bump
    /// invalidates any token still pointing at it before it is reused.
    fn release(&mut self, slot: u32) {
        self.slots[slot as usize].gen = self.slots[slot as usize].gen.wrapping_add(1);
        self.free.push(slot);
    }

    /// Number of live (non-cancelled) scheduled entries.
    pub fn len(&self) -> usize {
        self.live_count
    }

    /// Returns `true` if no live entries are scheduled.
    pub fn is_empty(&self) -> bool {
        self.live_count == 0
    }

    /// Drops every entry.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.slots.clear();
        self.free.clear();
        self.live_count = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rrs_scheduler::ThreadId;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    #[test]
    fn pops_in_time_order() {
        let mut s = Schedule::new();
        s.schedule(t(300), Event::Trace);
        s.schedule(t(100), Event::Controller);
        s.schedule(t(200), Event::PollTick);
        assert_eq!(s.next_time(), Some(t(100)));
        assert_eq!(s.pop(), Some((t(100), Event::Controller)));
        assert_eq!(s.pop(), Some((t(200), Event::PollTick)));
        assert_eq!(s.pop(), Some((t(300), Event::Trace)));
        assert_eq!(s.pop(), None);
        assert_eq!(s.next_time(), None);
    }

    #[test]
    fn identical_timestamps_order_by_priority_then_insertion() {
        let mut s = Schedule::new();
        // Inserted in reverse priority order; all at the same instant.
        s.schedule(t(50), Event::Horizon);
        s.schedule(t(50), Event::Wake(ThreadId(9)));
        s.schedule(t(50), Event::Wake(ThreadId(3)));
        s.schedule(t(50), Event::Trace);
        s.schedule(t(50), Event::Controller);
        let order: Vec<Event> = std::iter::from_fn(|| s.pop().map(|(_, e)| e)).collect();
        assert_eq!(
            order,
            vec![
                Event::Controller,
                Event::Trace,
                // Same priority: insertion order, not thread-id order.
                Event::Wake(ThreadId(9)),
                Event::Wake(ThreadId(3)),
                Event::Horizon,
            ]
        );
    }

    #[test]
    fn cancelled_events_never_fire() {
        let mut s = Schedule::new();
        let a = s.schedule(t(10), Event::Wake(ThreadId(1)));
        let b = s.schedule(t(20), Event::Wake(ThreadId(2)));
        let c = s.schedule(t(30), Event::Wake(ThreadId(3)));
        assert!(s.cancel(b));
        assert!(!s.cancel(b), "double cancel is rejected");
        assert_eq!(s.len(), 2);
        assert_eq!(s.pop(), Some((t(10), Event::Wake(ThreadId(1)))));
        assert!(
            !s.cancel(a),
            "cancelling an already-popped entry is a no-op"
        );
        assert_eq!(s.pop(), Some((t(30), Event::Wake(ThreadId(3)))));
        assert_eq!(s.pop(), None);
        assert!(!s.cancel(c));
        assert!(!s.cancel(EventId(999)), "unknown ids are rejected");
    }

    #[test]
    fn cancelling_the_head_updates_next_time() {
        let mut s = Schedule::new();
        let head = s.schedule(t(5), Event::Controller);
        s.schedule(t(8), Event::Trace);
        assert_eq!(s.next_time(), Some(t(5)));
        assert!(s.cancel(head));
        assert_eq!(s.next_time(), Some(t(8)));
        assert_eq!(s.len(), 1);
        assert!(!s.is_empty());
    }

    #[test]
    fn stale_tokens_never_alias_a_reused_slot() {
        let mut s = Schedule::new();
        let old = s.schedule(t(1), Event::Controller);
        assert_eq!(s.pop(), Some((t(1), Event::Controller)));
        // The freed slot is reused for the next entry; the old token's
        // generation no longer matches, so it cannot cancel the newcomer.
        let new = s.schedule(t(2), Event::Trace);
        assert!(!s.cancel(old), "stale token is rejected after slot reuse");
        assert_eq!(s.len(), 1);
        assert!(s.cancel(new));
        assert_eq!(s.pop(), None);
    }

    #[test]
    fn clear_drops_everything() {
        let mut s = Schedule::new();
        s.schedule(t(1), Event::Controller);
        let id = s.schedule(t(2), Event::Trace);
        s.cancel(id);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.pop(), None);
    }

    proptest! {
        /// Oracle: the schedule pops exactly the non-cancelled entries, in
        /// (time, priority, insertion) order, regardless of the insert and
        /// cancel interleaving.
        #[test]
        fn pop_order_matches_sorted_oracle(
            entries in proptest::collection::vec((0u64..100, 0u8..4), 0..60),
            cancels in proptest::collection::vec(0usize..60, 0..20),
        ) {
            let mut s = Schedule::new();
            let mut ids = Vec::new();
            let mut oracle = Vec::new();
            for (seq, &(time, kind)) in entries.iter().enumerate() {
                let event = match kind {
                    0 => Event::Controller,
                    1 => Event::Trace,
                    2 => Event::Wake(ThreadId(seq as u64)),
                    _ => Event::PollTick,
                };
                ids.push(s.schedule(t(time), event));
                oracle.push((t(time), event.priority(), seq, event));
            }
            let mut dropped = std::collections::HashSet::new();
            for &i in &cancels {
                if i < ids.len() && dropped.insert(i) {
                    prop_assert!(s.cancel(ids[i]));
                }
            }
            let mut expected: Vec<_> = oracle
                .into_iter()
                .enumerate()
                .filter(|(i, _)| !dropped.contains(i))
                .map(|(_, e)| e)
                .collect();
            expected.sort_by_key(|&(time, priority, seq, _)| (time, priority, seq));
            prop_assert_eq!(s.len(), expected.len());
            let got: Vec<_> = std::iter::from_fn(|| s.pop()).collect();
            let want: Vec<_> = expected.into_iter().map(|(time, _, _, e)| (time, e)).collect();
            prop_assert_eq!(got, want);
        }

        /// Two schedules fed the same operations pop identical sequences —
        /// determinism does not depend on hash iteration order.
        #[test]
        fn replay_is_deterministic(
            entries in proptest::collection::vec((0u64..50, 0u8..5), 0..40),
        ) {
            let build = || {
                let mut s = Schedule::new();
                for (seq, &(time, kind)) in entries.iter().enumerate() {
                    let event = match kind {
                        0 => Event::Controller,
                        1 => Event::Trace,
                        2 => Event::Wake(ThreadId(seq as u64)),
                        3 => Event::PollTick,
                        _ => Event::Horizon,
                    };
                    s.schedule(t(time), event);
                }
                std::iter::from_fn(move || s.pop()).collect::<Vec<_>>()
            };
            prop_assert_eq!(build(), build());
        }
    }
}
