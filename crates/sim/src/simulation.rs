//! The simulation event loop.
//!
//! The simulator drives an [`rrs_scheduler::Machine`] of `N` per-CPU
//! dispatchers.  Two stepping modes share every other piece of machinery
//! (jobs, controller, tracing, statistics):
//!
//! * [`SteppingMode::Calendar`] (the default) is a discrete-event loop:
//!   controller cycles, trace samples, workload wake-ups and poll ticks
//!   are typed [`Event`]s in a binary-heap [`Schedule`] keyed by
//!   [`SimTime`], and between two events each CPU's usage is advanced
//!   *analytically* from its dispatch assignment — dispatch, run the
//!   chosen work model for the span the assignment stays valid, charge,
//!   repeat.  An idle CPU jumps straight to its next timer; there is no
//!   idle fast-forward special case because idleness is simply "no event
//!   until T".
//! * [`SteppingMode::Lockstep`] is the original tick-driven loop: every
//!   step dispatches each CPU, runs the selected work models for the
//!   shortest granted quantum, and moves the shared clock once.  It is
//!   retained as the naive reference the calendar path is property-tested
//!   against, and as the anchor for the historical golden-stats captures.
//!
//! Cross-CPU migrations decided by the control pipeline's Place stage are
//! applied between cycles and charged a configurable cost in both modes.
//! `tests/sim_golden_stats.rs` pins `SimStats` for both modes at `N = 1`
//! and `N = 8` so the calendar optimisations stay observable only where
//! documented.

use crate::calendar::{EventId, Schedule};
use crate::event::Event;
use crate::trace::Trace;
use crate::workload::WorkModel;
use rrs_core::{
    controller::AdmitError, Controller, ControllerConfig, ControllerEvent, JobHandle, JobId,
    JobSlot, JobSpec, SimTime, UsageSnapshot,
};
use rrs_queue::MetricRegistry;
use rrs_scheduler::{
    CpuId, CpuStats, DispatchOutcome, Dispatcher, DispatcherConfig, Machine, MigratedThread,
    Period, Proportion, Reservation, ThreadId, ThreadState,
};
use rrs_telemetry::{
    CalendarEventKind, Recorder, TelemetryConfig, TelemetrySnapshot, TraceEventKind,
};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::sync::Arc;

/// The simulated CPU.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CpuConfig {
    /// Clock rate in Hz.  The paper's testbed was a 400 MHz Pentium II.
    pub clock_hz: f64,
}

impl Default for CpuConfig {
    fn default() -> Self {
        Self { clock_hz: 400e6 }
    }
}

/// How the simulation advances time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum SteppingMode {
    /// Discrete-event stepping on the event calendar (the default).
    ///
    /// Controller cycles, trace samples, workload wake-ups and poll ticks
    /// are entries in a [`Schedule`]; between two events each CPU advances
    /// analytically from its current dispatch assignment.  Selecting this
    /// mode forces the lazy-rollover dispatcher and the incremental
    /// controller, the two optimisations the calendar loop is built on.
    #[default]
    Calendar,
    /// The original tick-driven loop: one lockstep dispatch round over
    /// every CPU per [`Simulation::step`].  Retained as the naive
    /// reference the calendar path is property-tested against.
    Lockstep,
}

/// Simulation parameters.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// The simulated CPU.
    pub cpu: CpuConfig,
    /// Dispatcher configuration (dispatch interval, overhead model, ...).
    pub dispatcher: DispatcherConfig,
    /// Controller configuration (controller period, gains, squish policy).
    pub controller: ControllerConfig,
    /// Whether the adaptive controller runs at all.  With the controller
    /// disabled, reservations stay at whatever they were set to — the
    /// configuration used for the Figure 8 dispatch-overhead sweep.
    pub controller_enabled: bool,
    /// Whether the controller's modelled execution cost consumes simulated
    /// CPU time (it does on the real system, where the controller is a
    /// user-level process).
    pub charge_controller_cost: bool,
    /// Whether the dispatcher's modelled overhead consumes simulated CPU
    /// time.
    pub charge_dispatch_overhead: bool,
    /// Interval between trace samples, in seconds.
    pub trace_interval_s: f64,
    /// Modelled cost of one cross-CPU migration, in microseconds, charged
    /// to the migrating thread's budget (cache and TLB refill on the
    /// destination CPU).
    pub migration_cost_us: u64,
    /// How the simulation advances time (see [`SteppingMode`]).
    pub stepping: SteppingMode,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            cpu: CpuConfig::default(),
            dispatcher: DispatcherConfig::default(),
            controller: ControllerConfig::default(),
            controller_enabled: true,
            charge_controller_cost: true,
            charge_dispatch_overhead: true,
            trace_interval_s: 0.1,
            migration_cost_us: 50,
            stepping: SteppingMode::Calendar,
        }
    }
}

impl SimConfig {
    /// Returns a copy simulating a machine of `cpus` CPUs (clamped to at
    /// least one).  The default configuration is the paper's single CPU.
    pub fn with_cpus(mut self, cpus: usize) -> Self {
        self.controller = self.controller.with_cpus(cpus);
        self
    }

    /// Returns a copy using the given stepping mode.
    pub fn with_stepping(mut self, stepping: SteppingMode) -> Self {
        self.stepping = stepping;
        self
    }

    /// Number of simulated CPUs.
    pub fn cpus(&self) -> usize {
        self.controller.placement.cpu_count()
    }
}

/// Aggregate statistics for a simulation run.
///
/// The per-CPU entries are [`rrs_scheduler::CpuStats`]; under the
/// lockstep clock, `idle_us` is rebooked to actual elapsed time, like the
/// machine aggregate.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SimStats {
    /// Number of controller invocations.
    pub controller_invocations: u64,
    /// Total modelled controller execution cost, in microseconds.
    pub controller_cost_us: f64,
    /// Total modelled dispatcher overhead, in microseconds.
    pub dispatch_overhead_us: f64,
    /// Number of quality exceptions raised.
    pub quality_exceptions: u64,
    /// Number of control cycles in which allocations were squished.
    pub squish_events: u64,
    /// Number of real-time admission rejections observed.
    pub admission_rejections: u64,
    /// Number of cross-CPU migrations applied.
    pub migrations: u64,
    /// Number of simulation steps executed.  Under calendar stepping this
    /// counts *events handled* (controller cycles, trace samples, wake-ups,
    /// poll ticks); under lockstep it counts dispatch rounds, where idle
    /// fast-forward makes it drop on quiet workloads.
    pub steps: u64,
    /// Per-CPU breakdown (usage, idle, migrations), one entry per CPU.
    /// The machine-wide aggregates above are sums over these entries plus
    /// the controller's own counters, so consumers no longer recompute
    /// per-CPU views from job handles.
    pub per_cpu: Vec<CpuStats>,
}

struct SimThread {
    name: String,
    slot: JobSlot,
    work: Box<dyn WorkModel>,
    last_progress: f64,
}

/// A job's complete simulator-side state, in transit between two shards
/// of the sharded simulator.  Produced by [`Simulation::extract_job`],
/// consumed by [`Simulation::inject_job`].
pub(crate) struct MigratedSimJob {
    name: String,
    work: Box<dyn WorkModel>,
    last_progress: f64,
    mjob: rrs_core::MigratedJob,
    mthread: MigratedThread,
}

impl MigratedSimJob {
    /// The grant the source shard's controller last settled on, in ppt.
    pub(crate) fn granted_ppt(&self) -> u32 {
        self.mjob.granted().ppt()
    }
}

/// The discrete-event simulation.
///
/// # Examples
///
/// ```
/// use rrs_core::JobSpec;
/// use rrs_sim::{RunResult, SimConfig, Simulation, WorkModel};
///
/// struct Spin;
/// impl WorkModel for Spin {
///     fn run(&mut self, _now: u64, quantum_us: u64, _hz: f64) -> RunResult {
///         RunResult::ran(quantum_us)
///     }
/// }
///
/// let mut sim = Simulation::new(SimConfig::default());
/// sim.add_job("hog", JobSpec::miscellaneous(), Box::new(Spin)).unwrap();
/// sim.run_for(1.0);
/// assert!(sim.now_seconds() >= 1.0);
/// ```
pub struct Simulation {
    config: SimConfig,
    registry: MetricRegistry,
    machine: Machine,
    controller: Controller,
    /// Dense thread table indexed by `ThreadId.0` (ids are allocated
    /// monotonically from 1 and never reused), so the span hot loop reaches
    /// a dispatched thread's work model without a map lookup.  Entries are
    /// `None` for removed jobs and for index 0.
    threads: Vec<Option<SimThread>>,
    /// Slot-indexed map back to the dispatcher's thread id, so actuations
    /// apply without re-deriving `JobId ↔ ThreadId`.
    slot_threads: Vec<Option<ThreadId>>,
    /// The blocked-thread calendar: ids whose work model reported a block
    /// and has not yet been polled awake.  Keeping them indexed (in id
    /// order, matching the original full scan) makes the per-step poll
    /// `O(blocked)` instead of a scan-and-collect over every thread.
    blocked: BTreeSet<ThreadId>,
    /// Scratch for the ids polled this step (reused across steps).
    poll_buf: Vec<ThreadId>,
    /// Scratch for in-window wake entries `(wake_at_us, id, dense slot)`
    /// in [`Simulation::advance_cpus_to`] (reused across CPUs/windows so
    /// the window loop stays allocation-free once warmed).
    scratch_wakes: Vec<(u64, ThreadId, u32)>,
    /// Scratch for in-window poll entries `(id, dense slot)`, same reuse
    /// discipline as `scratch_wakes`.
    scratch_poll: Vec<(ThreadId, u32)>,
    /// Per-step dispatch outcomes, one per CPU (reused across steps).
    cpu_outcomes: Vec<DispatchOutcome>,
    /// Per-step CPU time actually consumed, aligned with `cpu_outcomes`
    /// (reused across steps).
    cpu_used: Vec<u64>,
    next_id: u64,
    /// Gap between consecutively allocated raw ids (1 standalone; the
    /// shard count under the sharded simulator, see
    /// [`Simulation::with_shard_identity`]).
    id_stride: u64,
    now_us: u64,
    next_controller_us: u64,
    next_trace_us: u64,
    /// End bound of the `run_until_micros` call in progress, clamping how
    /// far an idle fast-forward may jump past the requested horizon.
    run_end_us: Option<u64>,
    last_dispatch_overhead_us: f64,
    /// The event calendar (calendar stepping only): controller cycles,
    /// trace samples, known wake-ups and poll ticks.
    calendar: Schedule,
    /// Pending `Event::Wake` entries indexed by `ThreadId.0` (dense, like
    /// `threads`), so removing a job cancels its wake-up.
    wake_events: Vec<Option<EventId>>,
    /// The single outstanding `Event::PollTick`, if any.
    poll_tick: Option<EventId>,
    /// When the controller last fired (calendar stepping), so `dt` is
    /// derived from exact integer microsecond deltas.
    last_controller_fire_us: u64,
    /// Per-CPU dispatcher overhead watermark (calendar stepping charges
    /// overhead per CPU rather than averaging over the machine).
    last_cpu_overhead: Vec<f64>,
    /// Per-CPU fractional overhead not yet consumed as simulated time.
    overhead_carry: Vec<f64>,
    trace: Trace,
    stats: SimStats,
    /// The structured trace recorder, when telemetry is enabled.  `None`
    /// (the default) keeps every hot path on a single branch.
    telemetry: Option<Arc<Recorder>>,
    /// Always-on calendar event counters, one per [`Event`] variant, in
    /// pop order: controller, trace, wake, poll-tick, horizon.
    event_counts: [u64; 5],
}

impl Simulation {
    /// Creates a simulation with the given configuration.
    ///
    /// Calendar stepping (the default) forces the two machine-level
    /// optimisations it is built on: the dispatcher's lazy period
    /// rollovers and the controller's incremental cycles.
    pub fn new(config: SimConfig) -> Self {
        Self::with_shard_identity(config, MetricRegistry::new(), 1, 1)
    }

    /// Creates a simulation that shares `registry` with its siblings and
    /// allocates raw job/thread ids `first_id, first_id + id_stride, ...`.
    ///
    /// This is the constructor the sharded simulator uses: with shard `k`
    /// of `S` passing `first_id = k + 1, id_stride = S`, ids stay globally
    /// unique across every shard, so a job migrating between shards keeps
    /// its `JobId`/`ThreadId`/registry key unchanged.  The plain
    /// [`Simulation::new`] is the `first_id = 1, id_stride = 1` special
    /// case.
    pub(crate) fn with_shard_identity(
        mut config: SimConfig,
        registry: MetricRegistry,
        first_id: u64,
        id_stride: u64,
    ) -> Self {
        if config.stepping == SteppingMode::Calendar {
            config.dispatcher.lazy_rollovers = true;
            config.controller.incremental = true;
        }
        let controller = Controller::new(config.controller, registry.clone());
        let machine = Machine::new(config.dispatcher, config.cpus());
        let controller_period_us = (config.controller.controller_period_s * 1e6).round() as u64;
        let next_controller_us = controller_period_us.max(1);
        let stats = SimStats {
            per_cpu: vec![CpuStats::default(); machine.cpu_count()],
            ..SimStats::default()
        };
        let mut calendar = Schedule::new();
        if config.stepping == SteppingMode::Calendar {
            // Seed the periodic events; each handler reschedules itself.
            calendar.schedule(SimTime::ZERO, Event::Trace);
            if config.controller_enabled {
                calendar.schedule(SimTime::from_micros(next_controller_us), Event::Controller);
            }
        }
        let cpus = machine.cpu_count();
        Self {
            config,
            registry,
            machine,
            controller,
            threads: Vec::new(),
            slot_threads: Vec::new(),
            blocked: BTreeSet::new(),
            poll_buf: Vec::new(),
            scratch_wakes: Vec::new(),
            scratch_poll: Vec::new(),
            cpu_outcomes: Vec::new(),
            cpu_used: Vec::new(),
            next_id: first_id.max(1),
            id_stride: id_stride.max(1),
            now_us: 0,
            next_controller_us,
            next_trace_us: 0,
            run_end_us: None,
            last_dispatch_overhead_us: 0.0,
            calendar,
            wake_events: Vec::new(),
            poll_tick: None,
            last_controller_fire_us: 0,
            last_cpu_overhead: vec![0.0; cpus],
            overhead_carry: vec![0.0; cpus],
            trace: Trace::new(),
            stats,
            telemetry: None,
            event_counts: [0; 5],
        }
    }

    /// The progress-metric registry; workloads register their queues here.
    pub fn registry(&self) -> MetricRegistry {
        self.registry.clone()
    }

    /// The simulation's current configuration (mid-run setters like
    /// [`Simulation::set_migration_cost_us`] are visible here).
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Current simulated time in microseconds.
    pub fn now_micros(&self) -> u64 {
        self.now_us
    }

    /// Current simulated time in seconds.
    pub fn now_seconds(&self) -> f64 {
        self.now_us as f64 / 1e6
    }

    /// The recorded trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Aggregate statistics, with the per-CPU breakdown filled in from the
    /// machine's dispatchers at read time.
    pub fn stats(&self) -> SimStats {
        let mut stats = self.stats.clone();
        for (i, cpu) in stats.per_cpu.iter_mut().enumerate() {
            let d = self.machine.dispatcher(CpuId(i as u32)).stats();
            cpu.idle_us = d.idle_us;
            cpu.deadlines_missed = d.deadlines_missed;
        }
        stats
    }

    /// Grows the machine to `cpus` CPUs mid-run (hot-add), returning the
    /// resulting CPU count.
    ///
    /// New CPUs join with empty run queues at the shared clock; the
    /// control pipeline's Place stage starts fitting jobs onto them (and
    /// the Allocate stage's machine-wide capacity widens) on its next
    /// cycle.  Shrinking is not supported — the machine layer has no
    /// hot-remove — so a `cpus` at or below the current count is a no-op.
    /// The count stays clamped to the Place stage's 4096-CPU bound.
    pub fn grow_cpus(&mut self, cpus: usize) -> usize {
        let n = self.machine.grow_to(cpus);
        self.controller.set_cpus(n);
        self.config.controller.placement.cpus = n;
        self.stats.per_cpu.resize(n, CpuStats::default());
        self.last_cpu_overhead.resize(n, 0.0);
        self.overhead_carry.resize(n, 0.0);
        n
    }

    /// Changes the trace sampling interval mid-run (clamped to at least
    /// one microsecond).  Takes effect after the next already-scheduled
    /// sample.
    pub fn set_trace_interval(&mut self, interval: SimTime) {
        self.config.trace_interval_s = interval.as_micros().max(1) as f64 / 1e6;
    }

    /// Changes the trace sampling interval mid-run, in seconds.  Thin
    /// wrapper over [`Simulation::set_trace_interval`], which is the
    /// preferred exact-microsecond form.
    pub fn set_trace_interval_s(&mut self, interval_s: f64) {
        self.set_trace_interval(SimTime::from_secs_f64(interval_s));
    }

    /// Changes the modelled cross-CPU migration cost mid-run.
    pub fn set_migration_cost_us(&mut self, cost_us: u64) {
        self.config.migration_cost_us = cost_us;
    }

    /// Read-only access to CPU 0's dispatcher — the whole machine on the
    /// default single-CPU configuration.  Multi-CPU queries should go
    /// through [`Simulation::machine`].
    pub fn dispatcher(&self) -> &Dispatcher {
        self.machine.dispatcher(CpuId::ZERO)
    }

    /// Read-only access to the multi-CPU machine.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// The CPU a job's thread is currently placed on.
    pub fn cpu_of(&self, handle: JobHandle) -> Option<CpuId> {
        self.machine.cpu_of(handle.thread)
    }

    /// Read-only access to the controller.
    pub fn controller(&self) -> &Controller {
        &self.controller
    }

    /// Enables structured trace recording and controller stage timing,
    /// returning the shared recorder.
    ///
    /// The ring buffer is allocated up front ([`TelemetryConfig::ring_capacity`]
    /// events); once warm, recording overwrites the oldest entry and never
    /// allocates.  Calling this again replaces the recorder (and its ring).
    pub fn enable_telemetry(&mut self, config: TelemetryConfig) -> Arc<Recorder> {
        let recorder = Recorder::new(config);
        self.machine.set_telemetry(Some(recorder.clone()));
        self.controller.set_stage_timing(recorder.stage_timing());
        self.telemetry = Some(recorder.clone());
        recorder
    }

    /// The trace recorder installed by [`Simulation::enable_telemetry`],
    /// if any.
    pub fn telemetry_recorder(&self) -> Option<Arc<Recorder>> {
        self.telemetry.clone()
    }

    /// Attaches an *existing* recorder instead of creating one — the
    /// sharded simulator shares one ring across every shard.
    pub(crate) fn attach_telemetry(&mut self, recorder: Arc<Recorder>) {
        self.machine.set_telemetry(Some(recorder.clone()));
        self.controller.set_stage_timing(recorder.stage_timing());
        self.telemetry = Some(recorder);
    }

    /// A point-in-time snapshot of every subsystem counter: quantum-cache
    /// hits/misses, settles by reason, calendar events by type, controller
    /// cycle split and stage timing, and machine-level dispatch totals.
    ///
    /// The counters behind this are always on (plain integer increments on
    /// paths that already write statistics); only the `trace_events_*`
    /// fields require an enabled recorder.
    pub fn telemetry_snapshot(&self) -> TelemetrySnapshot {
        let fast = self.machine.fast_path_stats();
        let dispatch = self.machine.stats();
        let (full, incremental) = self.controller.cycle_counts();
        let stage = self.controller.stage_total_ns();
        let snapshot = TelemetrySnapshot {
            quantum_cache_hits: fast.quantum_cache_hits,
            quantum_cache_misses: fast.quantum_cache_misses,
            settles_goodness: fast.settles_goodness,
            settles_period_boundary: fast.settles_period_boundary,
            settles_throttle_edge: fast.settles_throttle_edge,
            settles_zero_span: fast.settles_zero_span,
            events_controller: self.event_counts[0],
            events_trace: self.event_counts[1],
            events_wake: self.event_counts[2],
            events_poll_tick: self.event_counts[3],
            events_horizon: self.event_counts[4],
            controller_full_cycles: full,
            controller_incremental_cycles: incremental,
            stage_sense_ns: stage[0],
            stage_classify_ns: stage[1],
            stage_estimate_ns: stage[2],
            stage_allocate_ns: stage[3],
            stage_place_ns: stage[4],
            stage_actuate_ns: stage[5],
            dispatches: dispatch.dispatches,
            context_switches: dispatch.context_switches,
            period_rollovers: dispatch.period_rollovers,
            migrations: self.stats.migrations,
            trace_events_recorded: self.telemetry.as_ref().map(|r| r.recorded()).unwrap_or(0),
            trace_events_dropped: self.telemetry.as_ref().map(|r| r.dropped()).unwrap_or(0),
            ..TelemetrySnapshot::default()
        };
        snapshot.finalize()
    }

    fn thread_mut(&mut self, tid: ThreadId) -> Option<&mut SimThread> {
        self.threads
            .get_mut(tid.0 as usize)
            .and_then(Option::as_mut)
    }

    fn set_wake_event(&mut self, tid: ThreadId, id: EventId) {
        let i = tid.0 as usize;
        if self.wake_events.len() <= i {
            self.wake_events.resize(i + 1, None);
        }
        self.wake_events[i] = Some(id);
    }

    fn take_wake_event(&mut self, tid: ThreadId) -> Option<EventId> {
        self.wake_events
            .get_mut(tid.0 as usize)
            .and_then(Option::take)
    }

    /// Adds a job.
    ///
    /// The job is registered with the controller (real-time jobs go through
    /// admission control) and with the dispatcher, starting from either its
    /// requested reservation or the minimum allocation.  The importance
    /// weight is read from the spec ([`JobSpec::with_importance`]).
    pub fn add_job(
        &mut self,
        name: &str,
        spec: JobSpec,
        work: Box<dyn WorkModel>,
    ) -> Result<JobHandle, AdmitError> {
        let raw = self.next_id;
        let job = JobId(raw);
        let thread = ThreadId(raw);

        let slot = match self.controller.add_job(job, spec) {
            Ok(slot) => slot,
            Err(e) => {
                if matches!(e, AdmitError::Rejected { .. }) {
                    self.stats.admission_rejections += 1;
                }
                return Err(e);
            }
        };
        self.next_id += self.id_stride;
        if self.slot_threads.len() <= slot.index() {
            self.slot_threads.resize(slot.index() + 1, None);
        }
        self.slot_threads[slot.index()] = Some(thread);

        let initial = Reservation::new(
            spec.proportion
                .unwrap_or(self.config.controller.min_proportion),
            spec.period.unwrap_or(self.config.controller.default_period),
        );
        // The controller already ruled on admission and chose the CPU
        // (least-loaded fit) above.
        let cpu = self
            .controller
            .cpu_of_slot(slot)
            .expect("slot was just created");
        self.machine
            .add_thread_preadmitted_on(cpu, thread, initial)
            .expect("fresh thread id cannot clash");

        let i = thread.0 as usize;
        if self.threads.len() <= i {
            self.threads.resize_with(i + 1, || None);
        }
        self.threads[i] = Some(SimThread {
            name: name.to_string(),
            slot,
            work,
            last_progress: 0.0,
        });
        Ok(JobHandle { job, thread, slot })
    }

    /// Removes a job from the simulation.
    pub fn remove_job(&mut self, handle: JobHandle) {
        if let Some(entry) = self.threads.get_mut(handle.thread.0 as usize) {
            *entry = None;
        }
        self.blocked.remove(&handle.thread);
        if let Some(id) = self.take_wake_event(handle.thread) {
            self.calendar.cancel(id);
        }
        let _ = self.machine.remove_thread(handle.thread);
        if self.controller.remove_slot(handle.slot) {
            if let Some(entry) = self.slot_threads.get_mut(handle.slot.index()) {
                *entry = None;
            }
        }
    }

    /// Detaches a job's complete simulator-side state — work model,
    /// controller entry, dispatcher thread, block/wake status — for
    /// re-injection into a sibling shard.  The job's queue-metric
    /// attachments stay registered (the registry is shared between
    /// shards).  Returns `None` if the job is unknown.
    pub(crate) fn extract_job(&mut self, job: JobId) -> Option<MigratedSimJob> {
        let slot = self.controller.slot_of(job)?;
        let tid = ThreadId(job.0);
        let sim_thread = self.threads.get_mut(tid.0 as usize)?.take()?;
        // From here on every layer must agree the job exists: the thread
        // table entry is already out.
        let mjob = self
            .controller
            .extract_job(job)
            .expect("slot resolved above");
        let mthread = self
            .machine
            .extract_thread(tid)
            .expect("thread registered with the machine");
        self.blocked.remove(&tid);
        if let Some(id) = self.take_wake_event(tid) {
            self.calendar.cancel(id);
        }
        if let Some(s) = self.slot_threads.get_mut(slot.index()) {
            *s = None;
        }
        Some(MigratedSimJob {
            name: sim_thread.name,
            work: sim_thread.work,
            last_progress: sim_thread.last_progress,
            mjob,
            mthread,
        })
    }

    /// Installs a job previously detached with
    /// [`Simulation::extract_job`] (from a sibling shard) on an explicit
    /// CPU of this simulation's machine.  A blocked thread's wake-up is
    /// re-derived from its work model (the model is the authority; the
    /// source shard's calendar entry was cancelled at extraction).
    pub(crate) fn inject_job(
        &mut self,
        migrated: MigratedSimJob,
        cpu: CpuId,
    ) -> Result<JobHandle, AdmitError> {
        let MigratedSimJob {
            name,
            work,
            last_progress,
            mjob,
            mthread,
        } = migrated;
        let job = mjob.job();
        let tid = ThreadId(job.0);
        let was_blocked = mthread.state() == ThreadState::Blocked;
        let slot = self.controller.inject_job(mjob, cpu)?;
        self.machine
            .inject_thread_on(cpu, mthread)
            .expect("controller accepted the id, so the machine must too");
        if self.slot_threads.len() <= slot.index() {
            self.slot_threads.resize(slot.index() + 1, None);
        }
        self.slot_threads[slot.index()] = Some(tid);
        if was_blocked {
            let mut scheduled = false;
            if self.config.stepping == SteppingMode::Calendar {
                if let Some(w) = work.next_transition(SimTime::from_micros(self.now_us)) {
                    let at = w.as_micros().max(self.now_us + 1);
                    let id = self
                        .calendar
                        .schedule(SimTime::from_micros(at), Event::Wake(tid));
                    self.set_wake_event(tid, id);
                    scheduled = true;
                }
            }
            if !scheduled {
                self.blocked.insert(tid);
                if self.config.stepping == SteppingMode::Calendar {
                    self.ensure_poll_tick(self.now_us);
                }
            }
        }
        let i = tid.0 as usize;
        if self.threads.len() <= i {
            self.threads.resize_with(i + 1, || None);
        }
        self.threads[i] = Some(SimThread {
            name,
            slot,
            work,
            last_progress,
        });
        Ok(JobHandle {
            job,
            thread: tid,
            slot,
        })
    }

    /// Rebuilds a job's handle from its id, if the job is live here.
    pub(crate) fn handle_of(&self, job: JobId) -> Option<JobHandle> {
        let slot = self.controller.slot_of(job)?;
        Some(JobHandle {
            job,
            thread: ThreadId(job.0),
            slot,
        })
    }

    /// The proportion currently reserved for a job, in parts per thousand.
    pub fn current_allocation_ppt(&self, handle: JobHandle) -> u32 {
        self.machine
            .reservation(handle.thread)
            .map(|r| r.proportion.ppt())
            .unwrap_or(0)
    }

    /// Total CPU time a job has consumed so far, in microseconds.
    pub fn cpu_used_us(&self, handle: JobHandle) -> u64 {
        self.machine
            .usage(handle.thread)
            .map(|u| u.total_used_us)
            .unwrap_or(0)
    }

    /// Runs the simulation for `duration_s` simulated seconds.
    pub fn run_for(&mut self, duration_s: f64) {
        let end = self.now_us + (duration_s * 1e6).round() as u64;
        self.run_until_micros(end);
    }

    /// Runs the simulation until the given absolute simulated time.
    pub fn run_until_micros(&mut self, end_us: u64) {
        match self.config.stepping {
            SteppingMode::Calendar => self.run_calendar_until(end_us),
            SteppingMode::Lockstep => {
                self.run_end_us = Some(end_us);
                while self.now_us < end_us {
                    self.step_lockstep();
                }
                self.run_end_us = None;
            }
        }
    }

    /// Executes one scheduling step.
    ///
    /// Under calendar stepping this advances every CPU to the next
    /// scheduled event and handles everything due there; under lockstep it
    /// runs one dispatch round over every CPU and one quantum of work per
    /// busy CPU.
    pub fn step(&mut self) {
        match self.config.stepping {
            SteppingMode::Calendar => self.step_calendar(),
            SteppingMode::Lockstep => self.step_lockstep(),
        }
    }

    /// One calendar step: jump to the next event, advancing every CPU's
    /// usage analytically across the gap, then handle all events due.
    ///
    /// Unlike [`Simulation::run_until_micros`] this does not settle the
    /// dispatchers' lazy period-boundary backlog afterwards: total used
    /// time stays exact (charges are immediate), but per-period ratios and
    /// deadline statistics are only guaranteed current after a `run_*`
    /// call's final sync.
    fn step_calendar(&mut self) {
        let target = match self.calendar.next_time() {
            Some(t) => t.as_micros().max(self.now_us),
            // Nothing scheduled (controller and trace both produce events,
            // so this is defensive): burn one dispatch quantum.
            None => self.now_us + self.config.dispatcher.dispatch_interval_us.max(1),
        };
        if target > self.now_us {
            self.advance_cpus_to(target);
            self.now_us = target;
        }
        while let Some(t) = self.calendar.next_time() {
            if t.as_micros() > self.now_us {
                break;
            }
            let (_, event) = self.calendar.pop().expect("peeked above");
            self.stats.steps += 1;
            self.handle_event(event);
        }
    }

    /// The calendar main loop: pop the earliest event, advance every CPU
    /// analytically to it, handle it, repeat until the horizon.
    fn run_calendar_until(&mut self, end_us: u64) {
        if self.now_us >= end_us {
            return;
        }
        // A sentinel pins the horizon so the gap up to `end_us` is always
        // bounded by a calendar entry; events scheduled exactly on the
        // horizon stay pending and fire when the simulation resumes.
        let horizon = self
            .calendar
            .schedule(SimTime::from_micros(end_us), Event::Horizon);
        while let Some(next) = self.calendar.next_time() {
            let t_next = next.as_micros();
            if t_next > self.now_us {
                let target = t_next.min(end_us);
                self.advance_cpus_to(target);
                self.now_us = target;
            }
            if self.now_us >= end_us {
                break;
            }
            let Some((_, event)) = self.calendar.pop() else {
                break;
            };
            self.stats.steps += 1;
            self.handle_event(event);
        }
        self.calendar.cancel(horizon);
        self.machine.sync_all();
    }

    /// Handles one popped calendar event at the current clock.
    fn handle_event(&mut self, event: Event) {
        let kind = match event {
            Event::Controller => CalendarEventKind::Controller,
            Event::Trace => CalendarEventKind::Trace,
            Event::Wake(_) => CalendarEventKind::Wake,
            Event::PollTick => CalendarEventKind::PollTick,
            Event::Horizon => CalendarEventKind::Horizon,
        };
        self.event_counts[kind as usize] += 1;
        if let Some(recorder) = &self.telemetry {
            recorder.record(self.now_us, TraceEventKind::CalendarEvent { kind });
        }
        match event {
            Event::Controller => self.run_controller_calendar(),
            Event::Trace => {
                self.record_trace();
                let interval_us = (self.config.trace_interval_s * 1e6).round().max(1.0) as u64;
                while self.next_trace_us <= self.now_us {
                    self.next_trace_us += interval_us;
                }
                self.calendar
                    .schedule(SimTime::from_micros(self.next_trace_us), Event::Trace);
            }
            Event::Wake(tid) => {
                self.take_wake_event(tid);
                let now_us = self.now_us;
                let Some(entry) = self.thread_mut(tid) else {
                    return;
                };
                // The wake time came from the model's own `next_transition`,
                // but the model stays the authority: confirm via the poll
                // hook, and fall back to polling if it disagrees.
                if entry.work.poll_unblock(now_us) {
                    let _ = self.machine.unblock(tid);
                } else {
                    self.blocked.insert(tid);
                    self.ensure_poll_tick(now_us);
                }
            }
            Event::PollTick => {
                self.poll_tick = None;
                self.poll_blocked();
                if !self.blocked.is_empty() {
                    self.ensure_poll_tick(self.now_us);
                }
            }
            Event::Horizon => {}
        }
    }

    /// Schedules the next machine-wide poll of blocked threads one
    /// dispatch interval after `now_us`, unless one is already pending.
    fn ensure_poll_tick(&mut self, now_us: u64) {
        if self.poll_tick.is_none() {
            let interval = self.config.dispatcher.dispatch_interval_us.max(1);
            let id = self
                .calendar
                .schedule(SimTime::from_micros(now_us + interval), Event::PollTick);
            self.poll_tick = Some(id);
        }
    }

    /// Advances every CPU analytically from the current clock to
    /// `target_us`: each CPU repeatedly dispatches, runs the chosen work
    /// model for the span its assignment stays valid, and charges the
    /// result; an idle CPU jumps straight to its next local event.
    ///
    /// Threads that block mid-window are handled locally (their own CPU is
    /// the only one a block or wake can affect — migrations only happen at
    /// controller events, which bound the window): a known wake time
    /// inside the window joins a local wake list, an unknown one joins a
    /// local poll list sampled at the dispatch-interval cadence.  Whatever
    /// is still pending at the window's end moves into the global calendar.
    fn advance_cpus_to(&mut self, target_us: u64) {
        let start = self.now_us;
        if target_us <= start {
            return;
        }
        let cpu_hz = self.config.cpu.clock_hz;
        let interval = self.config.dispatcher.dispatch_interval_us.max(1);
        let charge_overhead = self.config.charge_dispatch_overhead;
        for cpu in 0..self.machine.cpu_count() {
            let cpu_id = CpuId(cpu as u32);
            let mut t = start;
            // In-window wake/poll entries carry the dispatcher's dense slot
            // (returned by `block_span`), so waking is slot-addressed: no
            // placement or id → slot map on the hot path.  Slots are stable
            // within a window — migrations and removals only happen at
            // controller events, which bound it.
            let mut local_wakes = std::mem::take(&mut self.scratch_wakes);
            let mut local_poll = std::mem::take(&mut self.scratch_poll);
            let mut next_poll = u64::MAX;
            loop {
                // Fire local wake-ups that have come due.
                let mut i = 0;
                while i < local_wakes.len() {
                    let (at, tid, dslot) = local_wakes[i];
                    if at > t {
                        i += 1;
                        continue;
                    }
                    local_wakes.swap_remove(i);
                    let entry = self.thread_mut(tid).expect("blocked thread exists");
                    if entry.work.poll_unblock(t) {
                        self.machine.dispatcher_mut(cpu_id).unblock_slot(dslot, tid);
                    } else {
                        local_poll.push((tid, dslot));
                        next_poll = next_poll.min(t + interval);
                    }
                }
                // Poll locally blocked threads at the dispatch cadence.
                if t >= next_poll && !local_poll.is_empty() {
                    let mut j = 0;
                    while j < local_poll.len() {
                        let (tid, dslot) = local_poll[j];
                        let entry = self.thread_mut(tid).expect("blocked thread exists");
                        if entry.work.poll_unblock(t) {
                            local_poll.swap_remove(j);
                            self.machine.dispatcher_mut(cpu_id).unblock_slot(dslot, tid);
                        } else {
                            j += 1;
                        }
                    }
                    next_poll = if local_poll.is_empty() {
                        u64::MAX
                    } else {
                        t + interval
                    };
                }

                // Settle throttle-release timers up to the local clock.
                self.machine.dispatcher_mut(cpu_id).advance_to(t);
                if t >= target_us {
                    break;
                }

                if !self.machine.dispatcher(cpu_id).has_runnable() {
                    // Idle: jump straight to the next local event.
                    let mut jump = target_us;
                    if let Some(e) = self.machine.dispatcher(cpu_id).next_timer_expiry() {
                        jump = jump.min(e);
                    }
                    for &(at, _, _) in &local_wakes {
                        jump = jump.min(at);
                    }
                    jump = jump.min(next_poll).clamp(t + 1, target_us);
                    self.machine.rebook_idle_us(cpu_id, 0, jump - t);
                    t = jump;
                    continue;
                }

                let outcome = self.machine.dispatch(cpu_id);
                // Book this CPU's dispatch overhead, consuming whole
                // microseconds of the window; the fractional remainder
                // carries over.
                let total = self.machine.dispatcher(cpu_id).stats().overhead_us;
                let delta = total - self.last_cpu_overhead[cpu];
                self.last_cpu_overhead[cpu] = total;
                self.stats.dispatch_overhead_us += delta;
                if charge_overhead && delta > 0.0 {
                    self.overhead_carry[cpu] += delta;
                    let charge = (self.overhead_carry[cpu].floor() as u64).min(target_us - t);
                    if charge > 0 {
                        self.overhead_carry[cpu] -= charge as f64;
                        t += charge;
                        if t >= target_us {
                            // The pick stands unexecuted; the next window
                            // re-dispatches.
                            continue;
                        }
                    }
                }
                let Some(tid) = outcome.thread else {
                    // Defensive: an idle dispatch despite `has_runnable`.
                    let jump = (t + outcome.quantum_us.max(1)).min(target_us);
                    self.machine
                        .rebook_idle_us(cpu_id, outcome.quantum_us, jump - t);
                    t = jump;
                    continue;
                };

                let span = outcome.quantum_us.min(target_us - t).max(1);
                let (used, blocked, wake) = {
                    let entry = self
                        .threads
                        .get_mut(tid.0 as usize)
                        .and_then(Option::as_mut)
                        .expect("dispatched thread exists");
                    let result = entry.work.run(t, span, cpu_hz);
                    let used = result.used_us.min(span);
                    let wake = if result.blocked {
                        entry.work.next_transition(SimTime::from_micros(t + used))
                    } else {
                        None
                    };
                    (used, result.blocked, wake)
                };
                // Slot-addressed batched charge on the span's own CPU: no
                // placement lookup, no id → slot map, and consecutive
                // uncontended spans settle in one account update.
                self.machine.dispatcher_mut(cpu_id).charge_span(used);
                self.stats.per_cpu[cpu].used_us += used;
                if let Some(recorder) = &self.telemetry {
                    recorder.record(
                        t,
                        TraceEventKind::DispatchSpan {
                            cpu: cpu as u32,
                            thread: tid.0,
                            len_us: used,
                        },
                    );
                }
                t += used;
                if blocked {
                    let dslot = self.machine.dispatcher_mut(cpu_id).block_span();
                    match wake {
                        Some(w) => {
                            let at = w.as_micros().max(t + 1);
                            if at < target_us {
                                local_wakes.push((at, tid, dslot));
                            } else {
                                let id = self
                                    .calendar
                                    .schedule(SimTime::from_micros(at), Event::Wake(tid));
                                self.set_wake_event(tid, id);
                            }
                        }
                        None => {
                            local_poll.push((tid, dslot));
                            next_poll = next_poll.min(t + interval);
                        }
                    }
                } else if used == 0 {
                    // Progress guard: a runnable model that consumed
                    // nothing still moves the local clock one microsecond.
                    self.machine.rebook_idle_us(cpu_id, 0, 1);
                    t += 1;
                }
            }
            // Window over: whatever is still blocked goes global (the
            // global paths wake by id — a controller event in between may
            // migrate the thread and invalidate its slot).
            for (at, tid, _) in local_wakes.drain(..) {
                let id = self
                    .calendar
                    .schedule(SimTime::from_micros(at.max(target_us)), Event::Wake(tid));
                self.set_wake_event(tid, id);
            }
            let had_poll = !local_poll.is_empty();
            for (tid, _) in local_poll.drain(..) {
                self.blocked.insert(tid);
            }
            if had_poll {
                self.ensure_poll_tick(target_us);
            }
            self.scratch_wakes = local_wakes;
            self.scratch_poll = local_poll;
        }
    }

    /// One controller cycle on the calendar path: drain only the usage
    /// deltas the machine observed since the last cycle, run the cycle
    /// with `dt` derived from exact event-time deltas, apply the output,
    /// and reschedule.
    fn run_controller_calendar(&mut self) {
        {
            let threads = &self.threads;
            let controller = &mut self.controller;
            self.machine.drain_usage_changes(|tid, ratio| {
                if let Some(thread) = threads.get(tid.0 as usize).and_then(Option::as_ref) {
                    controller.record_usage(thread.slot, UsageSnapshot { usage_ratio: ratio });
                }
            });
        }
        let dt_us = (self.now_us - self.last_controller_fire_us).max(1);
        self.last_controller_fire_us = self.now_us;
        let now_s = self.now_seconds();
        let cycle_ts = self.now_us;
        let full_before = self.controller.cycle_counts().0;
        // allow(determinism): wall-clock duration of the controller cycle
        // for the telemetry recorder only; never read back by the sim, so
        // event order and SimStats are identical with and without it.
        // Allowlisted in analysis.toml.
        let timer = self.telemetry.as_ref().map(|_| std::time::Instant::now());
        let out = self
            .controller
            .control_cycle_with_dt(now_s, dt_us as f64 * 1e-6);
        self.stats.controller_invocations += 1;
        self.stats.controller_cost_us += out.cost_us;
        for event in &out.events {
            match event {
                ControllerEvent::Quality(_) => self.stats.quality_exceptions += 1,
                ControllerEvent::Squished { .. } => self.stats.squish_events += 1,
                _ => {}
            }
        }
        let migration_cost = self.config.migration_cost_us;
        for actuation in &out.actuations {
            if let Some(Some(tid)) = self.slot_threads.get(actuation.slot.index()) {
                let _ = self.machine.set_reservation(*tid, actuation.reservation);
                let from = self.machine.cpu_of(*tid);
                if from != Some(actuation.cpu) && self.machine.migrate(*tid, actuation.cpu).is_ok()
                {
                    self.stats.migrations += 1;
                    if let Some(from) = from {
                        self.stats.per_cpu[from.index()].migrations_out += 1;
                    }
                    self.stats.per_cpu[actuation.cpu.index()].migrations_in += 1;
                    if migration_cost > 0 {
                        let _ = self.machine.charge(*tid, migration_cost);
                    }
                }
            }
        }
        if self.config.charge_controller_cost {
            self.now_us += out.cost_us.round() as u64;
        }
        if let (Some(recorder), Some(started)) = (&self.telemetry, timer) {
            let incremental = self.controller.cycle_counts().0 == full_before;
            let mut stage_ns = [0u32; 6];
            if !incremental {
                for (dst, src) in stage_ns.iter_mut().zip(self.controller.last_stage_ns()) {
                    *dst = src.min(u32::MAX as u64) as u32;
                }
            }
            recorder.record(
                cycle_ts,
                TraceEventKind::ControllerCycle {
                    dur_ns: started.elapsed().as_nanos() as u64,
                    incremental,
                    jobs: self.controller.job_count() as u32,
                    stage_ns,
                },
            );
        }
        let period_us = (self.config.controller.controller_period_s * 1e6)
            .round()
            .max(1.0) as u64;
        while self.next_controller_us <= self.now_us {
            self.next_controller_us += period_us;
        }
        self.calendar.schedule(
            SimTime::from_micros(self.next_controller_us),
            Event::Controller,
        );
    }

    /// One lockstep step: controller if due, one lockstep dispatch round
    /// over every CPU, one quantum of work per busy CPU.
    fn step_lockstep(&mut self) {
        self.stats.steps += 1;

        // Controller invocation.
        if self.config.controller_enabled && self.now_us >= self.next_controller_us {
            self.run_controller();
            let period_us = (self.config.controller.controller_period_s * 1e6)
                .round()
                .max(1.0) as u64;
            while self.next_controller_us <= self.now_us {
                self.next_controller_us += period_us;
            }
        }

        // Trace sampling.
        if self.now_us >= self.next_trace_us {
            self.record_trace();
            let interval_us = (self.config.trace_interval_s * 1e6).round().max(1.0) as u64;
            while self.next_trace_us <= self.now_us {
                self.next_trace_us += interval_us;
            }
        }

        self.machine.advance_to(self.now_us);
        self.poll_blocked();

        // Dispatch every CPU; the machine runs in lockstep for the
        // shortest quantum any CPU granted.
        self.cpu_outcomes.clear();
        let mut any_thread = false;
        let mut min_quantum = u64::MAX;
        for cpu in 0..self.machine.cpu_count() {
            let outcome = self.machine.dispatch(CpuId(cpu as u32));
            any_thread |= outcome.thread.is_some();
            min_quantum = min_quantum.min(outcome.quantum_us);
            self.cpu_outcomes.push(outcome);
        }
        self.charge_dispatch_overhead();

        if !any_thread {
            self.advance_idle(min_quantum.max(1));
            return;
        }

        let dt = min_quantum.max(1);
        let cpu_hz = self.config.cpu.clock_hz;
        let now = self.now_us;
        // The clock advances by the longest time any CPU was actually busy
        // this round; a CPU whose thread yielded early idles out the rest.
        let mut max_used = 0;
        self.cpu_used.clear();
        for i in 0..self.cpu_outcomes.len() {
            let Some(tid) = self.cpu_outcomes[i].thread else {
                self.cpu_used.push(0);
                continue;
            };
            let entry = self.thread_mut(tid).expect("dispatched thread exists");
            let result = entry.work.run(now, dt, cpu_hz);
            let used = result.used_us.min(dt);
            self.machine
                .charge(tid, used)
                .expect("dispatched thread exists");
            if result.blocked {
                self.machine.block(tid).expect("thread exists");
                self.blocked.insert(tid);
            }
            self.cpu_used.push(used);
            self.stats.per_cpu[i].used_us += used;
            max_used = max_used.max(used);
        }
        let advance = max_used.max(1);
        self.rebook_idle_cpus(advance);
        self.now_us += advance;
    }

    /// Moves the clock across a fully idle dispatch round.  With no
    /// blocked thread waiting to be polled the clock jumps straight to the
    /// next event — a period timer, the controller tick or the trace
    /// sampler — instead of accumulating one bounded idle quantum per
    /// step.
    fn advance_idle(&mut self, idle_quantum: u64) {
        let pollable_blocked = !self.blocked.is_empty();
        let advance = if pollable_blocked {
            idle_quantum
        } else {
            let mut target = u64::MAX;
            if let Some(t) = self.machine.next_timer_expiry() {
                target = target.min(t);
            }
            if self.config.controller_enabled {
                target = target.min(self.next_controller_us);
            }
            target = target.min(self.next_trace_us);
            if target == u64::MAX {
                target = self.now_us + idle_quantum;
            }
            // Never overshoot the caller's horizon: pre-refactor runs
            // ended within one dispatch quantum of the requested time.
            if let Some(end) = self.run_end_us {
                target = target.min(end);
            }
            target.max(self.now_us + 1) - self.now_us
        };
        self.rebook_idle_cpus(advance);
        self.now_us += advance;
    }

    /// An idle dispatch books its returned quantum as idle time, but the
    /// lockstep round may elapse a different span (another CPU's thread
    /// yielded early, or fast-forward jumped a quiet gap); re-book every
    /// idle CPU's statistic to what actually passed.  A CPU whose thread
    /// ran for less than the round booked nothing at dispatch time, so its
    /// unused remainder is added here.
    fn rebook_idle_cpus(&mut self, actual_us: u64) {
        for (i, outcome) in self.cpu_outcomes.iter().enumerate() {
            match outcome.thread {
                None => {
                    self.machine
                        .rebook_idle_us(CpuId(i as u32), outcome.quantum_us, actual_us);
                }
                Some(_) => {
                    let used = self.cpu_used.get(i).copied().unwrap_or(actual_us);
                    if actual_us > used {
                        self.machine
                            .rebook_idle_us(CpuId(i as u32), 0, actual_us - used);
                    }
                }
            }
        }
    }

    fn poll_blocked(&mut self) {
        let now = self.now_us;
        // Snapshot into the reusable scratch buffer (same id order as the
        // original full scan) so waking a thread can mutate the calendar.
        self.poll_buf.clear();
        self.poll_buf.extend(self.blocked.iter().copied());
        for i in 0..self.poll_buf.len() {
            let tid = self.poll_buf[i];
            let entry = self.thread_mut(tid).expect("exists");
            if entry.work.poll_unblock(now) {
                self.blocked.remove(&tid);
                let _ = self.machine.unblock(tid);
            }
        }
    }

    fn run_controller(&mut self) {
        // Feed the machine's accounting to the controller by slot, then
        // run the staged pipeline in place — no per-cycle allocation.
        // Dense iteration visits threads in id order, as the map did.
        for (raw, thread) in self.threads.iter().enumerate() {
            let Some(thread) = thread else { continue };
            let tid = ThreadId(raw as u64);
            if let Some(acct) = self.machine.usage_ref(tid) {
                self.controller.record_usage(
                    thread.slot,
                    UsageSnapshot {
                        usage_ratio: acct.last_period_usage_ratio(),
                    },
                );
            }
        }
        let now_s = self.now_seconds();
        let out = self.controller.control_cycle_in_place(now_s);
        self.stats.controller_invocations += 1;
        self.stats.controller_cost_us += out.cost_us;
        for event in &out.events {
            match event {
                ControllerEvent::Quality(_) => self.stats.quality_exceptions += 1,
                ControllerEvent::Squished { .. } => self.stats.squish_events += 1,
                _ => {}
            }
        }
        let migration_cost = self.config.migration_cost_us;
        for actuation in &out.actuations {
            if let Some(Some(tid)) = self.slot_threads.get(actuation.slot.index()) {
                let _ = self.machine.set_reservation(*tid, actuation.reservation);
                // Apply the Place stage's decision: move the thread to its
                // assigned CPU and charge the modelled migration cost to
                // its budget (cache and TLB refill on the new CPU).
                let from = self.machine.cpu_of(*tid);
                if from != Some(actuation.cpu) && self.machine.migrate(*tid, actuation.cpu).is_ok()
                {
                    self.stats.migrations += 1;
                    if let Some(from) = from {
                        self.stats.per_cpu[from.index()].migrations_out += 1;
                    }
                    self.stats.per_cpu[actuation.cpu.index()].migrations_in += 1;
                    if migration_cost > 0 {
                        let _ = self.machine.charge(*tid, migration_cost);
                    }
                }
            }
        }
        if self.config.charge_controller_cost {
            self.now_us += out.cost_us.round() as u64;
        }
    }

    fn charge_dispatch_overhead(&mut self) {
        let total = self.machine.stats().overhead_us;
        let delta = total - self.last_dispatch_overhead_us;
        self.last_dispatch_overhead_us = total;
        self.stats.dispatch_overhead_us += delta;
        if self.config.charge_dispatch_overhead && delta > 0.0 {
            // CPUs pay their dispatch overhead in parallel: the shared
            // clock advances by the per-CPU average, which on one CPU is
            // exactly the original charge.
            let wall = delta / self.machine.cpu_count() as f64;
            self.now_us += wall.round() as u64;
        }
    }

    fn record_trace(&mut self) {
        let t = self.now_seconds();
        let interval = self.config.trace_interval_s.max(1e-9);
        for (raw, thread) in self.threads.iter_mut().enumerate() {
            let Some(thread) = thread else { continue };
            let tid = ThreadId(raw as u64);
            if let Some(r) = self.machine.reservation(tid) {
                self.trace.record(
                    &format!("alloc/{}", thread.name),
                    t,
                    r.proportion.ppt() as f64,
                );
                self.trace.record(
                    &format!("period/{}", thread.name),
                    t,
                    r.period.as_secs_f64() * 1e3,
                );
            }
            if let Some(progress) = thread.work.progress_counter() {
                let rate = (progress - thread.last_progress) / interval;
                thread.last_progress = progress;
                self.trace.record(&format!("rate/{}", thread.name), t, rate);
            }
        }
        // Queue fill levels (deduplicated by metric name).
        let mut seen = BTreeSet::new();
        for attachment in self.registry.all_attachments() {
            let name = attachment.metric.name().to_string();
            if seen.insert(name.clone()) {
                self.trace
                    .record(&format!("fill/{name}"), t, attachment.sample().fraction());
            }
        }
    }

    /// Forces a reservation directly on the dispatcher, bypassing the
    /// controller.  Used by experiments that pin a thread's allocation (for
    /// example the Figure 8 sweep, which runs without the controller).
    pub fn force_reservation(&mut self, handle: JobHandle, proportion: Proportion, period: Period) {
        let _ = self
            .machine
            .set_reservation(handle.thread, Reservation::new(proportion, period));
    }
}

impl std::fmt::Debug for Simulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("now_us", &self.now_us)
            .field("threads", &self.threads.iter().flatten().count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::RunResult;
    use proptest::prelude::*;
    use rrs_queue::{JobKey, Role};
    use std::sync::Arc;

    /// Uses every cycle it is offered and never blocks.
    struct Spin {
        total_us: u64,
    }

    impl Spin {
        fn new() -> Self {
            Self { total_us: 0 }
        }
    }

    impl WorkModel for Spin {
        fn run(&mut self, _now: u64, quantum_us: u64, _hz: f64) -> RunResult {
            self.total_us += quantum_us;
            RunResult::ran(quantum_us)
        }

        fn progress_counter(&self) -> Option<f64> {
            Some(self.total_us as f64)
        }
    }

    /// Consumes no CPU: blocks immediately and wakes on every poll, like the
    /// dummy processes of the Figure 5 overhead experiment.
    struct Dummy;

    impl WorkModel for Dummy {
        fn run(&mut self, _now: u64, _quantum_us: u64, _hz: f64) -> RunResult {
            RunResult::blocked_after(0)
        }

        fn poll_unblock(&mut self, _now_us: u64) -> bool {
            false
        }
    }

    #[test]
    fn misc_job_alone_gets_most_of_the_cpu() {
        let mut sim = Simulation::new(SimConfig::default());
        let h = sim
            .add_job("hog", JobSpec::miscellaneous(), Box::new(Spin::new()))
            .unwrap();
        sim.run_for(5.0);
        let alloc = sim.current_allocation_ppt(h);
        assert!(alloc > 500, "allocation grew to {alloc}");
        let used_fraction = sim.cpu_used_us(h) as f64 / sim.now_micros() as f64;
        assert!(used_fraction > 0.4, "hog used {used_fraction} of the CPU");
    }

    #[test]
    fn two_equal_misc_jobs_share_the_cpu() {
        let mut sim = Simulation::new(SimConfig::default());
        let a = sim
            .add_job("a", JobSpec::miscellaneous(), Box::new(Spin::new()))
            .unwrap();
        let b = sim
            .add_job("b", JobSpec::miscellaneous(), Box::new(Spin::new()))
            .unwrap();
        sim.run_for(10.0);
        let ua = sim.cpu_used_us(a) as f64;
        let ub = sim.cpu_used_us(b) as f64;
        let ratio = ua / ub;
        assert!(
            (0.7..1.4).contains(&ratio),
            "equal jobs should share roughly equally (ratio {ratio})"
        );
    }

    #[test]
    fn real_time_job_receives_its_reservation_despite_a_hog() {
        let mut sim = Simulation::new(SimConfig::default());
        let rt = sim
            .add_job(
                "rt",
                JobSpec::real_time(Proportion::from_ppt(300), Period::from_millis(10)),
                Box::new(Spin::new()),
            )
            .unwrap();
        let _hog = sim
            .add_job("hog", JobSpec::miscellaneous(), Box::new(Spin::new()))
            .unwrap();
        sim.run_for(5.0);
        let fraction = sim.cpu_used_us(rt) as f64 / sim.now_micros() as f64;
        assert!(
            (fraction - 0.3).abs() < 0.05,
            "real-time job got {fraction}, expected ≈ 0.30"
        );
    }

    #[test]
    fn real_time_admission_rejection_is_reported() {
        let mut sim = Simulation::new(SimConfig::default());
        sim.add_job(
            "rt1",
            JobSpec::real_time(Proportion::from_ppt(800), Period::from_millis(10)),
            Box::new(Spin::new()),
        )
        .unwrap();
        let err = sim.add_job(
            "rt2",
            JobSpec::real_time(Proportion::from_ppt(400), Period::from_millis(10)),
            Box::new(Spin::new()),
        );
        assert!(err.is_err());
        assert_eq!(sim.stats().admission_rejections, 1);
    }

    #[test]
    fn controller_disabled_keeps_reservations_fixed() {
        let config = SimConfig {
            controller_enabled: false,
            ..SimConfig::default()
        };
        let mut sim = Simulation::new(config);
        let h = sim
            .add_job("hog", JobSpec::miscellaneous(), Box::new(Spin::new()))
            .unwrap();
        sim.force_reservation(h, Proportion::from_ppt(123), Period::from_millis(10));
        sim.run_for(2.0);
        assert_eq!(sim.current_allocation_ppt(h), 123);
        assert_eq!(sim.stats().controller_invocations, 0);
    }

    #[test]
    fn dummy_processes_consume_no_cpu_but_are_controlled() {
        let mut sim = Simulation::new(SimConfig::default());
        let mut handles = Vec::new();
        for i in 0..5 {
            handles.push(
                sim.add_job(
                    &format!("dummy{i}"),
                    JobSpec::miscellaneous(),
                    Box::new(Dummy),
                )
                .unwrap(),
            );
        }
        sim.run_for(2.0);
        for h in &handles {
            assert_eq!(sim.cpu_used_us(*h), 0);
        }
        assert!(sim.stats().controller_invocations > 0);
        assert!(sim.stats().controller_cost_us > 0.0);
    }

    #[test]
    fn controller_cost_scales_with_number_of_dummies() {
        let run = |n: usize| {
            let mut sim = Simulation::new(SimConfig::default());
            for i in 0..n {
                sim.add_job(&format!("d{i}"), JobSpec::miscellaneous(), Box::new(Dummy))
                    .unwrap();
            }
            sim.run_for(2.0);
            sim.stats().controller_cost_us / (sim.now_seconds() * 1e6)
        };
        let few = run(2);
        let many = run(30);
        assert!(
            many > few,
            "controller overhead should grow with controlled processes ({few} vs {many})"
        );
    }

    #[test]
    fn trace_records_allocation_and_rate_series() {
        let mut sim = Simulation::new(SimConfig::default());
        sim.add_job("hog", JobSpec::miscellaneous(), Box::new(Spin::new()))
            .unwrap();
        sim.run_for(1.0);
        let trace = sim.trace();
        assert!(trace.get("alloc/hog").is_some());
        assert!(trace.get("rate/hog").is_some());
        assert!(trace.get("period/hog").is_some());
        assert!(trace.get("alloc/hog").unwrap().len() >= 5);
    }

    #[test]
    fn fill_level_series_recorded_for_registered_queues() {
        let mut sim = Simulation::new(SimConfig::default());
        let registry = sim.registry();
        let queue = Arc::new(rrs_queue::BoundedBuffer::<u8>::new("pipeline-q", 8));
        let h = sim
            .add_job("consumer", JobSpec::real_rate(), Box::new(Spin::new()))
            .unwrap();
        registry.register(JobKey(h.job.0), Role::Consumer, queue);
        sim.run_for(1.0);
        assert!(sim.trace().get("fill/pipeline-q").is_some());
    }

    #[test]
    fn multicore_idle_accounting_tracks_actual_elapsed_time() {
        // One throttled spinner on cpu0 leaves cpu1 permanently idle.
        // Every lockstep round cpu1 books an idle quantum that may exceed
        // what actually elapses; the rebooking correction must keep total
        // idle time within the machine's physical capacity.
        let config = SimConfig {
            controller_enabled: false,
            ..SimConfig::default().with_cpus(2)
        };
        let mut sim = Simulation::new(config);
        let h = sim
            .add_job("spin", JobSpec::miscellaneous(), Box::new(Spin::new()))
            .unwrap();
        sim.force_reservation(h, Proportion::from_ppt(100), Period::from_millis(10));
        sim.run_for(2.0);
        let idle = sim.machine().stats().idle_us;
        let capacity = sim.now_micros() * sim.machine().cpu_count() as u64;
        assert!(
            idle <= capacity,
            "idle_us {idle} cannot exceed machine capacity {capacity}"
        );
        // cpu1 never runs anything and cpu0 idles ~90 % of each period:
        // idle should be most of the capacity, not a wild overcount.
        assert!(idle > capacity / 2, "idle {idle} of {capacity}");
    }

    #[test]
    fn early_yielding_thread_books_its_idle_remainder() {
        /// Sips 1 µs of every quantum, then blocks until the next poll.
        struct Sip;
        impl WorkModel for Sip {
            fn run(&mut self, _now: u64, _quantum_us: u64, _hz: f64) -> RunResult {
                RunResult::blocked_after(1)
            }
            fn poll_unblock(&mut self, _now_us: u64) -> bool {
                true
            }
        }
        let config = SimConfig {
            controller_enabled: false,
            ..SimConfig::default().with_cpus(2)
        };
        let mut sim = Simulation::new(config);
        let hog = sim
            .add_job("hog", JobSpec::miscellaneous(), Box::new(Spin::new()))
            .unwrap();
        let sip = sim
            .add_job("sip", JobSpec::miscellaneous(), Box::new(Sip))
            .unwrap();
        sim.force_reservation(hog, Proportion::from_ppt(1000), Period::from_millis(10));
        sim.force_reservation(sip, Proportion::from_ppt(500), Period::from_millis(10));
        assert_ne!(sim.cpu_of(hog), sim.cpu_of(sip));
        sim.run_for(1.0);
        // The sipper's CPU is idle for ~999/1000 of every busy round; that
        // remainder must show up in the machine's idle accounting.
        let idle = sim.machine().stats().idle_us;
        let now = sim.now_micros();
        assert!(
            idle > now * 8 / 10,
            "sipper CPU idleness must be booked: idle {idle} of {now}"
        );
        assert!(idle <= now * 2, "idle cannot exceed 2-CPU capacity");
    }

    #[test]
    fn dispatch_overhead_reduces_available_cpu_at_high_frequency() {
        let available = |interval_us: u64| {
            let config = SimConfig {
                controller_enabled: false,
                dispatcher: DispatcherConfig {
                    dispatch_interval_us: interval_us,
                    ..DispatcherConfig::default()
                },
                ..SimConfig::default()
            };
            let mut sim = Simulation::new(config);
            let h = sim
                .add_job("hog", JobSpec::miscellaneous(), Box::new(Spin::new()))
                .unwrap();
            sim.force_reservation(h, Proportion::from_ppt(1000), Period::from_millis(10));
            sim.run_for(2.0);
            sim.cpu_used_us(h) as f64 / sim.now_micros() as f64
        };
        let coarse = available(10_000);
        let fine = available(100);
        assert!(
            coarse > fine,
            "finer dispatch intervals must cost more CPU ({coarse} vs {fine})"
        );
        assert!(coarse > 0.95);
    }

    #[test]
    fn removing_a_job_stops_scheduling_it() {
        let mut sim = Simulation::new(SimConfig::default());
        let h = sim
            .add_job("hog", JobSpec::miscellaneous(), Box::new(Spin::new()))
            .unwrap();
        sim.run_for(0.5);
        let used_before = sim.cpu_used_us(h);
        assert!(used_before > 0);
        sim.remove_job(h);
        sim.run_for(0.5);
        assert_eq!(sim.cpu_used_us(h), 0, "removed job no longer tracked");
        assert_eq!(sim.controller().job_count(), 0);
    }

    #[test]
    fn jobs_can_join_a_saturated_machine() {
        // Regression: adding a job after the running jobs' adaptive
        // allocations have grown to the overload threshold used to panic,
        // because the dispatcher's admission test rejected even the
        // bootstrap reservation.  Late arrivals must be admitted and
        // squished in like everyone else.
        let mut sim = Simulation::new(SimConfig::default());
        let first = sim
            .add_job("first", JobSpec::miscellaneous(), Box::new(Spin::new()))
            .unwrap();
        sim.run_for(3.0);
        assert!(
            sim.current_allocation_ppt(first) > 800,
            "machine is saturated"
        );
        let late = sim
            .add_job("late", JobSpec::miscellaneous(), Box::new(Spin::new()))
            .expect("late arrivals are admitted, not panicked on");
        sim.run_for(5.0);
        let a = sim.current_allocation_ppt(first);
        let b = sim.current_allocation_ppt(late);
        assert!(b > 100, "late job must ramp up, got {b}");
        assert!(a + b <= 952, "squish keeps the pair under the threshold");
        // The reused machinery also holds after a removal.
        sim.remove_job(first);
        let third = sim
            .add_job("third", JobSpec::miscellaneous(), Box::new(Spin::new()))
            .unwrap();
        assert_eq!(third.slot.index(), first.slot.index(), "slot reused");
        sim.run_for(3.0);
        assert!(sim.current_allocation_ppt(third) > 100);
    }

    #[test]
    fn simulated_time_advances_even_when_idle() {
        let mut sim = Simulation::new(SimConfig::default());
        sim.run_for(1.0);
        assert!(sim.now_seconds() >= 1.0);
        let dbg = format!("{sim:?}");
        assert!(dbg.contains("Simulation"));

        // Idle fast-forward (lockstep only): with nothing runnable the
        // clock jumps from event to event (controller ticks at 10 ms,
        // trace at 100 ms) instead of burning one dispatch tick (1 ms) at
        // a time, so an idle second takes far fewer steps than the naive
        // tick count (1 s at the 1 ms dispatch interval = 1000 ticks).
        let naive_ticks = 1000;
        let mut lockstep = Simulation::new(SimConfig {
            stepping: SteppingMode::Lockstep,
            ..SimConfig::default()
        });
        lockstep.run_for(1.0);
        let fast_steps = lockstep.stats().steps;
        assert!(
            fast_steps * 4 < naive_ticks,
            "fast-forward must cut the step count ({fast_steps} vs {naive_ticks})"
        );
        // The calendar run above processes one event per step and never
        // burns idle ticks, so it too stays far below the naive loop.
        assert!(
            sim.stats().steps * 4 < naive_ticks,
            "calendar steps = events handled ({} vs {naive_ticks})",
            sim.stats().steps
        );
    }

    #[test]
    fn idle_fast_forward_respects_the_run_horizon() {
        // No jobs, no controller, a 10 s trace interval: the only jump
        // target is far beyond the requested run; the clock must still
        // stop at (not overshoot) the horizon.
        for stepping in [SteppingMode::Lockstep, SteppingMode::Calendar] {
            let config = SimConfig {
                controller_enabled: false,
                trace_interval_s: 10.0,
                stepping,
                ..SimConfig::default()
            };
            let mut sim = Simulation::new(config);
            sim.run_for(0.5);
            assert!(sim.now_seconds() >= 0.5);
            assert!(
                sim.now_seconds() < 0.51,
                "{stepping:?} overshot the requested horizon: {}",
                sim.now_seconds()
            );
        }
    }

    #[test]
    fn idle_fast_forward_jumps_to_throttle_replenishment() {
        // A single reserved thread that exhausts its budget leaves the
        // machine idle until its period boundary; fast-forward must jump
        // there, not change how much CPU the thread receives (a 200 ‰
        // reservation delivers a 0.2 fraction).
        let run = |stepping: SteppingMode| {
            let config = SimConfig {
                controller_enabled: false,
                stepping,
                ..SimConfig::default()
            };
            let mut sim = Simulation::new(config);
            let h = sim
                .add_job("spin", JobSpec::miscellaneous(), Box::new(Spin::new()))
                .unwrap();
            sim.force_reservation(h, Proportion::from_ppt(200), Period::from_millis(10));
            sim.run_for(2.0);
            (
                sim.cpu_used_us(h) as f64 / sim.now_micros() as f64,
                sim.stats().steps,
            )
        };
        // A tick-at-a-time loop would take ~2000 steps (2 s at the 1 ms
        // dispatch interval); jumping across each period's idle tail must
        // land well below that.
        let naive_ticks = 2000;
        let (fast_frac, fast_steps) = run(SteppingMode::Lockstep);
        assert!(
            (fast_frac - 0.2).abs() < 0.02,
            "fast-forward must not change delivered CPU ({fast_frac} vs 0.2)"
        );
        assert!(fast_steps < naive_ticks);
        // The calendar path has no fast-forward special case to get wrong:
        // the throttled thread's release timer bounds every idle jump, so
        // the delivered fraction matches.
        let (cal_frac, cal_steps) = run(SteppingMode::Calendar);
        assert!(
            (cal_frac - fast_frac).abs() < 0.02,
            "calendar stepping must not change delivered CPU ({cal_frac} vs {fast_frac})"
        );
        assert!(cal_steps < naive_ticks);
    }

    #[test]
    fn multicore_sim_runs_jobs_in_parallel() {
        let mut sim = Simulation::new(SimConfig::default().with_cpus(2));
        let a = sim
            .add_job("a", JobSpec::miscellaneous(), Box::new(Spin::new()))
            .unwrap();
        let b = sim
            .add_job("b", JobSpec::miscellaneous(), Box::new(Spin::new()))
            .unwrap();
        sim.run_for(5.0);
        // Each hog has a whole CPU: both should consume most of the
        // elapsed time, which is impossible on one CPU.
        let elapsed = sim.now_micros() as f64;
        let fa = sim.cpu_used_us(a) as f64 / elapsed;
        let fb = sim.cpu_used_us(b) as f64 / elapsed;
        assert!(fa > 0.6, "hog a got {fa}");
        assert!(fb > 0.6, "hog b got {fb}");
        assert_ne!(sim.cpu_of(a), sim.cpu_of(b), "placed on different CPUs");
        assert_eq!(sim.machine().cpu_count(), 2);
    }

    #[test]
    fn saturated_cpu_arrival_lands_on_the_empty_one() {
        let mut sim = Simulation::new(SimConfig::default().with_cpus(2));
        let first = sim
            .add_job("first", JobSpec::miscellaneous(), Box::new(Spin::new()))
            .unwrap();
        sim.run_for(3.0);
        assert!(
            sim.current_allocation_ppt(first) > 800,
            "first hog saturates its CPU"
        );
        let late = sim
            .add_job("late", JobSpec::miscellaneous(), Box::new(Spin::new()))
            .unwrap();
        assert_ne!(
            sim.cpu_of(first),
            sim.cpu_of(late),
            "least-loaded fit places the newcomer on the empty CPU"
        );
        sim.run_for(5.0);
        // Both can now grow toward a full CPU each — no squish fight.
        assert!(sim.current_allocation_ppt(first) > 700);
        assert!(sim.current_allocation_ppt(late) > 500);
    }

    #[test]
    fn per_cpu_breakdown_sums_to_the_aggregates() {
        let mut sim = Simulation::new(SimConfig::default().with_cpus(2));
        let a = sim
            .add_job("a", JobSpec::miscellaneous(), Box::new(Spin::new()))
            .unwrap();
        let b = sim
            .add_job("b", JobSpec::miscellaneous(), Box::new(Spin::new()))
            .unwrap();
        sim.run_for(3.0);
        let stats = sim.stats();
        assert_eq!(stats.per_cpu.len(), 2);
        let used: u64 = stats.per_cpu.iter().map(|c| c.used_us).sum();
        assert_eq!(used, sim.cpu_used_us(a) + sim.cpu_used_us(b));
        let idle: u64 = stats.per_cpu.iter().map(|c| c.idle_us).sum();
        assert_eq!(idle, sim.machine().stats().idle_us);
        let migs: u64 = stats
            .per_cpu
            .iter()
            .map(|c| c.migrations_in + c.migrations_out)
            .sum();
        assert_eq!(migs, stats.migrations * 2, "each migration has two ends");
    }

    #[test]
    fn grow_cpus_hot_adds_capacity_mid_run() {
        // Two hogs contending for one CPU; hot-adding a second CPU lets
        // the Place stage spread them and the Allocate stage hand out two
        // CPUs' worth of proportion.
        let mut sim = Simulation::new(SimConfig::default());
        let a = sim
            .add_job("a", JobSpec::miscellaneous(), Box::new(Spin::new()))
            .unwrap();
        let b = sim
            .add_job("b", JobSpec::miscellaneous(), Box::new(Spin::new()))
            .unwrap();
        sim.run_for(3.0);
        assert_eq!(sim.cpu_of(a), sim.cpu_of(b), "one CPU holds both");
        let one_cpu_used = sim.cpu_used_us(a) + sim.cpu_used_us(b);
        assert!(one_cpu_used <= sim.now_micros());

        assert_eq!(sim.grow_cpus(2), 2);
        assert_eq!(sim.machine().cpu_count(), 2);
        assert_eq!(sim.stats().per_cpu.len(), 2);
        let before = sim.now_micros();
        sim.run_for(5.0);
        assert_ne!(sim.cpu_of(a), sim.cpu_of(b), "rebalanced onto the new CPU");
        assert!(sim.stats().migrations >= 1);
        let both_used = sim.cpu_used_us(a) + sim.cpu_used_us(b) - one_cpu_used;
        let elapsed = sim.now_micros() - before;
        assert!(
            both_used as f64 > elapsed as f64 * 1.2,
            "two CPUs deliver more than one: {both_used} in {elapsed}"
        );
        // Shrinking is a documented no-op.
        assert_eq!(sim.grow_cpus(1), 2);
    }

    #[test]
    fn mid_run_config_setters_take_effect() {
        let mut sim = Simulation::new(SimConfig {
            controller_enabled: false,
            ..SimConfig::default()
        });
        let h = sim
            .add_job("spin", JobSpec::miscellaneous(), Box::new(Spin::new()))
            .unwrap();
        sim.force_reservation(h, Proportion::from_ppt(500), Period::from_millis(10));
        sim.run_for(1.0);
        let coarse = sim.trace().get("alloc/spin").unwrap().len();
        sim.set_trace_interval_s(0.01);
        sim.set_migration_cost_us(123);
        assert_eq!(sim.config().migration_cost_us, 123);
        assert_eq!(sim.config().trace_interval_s, 0.01);
        sim.run_for(1.0);
        let fine = sim.trace().get("alloc/spin").unwrap().len() - coarse;
        assert!(
            fine > coarse * 4,
            "10x finer sampling must record more: {coarse} then {fine}"
        );
    }

    #[test]
    fn fast_forward_never_skips_events_landing_on_the_run_horizon() {
        // A 100 ‰ spinner throttles 1 ms into every 10 ms period, so the
        // machine idles up to each boundary and fast-forward jumps from
        // event to event.  With a 100 ms trace interval and a 0.5 s
        // horizon, the final trace sample lands *exactly* on the horizon:
        // the run must stop there, and the sample must still be recorded
        // (at exactly t = 0.5) once the simulation continues.
        let run = |split: bool| {
            let mut sim = Simulation::new(SimConfig {
                controller_enabled: false,
                stepping: SteppingMode::Lockstep,
                ..SimConfig::default()
            });
            let h = sim
                .add_job("spin", JobSpec::miscellaneous(), Box::new(Spin::new()))
                .unwrap();
            sim.force_reservation(h, Proportion::from_ppt(100), Period::from_millis(10));
            let at_horizon = if split {
                sim.run_for(0.5);
                let at = sim.now_seconds();
                sim.run_for(0.1);
                at
            } else {
                sim.run_for(0.6);
                0.5
            };
            (sim, at_horizon)
        };
        let (fast, at_horizon) = run(true);
        assert_eq!(at_horizon, 0.5, "fast-forward stops exactly at the horizon");
        let times = fast.trace().get("alloc/spin").unwrap().times();
        assert!(
            times.contains(&0.5),
            "the boundary sample must fire on resume: {times:?}"
        );
        let (oneshot, _) = run(false);
        assert_eq!(
            fast.trace().get("alloc/spin").unwrap().len(),
            oneshot.trace().get("alloc/spin").unwrap().len(),
            "stopping on the boundary must not skip any trace event"
        );

        // The same holds for a controller tick on the boundary: after
        // continuing past the horizon the split run has invoked the
        // controller exactly as often as a one-shot run to the same end.
        let run_ctl = |split: bool| {
            let mut sim = Simulation::new(SimConfig {
                stepping: SteppingMode::Lockstep,
                ..SimConfig::default()
            });
            let h = sim
                .add_job("spin", JobSpec::miscellaneous(), Box::new(Spin::new()))
                .unwrap();
            sim.force_reservation(h, Proportion::from_ppt(100), Period::from_millis(10));
            if split {
                sim.run_until_micros(500_000);
            }
            sim.run_until_micros(600_000);
            sim.stats().controller_invocations
        };
        assert_eq!(run_ctl(true), run_ctl(false));
    }

    /// Runs a `burst_us` CPU burst, then sleeps `sleep_us` on a timer it
    /// reports through [`WorkModel::next_transition`].  Counts how often
    /// it is polled, to prove the calendar wakes it with a single event.
    struct Sleeper {
        burst_us: u64,
        sleep_us: u64,
        wake_at: Option<u64>,
        polls: Arc<std::sync::atomic::AtomicU64>,
    }

    impl WorkModel for Sleeper {
        fn run(&mut self, now: u64, quantum_us: u64, _hz: f64) -> RunResult {
            let used = self.burst_us.min(quantum_us);
            self.wake_at = Some(now + used + self.sleep_us);
            RunResult::blocked_after(used)
        }
        fn poll_unblock(&mut self, now_us: u64) -> bool {
            self.polls
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            self.wake_at.is_none_or(|w| now_us >= w)
        }
        fn next_transition(&self, _now: SimTime) -> Option<SimTime> {
            self.wake_at.map(SimTime::from_micros)
        }
    }

    #[test]
    fn calendar_wakes_timer_sleepers_without_polling() {
        // 1 ms of work, 9 ms of timer sleep: a 10 % duty cycle.  Under
        // calendar stepping each sleep is one Wake event confirmed by one
        // poll; the lockstep loop instead polls every dispatch tick.
        let polls = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let config = SimConfig {
            controller_enabled: false,
            ..SimConfig::default()
        };
        let mut sim = Simulation::new(config);
        let h = sim
            .add_job(
                "sleeper",
                JobSpec::miscellaneous(),
                Box::new(Sleeper {
                    burst_us: 1_000,
                    sleep_us: 9_000,
                    wake_at: None,
                    polls: polls.clone(),
                }),
            )
            .unwrap();
        sim.force_reservation(h, Proportion::from_ppt(500), Period::from_millis(10));
        sim.run_for(2.0);
        let frac = sim.cpu_used_us(h) as f64 / sim.now_micros() as f64;
        assert!(
            (frac - 0.1).abs() < 0.02,
            "10% duty cycle must survive event-driven wake-ups, got {frac}"
        );
        let cycles = sim.cpu_used_us(h) / 1_000;
        let polled = polls.load(std::sync::atomic::Ordering::Relaxed);
        assert!(
            polled <= cycles * 2 + 10,
            "one confirming poll per wake-up, not per tick: {polled} polls for {cycles} sleeps"
        );
    }

    #[test]
    fn removing_a_job_cancels_its_pending_wake() {
        let config = SimConfig {
            controller_enabled: false,
            ..SimConfig::default()
        };
        let mut sim = Simulation::new(config);
        let h = sim
            .add_job(
                "sleeper",
                JobSpec::miscellaneous(),
                Box::new(Sleeper {
                    burst_us: 100,
                    // Sleeps far past every horizon below, so a Wake event
                    // is guaranteed pending when the job is removed.
                    sleep_us: 10_000_000,
                    wake_at: None,
                    polls: Arc::new(std::sync::atomic::AtomicU64::new(0)),
                }),
            )
            .unwrap();
        sim.force_reservation(h, Proportion::from_ppt(500), Period::from_millis(10));
        sim.run_for(0.1);
        assert_eq!(sim.cpu_used_us(h), 100, "one burst, then asleep");
        sim.remove_job(h);
        // Running past the (cancelled) wake-up must not fire it against
        // the removed thread.
        sim.run_for(11.0);
        assert_eq!(sim.cpu_used_us(h), 0, "removed job no longer tracked");
    }

    #[test]
    fn calendar_horizon_boundary_events_fire_on_resume() {
        // The calendar analog of the lockstep fast-forward regression
        // above: a trace sample scheduled exactly on the run horizon stays
        // pending — the run stops at (not past) the horizon — and fires
        // first thing on resume, at exactly t = 0.5.
        let mut sim = Simulation::new(SimConfig {
            controller_enabled: false,
            ..SimConfig::default()
        });
        let h = sim
            .add_job("spin", JobSpec::miscellaneous(), Box::new(Spin::new()))
            .unwrap();
        sim.force_reservation(h, Proportion::from_ppt(100), Period::from_millis(10));
        sim.run_for(0.5);
        assert_eq!(sim.now_seconds(), 0.5, "stops exactly at the horizon");
        let before = sim.trace().get("alloc/spin").unwrap().len();
        sim.run_for(0.1);
        let times = sim.trace().get("alloc/spin").unwrap().times();
        assert!(
            times.contains(&0.5),
            "the boundary sample fires on resume: {times:?}"
        );
        assert!(sim.trace().get("alloc/spin").unwrap().len() > before);

        // Controller ticks behave the same: a split run and a straight
        // run invoke the controller the same number of times.
        let run_ctl = |split: bool| {
            let mut sim = Simulation::new(SimConfig::default());
            let h = sim
                .add_job("spin", JobSpec::miscellaneous(), Box::new(Spin::new()))
                .unwrap();
            sim.force_reservation(h, Proportion::from_ppt(100), Period::from_millis(10));
            if split {
                sim.run_until_micros(500_000);
                sim.run_until_micros(600_000);
            } else {
                sim.run_until_micros(600_000);
            }
            sim.stats().controller_invocations
        };
        assert_eq!(run_ctl(true), run_ctl(false));
    }

    #[test]
    fn set_trace_interval_takes_exact_micros() {
        let mut sim = Simulation::new(SimConfig {
            controller_enabled: false,
            ..SimConfig::default()
        });
        let h = sim
            .add_job("spin", JobSpec::miscellaneous(), Box::new(Spin::new()))
            .unwrap();
        sim.force_reservation(h, Proportion::from_ppt(500), Period::from_millis(10));
        sim.run_for(1.0);
        let coarse = sim.trace().get("alloc/spin").unwrap().len();
        sim.set_trace_interval(SimTime::from_millis(10));
        assert_eq!(sim.config().trace_interval_s, 0.01);
        sim.run_for(1.0);
        let fine = sim.trace().get("alloc/spin").unwrap().len() - coarse;
        assert!(
            fine > coarse * 4,
            "10x finer sampling must record more: {coarse} then {fine}"
        );
        // The old f64 door routes through the exact form, clamping at 1 µs.
        sim.set_trace_interval_s(0.0);
        assert_eq!(sim.config().trace_interval_s, 1e-6);
    }

    #[test]
    fn with_stepping_selects_the_mode() {
        assert_eq!(
            SimConfig::default()
                .with_stepping(SteppingMode::Lockstep)
                .stepping,
            SteppingMode::Lockstep
        );
        assert_eq!(SimConfig::default().stepping, SteppingMode::Calendar);
    }

    #[test]
    fn telemetry_snapshot_counts_the_fast_paths() {
        // Counters are always on: even without a recorder the snapshot
        // reports cache hits, settles and calendar event counts.
        let mut sim = Simulation::new(SimConfig::default());
        sim.add_job("hog", JobSpec::miscellaneous(), Box::new(Spin::new()))
            .unwrap();
        sim.run_for(1.0);
        let snap = sim.telemetry_snapshot();
        assert!(snap.quantum_cache_hits > 0, "warm spans must hit the cache");
        assert!(snap.cache_hit_rate > 0.0 && snap.cache_hit_rate <= 1.0);
        assert!(snap.settles_total() > 0, "spans must settle");
        assert!(snap.events_controller > 0 && snap.events_trace > 0);
        assert!(snap.controller_incremental_cycles > 0);
        assert_eq!(snap.trace_events_recorded, 0, "no recorder installed");
        assert!(sim.telemetry_recorder().is_none());

        // With a recorder the same run also captures structured events,
        // without dropping any on a sufficiently large ring.
        let mut sim = Simulation::new(SimConfig::default());
        let recorder = sim.enable_telemetry(TelemetryConfig::default());
        sim.add_job("hog", JobSpec::miscellaneous(), Box::new(Spin::new()))
            .unwrap();
        sim.run_for(1.0);
        assert!(sim.telemetry_recorder().is_some());
        let snap = sim.telemetry_snapshot();
        assert!(snap.trace_events_recorded > 0);
        assert_eq!(snap.trace_events_recorded, recorder.recorded());
        let events = recorder.events();
        assert!(!events.is_empty());
        // The summary JSON parses and carries the same counters.
        let json = snap.summary_json();
        let parsed: TelemetrySnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed, snap);
    }

    proptest! {
        /// Oracle: on blocking-free workloads with fixed under-committed
        /// reservations, calendar stepping reproduces the retained naive
        /// lockstep loop *exactly* — per-thread consumed CPU and the final
        /// clock agree to the microsecond.  (Total demand is kept below
        /// each CPU's capacity so every thread drains its whole budget
        /// every period; scheduling order then cannot change totals.)
        #[test]
        fn calendar_stepping_matches_the_lockstep_oracle(
            cpus in 1usize..4,
            specs in proptest::collection::vec((20u32..46, 0usize..3), 1..6),
        ) {
            let run = |stepping: SteppingMode| {
                let config = SimConfig {
                    controller_enabled: false,
                    charge_controller_cost: false,
                    charge_dispatch_overhead: false,
                    stepping,
                    ..SimConfig::default().with_cpus(cpus)
                };
                let mut sim = Simulation::new(config);
                let mut handles = Vec::new();
                for (i, &(ppt, period_idx)) in specs.iter().enumerate() {
                    let h = sim
                        .add_job(&format!("j{i}"), JobSpec::miscellaneous(), Box::new(Spin::new()))
                        .unwrap();
                    let period_ms = [10u64, 20, 40][period_idx];
                    sim.force_reservation(
                        h,
                        Proportion::from_ppt(ppt),
                        Period::from_millis(period_ms),
                    );
                    handles.push(h);
                }
                // Two calls cover stopping and resuming at a horizon.
                sim.run_for(0.06);
                sim.run_for(0.06);
                let used: Vec<u64> = handles.iter().map(|&h| sim.cpu_used_us(h)).collect();
                (sim.now_micros(), used)
            };
            let (cal_now, cal_used) = run(SteppingMode::Calendar);
            let (lock_now, lock_used) = run(SteppingMode::Lockstep);
            prop_assert_eq!(cal_now, 120_000);
            prop_assert_eq!(cal_now, lock_now);
            prop_assert_eq!(cal_used, lock_used);
        }

        /// Replaying the same mixed workload under calendar stepping gives
        /// bitwise-identical statistics: the event order is deterministic.
        #[test]
        fn calendar_replay_is_deterministic(
            jobs in proptest::collection::vec(0u8..3, 1..6),
        ) {
            let run = || {
                let mut sim = Simulation::new(SimConfig::default().with_cpus(2));
                for (i, &kind) in jobs.iter().enumerate() {
                    let work: Box<dyn WorkModel> = match kind {
                        0 => Box::new(Spin::new()),
                        1 => Box::new(Dummy),
                        _ => Box::new(Sleeper {
                            burst_us: 500,
                            sleep_us: 4_500,
                            wake_at: None,
                            polls: Arc::new(std::sync::atomic::AtomicU64::new(0)),
                        }),
                    };
                    sim.add_job(&format!("j{i}"), JobSpec::miscellaneous(), work)
                        .unwrap();
                }
                sim.run_for(1.0);
                (sim.now_micros(), sim.stats())
            };
            let (now_a, stats_a) = run();
            let (now_b, stats_b) = run();
            prop_assert_eq!(now_a, now_b);
            prop_assert_eq!(stats_a, stats_b);
        }
    }

    #[test]
    fn imbalance_triggers_migration_to_the_emptied_cpu() {
        // A, B, C land cpu0/cpu1/cpu0; removing B empties cpu1 while A and
        // C crowd cpu0.  The Place stage must notice the widening gap and
        // migrate one of the survivors across.
        let mut sim = Simulation::new(SimConfig::default().with_cpus(2));
        let a = sim
            .add_job("a", JobSpec::miscellaneous(), Box::new(Spin::new()))
            .unwrap();
        let b = sim
            .add_job("b", JobSpec::miscellaneous(), Box::new(Spin::new()))
            .unwrap();
        let c = sim
            .add_job("c", JobSpec::miscellaneous(), Box::new(Spin::new()))
            .unwrap();
        assert_eq!(sim.cpu_of(a), sim.cpu_of(c), "tie placement crowds cpu0");
        assert_ne!(sim.cpu_of(a), sim.cpu_of(b));
        sim.run_for(2.0);
        sim.remove_job(b);
        sim.run_for(5.0);
        assert!(sim.stats().migrations >= 1, "a survivor migrated");
        assert_ne!(sim.cpu_of(a), sim.cpu_of(c), "the pair ends up one per CPU");
        // Rebalanced, both can use most of a CPU each.
        let elapsed = sim.now_micros() as f64;
        assert!(sim.cpu_used_us(a) as f64 / elapsed > 0.4);
        assert!(sim.cpu_used_us(c) as f64 / elapsed > 0.4);
    }
}
