//! Deterministic discrete-event CPU simulator.
//!
//! The paper's experiments ran on a 400 MHz Pentium II under a modified
//! Linux 2.0.35 kernel.  This crate substitutes that testbed with a
//! deterministic simulation: simulated threads execute *work models*
//! (cycles consumed per block produced or consumed), the real
//! `rrs-scheduler` dispatcher decides who runs in each dispatch interval,
//! and the real `rrs-core` controller runs every controller period,
//! sampling the real `rrs-queue` symbiotic interfaces.  Only the CPU and
//! the passage of time are simulated — the scheduler, controller and
//! progress monitoring are the production code paths.
//!
//! * [`WorkModel`] — what a simulated thread does with the CPU it is given.
//! * [`Simulation`] — the event loop: dispatch, run, charge, block/unblock,
//!   controller invocation, overhead accounting and tracing.
//! * [`Trace`] — named time series recorded during a run, used by the
//!   figure-regeneration benches.
//! * [`SimConfig`] / [`CpuConfig`] — experiment parameters.
//!
//! # How the simulator advances time
//!
//! The default stepping mode ([`simulation::SteppingMode::Calendar`]) is a
//! discrete-event loop built around an event calendar
//! ([`calendar::Schedule`], a binary-heap agenda keyed by integer-microsecond
//! [`rrs_core::SimTime`] with deterministic tie-breaking).  Only things that
//! *change* the dispatch assignment are events: controller cycles, trace
//! samples, workload wake-ups ([`Event::Wake`], announced by
//! [`WorkModel::next_transition`]), and a dispatch-interval
//! [`Event::PollTick`] for blocked workloads that cannot announce their
//! wake-up.  Between two events the simulator advances each CPU
//! *analytically*: the dispatcher picks a thread, the work model consumes
//! its quantum (clipped to the event window), usage is charged, and the CPU
//! repeats until the window is exhausted — no global tick, no heap
//! operation per span, and no idle fast-forward special case, because an
//! idle CPU simply has nothing scheduled before the next event.  Reservation
//! period boundaries do not enter the calendar at all: the dispatcher rolls
//! them lazily ([`rrs_scheduler::DispatcherConfig::lazy_rollovers`]) and
//! only throttle releases arm real timers.
//!
//! The previous tick-driven loop survives as
//! [`simulation::SteppingMode::Lockstep`] — a naive reference the calendar
//! path is property-tested against, and the anchor for the historical
//! golden-stats captures.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod calendar;
pub mod event;
pub mod sharded;
pub mod simulation;
pub mod trace;
pub mod workload;

pub use calendar::{EventId, Schedule};
pub use event::Event;
pub use rrs_core::{JobHandle, SimTime};
pub use rrs_scheduler::CpuStats;
pub use sharded::{ShardConfig, ShardedSim};
pub use simulation::{CpuConfig, SimConfig, SimStats, Simulation, SteppingMode};
pub use trace::Trace;
pub use workload::{RunResult, WorkModel};
