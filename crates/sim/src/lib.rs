//! Deterministic discrete-event CPU simulator.
//!
//! The paper's experiments ran on a 400 MHz Pentium II under a modified
//! Linux 2.0.35 kernel.  This crate substitutes that testbed with a
//! deterministic simulation: simulated threads execute *work models*
//! (cycles consumed per block produced or consumed), the real
//! `rrs-scheduler` dispatcher decides who runs in each dispatch interval,
//! and the real `rrs-core` controller runs every controller period,
//! sampling the real `rrs-queue` symbiotic interfaces.  Only the CPU and
//! the passage of time are simulated — the scheduler, controller and
//! progress monitoring are the production code paths.
//!
//! * [`WorkModel`] — what a simulated thread does with the CPU it is given.
//! * [`Simulation`] — the event loop: dispatch, run, charge, block/unblock,
//!   controller invocation, overhead accounting and tracing.
//! * [`Trace`] — named time series recorded during a run, used by the
//!   figure-regeneration benches.
//! * [`SimConfig`] / [`CpuConfig`] — experiment parameters.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod simulation;
pub mod trace;
pub mod workload;

pub use rrs_core::JobHandle;
pub use rrs_scheduler::CpuStats;
pub use simulation::{CpuConfig, SimConfig, SimStats, Simulation};
pub use trace::Trace;
pub use workload::{RunResult, WorkModel};
