//! The sharded simulator: a two-level control plane for large machines.
//!
//! One [`Simulation`] — one controller walking every job each cycle, one
//! calendar driving every CPU — is the scalability wall above a few dozen
//! CPUs.  [`ShardedSim`] splits the machine into shards: groups of CPUs,
//! each owning its own [`Simulation`] (dispatchers, controller pipeline
//! instance, calendar, timer state), so a shard's steady-state work
//! touches only shard-local dense slot storage and the per-shard
//! zero-alloc guarantee is preserved.  Above the shards a top-level
//! *rebalancer* runs on a slower cadence than the 10 ms controller cycle:
//! at each rebalance barrier it compares per-CPU granted load across
//! shards and migrates adaptive jobs from the most to the least loaded
//! shard through the controller/machine extract–inject machinery, keeping
//! the single `add_job`/`Host` API unchanged.
//!
//! Between two barriers shards share *nothing* on their hot paths — ids
//! are strided so they stay globally unique (`Simulation::with_shard_identity`),
//! the metric registry and telemetry ring are the only shared structures,
//! and both are internally synchronised — so the shard advance loop runs
//! each shard on its own OS thread ([`std::thread::scope`]) when
//! [`ShardConfig::parallel`] is set.  Sequential and parallel execution
//! are bit-for-bit identical: shards only interact at barriers.
//!
//! # Placement policy
//!
//! Queue-coupled jobs (classes `RealRate`, `RealTime`,
//! `AperiodicRealTime` — producers and consumers of shared bounded
//! queues, plus reservation jobs subject to single-authority admission
//! control) are *anchored to shard 0*, so a coupled pipeline never spans
//! two shards and never observes a queue mid-window from a shard whose
//! clock is behind.  `Miscellaneous` jobs — the elastic bulk of large
//! workloads — spread across shards by granted load at admission and are
//! the only jobs the rebalancer will migrate (and only while they have no
//! registry attachments).
//!
//! # `shards = 1`
//!
//! With one shard every call delegates *directly* to the inner
//! [`Simulation`] — no barriers, no rebalancer, no trace merging — so a
//! single-shard [`ShardedSim`] reproduces the unsharded simulator's
//! golden [`SimStats`] bit for bit (`tests/sharded_sim.rs` pins this
//! against the captures in `tests/sim_golden_stats.rs`).

use crate::simulation::{SimConfig, SimStats, Simulation};
use crate::trace::Trace;
use crate::workload::WorkModel;
use rrs_core::{controller::AdmitError, Controller, JobClass, JobHandle, JobId, JobSpec, SimTime};
use rrs_queue::MetricRegistry;
use rrs_scheduler::{CpuId, Machine, Period, Proportion, Reservation, ThreadId, UsageAccount};
use rrs_telemetry::{Recorder, TelemetryConfig, TelemetrySnapshot, TraceEventKind};
use std::collections::BTreeMap;
use std::sync::Arc;

// The parallel advance hands each shard to its own scoped thread; this
// holds as long as every piece of shard state (work models included —
// `WorkModel: Send`) is `Send`.
const _: () = {
    const fn requires_send<T: Send>() {}
    requires_send::<Simulation>();
};

/// Sharding parameters for [`ShardedSim`].
#[derive(Debug, Clone, Copy)]
pub struct ShardConfig {
    /// Number of shards the machine's CPUs are split into (clamped to
    /// `1..=cpus`).  CPUs are dealt as evenly as possible: with `T` CPUs
    /// and `S` shards, the first `T mod S` shards get `⌈T/S⌉` CPUs and
    /// the rest get `⌊T/S⌋`.
    pub shards: usize,
    /// Seconds between rebalance barriers — the top level's cadence,
    /// deliberately slower than the 10 ms controller cycle so the
    /// per-shard controllers converge between interventions.
    pub rebalance_interval_s: f64,
    /// Minimum per-CPU granted-load gap (parts per thousand) between the
    /// most and least loaded shard before the rebalancer moves anything —
    /// hysteresis against migration churn.
    pub rebalance_threshold_ppt: u64,
    /// Run shards on parallel OS threads between barriers.  Sequential
    /// (`false`) and parallel execution produce identical results; the
    /// knob exists for single-core hosts and allocation-sensitive tests.
    pub parallel: bool,
}

impl Default for ShardConfig {
    fn default() -> Self {
        Self {
            shards: 1,
            rebalance_interval_s: 0.1,
            rebalance_threshold_ppt: 50,
            parallel: true,
        }
    }
}

impl ShardConfig {
    /// Returns a copy with the given shard count.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }
}

/// A machine of `S` independent [`Simulation`] shards behind the
/// single-simulation API, with a slow-cadence rebalancer on top.
///
/// # Examples
///
/// ```
/// use rrs_core::JobSpec;
/// use rrs_sim::{RunResult, ShardConfig, ShardedSim, SimConfig, WorkModel};
///
/// struct Spin;
/// impl WorkModel for Spin {
///     fn run(&mut self, _now: u64, quantum_us: u64, _hz: f64) -> RunResult {
///         RunResult::ran(quantum_us)
///     }
/// }
///
/// let mut sim = ShardedSim::new(
///     SimConfig::default().with_cpus(8),
///     ShardConfig::default().with_shards(4),
/// );
/// for i in 0..16 {
///     sim.add_job(&format!("hog{i}"), JobSpec::miscellaneous(), Box::new(Spin)).unwrap();
/// }
/// sim.run_for(1.0);
/// assert!(sim.now_seconds() >= 1.0);
/// ```
pub struct ShardedSim {
    config: SimConfig,
    shard_config: ShardConfig,
    registry: MetricRegistry,
    shards: Vec<Simulation>,
    /// Global CPU index of each shard's CPU 0 (prefix sums of per-shard
    /// CPU counts), plus one trailing entry holding the total.
    cpu_base: Vec<usize>,
    /// Owning shard per raw job id (dense, indexed by `JobId.0`;
    /// `u32::MAX` = not ours / removed).
    job_shard: Vec<u32>,
    /// Absolute time of the next rebalance barrier, in microseconds.
    next_rebalance_us: u64,
    /// The requested-horizon clock: `run_until_micros(end)` leaves this
    /// at `max(clock, end)`.  Individual shards may sit slightly past it
    /// (controller-cost charges overshoot, exactly as in the unsharded
    /// simulator).
    clock_us: u64,
    telemetry: Option<Arc<Recorder>>,
    rebalance_cycles: u64,
    rebalance_migrations: u64,
    /// Cross-shard view of every shard's recorded trace, merged at
    /// barriers.  Per-job series come from the owning shard; `fill/*`
    /// series are taken from shard 0 only (the registry is shared, so
    /// every shard samples every queue).
    merged_trace: Trace,
    /// Samples already merged, per shard and series name.
    trace_cursor: Vec<BTreeMap<String, usize>>,
    /// Per-shard [`Trace::total_samples`] at the last merge: a shard
    /// whose count is unchanged is skipped without walking its series.
    trace_seen: Vec<u64>,
    /// Rebalancer scratch (reused across cycles).
    loads: Vec<u64>,
    candidates: Vec<(JobId, u32)>,
}

impl ShardedSim {
    /// Creates a sharded simulation: `config.cpus()` CPUs dealt across
    /// `shard.shards` shards, each running an independent [`Simulation`]
    /// over one shared metric registry.
    pub fn new(config: SimConfig, shard: ShardConfig) -> Self {
        let total_cpus = config.cpus().max(1);
        let shards_n = shard.shards.clamp(1, total_cpus);
        let registry = MetricRegistry::new();
        let mut shards = Vec::with_capacity(shards_n);
        let mut cpu_base = Vec::with_capacity(shards_n + 1);
        let mut base = 0usize;
        for k in 0..shards_n {
            let cpus_k = total_cpus / shards_n + usize::from(k < total_cpus % shards_n);
            cpu_base.push(base);
            base += cpus_k;
            shards.push(Simulation::with_shard_identity(
                config.with_cpus(cpus_k),
                registry.clone(),
                (k + 1) as u64,
                shards_n as u64,
            ));
        }
        cpu_base.push(base);
        let interval_us = (shard.rebalance_interval_s * 1e6).round().max(1.0) as u64;
        Self {
            config,
            shard_config: shard,
            registry,
            shards,
            cpu_base,
            job_shard: Vec::new(),
            next_rebalance_us: interval_us,
            clock_us: 0,
            telemetry: None,
            rebalance_cycles: 0,
            rebalance_migrations: 0,
            merged_trace: Trace::new(),
            trace_cursor: vec![BTreeMap::new(); shards_n],
            trace_seen: vec![0; shards_n],
            loads: vec![0; shards_n],
            candidates: Vec::new(),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Read-only access to one shard's simulation.
    pub fn shard(&self, k: usize) -> &Simulation {
        &self.shards[k]
    }

    /// The shard currently owning a job, if the job is live.
    pub fn shard_of(&self, job: JobId) -> Option<usize> {
        match self.job_shard.get(job.0 as usize) {
            Some(&s) if s != u32::MAX => Some(s as usize),
            _ => None,
        }
    }

    /// The shared progress-metric registry.
    pub fn registry(&self) -> MetricRegistry {
        self.registry.clone()
    }

    /// The global configuration the machine was built from.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// The sharding configuration.
    pub fn shard_config(&self) -> &ShardConfig {
        &self.shard_config
    }

    /// Current simulated time in microseconds: the horizon every shard
    /// has reached (single shard: that shard's own clock).
    pub fn now_micros(&self) -> u64 {
        if self.shards.len() == 1 {
            self.shards[0].now_micros()
        } else {
            self.clock_us
        }
    }

    /// Current simulated time in seconds.
    pub fn now_seconds(&self) -> f64 {
        self.now_micros() as f64 / 1e6
    }

    /// Total CPUs across every shard.
    pub fn cpu_count(&self) -> usize {
        *self.cpu_base.last().expect("one trailing entry always")
    }

    /// Rebalancer activity so far: `(cycles, cross-shard migrations)`.
    pub fn rebalance_counts(&self) -> (u64, u64) {
        (self.rebalance_cycles, self.rebalance_migrations)
    }

    fn owning_shard(&self, job: JobId) -> Option<&Simulation> {
        self.shard_of(job).map(|s| &self.shards[s])
    }

    fn note_job(&mut self, job: JobId, shard: usize) {
        let i = job.0 as usize;
        if self.job_shard.len() <= i {
            self.job_shard.resize(i + 1, u32::MAX);
        }
        self.job_shard[i] = shard as u32;
    }

    /// The shard with the lowest granted load per CPU (lowest index wins
    /// ties).
    fn least_loaded_shard(&self) -> usize {
        let mut best = 0usize;
        let mut best_load = u64::MAX;
        for (k, shard) in self.shards.iter().enumerate() {
            let cpus = shard.machine().cpu_count().max(1) as u64;
            let load = shard.controller().granted_total_ppt() / cpus;
            if load < best_load {
                best_load = load;
                best = k;
            }
        }
        best
    }

    /// Adds a job, choosing its shard by class: queue-coupled and
    /// reservation classes (`RealRate`, `RealTime`, `AperiodicRealTime`)
    /// anchor to shard 0; `Miscellaneous` jobs go to the least-loaded
    /// shard (see the module docs for why).
    pub fn add_job(
        &mut self,
        name: &str,
        spec: JobSpec,
        work: Box<dyn WorkModel>,
    ) -> Result<JobHandle, AdmitError> {
        let shard = match spec.classify() {
            JobClass::Miscellaneous => self.least_loaded_shard(),
            _ => 0,
        };
        let handle = self.shards[shard].add_job(name, spec, work)?;
        self.note_job(handle.job, shard);
        Ok(handle)
    }

    /// Removes a job from whichever shard owns it.  The handle's slot may
    /// be stale (the rebalancer reassigns slots on migration); only the
    /// job id is trusted.
    pub fn remove_job(&mut self, handle: JobHandle) {
        let Some(s) = self.shard_of(handle.job) else {
            return;
        };
        if let Some(fresh) = self.shards[s].handle_of(handle.job) {
            self.shards[s].remove_job(fresh);
        }
        self.job_shard[handle.job.0 as usize] = u32::MAX;
    }

    /// The proportion currently reserved for a job, in parts per
    /// thousand.
    pub fn current_allocation_ppt(&self, handle: JobHandle) -> u32 {
        self.owning_shard(handle.job)
            .and_then(|s| s.machine().reservation(ThreadId(handle.job.0)))
            .map(|r| r.proportion.ppt())
            .unwrap_or(0)
    }

    /// A job's current reservation, if any.
    pub fn reservation(&self, handle: JobHandle) -> Option<Reservation> {
        self.owning_shard(handle.job)?
            .machine()
            .reservation(ThreadId(handle.job.0))
    }

    /// A job's usage account, if the job is live.
    pub fn usage(&self, handle: JobHandle) -> Option<UsageAccount> {
        self.owning_shard(handle.job)?
            .machine()
            .usage(ThreadId(handle.job.0))
    }

    /// Total CPU time a job has consumed so far, in microseconds.
    pub fn cpu_used_us(&self, handle: JobHandle) -> u64 {
        self.usage(handle).map(|u| u.total_used_us).unwrap_or(0)
    }

    /// The *global* CPU index a job's thread is placed on: the owning
    /// shard's CPU base plus its local index.
    pub fn cpu_of(&self, handle: JobHandle) -> Option<CpuId> {
        let s = self.shard_of(handle.job)?;
        let local = self.shards[s].machine().cpu_of(ThreadId(handle.job.0))?;
        Some(CpuId((self.cpu_base[s] + local.index()) as u32))
    }

    /// Shard 0's controller — the anchor shard every reservation and
    /// queue-coupled job runs on.  Per-shard controllers are reachable
    /// through [`ShardedSim::shard`].
    pub fn controller(&self) -> &Controller {
        self.shards[0].controller()
    }

    /// Shard 0's machine.  Machine-wide statistics should come from
    /// [`ShardedSim::stats`] / [`ShardedSim::telemetry_snapshot`], which
    /// aggregate over every shard.
    pub fn machine(&self) -> &Machine {
        self.shards[0].machine()
    }

    /// Forces a reservation directly on the owning shard's dispatcher,
    /// bypassing the controller.
    pub fn force_reservation(&mut self, handle: JobHandle, proportion: Proportion, period: Period) {
        if let Some(s) = self.shard_of(handle.job) {
            if let Some(fresh) = self.shards[s].handle_of(handle.job) {
                self.shards[s].force_reservation(fresh, proportion, period);
            }
        }
    }

    /// Grows the machine to `cpus` total CPUs, dealing the new capacity
    /// across shards with the same even split as construction.  Returns
    /// the resulting total.
    pub fn grow_cpus(&mut self, cpus: usize) -> usize {
        let current = self.cpu_count();
        if cpus <= current {
            return current;
        }
        let shards_n = self.shards.len();
        let mut base = 0usize;
        for k in 0..shards_n {
            let target = cpus / shards_n + usize::from(k < cpus % shards_n);
            // Per-shard grow is monotonic, so an already-larger shard
            // keeps its size (mirrors the unsharded no-shrink rule).
            let got = if target > self.shards[k].machine().cpu_count() {
                self.shards[k].grow_cpus(target)
            } else {
                self.shards[k].machine().cpu_count()
            };
            self.cpu_base[k] = base;
            base += got;
        }
        self.cpu_base[shards_n] = base;
        base
    }

    /// Changes the trace sampling interval on every shard.
    pub fn set_trace_interval(&mut self, interval: SimTime) {
        for shard in &mut self.shards {
            shard.set_trace_interval(interval);
        }
    }

    /// Enables structured trace recording: one shared ring across every
    /// shard (the recorder is internally synchronised and recording never
    /// allocates).
    pub fn enable_telemetry(&mut self, config: TelemetryConfig) -> Arc<Recorder> {
        let recorder = Recorder::new(config);
        for shard in &mut self.shards {
            shard.attach_telemetry(recorder.clone());
        }
        self.telemetry = Some(recorder.clone());
        recorder
    }

    /// The shared trace recorder, if telemetry is enabled.
    pub fn telemetry_recorder(&self) -> Option<Arc<Recorder>> {
        self.telemetry.clone()
    }

    /// Aggregate statistics over every shard: scalar counters summed,
    /// per-CPU entries concatenated in shard order (so the global CPU
    /// index of [`ShardedSim::cpu_of`] indexes `per_cpu` directly).
    pub fn stats(&self) -> SimStats {
        if self.shards.len() == 1 {
            return self.shards[0].stats();
        }
        let mut total = SimStats::default();
        for shard in &self.shards {
            let s = shard.stats();
            total.controller_invocations += s.controller_invocations;
            total.controller_cost_us += s.controller_cost_us;
            total.dispatch_overhead_us += s.dispatch_overhead_us;
            total.quality_exceptions += s.quality_exceptions;
            total.squish_events += s.squish_events;
            total.admission_rejections += s.admission_rejections;
            total.migrations += s.migrations;
            total.steps += s.steps;
            total.per_cpu.extend(s.per_cpu);
        }
        total.migrations += self.rebalance_migrations;
        total
    }

    /// Machine-wide telemetry counters: per-shard snapshots summed, the
    /// shared ring's `trace_events_*` taken once, and the rebalancer's
    /// own counters added.
    pub fn telemetry_snapshot(&self) -> TelemetrySnapshot {
        let mut snap = TelemetrySnapshot::default();
        for shard in &self.shards {
            snap.absorb(&shard.telemetry_snapshot());
        }
        snap.trace_events_recorded = self.telemetry.as_ref().map(|r| r.recorded()).unwrap_or(0);
        snap.trace_events_dropped = self.telemetry.as_ref().map(|r| r.dropped()).unwrap_or(0);
        snap.rebalance_cycles = self.rebalance_cycles;
        snap.rebalance_migrations = self.rebalance_migrations;
        snap.finalize()
    }

    /// The recorded trace: the inner simulation's own trace with one
    /// shard, the barrier-merged cross-shard view otherwise.
    pub fn trace(&self) -> &Trace {
        if self.shards.len() == 1 {
            self.shards[0].trace()
        } else {
            &self.merged_trace
        }
    }

    /// Runs the simulation for `duration_s` simulated seconds.
    pub fn run_for(&mut self, duration_s: f64) {
        let end = self.now_micros() + (duration_s * 1e6).round() as u64;
        self.run_until_micros(end);
    }

    /// Runs the simulation until the given absolute simulated time.
    ///
    /// Multi-shard: shards advance independently (in parallel when
    /// configured) to each rebalance barrier at the
    /// [`ShardConfig::rebalance_interval_s`] cadence; at the barrier the
    /// rebalancer runs and traces merge.  Single shard: direct
    /// delegation, no barriers.
    pub fn run_until_micros(&mut self, end_us: u64) {
        if self.shards.len() == 1 {
            self.shards[0].run_until_micros(end_us);
            return;
        }
        let interval_us = (self.shard_config.rebalance_interval_s * 1e6)
            .round()
            .max(1.0) as u64;
        while self.clock_us < end_us {
            if end_us <= self.next_rebalance_us {
                self.advance_all(end_us);
                self.clock_us = end_us;
                break;
            }
            let barrier = self.next_rebalance_us;
            self.advance_all(barrier);
            self.clock_us = barrier;
            self.merge_traces();
            self.rebalance(barrier);
            while self.next_rebalance_us <= barrier {
                self.next_rebalance_us += interval_us;
            }
        }
        self.merge_traces();
    }

    /// Advances every shard to `target_us` — each on its own scoped OS
    /// thread when parallel execution is on.  Shards share no mutable
    /// state on this path (the registry and telemetry ring are internally
    /// synchronised), so sequential and parallel advance are identical.
    fn advance_all(&mut self, target_us: u64) {
        if self.shard_config.parallel {
            std::thread::scope(|scope| {
                for shard in &mut self.shards {
                    if shard.now_micros() < target_us {
                        scope.spawn(move || shard.run_until_micros(target_us));
                    }
                }
            });
        } else {
            for shard in &mut self.shards {
                if shard.now_micros() < target_us {
                    shard.run_until_micros(target_us);
                }
            }
        }
    }

    /// One rebalance cycle at a barrier: compare per-CPU granted load
    /// across shards and migrate `Miscellaneous` jobs (with no registry
    /// attachments) from the most to the least loaded shard until the gap
    /// halves or candidates run out.
    fn rebalance(&mut self, barrier_us: u64) {
        self.rebalance_cycles += 1;
        for (k, shard) in self.shards.iter().enumerate() {
            let cpus = shard.machine().cpu_count().max(1) as u64;
            self.loads[k] = shard.controller().granted_total_ppt() / cpus;
        }
        let (mut src, mut dst) = (0usize, 0usize);
        for k in 1..self.loads.len() {
            if self.loads[k] > self.loads[src] {
                src = k;
            }
            if self.loads[k] < self.loads[dst] {
                dst = k;
            }
        }
        let gap = self.loads[src].saturating_sub(self.loads[dst]);
        let mut moved = 0u32;
        if src != dst && gap > self.shard_config.rebalance_threshold_ppt {
            // Move roughly half the per-CPU gap's worth of granted load,
            // scaled by the destination's CPU count.
            let want_ppt = gap / 2 * self.shards[dst].machine().cpu_count().max(1) as u64;
            self.candidates.clear();
            {
                let registry = &self.registry;
                let candidates = &mut self.candidates;
                self.shards[src]
                    .controller()
                    .for_each_job(|job, class, granted| {
                        if class == JobClass::Miscellaneous && !registry.has_attachments(job.key())
                        {
                            candidates.push((job, granted.ppt()));
                        }
                    });
            }
            let mut moved_ppt = 0u64;
            for i in 0..self.candidates.len() {
                if moved_ppt >= want_ppt {
                    break;
                }
                let (job, _) = self.candidates[i];
                let Some(migrated) = self.shards[src].extract_job(job) else {
                    continue;
                };
                let granted = migrated.granted_ppt() as u64;
                let cpu = self.shards[dst].machine().least_loaded_cpu();
                let handle = self.shards[dst]
                    .inject_job(migrated, cpu)
                    .expect("ids are globally unique across shards");
                self.note_job(handle.job, dst);
                moved_ppt += granted;
                moved += 1;
                self.rebalance_migrations += 1;
                if let Some(t) = &self.telemetry {
                    t.record(
                        barrier_us,
                        TraceEventKind::Rebalance {
                            from_shard: src as u32,
                            to_shard: dst as u32,
                            thread: job.0,
                            moved: 1,
                        },
                    );
                }
            }
        }
        if let Some(t) = &self.telemetry {
            t.record(
                barrier_us,
                TraceEventKind::Rebalance {
                    from_shard: src as u32,
                    to_shard: dst as u32,
                    thread: 0,
                    moved,
                },
            );
        }
    }

    /// Folds newly recorded per-shard trace samples into the merged
    /// cross-shard trace.  Per-job series (`alloc/`, `period/`, `rate/`)
    /// come from the shard that owns the job; `fill/*` queue series are
    /// taken from shard 0 only, because the registry is shared and every
    /// shard samples every queue.
    fn merge_traces(&mut self) {
        for (k, shard) in self.shards.iter().enumerate() {
            // One counter comparison skips the whole per-series walk for
            // a quiet shard — with tracing at a slow cadence (or pushed
            // past the horizon, as the throughput benches do) this makes
            // the barrier's trace work free.
            let total = shard.trace().total_samples();
            if total == self.trace_seen[k] {
                continue;
            }
            self.trace_seen[k] = total;
            let cursor = &mut self.trace_cursor[k];
            for (name, series) in shard.trace().iter() {
                if k > 0 && name.starts_with("fill/") {
                    continue;
                }
                // `get_mut` first: the by-value `entry` key would allocate
                // a `String` on every barrier even for known series, and
                // barrier merges sit inside the zero-alloc window measured
                // by `tests/zero_alloc_steady_state.rs` when no new
                // samples arrived.
                let seen = match cursor.get_mut(name) {
                    Some(seen) => seen,
                    None => cursor.entry(name.to_string()).or_insert(0),
                };
                let samples = series.samples();
                for s in &samples[*seen..] {
                    self.merged_trace.record(name, s.time, s.value);
                }
                *seen = samples.len();
            }
        }
    }
}

impl std::fmt::Debug for ShardedSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedSim")
            .field("shards", &self.shards.len())
            .field("cpus", &self.cpu_count())
            .field("now_us", &self.now_micros())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::RunResult;

    struct Spin;
    impl WorkModel for Spin {
        fn run(&mut self, _now: u64, quantum_us: u64, _hz: f64) -> RunResult {
            RunResult::ran(quantum_us)
        }
    }

    fn sharded(cpus: usize, shards: usize) -> ShardedSim {
        ShardedSim::new(
            SimConfig::default().with_cpus(cpus),
            ShardConfig::default().with_shards(shards),
        )
    }

    #[test]
    fn cpus_are_dealt_evenly() {
        let sim = sharded(10, 4);
        let counts: Vec<usize> = (0..4).map(|k| sim.shard(k).machine().cpu_count()).collect();
        assert_eq!(counts, vec![3, 3, 2, 2]);
        assert_eq!(sim.cpu_count(), 10);
    }

    #[test]
    fn ids_are_globally_unique_and_strided() {
        let mut sim = sharded(4, 4);
        let mut ids = Vec::new();
        for i in 0..12 {
            let h = sim
                .add_job(&format!("j{i}"), JobSpec::miscellaneous(), Box::new(Spin))
                .unwrap();
            ids.push(h.job.0);
        }
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), ids.len(), "raw ids must never collide");
    }

    #[test]
    fn misc_jobs_spread_and_coupled_jobs_anchor() {
        let mut sim = sharded(8, 4);
        for i in 0..8 {
            sim.add_job(&format!("hog{i}"), JobSpec::miscellaneous(), Box::new(Spin))
                .unwrap();
        }
        sim.run_for(0.05);
        let populated = (0..4)
            .filter(|&k| sim.shard(k).controller().job_count() > 0)
            .count();
        assert!(populated > 1, "misc jobs should spread across shards");
        let rt = sim
            .add_job(
                "rt",
                JobSpec::real_time(Proportion::from_ppt(100), Period::from_millis(10)),
                Box::new(Spin),
            )
            .unwrap();
        assert_eq!(
            sim.shard_of(rt.job),
            Some(0),
            "reservations anchor to shard 0"
        );
    }

    #[test]
    fn rebalancer_levels_a_skewed_machine() {
        let mut sim = ShardedSim::new(
            SimConfig::default().with_cpus(4),
            ShardConfig {
                shards: 2,
                rebalance_interval_s: 0.05,
                rebalance_threshold_ppt: 10,
                parallel: false,
            },
        );
        // Load shard 0 only: misc spread is by granted load, which is
        // zero for everyone at admission, so force the skew by adding
        // them before any controller cycle grows grants apart.
        let mut handles = Vec::new();
        for i in 0..12 {
            handles.push(
                sim.add_job(&format!("hog{i}"), JobSpec::miscellaneous(), Box::new(Spin))
                    .unwrap(),
            );
        }
        sim.run_for(1.0);
        let (cycles, _) = sim.rebalance_counts();
        assert!(cycles >= 10, "rebalancer must run at its cadence");
        // No job lost: every handle still resolves.
        for h in &handles {
            assert!(sim.shard_of(h.job).is_some());
            assert!(sim.current_allocation_ppt(*h) > 0);
        }
        let c0 = sim.shard(0).controller().job_count();
        let c1 = sim.shard(1).controller().job_count();
        assert_eq!(c0 + c1, 12, "jobs are conserved across shards");
    }

    use proptest::prelude::*;

    proptest! {
        /// The conservation oracle: across random interleavings of job
        /// arrivals, removals, advances (spanning many rebalance
        /// barriers) and CPU hot-adds, the sharded machine never loses a
        /// job, never loses or duplicates CPU capacity, and every live
        /// job stays reachable through the public by-id queries even
        /// after the rebalancer has reassigned its slot.
        #[test]
        fn sharded_conserves_jobs_and_capacity(
            shards in 1usize..5,
            ops in proptest::collection::vec((0u8..4, 1u64..200), 5..30),
        ) {
            let mut sim = ShardedSim::new(
                SimConfig::default().with_cpus(8),
                ShardConfig {
                    shards,
                    rebalance_interval_s: 0.02,
                    rebalance_threshold_ppt: 10,
                    parallel: false,
                },
            );
            let mut live: Vec<JobHandle> = Vec::new();
            let mut added = 0u64;
            for (op, arg) in ops {
                match op {
                    0 => {
                        let h = sim
                            .add_job(&format!("j{added}"), JobSpec::miscellaneous(), Box::new(Spin))
                            .expect("misc admission never fails");
                        added += 1;
                        live.push(h);
                    }
                    1 => {
                        if !live.is_empty() {
                            let h = live.remove(arg as usize % live.len());
                            sim.remove_job(h);
                            prop_assert!(sim.shard_of(h.job).is_none());
                        }
                    }
                    2 => sim.run_for(arg as f64 / 1000.0),
                    _ => {
                        let target = sim.cpu_count() + arg as usize % 3;
                        let got = sim.grow_cpus(target);
                        prop_assert!(got >= target.min(got));
                    }
                }
                // No job loss, no duplication: the shards' controllers
                // together hold exactly the live set.
                let tracked: usize = (0..sim.shard_count())
                    .map(|k| sim.shard(k).controller().job_count())
                    .sum();
                prop_assert_eq!(tracked, live.len());
                for h in &live {
                    prop_assert!(sim.shard_of(h.job).is_some());
                    let fresh = sim
                        .shard(sim.shard_of(h.job).unwrap())
                        .handle_of(h.job);
                    prop_assert!(fresh.is_some(), "live job must stay resolvable by id");
                }
                // Capacity conservation: the shards partition the machine.
                let shard_cpus: usize = (0..sim.shard_count())
                    .map(|k| sim.shard(k).machine().cpu_count())
                    .sum();
                prop_assert_eq!(shard_cpus, sim.cpu_count());
                // Per-shard grants never exceed the shard's capacity (the
                // squish stage's guarantee must survive inject).
                for k in 0..sim.shard_count() {
                    let cap = 1000 * sim.shard(k).machine().cpu_count() as u64;
                    prop_assert!(sim.shard(k).controller().granted_total_ppt() <= cap);
                }
            }
        }
    }

    #[test]
    fn parallel_and_sequential_advance_agree() {
        let run = |parallel: bool| {
            let mut sim = ShardedSim::new(
                SimConfig::default().with_cpus(4),
                ShardConfig {
                    shards: 2,
                    rebalance_interval_s: 0.05,
                    rebalance_threshold_ppt: 10,
                    parallel,
                },
            );
            for i in 0..8 {
                sim.add_job(&format!("hog{i}"), JobSpec::miscellaneous(), Box::new(Spin))
                    .unwrap();
            }
            sim.run_for(0.5);
            (sim.stats(), sim.telemetry_snapshot())
        };
        let (seq_stats, seq_snap) = run(false);
        let (par_stats, par_snap) = run(true);
        assert_eq!(seq_stats, par_stats);
        assert_eq!(seq_snap, par_snap);
    }
}
