//! The work-model abstraction executed by simulated threads.

use rrs_core::SimTime;

/// What happened when a work model was given the CPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunResult {
    /// How much CPU time the thread actually consumed, in microseconds.
    /// Never more than the quantum it was offered.
    pub used_us: u64,
    /// Whether the thread blocked (on a full/empty queue, I/O, or a timer)
    /// before its quantum expired.
    pub blocked: bool,
}

impl RunResult {
    /// The thread used the whole quantum and remains runnable.
    pub fn ran(used_us: u64) -> Self {
        Self {
            used_us,
            blocked: false,
        }
    }

    /// The thread used part of the quantum and then blocked.
    pub fn blocked_after(used_us: u64) -> Self {
        Self {
            used_us,
            blocked: true,
        }
    }
}

/// A simulated thread body.
///
/// The simulator gives the model CPU in quanta decided by the dispatcher;
/// the model reports how much it used and whether it blocked.  Blocked
/// models are polled with [`WorkModel::poll_unblock`] until they report they
/// can run again (typically because queue space or data became available).
pub trait WorkModel: Send {
    /// Runs for up to `quantum_us` microseconds of CPU at `cpu_hz` cycles
    /// per second, starting at simulated time `now_us`.
    fn run(&mut self, now_us: u64, quantum_us: u64, cpu_hz: f64) -> RunResult;

    /// Returns `true` if a blocked thread can be woken at `now_us`.
    ///
    /// The default implementation always wakes the thread, which is correct
    /// for models that never actually block.
    fn poll_unblock(&mut self, _now_us: u64) -> bool {
        true
    }

    /// The next instant at which a model that just blocked (at `now`) can
    /// change state, if it knows one.
    ///
    /// Calendar stepping queries this right after a block: `Some(t)`
    /// schedules a single wake-up event at `t` — the model is still asked
    /// to confirm via [`WorkModel::poll_unblock`] when it fires — while
    /// `None` (the default) falls back to polling the model at the
    /// dispatch-interval cadence, which is how every model behaves under
    /// lockstep stepping.  Models blocked on a timer (I/O completion, a
    /// sleep until the next frame) should override this; models blocked on
    /// another job's progress (a full or empty queue) cannot know and
    /// should not.
    fn next_transition(&self, _now: SimTime) -> Option<SimTime> {
        None
    }

    /// An optional cumulative progress counter (for example total bytes
    /// processed).  When present, the simulator differentiates it between
    /// trace samples to record a progress *rate* series, which is how the
    /// "rate of progress (bytes/sec)" curves of Figure 6 are produced.
    fn progress_counter(&self) -> Option<f64> {
        None
    }

    /// A short label for traces.
    fn label(&self) -> &str {
        "work"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Spin;
    impl WorkModel for Spin {
        fn run(&mut self, _now: u64, quantum_us: u64, _hz: f64) -> RunResult {
            RunResult::ran(quantum_us)
        }
    }

    #[test]
    fn run_result_constructors() {
        assert_eq!(
            RunResult::ran(10),
            RunResult {
                used_us: 10,
                blocked: false
            }
        );
        assert_eq!(
            RunResult::blocked_after(3),
            RunResult {
                used_us: 3,
                blocked: true
            }
        );
    }

    #[test]
    fn default_trait_methods() {
        let mut s = Spin;
        assert!(s.poll_unblock(0));
        assert!(s.progress_counter().is_none());
        assert_eq!(s.label(), "work");
        assert_eq!(s.run(0, 5, 1e6).used_us, 5);
    }
}
