//! Named time-series traces recorded during a simulation run.

use rrs_metrics::TimeSeries;
use std::collections::BTreeMap;

/// A collection of named [`TimeSeries`] recorded during a run.
///
/// The simulator records allocations, queue fill levels and progress rates
/// under conventional names (`alloc/<job>`, `fill/<queue>`,
/// `rate/<job>`); workloads and benches may record arbitrary extra series.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    series: BTreeMap<String, TimeSeries>,
    total_samples: u64,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a sample to the named series, creating it if needed.
    pub fn record(&mut self, name: &str, time_s: f64, value: f64) {
        self.series
            .entry(name.to_string())
            .or_insert_with(|| TimeSeries::new(name))
            .push(time_s, value);
        self.total_samples += 1;
    }

    /// Monotonic count of samples ever recorded, across all series.
    ///
    /// Lets a reader that folds traces incrementally (the sharded
    /// machine's barrier merge) detect "nothing new since last look"
    /// with one comparison instead of walking every series.
    pub fn total_samples(&self) -> u64 {
        self.total_samples
    }

    /// Returns the named series, if it exists.
    pub fn get(&self, name: &str) -> Option<&TimeSeries> {
        self.series.get(name)
    }

    /// Returns the names of all recorded series.
    pub fn names(&self) -> Vec<String> {
        self.series.keys().cloned().collect()
    }

    /// Iterates over `(name, series)` pairs in name order, without
    /// cloning.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &TimeSeries)> {
        self.series.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of series.
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// Returns `true` if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// Consumes the trace and returns all series.
    pub fn into_series(self) -> Vec<TimeSeries> {
        self.series.into_values().collect()
    }

    /// Returns clones of all series.
    pub fn all_series(&self) -> Vec<TimeSeries> {
        self.series.values().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_get() {
        let mut t = Trace::new();
        assert!(t.is_empty());
        t.record("alloc/consumer", 0.0, 100.0);
        t.record("alloc/consumer", 0.1, 150.0);
        t.record("fill/q", 0.0, 0.5);
        assert_eq!(t.len(), 2);
        assert_eq!(t.get("alloc/consumer").unwrap().len(), 2);
        assert!(t.get("missing").is_none());
        assert_eq!(
            t.names(),
            vec!["alloc/consumer".to_string(), "fill/q".to_string()]
        );
    }

    #[test]
    fn into_series_preserves_data() {
        let mut t = Trace::new();
        t.record("a", 0.0, 1.0);
        t.record("b", 0.0, 2.0);
        let all = t.all_series();
        assert_eq!(all.len(), 2);
        let series = t.into_series();
        assert_eq!(series.len(), 2);
        assert_eq!(series[0].name(), "a");
    }
}
