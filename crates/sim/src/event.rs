//! The typed events the simulator's calendar schedules.

use rrs_scheduler::ThreadId;

/// One scheduled occurrence in the simulator's event calendar.
///
/// Everything that used to be discovered by polling every lockstep tick —
/// controller cycles, trace samples, workload wake-ups — is now a typed
/// entry in the [`crate::calendar::Schedule`]; between events nothing
/// happens that the dispatch assignment cannot describe analytically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// A controller cycle is due: drain usage feedback, run the pipeline,
    /// apply the changed reservations, charge the modelled cost.
    Controller,
    /// A trace sample is due.
    Trace,
    /// A blocked thread announced (via
    /// [`crate::workload::WorkModel::next_transition`]) that it becomes
    /// runnable at this instant.
    Wake(ThreadId),
    /// At least one blocked thread could not announce its wake-up time;
    /// poll all such threads now (at dispatch-interval cadence).
    PollTick,
    /// The end of the current `run_for` window.  Nothing is processed —
    /// the loop stops exactly here so events landing *on* the horizon
    /// fire when the run resumes.
    Horizon,
}

impl Event {
    /// Tie-breaking rank for events scheduled at the same instant, mirroring
    /// the order the old lockstep `step()` handled them within one tick:
    /// controller work first, then the trace sample, then wake-ups.
    pub(crate) fn priority(&self) -> u8 {
        match self {
            Event::Controller => 0,
            Event::Trace => 1,
            Event::Wake(_) => 2,
            Event::PollTick => 3,
            Event::Horizon => 4,
        }
    }
}
