//! Property tests for cross-CPU migration.
//!
//! `Dispatcher::take_thread` / `Dispatcher::inject_thread` (via
//! `Machine::migrate`) must transplant a thread's *entire* scheduling
//! state: whatever interleaving of dispatches, partial charges, blocks,
//! reservation changes and clock advances preceded the migration, the
//! thread must continue on the destination CPU exactly as it would have
//! on the source.  The oracle is a plain single-CPU [`Dispatcher`] driven
//! with the identical operation sequence but no migrations: reservation,
//! throttle state and mid-period usage accounting must stay bit-for-bit
//! equal after every operation.

use proptest::prelude::*;
use rrs_scheduler::{
    CpuId, Dispatcher, DispatcherConfig, Machine, Period, Proportion, Reservation, ThreadId,
    UsageAccount,
};

fn assert_accounts_equal(machine: &UsageAccount, oracle: &UsageAccount) {
    assert_eq!(machine.period_start_us, oracle.period_start_us);
    assert_eq!(machine.budget_us, oracle.budget_us);
    assert_eq!(machine.used_this_period_us, oracle.used_this_period_us);
    assert_eq!(
        machine.was_runnable_this_period,
        oracle.was_runnable_this_period
    );
    assert_eq!(machine.total_used_us, oracle.total_used_us);
    assert_eq!(machine.total_budget_us, oracle.total_budget_us);
    assert_eq!(machine.periods_completed, oracle.periods_completed);
    assert_eq!(machine.deadlines_missed, oracle.deadlines_missed);
    assert_eq!(machine.last_period_used_us, oracle.last_period_used_us);
    assert_eq!(machine.last_period_budget_us, oracle.last_period_budget_us);
}

proptest! {
    #[test]
    fn migrating_thread_tracks_a_single_cpu_oracle(
        cpus in 2usize..=4,
        ppt in 50u32..=900,
        period_ms in 1u64..=20,
        ops in collection::vec((0u8..=4, 0u64..4096, 1u64..=2000), 1..=60),
    ) {
        let config = DispatcherConfig::default();
        let mut machine = Machine::new(config, cpus);
        let mut oracle = Dispatcher::new(config);
        let id = ThreadId(1);
        let reservation = Reservation::new(
            Proportion::from_ppt(ppt),
            Period::from_millis(period_ms),
        );
        machine
            .add_thread_preadmitted_on(CpuId(0), id, reservation)
            .unwrap();
        oracle.add_thread_preadmitted(id, reservation).unwrap();

        for (op, target, param) in ops {
            match op {
                // One dispatch round on the thread's CPU, charging a
                // random share of the granted quantum.
                0 => {
                    let cpu = machine.cpu_of(id).unwrap();
                    let got = machine.dispatch(cpu);
                    let want = oracle.dispatch();
                    prop_assert_eq!(got, want, "dispatch outcomes diverged");
                    if let Some(t) = got.thread {
                        let used = (got.quantum_us * (param % 101) / 100)
                            .clamp(1, got.quantum_us);
                        machine.charge(t, used).unwrap();
                        oracle.charge(t, used).unwrap();
                    }
                    let next = machine.now_us() + got.quantum_us.max(1);
                    machine.advance_to(next);
                    oracle.advance_to(next);
                }
                // A bare clock advance (possibly across period boundaries).
                1 => {
                    let next = machine.now_us() + param;
                    machine.advance_to(next);
                    oracle.advance_to(next);
                }
                // Block / unblock (both sides must agree on the outcome).
                2 => {
                    if param % 2 == 0 {
                        prop_assert_eq!(machine.block(id).is_ok(), oracle.block(id).is_ok());
                    } else {
                        prop_assert_eq!(machine.unblock(id).is_ok(), oracle.unblock(id).is_ok());
                    }
                }
                // The operation under test: migrate to an arbitrary CPU
                // (possibly the one it is already on).  The oracle does
                // nothing — migration must be invisible to the thread.
                3 => {
                    let to = CpuId((target % cpus as u64) as u32);
                    machine.migrate(id, to).unwrap();
                    prop_assert_eq!(machine.cpu_of(id), Some(to));
                }
                // A controller-style reservation change.
                _ => {
                    let new = Reservation::new(
                        Proportion::from_ppt(50 + (param % 850) as u32),
                        Period::from_millis(1 + target % 20),
                    );
                    prop_assert_eq!(
                        machine.set_reservation(id, new).is_ok(),
                        oracle.set_reservation(id, new).is_ok()
                    );
                }
            }

            // After *every* operation the thread must be indistinguishable
            // from the never-migrated oracle.
            prop_assert_eq!(machine.reservation(id), oracle.reservation(id));
            let cpu = machine.cpu_of(id).unwrap();
            prop_assert_eq!(
                machine.dispatcher(cpu).thread_state(id),
                oracle.thread_state(id),
                "throttle/run state diverged"
            );
            assert_accounts_equal(
                machine.usage_ref(id).unwrap(),
                oracle.usage_ref(id).unwrap(),
            );
        }
    }

    #[test]
    fn migration_is_a_pure_move_in_a_populated_machine(
        cpus in 2usize..=4,
        threads in 2u64..=6,
        rounds in collection::vec((0u64..4096, 0u64..4096), 1..=40),
    ) {
        // Several reserved threads run concurrently; random migrations
        // interleave with dispatch rounds on every CPU.  Each migration
        // must move exactly one thread's reservation and account without
        // touching anyone else's, and machine-wide load must always equal
        // the sum of the per-thread reservations.
        let config = DispatcherConfig::default();
        let mut machine = Machine::new(config, cpus);
        let mut expected_total = 0;
        for i in 0..threads {
            let r = Reservation::new(
                Proportion::from_ppt(100 + (i as u32 * 37) % 200),
                Period::from_millis(5 + i % 10),
            );
            expected_total += r.proportion.ppt();
            machine.add_thread_preadmitted(ThreadId(i), r).unwrap();
        }
        for (pick, to) in rounds {
            // One lockstep dispatch round.
            let mut max_q = 1;
            for cpu in 0..cpus {
                let o = machine.dispatch(CpuId(cpu as u32));
                if let Some(t) = o.thread {
                    machine.charge(t, o.quantum_us).unwrap();
                }
                max_q = max_q.max(o.quantum_us);
            }
            machine.advance_to(machine.now_us() + max_q);

            // Migrate one random thread and snapshot it across the move.
            let id = ThreadId(pick % threads);
            let to = CpuId((to % cpus as u64) as u32);
            let before_account = machine.usage(id).unwrap();
            let before_reservation = machine.reservation(id).unwrap();
            let before_state = machine
                .dispatcher(machine.cpu_of(id).unwrap())
                .thread_state(id)
                .unwrap();
            machine.migrate(id, to).unwrap();
            prop_assert_eq!(machine.cpu_of(id), Some(to));
            prop_assert_eq!(machine.reservation(id), Some(before_reservation));
            prop_assert_eq!(
                machine.dispatcher(to).thread_state(id),
                Some(before_state)
            );
            assert_accounts_equal(machine.usage_ref(id).unwrap(), &before_account);

            // Conservation: nobody was lost, duplicated or re-weighted.
            prop_assert_eq!(machine.thread_count(), threads as usize);
            prop_assert_eq!(machine.total_reserved_ppt(), expected_total);
            let spread: u32 = machine.cpu_ids().map(|c| machine.cpu_load_ppt(c)).sum();
            prop_assert_eq!(spread, expected_total);
        }
    }
}
