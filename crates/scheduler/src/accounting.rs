//! Per-thread, per-period usage accounting.
//!
//! The controller "compares the CPU used by a thread with the amount
//! allocated to it" to reclaim over-allocation (§3.3, Figure 4), and the
//! dispatcher must know when a thread has "used its allocation for its
//! period" so it can be put to sleep until the next period (§3.1).  This
//! module keeps those books.

use serde::{Deserialize, Serialize};

/// Usage accounting for one thread.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct UsageAccount {
    /// Start of the current period, in microseconds of scheduler time.
    pub period_start_us: u64,
    /// Budget for the current period, in microseconds.
    pub budget_us: u64,
    /// CPU consumed in the current period, in microseconds.
    pub used_this_period_us: u64,
    /// Whether the thread was ever runnable (ready or running) during the
    /// current period; used to distinguish "missed deadline" from "did not
    /// want to run".
    pub was_runnable_this_period: bool,
    /// Total CPU consumed over the thread's lifetime, in microseconds.
    pub total_used_us: u64,
    /// Total CPU budgeted over the thread's lifetime, in microseconds.
    pub total_budget_us: u64,
    /// Number of completed periods.
    pub periods_completed: u64,
    /// Number of periods in which the thread wanted to run but did not
    /// receive its full budget.
    pub deadlines_missed: u64,
    /// CPU used in the most recently completed period, in microseconds.
    pub last_period_used_us: u64,
    /// Budget of the most recently completed period, in microseconds.
    pub last_period_budget_us: u64,
}

impl UsageAccount {
    /// Creates a fresh account starting a period at `now_us` with the given
    /// budget.
    pub fn new(now_us: u64, budget_us: u64) -> Self {
        Self {
            period_start_us: now_us,
            budget_us,
            ..Self::default()
        }
    }

    /// Records that the thread ran for `us` microseconds.
    pub fn charge(&mut self, us: u64) {
        self.used_this_period_us += us;
        self.total_used_us += us;
    }

    /// Remaining budget in the current period.
    pub fn remaining_us(&self) -> u64 {
        self.budget_us.saturating_sub(self.used_this_period_us)
    }

    /// Returns `true` when the thread has exhausted its budget.
    ///
    /// A zero budget counts as exhausted as soon as any CPU is consumed:
    /// an explicit zero-proportion reservation grants nothing, so the
    /// thread must throttle after its first (minimal) quantum instead of
    /// winning every rate-monotonic dispatch for free.  Best-effort
    /// threads are governed by their time slice, not this check.
    pub fn exhausted(&self) -> bool {
        self.used_this_period_us >= self.budget_us && self.used_this_period_us > 0
    }

    /// Marks that the thread was runnable at some point this period.
    pub fn mark_runnable(&mut self) {
        self.was_runnable_this_period = true;
    }

    /// Closes the current period at `now_us`, opening a new one with
    /// `next_budget_us`.  Returns `true` if the closing period counts as a
    /// missed deadline (the thread was runnable but did not receive its full
    /// budget).
    pub fn roll_period(&mut self, now_us: u64, next_budget_us: u64) -> bool {
        let missed = self.was_runnable_this_period
            && self.budget_us > 0
            && self.used_this_period_us < self.budget_us;
        if missed {
            self.deadlines_missed += 1;
        }
        self.periods_completed += 1;
        self.total_budget_us += self.budget_us;
        self.last_period_used_us = self.used_this_period_us;
        self.last_period_budget_us = self.budget_us;

        self.period_start_us = now_us;
        self.budget_us = next_budget_us;
        self.used_this_period_us = 0;
        self.was_runnable_this_period = false;
        missed
    }

    /// Closes `k >= 1` consecutive periods in one `O(1)` batch — the lazy
    /// rollover used by [`crate::DispatcherConfig::lazy_rollovers`], where a
    /// thread's account is only brought up to date when the thread is next
    /// touched and may be several boundaries behind.
    ///
    /// The first boundary closes the in-flight period exactly like
    /// [`UsageAccount::roll_period`] (real usage, real runnable flag, old
    /// budget).  Boundaries `2..=k` close periods in which the thread was
    /// untouched, so each used zero CPU under the refreshed budget and
    /// counts as a missed deadline iff `runnable_rest` (whether the thread
    /// sat runnable through them) and the budget is non-zero — the same
    /// verdict the eager path reaches by re-marking a runnable thread at
    /// every boundary.  `final_start_us` is the last boundary's instant and
    /// becomes the new period start.  Returns how many of the `k` closed
    /// periods missed their deadline.
    pub fn roll_periods(
        &mut self,
        k: u64,
        next_budget_us: u64,
        runnable_rest: bool,
        final_start_us: u64,
    ) -> u64 {
        debug_assert!(k >= 1);
        let mut missed = u64::from(
            self.was_runnable_this_period
                && self.budget_us > 0
                && self.used_this_period_us < self.budget_us,
        );
        self.total_budget_us += self.budget_us;
        self.last_period_used_us = self.used_this_period_us;
        self.last_period_budget_us = self.budget_us;
        let rest = k - 1;
        if rest > 0 {
            if runnable_rest && next_budget_us > 0 {
                missed += rest;
            }
            self.total_budget_us += rest * next_budget_us;
            self.last_period_used_us = 0;
            self.last_period_budget_us = next_budget_us;
        }
        self.deadlines_missed += missed;
        self.periods_completed += k;
        self.period_start_us = final_start_us;
        self.budget_us = next_budget_us;
        self.used_this_period_us = 0;
        self.was_runnable_this_period = false;
        missed
    }

    /// Fraction of the last completed period's budget that was actually
    /// used, in `[0, 1]`; 1.0 when the last budget was zero (nothing was
    /// wasted).  The controller's reclamation rule (Figure 4) reduces the
    /// allocation when this falls below a threshold.
    pub fn last_period_usage_ratio(&self) -> f64 {
        if self.last_period_budget_us == 0 {
            1.0
        } else {
            (self.last_period_used_us as f64 / self.last_period_budget_us as f64).min(1.0)
        }
    }

    /// Lifetime usage ratio (total used / total budgeted), 1.0 when nothing
    /// has been budgeted yet.
    pub fn lifetime_usage_ratio(&self) -> f64 {
        if self.total_budget_us == 0 {
            1.0
        } else {
            (self.total_used_us as f64 / self.total_budget_us as f64).min(1.0)
        }
    }

    /// Lifetime deadline-miss ratio.
    pub fn miss_ratio(&self) -> f64 {
        if self.periods_completed == 0 {
            0.0
        } else {
            self.deadlines_missed as f64 / self.periods_completed as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn charge_and_remaining() {
        let mut a = UsageAccount::new(0, 1000);
        assert_eq!(a.remaining_us(), 1000);
        a.charge(400);
        assert_eq!(a.remaining_us(), 600);
        assert!(!a.exhausted());
        a.charge(600);
        assert!(a.exhausted());
        assert_eq!(a.remaining_us(), 0);
    }

    #[test]
    fn overrun_does_not_underflow() {
        let mut a = UsageAccount::new(0, 100);
        a.charge(500);
        assert_eq!(a.remaining_us(), 0);
        assert!(a.exhausted());
    }

    #[test]
    fn zero_budget_exhausts_on_first_use() {
        // A fresh zero-budget account is dispatchable (so a newly reserved
        // or best-effort thread is not born throttled)...
        let mut a = UsageAccount::new(0, 0);
        assert!(!a.exhausted());
        // ...but a zero-proportion reservation grants nothing: the first
        // consumed microsecond exhausts it.
        a.charge(1);
        assert!(a.exhausted());
    }

    #[test]
    fn roll_period_detects_missed_deadline() {
        let mut a = UsageAccount::new(0, 1000);
        a.mark_runnable();
        a.charge(300);
        // The thread wanted to run, had 1000 µs of budget, but only got 300.
        let missed = a.roll_period(30_000, 1000);
        assert!(missed);
        assert_eq!(a.deadlines_missed, 1);
        assert_eq!(a.periods_completed, 1);
        assert_eq!(a.last_period_used_us, 300);
        assert!((a.last_period_usage_ratio() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn roll_period_without_demand_is_not_a_miss() {
        let mut a = UsageAccount::new(0, 1000);
        // The thread never became runnable (e.g. it was blocked all period).
        let missed = a.roll_period(30_000, 1000);
        assert!(!missed);
        assert_eq!(a.deadlines_missed, 0);
    }

    #[test]
    fn full_budget_use_is_not_a_miss() {
        let mut a = UsageAccount::new(0, 1000);
        a.mark_runnable();
        a.charge(1000);
        assert!(!a.roll_period(30_000, 1000));
        assert_eq!(a.miss_ratio(), 0.0);
    }

    #[test]
    fn ratios_track_lifetime() {
        let mut a = UsageAccount::new(0, 1000);
        a.mark_runnable();
        a.charge(500);
        a.roll_period(1000, 2000);
        a.mark_runnable();
        a.charge(2000);
        a.roll_period(2000, 1000);
        assert_eq!(a.periods_completed, 2);
        assert_eq!(a.total_used_us, 2500);
        assert_eq!(a.total_budget_us, 3000);
        assert!((a.lifetime_usage_ratio() - 2500.0 / 3000.0).abs() < 1e-12);
        assert_eq!(a.miss_ratio(), 0.5);
    }

    #[test]
    fn fresh_account_ratios() {
        let a = UsageAccount::new(0, 500);
        assert_eq!(a.last_period_usage_ratio(), 1.0);
        assert_eq!(a.lifetime_usage_ratio(), 1.0);
        assert_eq!(a.miss_ratio(), 0.0);
    }

    #[test]
    fn batch_roll_of_one_matches_roll_period() {
        let mut a = UsageAccount::new(0, 1000);
        let mut b = a;
        a.mark_runnable();
        b.mark_runnable();
        a.charge(300);
        b.charge(300);
        let missed = a.roll_period(30_000, 800);
        let batch_missed = b.roll_periods(1, 800, true, 30_000);
        assert_eq!(batch_missed, u64::from(missed));
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    proptest! {
        /// The `O(1)` batch roll must land on exactly the state the eager
        /// path reaches by rolling every boundary in turn (re-marking a
        /// runnable thread at each one).
        #[test]
        fn batch_roll_matches_eager_boundary_loop(
            k in 1u64..20,
            budget in 1u64..2_000,
            next_budget in 0u64..2_000,
            used in 0u64..3_000,
            started_runnable in proptest::bool::ANY,
            runnable_rest in proptest::bool::ANY,
        ) {
            let period = 10_000u64;
            let seed = |mark: bool| {
                let mut a = UsageAccount::new(0, budget);
                if mark {
                    a.mark_runnable();
                }
                a.charge(used);
                a
            };
            let mut eager = seed(started_runnable);
            for i in 1..=k {
                eager.roll_period(i * period, next_budget);
                if runnable_rest {
                    eager.mark_runnable();
                }
            }
            // The eager loop leaves `was_runnable` set for the new period;
            // the batch caller re-marks separately, mirroring the
            // dispatcher's sync step.
            let mut batch = seed(started_runnable);
            let missed = batch.roll_periods(k, next_budget, runnable_rest, k * period);
            if runnable_rest {
                batch.mark_runnable();
            }
            prop_assert_eq!(format!("{eager:?}"), format!("{batch:?}"));
            prop_assert_eq!(missed, batch.deadlines_missed);
        }

        #[test]
        fn used_never_exceeds_total(
            charges in proptest::collection::vec(0u64..10_000, 1..50),
            budget in 1u64..50_000,
        ) {
            let mut a = UsageAccount::new(0, budget);
            let mut total = 0u64;
            for (i, &c) in charges.iter().enumerate() {
                a.mark_runnable();
                a.charge(c);
                total += c;
                if i % 5 == 4 {
                    a.roll_period(i as u64 * 1000, budget);
                }
            }
            prop_assert_eq!(a.total_used_us, total);
            prop_assert!(a.miss_ratio() >= 0.0 && a.miss_ratio() <= 1.0);
            prop_assert!(a.lifetime_usage_ratio() >= 0.0 && a.lifetime_usage_ratio() <= 1.0);
        }
    }
}
