//! The goodness-indexed runnable queue.
//!
//! The dispatcher used to pick the next thread with a full scan over every
//! registered thread — `O(n)` per dispatch, paid even when one thread spins
//! alone on a 10k-job machine.  This module keeps the runnable threads in a
//! dense indexed binary heap ordered by the dispatch key (goodness,
//! recency, id), so the pick is an `O(1)` peek and every re-rank on a state
//! change is `O(log n)`.  Storage is two flat `Vec`s indexed by the
//! dispatcher's dense thread slots (mirroring the controller's
//! `SlotTable`): no per-operation allocation once the vectors have grown to
//! the population's high-water mark.

use crate::types::ThreadId;

/// The dispatch-priority key, ordered so that the *smallest* key is the
/// thread the dispatcher must pick.
///
/// Replicates the full-scan pick exactly: highest goodness first (stored
/// negated), least-recently-picked second, lowest thread id last.  The id
/// makes every key unique, so the heap's minimum is deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) struct RunKey {
    /// Negated goodness: higher goodness sorts first.
    pub neg_goodness: i64,
    /// Sequence number of the thread's last pick: earlier picks sort first.
    pub last_picked_seq: u64,
    /// Tie-break, and the payload the dispatcher reads back.
    pub id: ThreadId,
}

/// Heap position marker for "not runnable".
const ABSENT: u32 = u32::MAX;

/// An indexed min-heap of runnable threads, keyed by [`RunKey`] and
/// addressed by dense thread-slot index.
#[derive(Debug, Default)]
pub(crate) struct RunQueue {
    /// Heap-ordered `(key, slot)` pairs.
    heap: Vec<(RunKey, u32)>,
    /// `slot -> heap position`, [`ABSENT`] when the slot is not queued.
    pos: Vec<u32>,
}

impl RunQueue {
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of runnable threads (used by the invariant checks).
    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// The best runnable thread, if any: `(key, slot)` with the minimum key.
    pub fn peek(&self) -> Option<(RunKey, u32)> {
        self.heap.first().copied()
    }

    /// Returns `true` if `slot` is currently queued (used by the invariant
    /// checks).
    #[cfg(test)]
    pub fn contains(&self, slot: u32) -> bool {
        self.pos.get(slot as usize).is_some_and(|&p| p != ABSENT)
    }

    fn ensure(&mut self, slot: u32) {
        if self.pos.len() <= slot as usize {
            self.pos.resize(slot as usize + 1, ABSENT);
        }
    }

    /// Inserts `slot` with `key`, or re-ranks it if already queued.
    pub fn upsert(&mut self, slot: u32, key: RunKey) {
        self.ensure(slot);
        let p = self.pos[slot as usize];
        if p == ABSENT {
            self.heap.push((key, slot));
            let i = self.heap.len() - 1;
            self.pos[slot as usize] = i as u32;
            self.sift_up(i);
        } else {
            let i = p as usize;
            let old = self.heap[i].0;
            if key == old {
                return;
            }
            self.heap[i].0 = key;
            if key < old {
                self.sift_up(i);
            } else {
                self.sift_down(i);
            }
        }
    }

    /// Removes `slot` from the queue; returns `true` if it was queued.
    pub fn remove(&mut self, slot: u32) -> bool {
        let Some(&p) = self.pos.get(slot as usize) else {
            return false;
        };
        if p == ABSENT {
            return false;
        }
        let i = p as usize;
        self.heap.swap_remove(i);
        self.pos[slot as usize] = ABSENT;
        if i < self.heap.len() {
            // The element moved into the hole may need to go either way.
            self.pos[self.heap[i].1 as usize] = i as u32;
            self.sift_up(i);
            self.sift_down(i);
        }
        true
    }

    fn swap(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.pos[self.heap[a].1 as usize] = a as u32;
        self.pos[self.heap[b].1 as usize] = b as u32;
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.heap[i].0 < self.heap[parent].0 {
                self.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        loop {
            let l = 2 * i + 1;
            let r = 2 * i + 2;
            let mut best = i;
            if l < self.heap.len() && self.heap[l].0 < self.heap[best].0 {
                best = l;
            }
            if r < self.heap.len() && self.heap[r].0 < self.heap[best].0 {
                best = r;
            }
            if best == i {
                break;
            }
            self.swap(i, best);
            i = best;
        }
    }

    /// Heap-invariant check for tests: every parent's key is no larger than
    /// its children's and the position index is consistent.
    #[cfg(test)]
    pub fn assert_consistent(&self) {
        for (i, &(key, slot)) in self.heap.iter().enumerate() {
            assert_eq!(self.pos[slot as usize], i as u32, "pos index broken");
            if i > 0 {
                let parent = (i - 1) / 2;
                assert!(self.heap[parent].0 <= key, "heap order broken");
            }
        }
        let queued = self.pos.iter().filter(|&&p| p != ABSENT).count();
        assert_eq!(queued, self.heap.len(), "pos/heap cardinality mismatch");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn key(g: i64, seq: u64, id: u64) -> RunKey {
        RunKey {
            neg_goodness: -g,
            last_picked_seq: seq,
            id: ThreadId(id),
        }
    }

    #[test]
    fn peek_returns_highest_goodness() {
        let mut q = RunQueue::new();
        q.upsert(0, key(10, 0, 0));
        q.upsert(1, key(30, 0, 1));
        q.upsert(2, key(20, 0, 2));
        assert_eq!(q.peek().unwrap().1, 1);
        assert_eq!(q.len(), 3);
        q.assert_consistent();
    }

    #[test]
    fn ties_break_by_seq_then_id() {
        let mut q = RunQueue::new();
        q.upsert(0, key(10, 5, 0));
        q.upsert(1, key(10, 2, 1));
        assert_eq!(q.peek().unwrap().1, 1, "older pick wins");
        q.upsert(2, key(10, 2, 2));
        assert_eq!(q.peek().unwrap().1, 1, "equal seq: lower id wins");
    }

    #[test]
    fn upsert_reranks_in_place() {
        let mut q = RunQueue::new();
        q.upsert(0, key(10, 0, 0));
        q.upsert(1, key(20, 0, 1));
        q.upsert(0, key(30, 0, 0));
        assert_eq!(q.peek().unwrap().1, 0);
        q.upsert(0, key(1, 0, 0));
        assert_eq!(q.peek().unwrap().1, 1);
        assert_eq!(q.len(), 2);
        q.assert_consistent();
    }

    #[test]
    fn remove_middle_and_absent() {
        let mut q = RunQueue::new();
        for i in 0..10u32 {
            q.upsert(i, key(i as i64, 0, i as u64));
        }
        assert!(q.remove(5));
        assert!(!q.remove(5), "double remove is false");
        assert!(!q.remove(99), "out-of-range slot is false");
        assert!(!q.contains(5));
        assert!(q.contains(9));
        assert_eq!(q.len(), 9);
        q.assert_consistent();
        assert_eq!(q.peek().unwrap().1, 9, "highest goodness still on top");
    }

    #[test]
    fn empty_queue_behaviour() {
        let mut q = RunQueue::new();
        assert_eq!(q.len(), 0);
        assert_eq!(q.peek(), None);
        assert!(!q.remove(0));
        assert!(!q.contains(0));
    }

    proptest! {
        #[test]
        fn matches_naive_min_under_random_ops(
            ops in proptest::collection::vec((0u32..16, 0u8..3, -50i64..50, 0u64..4), 1..200),
        ) {
            let mut q = RunQueue::new();
            let mut oracle: std::collections::BTreeMap<u32, RunKey> = Default::default();
            for &(slot, op, g, seq) in &ops {
                match op {
                    0 | 1 => {
                        let k = key(g, seq, slot as u64);
                        q.upsert(slot, k);
                        oracle.insert(slot, k);
                    }
                    _ => {
                        let existed = oracle.remove(&slot).is_some();
                        prop_assert_eq!(q.remove(slot), existed);
                    }
                }
                q.assert_consistent();
                let naive = oracle.iter().map(|(&s, &k)| (k, s)).min();
                prop_assert_eq!(q.peek(), naive);
                prop_assert_eq!(q.len(), oracle.len());
            }
        }
    }
}
