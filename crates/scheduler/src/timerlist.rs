//! The sorted timer list used by the dispatcher.
//!
//! "We keep a list of timers used by RBS threads, sorted by time of expiry,
//! and cache the next expiration time to avoid doing any work unless at
//! least one timer has expired" (§4.1).
//!
//! Timers are keyed by the dispatcher's dense thread slot, so arming,
//! cancelling and expiry queries go through a flat `Vec` reverse index —
//! `O(1)` slot access plus an `O(log n)` sorted-set edit — and a popped
//! expiry hands the dispatcher the slot directly, with no id → slot map on
//! the [`pop_next_expired`](TimerList::pop_next_expired) hot path.  The
//! sorted set still orders equal expiries by [`ThreadId`], so converting
//! from id keys changed no observable pop order.  The next expiry is cached
//! so the nothing-expired check stays `O(1)`.

use crate::types::ThreadId;
use std::collections::BTreeSet;

/// A sorted set of `(expiry, thread, slot)` timers with a slot-indexed
/// reverse index and a cached next expiry.
#[derive(Debug, Clone, Default)]
pub struct TimerList {
    timers: BTreeSet<(u64, ThreadId, u32)>,
    /// Per-slot armed `(expiry, id)`, `None` when the slot has no timer.
    /// Grows to the dispatcher's slot count and is never shrunk; a freed
    /// dispatcher slot always cancels its timer first.
    slots: Vec<Option<(u64, ThreadId)>>,
    cached_next: Option<u64>,
    armed: usize,
}

impl TimerList {
    /// Creates an empty timer list.
    pub fn new() -> Self {
        Self::default()
    }

    fn refresh_cache(&mut self) {
        self.cached_next = self.timers.first().map(|&(t, _, _)| t);
    }

    /// Arms (or re-arms) a timer for the thread in dense slot `slot` at
    /// `expiry_us`.  A slot has at most one timer: any existing timer for
    /// it is replaced.
    pub fn arm(&mut self, slot: u32, thread: ThreadId, expiry_us: u64) {
        if self.slots.len() <= slot as usize {
            self.slots.resize(slot as usize + 1, None);
        }
        match self.slots[slot as usize].replace((expiry_us, thread)) {
            Some((old, old_id)) => {
                self.timers.remove(&(old, old_id, slot));
            }
            None => self.armed += 1,
        }
        self.timers.insert((expiry_us, thread, slot));
        self.refresh_cache();
    }

    /// Cancels the timer for `slot`; returns `true` if one existed.
    pub fn cancel(&mut self, slot: u32) -> bool {
        match self.slots.get_mut(slot as usize).and_then(Option::take) {
            Some((expiry, thread)) => {
                self.timers.remove(&(expiry, thread, slot));
                self.armed -= 1;
                self.refresh_cache();
                true
            }
            None => false,
        }
    }

    /// The cached next expiry time, if any timer is armed.
    pub fn next_expiry(&self) -> Option<u64> {
        self.cached_next
    }

    /// The armed expiry of `slot`'s timer, if it has one.
    pub fn expiry_of(&self, slot: u32) -> Option<u64> {
        self.slots
            .get(slot as usize)
            .copied()
            .flatten()
            .map(|(t, _)| t)
    }

    /// Removes and returns the earliest timer with `expiry <= now_us`, if
    /// any.  Constant-time when nothing has expired, which is the common
    /// case the paper optimises for; callers drain expiries one at a time
    /// without the intermediate `Vec` of [`TimerList::pop_expired`].
    pub fn pop_next_expired(&mut self, now_us: u64) -> Option<u32> {
        if self.cached_next.is_none_or(|t| t > now_us) {
            return None;
        }
        let &(expiry, thread, slot) = self.timers.first().expect("cache says non-empty");
        self.timers.remove(&(expiry, thread, slot));
        self.slots[slot as usize] = None;
        self.armed -= 1;
        self.refresh_cache();
        Some(slot)
    }

    /// Removes and returns every timer with `expiry <= now_us`, in expiry
    /// order.
    pub fn pop_expired(&mut self, now_us: u64) -> Vec<u32> {
        let mut expired = Vec::new();
        while let Some(slot) = self.pop_next_expired(now_us) {
            expired.push(slot);
        }
        expired
    }

    /// Number of armed timers.
    pub fn len(&self) -> usize {
        self.armed
    }

    /// Returns `true` if no timers are armed.
    pub fn is_empty(&self) -> bool {
        self.armed == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Tests arm each slot `s` for `ThreadId(s)`, the common dispatcher
    /// shape.
    fn arm(tl: &mut TimerList, slot: u32, expiry: u64) {
        tl.arm(slot, ThreadId(slot as u64), expiry);
    }

    #[test]
    fn arm_and_pop_in_order() {
        let mut tl = TimerList::new();
        arm(&mut tl, 1, 300);
        arm(&mut tl, 2, 100);
        arm(&mut tl, 3, 200);
        assert_eq!(tl.next_expiry(), Some(100));
        let expired = tl.pop_expired(250);
        assert_eq!(expired, vec![2, 3]);
        assert_eq!(tl.len(), 1);
        assert_eq!(tl.next_expiry(), Some(300));
    }

    #[test]
    fn nothing_expired_is_cheap_and_empty() {
        let mut tl = TimerList::new();
        arm(&mut tl, 1, 1000);
        assert!(tl.pop_expired(500).is_empty());
        assert_eq!(tl.pop_next_expired(500), None);
        assert_eq!(tl.len(), 1);
        assert!(TimerList::new().pop_expired(1_000_000).is_empty());
    }

    #[test]
    fn rearming_replaces_existing_timer() {
        let mut tl = TimerList::new();
        arm(&mut tl, 1, 100);
        arm(&mut tl, 1, 500);
        assert_eq!(tl.len(), 1);
        assert_eq!(tl.expiry_of(1), Some(500));
        assert!(tl.pop_expired(200).is_empty());
        assert_eq!(tl.pop_expired(500), vec![1]);
        assert_eq!(tl.expiry_of(1), None);
    }

    #[test]
    fn cancel_removes_timer() {
        let mut tl = TimerList::new();
        arm(&mut tl, 1, 100);
        assert!(tl.cancel(1));
        assert!(!tl.cancel(1));
        assert!(!tl.cancel(99), "never-armed slot is a no-op");
        assert!(tl.is_empty());
        assert_eq!(tl.next_expiry(), None);
        assert_eq!(tl.expiry_of(1), None);
    }

    #[test]
    fn same_expiry_orders_by_thread_id() {
        let mut tl = TimerList::new();
        // Slot order disagrees with id order on purpose: the id breaks the
        // tie, exactly as the id-keyed original did.
        tl.arm(7, ThreadId(2), 100);
        tl.arm(3, ThreadId(9), 100);
        assert_eq!(tl.pop_expired(100), vec![7, 3]);
    }

    #[test]
    fn pop_one_at_a_time_matches_pop_expired() {
        let mut a = TimerList::new();
        let mut b = TimerList::new();
        for (t, e) in [(1, 50), (2, 10), (3, 30), (4, 70)] {
            arm(&mut a, t, e);
            arm(&mut b, t, e);
        }
        let mut drained = Vec::new();
        while let Some(t) = a.pop_next_expired(60) {
            drained.push(t);
        }
        assert_eq!(drained, b.pop_expired(60));
        assert_eq!(a.len(), b.len());
    }

    proptest! {
        #[test]
        fn pop_expired_returns_sorted_and_complete(
            entries in proptest::collection::vec((0u64..1000, 0u32..50), 0..50),
            cutoff in 0u64..1000,
        ) {
            let mut tl = TimerList::new();
            // Last arm per slot wins.
            let mut expected: std::collections::BTreeMap<u32, u64> = Default::default();
            for &(expiry, slot) in &entries {
                arm(&mut tl, slot, expiry);
                expected.insert(slot, expiry);
            }
            // The reverse index agrees with the final arms.
            for (&slot, &expiry) in &expected {
                prop_assert_eq!(tl.expiry_of(slot), Some(expiry));
            }
            let expired = tl.pop_expired(cutoff);
            // Every returned slot's final expiry is within the cutoff.
            for s in &expired {
                prop_assert!(expected[s] <= cutoff);
            }
            // Every slot with expiry within the cutoff was returned.
            let should_expire = expected.iter().filter(|(_, &e)| e <= cutoff).count();
            prop_assert_eq!(expired.len(), should_expire);
            // Remaining timers are all after the cutoff.
            prop_assert!(tl.next_expiry().is_none_or(|t| t > cutoff));
            // Popped slots are gone from the reverse index too.
            for s in &expired {
                prop_assert_eq!(tl.expiry_of(*s), None);
            }
        }

        #[test]
        fn cancel_against_oracle(
            entries in proptest::collection::vec((0u64..1000, 0u32..20), 0..40),
            cancels in proptest::collection::vec(0u32..20, 0..20),
        ) {
            let mut tl = TimerList::new();
            let mut oracle: std::collections::BTreeMap<u32, u64> = Default::default();
            for &(expiry, slot) in &entries {
                arm(&mut tl, slot, expiry);
                oracle.insert(slot, expiry);
            }
            for &slot in &cancels {
                prop_assert_eq!(tl.cancel(slot), oracle.remove(&slot).is_some());
            }
            prop_assert_eq!(tl.len(), oracle.len());
            prop_assert_eq!(tl.next_expiry(), oracle.values().min().copied());
        }
    }
}
