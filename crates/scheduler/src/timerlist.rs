//! The sorted timer list used by the dispatcher.
//!
//! "We keep a list of timers used by RBS threads, sorted by time of expiry,
//! and cache the next expiration time to avoid doing any work unless at
//! least one timer has expired" (§4.1).

use crate::types::ThreadId;
use std::collections::BTreeSet;

/// A sorted set of `(expiry, thread)` timers with a cached next expiry.
#[derive(Debug, Clone, Default)]
pub struct TimerList {
    timers: BTreeSet<(u64, ThreadId)>,
}

impl TimerList {
    /// Creates an empty timer list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Arms (or re-arms) a timer for `thread` at `expiry_us`.  A thread has
    /// at most one timer: any existing timer for it is removed first.
    pub fn arm(&mut self, thread: ThreadId, expiry_us: u64) {
        self.cancel(thread);
        self.timers.insert((expiry_us, thread));
    }

    /// Cancels the timer for `thread`; returns `true` if one existed.
    pub fn cancel(&mut self, thread: ThreadId) -> bool {
        let existing: Vec<(u64, ThreadId)> = self
            .timers
            .iter()
            .filter(|(_, t)| *t == thread)
            .copied()
            .collect();
        let found = !existing.is_empty();
        for e in existing {
            self.timers.remove(&e);
        }
        found
    }

    /// The cached next expiry time, if any timer is armed.
    pub fn next_expiry(&self) -> Option<u64> {
        self.timers.iter().next().map(|(t, _)| *t)
    }

    /// The armed expiry of `thread`'s timer, if it has one.
    pub fn expiry_of(&self, thread: ThreadId) -> Option<u64> {
        self.timers
            .iter()
            .find(|(_, t)| *t == thread)
            .map(|(e, _)| *e)
    }

    /// Removes and returns every timer with `expiry <= now_us`, in expiry
    /// order.  Constant-time when nothing has expired, which is the common
    /// case the paper optimises for.
    pub fn pop_expired(&mut self, now_us: u64) -> Vec<ThreadId> {
        if self.next_expiry().is_none_or(|t| t > now_us) {
            return Vec::new();
        }
        let mut expired = Vec::new();
        while let Some(&(expiry, thread)) = self.timers.iter().next() {
            if expiry > now_us {
                break;
            }
            self.timers.remove(&(expiry, thread));
            expired.push(thread);
        }
        expired
    }

    /// Number of armed timers.
    pub fn len(&self) -> usize {
        self.timers.len()
    }

    /// Returns `true` if no timers are armed.
    pub fn is_empty(&self) -> bool {
        self.timers.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn arm_and_pop_in_order() {
        let mut tl = TimerList::new();
        tl.arm(ThreadId(1), 300);
        tl.arm(ThreadId(2), 100);
        tl.arm(ThreadId(3), 200);
        assert_eq!(tl.next_expiry(), Some(100));
        let expired = tl.pop_expired(250);
        assert_eq!(expired, vec![ThreadId(2), ThreadId(3)]);
        assert_eq!(tl.len(), 1);
        assert_eq!(tl.next_expiry(), Some(300));
    }

    #[test]
    fn nothing_expired_is_cheap_and_empty() {
        let mut tl = TimerList::new();
        tl.arm(ThreadId(1), 1000);
        assert!(tl.pop_expired(500).is_empty());
        assert_eq!(tl.len(), 1);
        assert!(TimerList::new().pop_expired(1_000_000).is_empty());
    }

    #[test]
    fn rearming_replaces_existing_timer() {
        let mut tl = TimerList::new();
        tl.arm(ThreadId(1), 100);
        tl.arm(ThreadId(1), 500);
        assert_eq!(tl.len(), 1);
        assert!(tl.pop_expired(200).is_empty());
        assert_eq!(tl.pop_expired(500), vec![ThreadId(1)]);
    }

    #[test]
    fn cancel_removes_timer() {
        let mut tl = TimerList::new();
        tl.arm(ThreadId(1), 100);
        assert!(tl.cancel(ThreadId(1)));
        assert!(!tl.cancel(ThreadId(1)));
        assert!(tl.is_empty());
        assert_eq!(tl.next_expiry(), None);
    }

    #[test]
    fn same_expiry_different_threads() {
        let mut tl = TimerList::new();
        tl.arm(ThreadId(1), 100);
        tl.arm(ThreadId(2), 100);
        let expired = tl.pop_expired(100);
        assert_eq!(expired.len(), 2);
    }

    proptest! {
        #[test]
        fn pop_expired_returns_sorted_and_complete(
            entries in proptest::collection::vec((0u64..1000, 0u64..50), 0..50),
            cutoff in 0u64..1000,
        ) {
            let mut tl = TimerList::new();
            // Last arm per thread wins.
            let mut expected: std::collections::BTreeMap<u64, u64> = Default::default();
            for &(expiry, tid) in &entries {
                tl.arm(ThreadId(tid), expiry);
                expected.insert(tid, expiry);
            }
            let expired = tl.pop_expired(cutoff);
            // Every returned thread's final expiry is within the cutoff.
            for t in &expired {
                prop_assert!(expected[&t.0] <= cutoff);
            }
            // Every thread with expiry within the cutoff was returned.
            let should_expire = expected.iter().filter(|(_, &e)| e <= cutoff).count();
            prop_assert_eq!(expired.len(), should_expire);
            // Remaining timers are all after the cutoff.
            prop_assert!(tl.next_expiry().is_none_or(|t| t > cutoff));
        }
    }
}
