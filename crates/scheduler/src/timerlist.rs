//! The sorted timer list used by the dispatcher.
//!
//! "We keep a list of timers used by RBS threads, sorted by time of expiry,
//! and cache the next expiration time to avoid doing any work unless at
//! least one timer has expired" (§4.1).
//!
//! The sorted set is paired with a per-thread reverse index so that
//! [`TimerList::arm`], [`TimerList::cancel`] and [`TimerList::expiry_of`]
//! are `O(log n)` — the original scanned the whole set to find a thread's
//! timer, which put an `O(n)` walk (and a collect-into-`Vec`) on the
//! migration and removal paths.  The next expiry is cached so the
//! nothing-expired check stays `O(1)`.

use crate::types::ThreadId;
use std::collections::{BTreeMap, BTreeSet};

/// A sorted set of `(expiry, thread)` timers with a per-thread reverse
/// index and a cached next expiry.
#[derive(Debug, Clone, Default)]
pub struct TimerList {
    timers: BTreeSet<(u64, ThreadId)>,
    by_thread: BTreeMap<ThreadId, u64>,
    cached_next: Option<u64>,
}

impl TimerList {
    /// Creates an empty timer list.
    pub fn new() -> Self {
        Self::default()
    }

    fn refresh_cache(&mut self) {
        self.cached_next = self.timers.first().map(|&(t, _)| t);
    }

    /// Arms (or re-arms) a timer for `thread` at `expiry_us`.  A thread has
    /// at most one timer: any existing timer for it is replaced.
    pub fn arm(&mut self, thread: ThreadId, expiry_us: u64) {
        if let Some(old) = self.by_thread.insert(thread, expiry_us) {
            self.timers.remove(&(old, thread));
        }
        self.timers.insert((expiry_us, thread));
        self.refresh_cache();
    }

    /// Cancels the timer for `thread`; returns `true` if one existed.
    pub fn cancel(&mut self, thread: ThreadId) -> bool {
        match self.by_thread.remove(&thread) {
            Some(expiry) => {
                self.timers.remove(&(expiry, thread));
                self.refresh_cache();
                true
            }
            None => false,
        }
    }

    /// The cached next expiry time, if any timer is armed.
    pub fn next_expiry(&self) -> Option<u64> {
        self.cached_next
    }

    /// The armed expiry of `thread`'s timer, if it has one.
    pub fn expiry_of(&self, thread: ThreadId) -> Option<u64> {
        self.by_thread.get(&thread).copied()
    }

    /// Removes and returns the earliest timer with `expiry <= now_us`, if
    /// any.  Constant-time when nothing has expired, which is the common
    /// case the paper optimises for; callers drain expiries one at a time
    /// without the intermediate `Vec` of [`TimerList::pop_expired`].
    pub fn pop_next_expired(&mut self, now_us: u64) -> Option<ThreadId> {
        if self.cached_next.is_none_or(|t| t > now_us) {
            return None;
        }
        let &(expiry, thread) = self.timers.first().expect("cache says non-empty");
        self.timers.remove(&(expiry, thread));
        self.by_thread.remove(&thread);
        self.refresh_cache();
        Some(thread)
    }

    /// Removes and returns every timer with `expiry <= now_us`, in expiry
    /// order.
    pub fn pop_expired(&mut self, now_us: u64) -> Vec<ThreadId> {
        let mut expired = Vec::new();
        while let Some(thread) = self.pop_next_expired(now_us) {
            expired.push(thread);
        }
        expired
    }

    /// Number of armed timers.
    pub fn len(&self) -> usize {
        self.timers.len()
    }

    /// Returns `true` if no timers are armed.
    pub fn is_empty(&self) -> bool {
        self.timers.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn arm_and_pop_in_order() {
        let mut tl = TimerList::new();
        tl.arm(ThreadId(1), 300);
        tl.arm(ThreadId(2), 100);
        tl.arm(ThreadId(3), 200);
        assert_eq!(tl.next_expiry(), Some(100));
        let expired = tl.pop_expired(250);
        assert_eq!(expired, vec![ThreadId(2), ThreadId(3)]);
        assert_eq!(tl.len(), 1);
        assert_eq!(tl.next_expiry(), Some(300));
    }

    #[test]
    fn nothing_expired_is_cheap_and_empty() {
        let mut tl = TimerList::new();
        tl.arm(ThreadId(1), 1000);
        assert!(tl.pop_expired(500).is_empty());
        assert_eq!(tl.pop_next_expired(500), None);
        assert_eq!(tl.len(), 1);
        assert!(TimerList::new().pop_expired(1_000_000).is_empty());
    }

    #[test]
    fn rearming_replaces_existing_timer() {
        let mut tl = TimerList::new();
        tl.arm(ThreadId(1), 100);
        tl.arm(ThreadId(1), 500);
        assert_eq!(tl.len(), 1);
        assert_eq!(tl.expiry_of(ThreadId(1)), Some(500));
        assert!(tl.pop_expired(200).is_empty());
        assert_eq!(tl.pop_expired(500), vec![ThreadId(1)]);
        assert_eq!(tl.expiry_of(ThreadId(1)), None);
    }

    #[test]
    fn cancel_removes_timer() {
        let mut tl = TimerList::new();
        tl.arm(ThreadId(1), 100);
        assert!(tl.cancel(ThreadId(1)));
        assert!(!tl.cancel(ThreadId(1)));
        assert!(tl.is_empty());
        assert_eq!(tl.next_expiry(), None);
        assert_eq!(tl.expiry_of(ThreadId(1)), None);
    }

    #[test]
    fn same_expiry_different_threads() {
        let mut tl = TimerList::new();
        tl.arm(ThreadId(1), 100);
        tl.arm(ThreadId(2), 100);
        let expired = tl.pop_expired(100);
        assert_eq!(expired.len(), 2);
    }

    #[test]
    fn pop_one_at_a_time_matches_pop_expired() {
        let mut a = TimerList::new();
        let mut b = TimerList::new();
        for (t, e) in [(1, 50), (2, 10), (3, 30), (4, 70)] {
            a.arm(ThreadId(t), e);
            b.arm(ThreadId(t), e);
        }
        let mut drained = Vec::new();
        while let Some(t) = a.pop_next_expired(60) {
            drained.push(t);
        }
        assert_eq!(drained, b.pop_expired(60));
        assert_eq!(a.len(), b.len());
    }

    proptest! {
        #[test]
        fn pop_expired_returns_sorted_and_complete(
            entries in proptest::collection::vec((0u64..1000, 0u64..50), 0..50),
            cutoff in 0u64..1000,
        ) {
            let mut tl = TimerList::new();
            // Last arm per thread wins.
            let mut expected: std::collections::BTreeMap<u64, u64> = Default::default();
            for &(expiry, tid) in &entries {
                tl.arm(ThreadId(tid), expiry);
                expected.insert(tid, expiry);
            }
            // The reverse index agrees with the final arms.
            for (&tid, &expiry) in &expected {
                prop_assert_eq!(tl.expiry_of(ThreadId(tid)), Some(expiry));
            }
            let expired = tl.pop_expired(cutoff);
            // Every returned thread's final expiry is within the cutoff.
            for t in &expired {
                prop_assert!(expected[&t.0] <= cutoff);
            }
            // Every thread with expiry within the cutoff was returned.
            let should_expire = expected.iter().filter(|(_, &e)| e <= cutoff).count();
            prop_assert_eq!(expired.len(), should_expire);
            // Remaining timers are all after the cutoff.
            prop_assert!(tl.next_expiry().is_none_or(|t| t > cutoff));
            // Popped threads are gone from the reverse index too.
            for t in &expired {
                prop_assert_eq!(tl.expiry_of(*t), None);
            }
        }

        #[test]
        fn cancel_against_oracle(
            entries in proptest::collection::vec((0u64..1000, 0u64..20), 0..40),
            cancels in proptest::collection::vec(0u64..20, 0..20),
        ) {
            let mut tl = TimerList::new();
            let mut oracle: std::collections::BTreeMap<u64, u64> = Default::default();
            for &(expiry, tid) in &entries {
                tl.arm(ThreadId(tid), expiry);
                oracle.insert(tid, expiry);
            }
            for &tid in &cancels {
                prop_assert_eq!(tl.cancel(ThreadId(tid)), oracle.remove(&tid).is_some());
            }
            prop_assert_eq!(tl.len(), oracle.len());
            prop_assert_eq!(tl.next_expiry(), oracle.values().min().copied());
        }
    }
}
