//! Proportion/period reservations.

use crate::types::{Period, Proportion};
use serde::{Deserialize, Serialize};

/// A CPU reservation: a proportion of the CPU over a period.
///
/// "If one thread has been given a proportion of 50 out of 1000 (5%) and a
/// period of 30 milliseconds, it should be able to run up to 1.5
/// milliseconds every 30 milliseconds" (§3.1).
///
/// # Examples
///
/// ```
/// use rrs_scheduler::{Period, Proportion, Reservation};
///
/// let r = Reservation::new(Proportion::from_ppt(50), Period::from_millis(30));
/// assert_eq!(r.budget_micros(), 1_500);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Reservation {
    /// Fraction of the CPU, in parts per thousand.
    pub proportion: Proportion,
    /// Interval over which the proportion must be delivered.
    pub period: Period,
}

impl Reservation {
    /// Creates a reservation.
    pub fn new(proportion: Proportion, period: Period) -> Self {
        Self { proportion, period }
    }

    /// A reservation with the paper's default 30 ms period.
    pub fn with_default_period(proportion: Proportion) -> Self {
        Self::new(proportion, Period::DEFAULT)
    }

    /// The execution budget per period, in microseconds:
    /// `proportion × period`.
    pub fn budget_micros(&self) -> u64 {
        (self.period.as_micros() as u128 * self.proportion.ppt() as u128 / 1000) as u64
    }

    /// The CPU cycles this reservation corresponds to per period, for a CPU
    /// with the given clock rate in Hz ("the proportion times the period
    /// times the CPU's clock rate", §3.1).
    pub fn budget_cycles(&self, clock_hz: f64) -> f64 {
        self.proportion.as_fraction() * self.period.as_secs_f64() * clock_hz
    }

    /// Returns a copy with a different proportion.
    pub fn with_proportion(self, proportion: Proportion) -> Self {
        Self { proportion, ..self }
    }

    /// Returns a copy with a different period.
    pub fn with_period(self, period: Period) -> Self {
        Self { period, ..self }
    }
}

impl std::fmt::Display for Reservation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} over {}", self.proportion, self.period)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn paper_example_budget() {
        // 5 % of 30 ms is 1.5 ms.
        let r = Reservation::new(Proportion::from_ppt(50), Period::from_millis(30));
        assert_eq!(r.budget_micros(), 1500);
    }

    #[test]
    fn budget_cycles_uses_clock_rate() {
        // 50 % of a 10 ms period on a 400 MHz CPU = 2 million cycles.
        let r = Reservation::new(Proportion::from_ppt(500), Period::from_millis(10));
        assert_eq!(r.budget_cycles(400e6), 2_000_000.0);
    }

    #[test]
    fn default_period_constructor() {
        let r = Reservation::with_default_period(Proportion::from_ppt(100));
        assert_eq!(r.period, Period::DEFAULT);
    }

    #[test]
    fn with_modifiers() {
        let r = Reservation::with_default_period(Proportion::from_ppt(100));
        assert_eq!(
            r.with_proportion(Proportion::from_ppt(200))
                .proportion
                .ppt(),
            200
        );
        assert_eq!(r.with_period(Period::from_millis(5)).period.as_millis(), 5);
    }

    #[test]
    fn display() {
        let r = Reservation::new(Proportion::from_ppt(50), Period::from_millis(30));
        assert_eq!(r.to_string(), "50‰ over 30ms");
    }

    #[test]
    fn zero_proportion_has_zero_budget() {
        let r = Reservation::new(Proportion::ZERO, Period::from_millis(30));
        assert_eq!(r.budget_micros(), 0);
    }

    proptest! {
        #[test]
        fn budget_never_exceeds_period(ppt in 0u32..=1000, period_ms in 1u64..1000) {
            let r = Reservation::new(Proportion::from_ppt(ppt), Period::from_millis(period_ms));
            prop_assert!(r.budget_micros() <= r.period.as_micros());
        }

        #[test]
        fn budget_is_monotone_in_proportion(a in 0u32..=1000, b in 0u32..=1000, period_ms in 1u64..100) {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            let period = Period::from_millis(period_ms);
            let r_lo = Reservation::new(Proportion::from_ppt(lo), period);
            let r_hi = Reservation::new(Proportion::from_ppt(hi), period);
            prop_assert!(r_lo.budget_micros() <= r_hi.budget_micros());
        }
    }
}
