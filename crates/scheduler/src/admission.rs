//! Overload detection and admission control.
//!
//! "An advantage of reservation-based scheduling is that one can easily
//! detect overload by summing the proportions: a sum greater than or equal
//! to one indicates the CPU is oversubscribed.  If the scheduler is
//! conservative, it can reserve some capacity by setting the overload
//! threshold to less than 1" (§3.1).

use crate::error::SchedError;
use crate::types::Proportion;
use serde::{Deserialize, Serialize};

/// The admission threshold and overload test.
///
/// # Examples
///
/// ```
/// use rrs_scheduler::{AdmissionControl, Proportion};
///
/// let ac = AdmissionControl::with_threshold(Proportion::from_ppt(900));
/// let existing = Proportion::from_ppt(800);
/// assert!(ac.try_admit(existing, Proportion::from_ppt(50)).is_ok());
/// assert!(ac.try_admit(existing, Proportion::from_ppt(200)).is_err());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AdmissionControl {
    threshold: Proportion,
}

impl AdmissionControl {
    /// The default threshold: 95 % of the CPU, leaving headroom for
    /// "the overhead of scheduling and interrupt handling" as the paper
    /// suggests.
    pub const DEFAULT_THRESHOLD_PPT: u32 = 950;

    /// Creates admission control with the default 95 % threshold.
    pub fn new() -> Self {
        Self {
            threshold: Proportion::from_ppt(Self::DEFAULT_THRESHOLD_PPT),
        }
    }

    /// Creates admission control with an explicit threshold.
    pub fn with_threshold(threshold: Proportion) -> Self {
        Self { threshold }
    }

    /// Returns the overload threshold.
    pub fn threshold(&self) -> Proportion {
        self.threshold
    }

    /// Lowers (or raises) the threshold; the RBS does this when it finds
    /// itself missing deadlines, to increase spare capacity (§3.3 footnote).
    pub fn set_threshold(&mut self, threshold: Proportion) {
        self.threshold = threshold;
    }

    /// Returns `true` if the given total allocation oversubscribes the CPU.
    pub fn is_overloaded(&self, total: Proportion) -> bool {
        total.ppt() > self.threshold.ppt()
    }

    /// Returns how much proportion is still available under the threshold.
    pub fn available(&self, total: Proportion) -> Proportion {
        self.threshold.saturating_sub(total)
    }

    /// Tests whether a new reservation of `requested` can be admitted given
    /// the `existing` total; returns the headroom error on rejection.
    pub fn try_admit(&self, existing: Proportion, requested: Proportion) -> Result<(), SchedError> {
        let available = self.available(existing);
        if requested.ppt() <= available.ppt() {
            Ok(())
        } else {
            Err(SchedError::Oversubscribed {
                requested,
                available,
            })
        }
    }
}

impl Default for AdmissionControl {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn default_threshold_leaves_headroom() {
        let ac = AdmissionControl::new();
        assert_eq!(ac.threshold().ppt(), 950);
        assert!(!ac.is_overloaded(Proportion::from_ppt(950)));
        assert!(ac.is_overloaded(Proportion::from_ppt(951)));
    }

    #[test]
    fn try_admit_respects_threshold() {
        let ac = AdmissionControl::with_threshold(Proportion::from_ppt(1000));
        assert!(ac
            .try_admit(Proportion::from_ppt(600), Proportion::from_ppt(400))
            .is_ok());
        let err = ac
            .try_admit(Proportion::from_ppt(600), Proportion::from_ppt(500))
            .unwrap_err();
        match err {
            SchedError::Oversubscribed {
                requested,
                available,
            } => {
                assert_eq!(requested.ppt(), 500);
                assert_eq!(available.ppt(), 400);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn available_saturates_at_zero() {
        let ac = AdmissionControl::with_threshold(Proportion::from_ppt(500));
        assert_eq!(ac.available(Proportion::from_ppt(800)).ppt(), 0);
    }

    #[test]
    fn threshold_can_be_adjusted() {
        let mut ac = AdmissionControl::new();
        ac.set_threshold(Proportion::from_ppt(700));
        assert!(ac.is_overloaded(Proportion::from_ppt(750)));
    }

    proptest! {
        #[test]
        fn admit_implies_not_overloaded_after(
            threshold in 0u32..=1000,
            existing in 0u32..=1000,
            requested in 0u32..=1000,
        ) {
            let ac = AdmissionControl::with_threshold(Proportion::from_ppt(threshold));
            let existing = Proportion::from_ppt(existing);
            let requested = Proportion::from_ppt(requested);
            prop_assume!(!ac.is_overloaded(existing));
            if ac.try_admit(existing, requested).is_ok() {
                let total = existing.saturating_add(requested);
                prop_assert!(!ac.is_overloaded(total));
            }
        }
    }
}
