//! Reservation-based proportion/period scheduler (RBS).
//!
//! The paper's low-level scheduler (§3.1) allocates CPU to threads based on
//! two attributes: a **proportion** expressed in parts per thousand and a
//! **period** in milliseconds over which the allocation must be delivered.
//! The prototype implements rate-monotonic scheduling on top of Linux's
//! `goodness()`-based dispatcher with a 1 ms timer: RBS threads always beat
//! best-effort threads, threads with shorter periods beat threads with
//! longer ones, a thread that has used its allocation for the current period
//! sleeps until its next period begins, and overload is detected by summing
//! proportions against an admission threshold.
//!
//! This crate reproduces that scheduler as a pure state machine driven by an
//! explicit clock, so the same dispatcher runs under the discrete-event
//! simulator (`rrs-sim`) and the wall-clock executor (`rrs-realtime`):
//!
//! * [`Proportion`] / [`Period`] / [`Reservation`] — the allocation types.
//! * [`AdmissionControl`] — the overload threshold and admission test.
//! * [`goodness`] — the Linux-style goodness function (rate monotonic for
//!   RBS threads, time-slice based for best-effort threads).
//! * [`Dispatcher`] — goodness-indexed run queue over dense slot-indexed
//!   thread storage (`O(1)` pick, `O(log n)` re-rank), sorted timer list
//!   with a per-thread reverse index, per-period accounting, deadline-miss
//!   detection and dispatch-overhead modelling.
//! * [`Machine`] — the multi-CPU layer: `N` per-CPU dispatchers in
//!   lockstep behind the single-CPU API, with thread placement and
//!   cross-CPU migration ([`CpuId`]).  `N = 1` is bit-for-bit the
//!   single-dispatcher system.
//! * [`accounting::UsageAccount`] — per-thread usage the controller reads to
//!   reclaim over-allocated CPU.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod accounting;
pub mod admission;
pub mod dispatcher;
pub mod error;
pub mod goodness;
pub mod machine;
pub mod reservation;
mod runqueue;
pub mod settle;
pub mod timerlist;
pub mod types;

pub use accounting::UsageAccount;
pub use admission::AdmissionControl;
pub use dispatcher::{
    DispatchOutcome, DispatchStats, Dispatcher, DispatcherConfig, FastPathStats, MigratedThread,
    ThreadClass,
};
pub use error::SchedError;
pub use machine::{CpuStats, Machine};
pub use reservation::Reservation;
pub use settle::{charge_exhausts, span_settle_reason, SettleReason};
pub use types::{CpuId, Period, Proportion, ThreadId, ThreadState};
