//! The multi-CPU machine layer.
//!
//! The paper's prototype ran on one 400 MHz CPU; this module makes "the
//! machine" a first-class abstraction so the same dispatcher state machine
//! scales to `N` CPUs.  A [`Machine`] owns one [`Dispatcher`] per CPU —
//! each with its own run queue, timer list, admission control and
//! accounting — plus the thread→CPU placement map, and routes every
//! single-CPU call (`add_thread`, `charge`, `set_reservation`,
//! `advance_to`, usage queries) to the owning CPU.  With `N = 1` it is a
//! transparent shell around one dispatcher: every operation takes the
//! exact code path the single-CPU system took, so the paper's figures
//! reproduce bit-for-bit.
//!
//! CPUs share one logical clock: [`Machine::advance_to`] moves every
//! dispatcher in lockstep, which is how both the discrete-event simulator
//! and the wall-clock executor drive it.  Cross-CPU migration
//! ([`Machine::migrate`]) transplants a thread's full mid-period state —
//! reservation, throttle status, usage account — via
//! [`Dispatcher::take_thread`] / [`Dispatcher::inject_thread`], so a
//! throttled thread stays throttled until the period boundary its source
//! CPU had scheduled.

use crate::dispatcher::{
    DispatchOutcome, DispatchStats, Dispatcher, DispatcherConfig, FastPathStats, MigratedThread,
    ThreadClass,
};
use crate::error::SchedError;
use crate::reservation::Reservation;
use crate::types::{CpuId, Proportion, ThreadId};
use crate::UsageAccount;
use rrs_telemetry::{Recorder, TraceEventKind};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Per-CPU counters of one host run, one entry per CPU.
///
/// The struct lives in the scheduler crate (rather than the simulator
/// that originally defined it) because every host backend — simulated or
/// wall-clock — drives the same [`Machine`] and reports the same per-CPU
/// breakdown.
///
/// `used_us` counts CPU time consumed by jobs while their thread was
/// placed on this CPU (time follows the thread's placement, so a
/// migrating thread's consumption splits across CPUs).  `idle_us` and
/// `deadlines_missed` mirror the owning dispatcher's accounting; the
/// migration counters attribute each applied migration to both its source
/// (`migrations_out`) and destination (`migrations_in`) CPU.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct CpuStats {
    /// CPU time consumed by threads while placed on this CPU, in
    /// microseconds.
    pub used_us: u64,
    /// Time this CPU had nothing runnable, in microseconds.
    pub idle_us: u64,
    /// Migrations that moved a thread onto this CPU.
    pub migrations_in: u64,
    /// Migrations that moved a thread off this CPU.
    pub migrations_out: u64,
    /// Deadlines missed at period boundaries on this CPU.
    pub deadlines_missed: u64,
}

/// A machine of `N` per-CPU dispatchers behind the single-CPU API.
///
/// # Examples
///
/// ```
/// use rrs_scheduler::{CpuId, Machine, DispatcherConfig, Period, Proportion, Reservation, ThreadId};
///
/// let mut m = Machine::new(DispatcherConfig::default(), 2);
/// let r = Reservation::new(Proportion::from_ppt(400), Period::from_millis(10));
/// // Least-loaded placement: the second thread lands on the other CPU.
/// m.add_thread_preadmitted(ThreadId(1), r).unwrap();
/// m.add_thread_preadmitted(ThreadId(2), r).unwrap();
/// assert_ne!(m.cpu_of(ThreadId(1)), m.cpu_of(ThreadId(2)));
/// assert_eq!(m.dispatch(CpuId(0)).thread.is_some(), true);
/// assert_eq!(m.dispatch(CpuId(1)).thread.is_some(), true);
/// ```
#[derive(Debug)]
pub struct Machine {
    cpus: Vec<Dispatcher>,
    placement: BTreeMap<ThreadId, CpuId>,
    /// Trace-event sink shared with every dispatcher; `None` when
    /// telemetry is disabled.
    telemetry: Option<Arc<Recorder>>,
}

impl Machine {
    /// The largest machine supported — the same bound as the control
    /// pipeline's `PlacementConfig::MAX_CPUS`, so the placement authority
    /// can never address a CPU the machine refuses to grow to.
    pub const MAX_CPUS: usize = 4096;

    /// Creates a machine with `cpus` CPUs (clamped to
    /// `1..=`[`Machine::MAX_CPUS`]), each running a dispatcher with the
    /// given configuration.
    pub fn new(config: DispatcherConfig, cpus: usize) -> Self {
        let n = cpus.clamp(1, Self::MAX_CPUS);
        Self {
            cpus: (0..n).map(|_| Dispatcher::new(config)).collect(),
            placement: BTreeMap::new(),
            telemetry: None,
        }
    }

    /// Attaches (or detaches) a telemetry recorder, distributing it to
    /// every dispatcher (and to CPUs hot-added later).
    pub fn set_telemetry(&mut self, recorder: Option<Arc<Recorder>>) {
        self.telemetry = recorder;
        for (i, d) in self.cpus.iter_mut().enumerate() {
            d.set_telemetry(self.telemetry.clone(), i as u32);
        }
    }

    /// The attached telemetry recorder, if any.
    pub fn telemetry(&self) -> Option<Arc<Recorder>> {
        self.telemetry.clone()
    }

    /// Aggregate fast-path effectiveness counters summed over all CPUs.
    pub fn fast_path_stats(&self) -> FastPathStats {
        let mut total = FastPathStats::default();
        for d in &self.cpus {
            total.merge(&d.fast_path_stats());
        }
        total
    }

    /// Number of CPUs.
    pub fn cpu_count(&self) -> usize {
        self.cpus.len()
    }

    /// Hot-adds one CPU: a fresh dispatcher (same configuration as the
    /// rest of the machine) advanced to the shared clock, starting with an
    /// empty run queue.  Returns the new CPU's id, or `None` if the
    /// machine is already at [`Machine::MAX_CPUS`].
    ///
    /// There is no hot-*remove*: draining a CPU would require migrating
    /// every thread off it, which is a placement-authority decision, not a
    /// machine-layer one.
    pub fn add_cpu(&mut self) -> Option<CpuId> {
        if self.cpus.len() >= Self::MAX_CPUS {
            return None;
        }
        let mut d = Dispatcher::new(self.cpus[0].config());
        d.advance_to(self.now_us());
        d.set_telemetry(self.telemetry.clone(), self.cpus.len() as u32);
        self.cpus.push(d);
        Some(CpuId(self.cpus.len() as u32 - 1))
    }

    /// Grows the machine to `cpus` CPUs by hot-adding dispatchers one at
    /// a time ([`Machine::add_cpu`]), returning the resulting total.
    /// Shrinking is unsupported: a `cpus` at or below the current count
    /// is a no-op, and growth stops at [`Machine::MAX_CPUS`].
    pub fn grow_to(&mut self, cpus: usize) -> usize {
        while self.cpus.len() < cpus {
            if self.add_cpu().is_none() {
                break;
            }
        }
        self.cpus.len()
    }

    /// All CPU ids, in order.
    pub fn cpu_ids(&self) -> impl Iterator<Item = CpuId> {
        (0..self.cpus.len() as u32).map(CpuId)
    }

    /// Read-only access to one CPU's dispatcher.
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is out of range.
    pub fn dispatcher(&self, cpu: CpuId) -> &Dispatcher {
        &self.cpus[cpu.index()]
    }

    /// Mutable access to one CPU's dispatcher — the calendar driver's
    /// per-CPU span loop runs dispatch/charge directly against the owning
    /// dispatcher without re-resolving placement each span.
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is out of range.
    pub fn dispatcher_mut(&mut self, cpu: CpuId) -> &mut Dispatcher {
        &mut self.cpus[cpu.index()]
    }

    /// The CPU a thread is currently placed on.
    pub fn cpu_of(&self, id: ThreadId) -> Option<CpuId> {
        self.placement.get(&id).copied()
    }

    /// Total number of threads across all CPUs.
    pub fn thread_count(&self) -> usize {
        self.placement.len()
    }

    /// The shared logical clock, in microseconds (all CPUs advance in
    /// lockstep, so CPU 0's clock is the machine's).
    pub fn now_us(&self) -> u64 {
        self.cpus[0].now_us()
    }

    /// Sum of reserved proportions across all CPUs, in parts per thousand.
    /// Unclamped: an `N`-CPU machine can legitimately report up to
    /// `N × 1000`.
    pub fn total_reserved_ppt(&self) -> u32 {
        self.cpus.iter().map(|d| d.total_reserved_ppt()).sum()
    }

    /// One CPU's reserved load, in parts per thousand.
    pub fn cpu_load_ppt(&self, cpu: CpuId) -> u32 {
        self.cpus[cpu.index()].total_reserved_ppt()
    }

    /// The least-loaded CPU (by reserved proportion), lowest id winning
    /// ties — the machine-level analogue of least-loaded-fit placement.
    pub fn least_loaded_cpu(&self) -> CpuId {
        let mut best = CpuId::ZERO;
        let mut best_load = u32::MAX;
        for (i, d) in self.cpus.iter().enumerate() {
            let load = d.total_reserved_ppt();
            if load < best_load {
                best_load = load;
                best = CpuId(i as u32);
            }
        }
        best
    }

    /// Aggregate dispatch statistics summed over all CPUs.
    pub fn stats(&self) -> DispatchStats {
        let mut total = DispatchStats::default();
        for d in &self.cpus {
            let s = d.stats();
            total.dispatches += s.dispatches;
            total.context_switches += s.context_switches;
            total.period_rollovers += s.period_rollovers;
            total.deadlines_missed += s.deadlines_missed;
            total.overhead_us += s.overhead_us;
            total.idle_us += s.idle_us;
        }
        total
    }

    /// Registers a thread on the least-loaded CPU, subject to that CPU's
    /// admission control.  Returns the chosen CPU.
    pub fn add_thread(&mut self, id: ThreadId, class: ThreadClass) -> Result<CpuId, SchedError> {
        self.add_thread_on(self.least_loaded_cpu(), id, class)
    }

    /// Registers a thread on an explicit CPU, subject to that CPU's
    /// admission control.
    pub fn add_thread_on(
        &mut self,
        cpu: CpuId,
        id: ThreadId,
        class: ThreadClass,
    ) -> Result<CpuId, SchedError> {
        if self.placement.contains_key(&id) {
            return Err(SchedError::DuplicateThread(id));
        }
        self.cpus[cpu.index()].add_thread(id, class)?;
        self.placement.insert(id, cpu);
        Ok(cpu)
    }

    /// Registers a pre-admitted thread on the least-loaded CPU (the
    /// controller already ruled on admission).  Returns the chosen CPU.
    pub fn add_thread_preadmitted(
        &mut self,
        id: ThreadId,
        reservation: Reservation,
    ) -> Result<CpuId, SchedError> {
        self.add_thread_preadmitted_on(self.least_loaded_cpu(), id, reservation)
    }

    /// Registers a pre-admitted thread on an explicit CPU — the placement
    /// authority (the control pipeline's Place stage) has already chosen.
    pub fn add_thread_preadmitted_on(
        &mut self,
        cpu: CpuId,
        id: ThreadId,
        reservation: Reservation,
    ) -> Result<CpuId, SchedError> {
        if self.placement.contains_key(&id) {
            return Err(SchedError::DuplicateThread(id));
        }
        self.cpus[cpu.index()].add_thread_preadmitted(id, reservation)?;
        self.placement.insert(id, cpu);
        Ok(cpu)
    }

    /// Removes a thread from whichever CPU holds it.
    pub fn remove_thread(&mut self, id: ThreadId) -> Result<(), SchedError> {
        let cpu = self
            .placement
            .remove(&id)
            .ok_or(SchedError::UnknownThread(id))?;
        self.cpus[cpu.index()].remove_thread(id)
    }

    /// Moves a thread to another CPU, preserving its reservation, throttle
    /// state and mid-period usage account.  Returns the CPU it came from;
    /// migrating a thread to the CPU it is already on is a no-op.
    pub fn migrate(&mut self, id: ThreadId, to: CpuId) -> Result<CpuId, SchedError> {
        let from = self.cpu_of(id).ok_or(SchedError::UnknownThread(id))?;
        if to.index() >= self.cpus.len() {
            return Err(SchedError::InvalidState(id, "destination CPU out of range"));
        }
        if from == to {
            return Ok(from);
        }
        let thread = self.cpus[from.index()].take_thread(id)?;
        self.cpus[to.index()]
            .inject_thread(thread)
            .expect("destination cannot already hold the thread");
        self.placement.insert(id, to);
        if let Some(t) = &self.telemetry {
            t.record(
                self.now_us(),
                TraceEventKind::Migration {
                    thread: id.0,
                    from: from.0,
                    to: to.0,
                },
            );
        }
        Ok(from)
    }

    /// Removes a thread from the machine but returns its transplantable
    /// mid-period state instead of discarding it, so the thread can be
    /// re-injected into a *different* machine (the sharded simulator's
    /// cross-shard migration path).  The counterpart of
    /// [`Machine::inject_thread_on`].
    pub fn extract_thread(&mut self, id: ThreadId) -> Result<MigratedThread, SchedError> {
        let from = self.cpu_of(id).ok_or(SchedError::UnknownThread(id))?;
        let thread = self.cpus[from.index()].take_thread(id)?;
        self.placement.remove(&id);
        Ok(thread)
    }

    /// Installs a thread previously removed with
    /// [`Machine::extract_thread`] (possibly from another machine) on an
    /// explicit CPU, preserving its reservation, throttle state and
    /// mid-period usage account.
    pub fn inject_thread_on(
        &mut self,
        cpu: CpuId,
        thread: MigratedThread,
    ) -> Result<(), SchedError> {
        let id = thread.id;
        if cpu.index() >= self.cpus.len() {
            return Err(SchedError::InvalidState(id, "destination CPU out of range"));
        }
        if self.placement.contains_key(&id) {
            return Err(SchedError::DuplicateThread(id));
        }
        self.cpus[cpu.index()].inject_thread(thread)?;
        self.placement.insert(id, cpu);
        Ok(())
    }

    fn on(&mut self, id: ThreadId) -> Result<&mut Dispatcher, SchedError> {
        let cpu = self
            .placement
            .get(&id)
            .ok_or(SchedError::UnknownThread(id))?;
        Ok(&mut self.cpus[cpu.index()])
    }

    /// Changes a thread's reservation on its current CPU (the controller's
    /// per-cycle actuation path).
    pub fn set_reservation(
        &mut self,
        id: ThreadId,
        reservation: Reservation,
    ) -> Result<(), SchedError> {
        self.on(id)?.set_reservation(id, reservation)
    }

    /// Returns a thread's current reservation, if it is reserved.
    pub fn reservation(&self, id: ThreadId) -> Option<Reservation> {
        let cpu = self.placement.get(&id)?;
        self.cpus[cpu.index()].reservation(id)
    }

    /// Marks a thread as blocked.
    pub fn block(&mut self, id: ThreadId) -> Result<(), SchedError> {
        self.on(id)?.block(id)
    }

    /// Wakes a blocked thread.
    pub fn unblock(&mut self, id: ThreadId) -> Result<(), SchedError> {
        self.on(id)?.unblock(id)
    }

    /// Charges CPU consumption to a thread on its current CPU.
    pub fn charge(&mut self, id: ThreadId, us: u64) -> Result<(), SchedError> {
        self.on(id)?.charge(id, us)
    }

    /// Returns a copy of a thread's usage account.
    pub fn usage(&self, id: ThreadId) -> Option<UsageAccount> {
        let cpu = self.placement.get(&id)?;
        self.cpus[cpu.index()].usage(id)
    }

    /// Borrows a thread's usage account without copying.
    pub fn usage_ref(&self, id: ThreadId) -> Option<&UsageAccount> {
        let cpu = self.placement.get(&id)?;
        self.cpus[cpu.index()].usage_ref(id)
    }

    /// Visits every thread's usage account across all CPUs in one pass.
    pub fn for_each_usage(&self, mut f: impl FnMut(CpuId, ThreadId, &UsageAccount)) {
        for (i, d) in self.cpus.iter().enumerate() {
            let cpu = CpuId(i as u32);
            d.for_each_usage(|id, acct| f(cpu, id, acct));
        }
    }

    /// Advances every CPU's clock to `now_us` in lockstep, processing each
    /// CPU's expired period timers.
    pub fn advance_to(&mut self, now_us: u64) {
        for d in &mut self.cpus {
            d.advance_to(now_us);
        }
    }

    /// Settles every thread's lazy period-boundary backlog on every CPU
    /// (see [`Dispatcher::sync_all`]); no-op in eager rollover mode.
    pub fn sync_all(&mut self) {
        for d in &mut self.cpus {
            d.sync_all();
        }
    }

    /// Visits every reserved thread (machine-wide, CPU 0 first) whose
    /// usage ratio changed since its last visit — the changed-only usage
    /// feed for the controller (see [`Dispatcher::drain_usage_changes`]).
    pub fn drain_usage_changes(&mut self, mut f: impl FnMut(ThreadId, f64)) {
        for d in &mut self.cpus {
            d.drain_usage_changes(&mut f);
        }
    }

    /// Takes one dispatch decision on one CPU.
    pub fn dispatch(&mut self, cpu: CpuId) -> DispatchOutcome {
        self.cpus[cpu.index()].dispatch()
    }

    /// The earliest armed period timer across all CPUs — the next instant
    /// at which an entirely idle machine has work to do.
    pub fn next_timer_expiry(&self) -> Option<u64> {
        self.cpus.iter().filter_map(|d| d.next_timer_expiry()).min()
    }

    /// Re-books one CPU's idle time after a lockstep round whose actual
    /// elapsed time differed from the idle quantum the CPU recorded (see
    /// [`Dispatcher::rebook_idle_us`]).
    pub fn rebook_idle_us(&mut self, cpu: CpuId, recorded_us: u64, actual_us: u64) {
        self.cpus[cpu.index()].rebook_idle_us(recorded_us, actual_us);
    }

    /// Sum of missed deadlines (and clears the counters) across all CPUs.
    pub fn take_missed_deadlines(&mut self) -> u64 {
        self.cpus
            .iter_mut()
            .map(|d| d.take_missed_deadlines())
            .sum()
    }

    /// Total proportion granted across the machine as a fraction of one
    /// CPU, clamped — the aggregate view a single-CPU caller expects.
    pub fn total_reserved(&self) -> Proportion {
        Proportion::from_ppt(self.total_reserved_ppt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{Period, ThreadState};

    fn res(ppt: u32, period_ms: u64) -> Reservation {
        Reservation::new(Proportion::from_ppt(ppt), Period::from_millis(period_ms))
    }

    #[test]
    fn single_cpu_machine_matches_dispatcher_behaviour() {
        let mut m = Machine::new(DispatcherConfig::default(), 1);
        let mut d = Dispatcher::new(DispatcherConfig::default());
        m.add_thread_preadmitted(ThreadId(1), res(300, 10)).unwrap();
        d.add_thread_preadmitted(ThreadId(1), res(300, 10)).unwrap();
        for _ in 0..50 {
            let om = m.dispatch(CpuId::ZERO);
            let od = d.dispatch();
            assert_eq!(om, od);
            if let Some(t) = om.thread {
                m.charge(t, om.quantum_us).unwrap();
                d.charge(t, od.quantum_us).unwrap();
            }
            let next = m.now_us() + om.quantum_us;
            m.advance_to(next);
            d.advance_to(next);
        }
        assert_eq!(m.stats(), d.stats());
        assert_eq!(
            m.usage(ThreadId(1)).unwrap().total_used_us,
            d.usage(ThreadId(1)).unwrap().total_used_us
        );
    }

    #[test]
    fn zero_cpus_clamps_to_one() {
        let m = Machine::new(DispatcherConfig::default(), 0);
        assert_eq!(m.cpu_count(), 1);
        assert_eq!(m.cpu_ids().collect::<Vec<_>>(), vec![CpuId(0)]);
    }

    #[test]
    fn least_loaded_placement_spreads_threads() {
        let mut m = Machine::new(DispatcherConfig::default(), 4);
        for i in 0..8 {
            m.add_thread_preadmitted(ThreadId(i), res(200, 10)).unwrap();
        }
        // Two threads per CPU: every CPU carries 400 ppt.
        for cpu in m.cpu_ids() {
            assert_eq!(m.cpu_load_ppt(cpu), 400);
        }
        assert_eq!(m.total_reserved_ppt(), 1600, "aggregate is unclamped");
        assert_eq!(m.total_reserved(), Proportion::FULL, "clamped view");
        assert_eq!(m.thread_count(), 8);
    }

    #[test]
    fn duplicate_ids_rejected_across_cpus() {
        let mut m = Machine::new(DispatcherConfig::default(), 2);
        m.add_thread_on(CpuId(0), ThreadId(1), ThreadClass::Reserved(res(100, 10)))
            .unwrap();
        assert_eq!(
            m.add_thread_on(CpuId(1), ThreadId(1), ThreadClass::BestEffort),
            Err(SchedError::DuplicateThread(ThreadId(1))),
            "a thread exists once per machine, not once per CPU"
        );
        assert_eq!(
            m.add_thread_preadmitted_on(CpuId(1), ThreadId(1), res(1, 10)),
            Err(SchedError::DuplicateThread(ThreadId(1)))
        );
    }

    #[test]
    fn saturated_cpu_admission_is_per_cpu() {
        let mut m = Machine::new(DispatcherConfig::default(), 2);
        m.add_thread_on(CpuId(0), ThreadId(1), ThreadClass::Reserved(res(900, 10)))
            .unwrap();
        // CPU 0 is full; the same reservation still fits on CPU 1, and
        // least-loaded placement finds it.
        let cpu = m
            .add_thread(ThreadId(2), ThreadClass::Reserved(res(900, 10)))
            .unwrap();
        assert_eq!(cpu, CpuId(1));
        // A third such reservation fits nowhere.
        assert!(matches!(
            m.add_thread(ThreadId(3), ThreadClass::Reserved(res(900, 10))),
            Err(SchedError::Oversubscribed { .. })
        ));
    }

    #[test]
    fn migration_preserves_throttled_state_mid_period() {
        let mut m = Machine::new(DispatcherConfig::default(), 2);
        m.add_thread_preadmitted_on(CpuId(0), ThreadId(1), res(100, 10))
            .unwrap();
        let o = m.dispatch(CpuId(0));
        m.charge(ThreadId(1), o.quantum_us).unwrap();
        assert_eq!(
            m.dispatcher(CpuId(0)).thread_state(ThreadId(1)),
            Some(ThreadState::Throttled)
        );
        let used = m.usage(ThreadId(1)).unwrap().total_used_us;

        let from = m.migrate(ThreadId(1), CpuId(1)).unwrap();
        assert_eq!(from, CpuId(0));
        assert_eq!(m.cpu_of(ThreadId(1)), Some(CpuId(1)));
        assert_eq!(
            m.dispatcher(CpuId(1)).thread_state(ThreadId(1)),
            Some(ThreadState::Throttled),
            "throttle survives migration"
        );
        assert_eq!(m.usage(ThreadId(1)).unwrap().total_used_us, used);
        assert_eq!(m.dispatch(CpuId(1)).thread, None, "still parked");
        // The original period boundary replenishes it on the new CPU.
        m.advance_to(10_000);
        assert_eq!(m.dispatch(CpuId(1)).thread, Some(ThreadId(1)));
        // The source CPU no longer knows it.
        assert_eq!(m.dispatch(CpuId(0)).thread, None);
        assert_eq!(m.cpu_load_ppt(CpuId(0)), 0);
        assert_eq!(m.cpu_load_ppt(CpuId(1)), 100);
    }

    #[test]
    fn migrate_to_same_cpu_is_a_noop() {
        let mut m = Machine::new(DispatcherConfig::default(), 2);
        m.add_thread_preadmitted_on(CpuId(1), ThreadId(1), res(100, 10))
            .unwrap();
        assert_eq!(m.migrate(ThreadId(1), CpuId(1)), Ok(CpuId(1)));
        assert_eq!(m.cpu_of(ThreadId(1)), Some(CpuId(1)));
    }

    #[test]
    fn migrate_errors() {
        let mut m = Machine::new(DispatcherConfig::default(), 2);
        assert_eq!(
            m.migrate(ThreadId(9), CpuId(1)),
            Err(SchedError::UnknownThread(ThreadId(9)))
        );
        m.add_thread_preadmitted_on(CpuId(0), ThreadId(1), res(100, 10))
            .unwrap();
        assert!(matches!(
            m.migrate(ThreadId(1), CpuId(7)),
            Err(SchedError::InvalidState(_, _))
        ));
    }

    #[test]
    fn lockstep_advance_and_aggregate_stats() {
        let mut m = Machine::new(DispatcherConfig::default(), 2);
        m.add_thread_preadmitted_on(CpuId(0), ThreadId(1), res(300, 10))
            .unwrap();
        m.add_thread_preadmitted_on(CpuId(1), ThreadId(2), res(300, 10))
            .unwrap();
        for _ in 0..20 {
            let mut max_q = 1;
            for cpu in [CpuId(0), CpuId(1)] {
                let o = m.dispatch(cpu);
                if let Some(t) = o.thread {
                    m.charge(t, o.quantum_us).unwrap();
                }
                max_q = max_q.max(o.quantum_us);
            }
            m.advance_to(m.now_us() + max_q);
        }
        for cpu in m.cpu_ids() {
            assert_eq!(m.dispatcher(cpu).now_us(), m.now_us(), "lockstep clocks");
        }
        let agg = m.stats();
        assert_eq!(agg.dispatches, 40);
        assert!(agg.period_rollovers > 0);
        // Usage visits both CPUs.
        let mut seen = Vec::new();
        m.for_each_usage(|cpu, id, acct| {
            assert!(acct.total_used_us > 0);
            seen.push((cpu, id));
        });
        assert_eq!(seen, vec![(CpuId(0), ThreadId(1)), (CpuId(1), ThreadId(2))]);
        assert_eq!(m.take_missed_deadlines(), 0);
        assert!(m.next_timer_expiry().is_some());
    }

    #[test]
    fn remove_thread_frees_its_cpu() {
        let mut m = Machine::new(DispatcherConfig::default(), 2);
        m.add_thread(ThreadId(1), ThreadClass::Reserved(res(500, 10)))
            .unwrap();
        m.remove_thread(ThreadId(1)).unwrap();
        assert_eq!(m.thread_count(), 0);
        assert_eq!(m.total_reserved_ppt(), 0);
        assert_eq!(
            m.remove_thread(ThreadId(1)),
            Err(SchedError::UnknownThread(ThreadId(1)))
        );
        assert_eq!(m.reservation(ThreadId(1)), None);
        assert!(m.usage(ThreadId(1)).is_none());
        assert!(m.usage_ref(ThreadId(1)).is_none());
    }
}
