//! Fundamental scheduler types: thread identifiers, proportions and periods.

use serde::{Deserialize, Serialize};

/// Identifies a thread known to the scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ThreadId(pub u64);

impl ThreadId {
    /// Returns the raw identifier, used to key external tables such as the
    /// progress-metric registry.
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for ThreadId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Identifies one CPU of a [`crate::Machine`].
///
/// The paper's prototype ran on a single 400 MHz Pentium II; the machine
/// layer generalises the same dispatcher to `N` CPUs, each with its own
/// run queue, timer list and accounting.  `CpuId(0)` is the CPU a
/// single-CPU machine consists of.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CpuId(pub u32);

impl CpuId {
    /// The first (and on a single-CPU machine, only) CPU.
    pub const ZERO: CpuId = CpuId(0);

    /// The CPU's index, usable for dense per-CPU side tables.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for CpuId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cpu{}", self.0)
    }
}

/// A CPU proportion in parts per thousand, as specified in §3.1.
///
/// "The proportion is a percentage, specified in parts-per-thousand, of the
/// duration of the period during which the application should get the CPU."
///
/// # Examples
///
/// ```
/// use rrs_scheduler::Proportion;
///
/// let p = Proportion::from_ppt(50); // 5 % of the CPU
/// assert_eq!(p.as_fraction(), 0.05);
/// assert_eq!(Proportion::from_fraction(0.25).ppt(), 250);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Proportion(u32);

impl Proportion {
    /// The whole CPU (1000 parts per thousand).
    pub const FULL: Proportion = Proportion(1000);
    /// No CPU at all.
    pub const ZERO: Proportion = Proportion(0);
    /// The smallest non-zero proportion (1 part per thousand): the paper's
    /// starvation-avoidance guarantee assigns at least this much to every
    /// job.
    pub const MIN_NONZERO: Proportion = Proportion(1);

    /// Creates a proportion from parts per thousand, clamping to 1000.
    pub fn from_ppt(ppt: u32) -> Self {
        Self(ppt.min(1000))
    }

    /// Creates a proportion from a fraction in `[0, 1]` (clamped).
    pub fn from_fraction(fraction: f64) -> Self {
        let f = fraction.clamp(0.0, 1.0);
        Self((f * 1000.0).round() as u32)
    }

    /// Returns the proportion in parts per thousand.
    pub fn ppt(self) -> u32 {
        self.0
    }

    /// Returns the proportion as a fraction in `[0, 1]`.
    pub fn as_fraction(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// Returns `true` if the proportion is zero.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating addition, capped at the full CPU.
    pub fn saturating_add(self, other: Proportion) -> Proportion {
        Proportion::from_ppt(self.0 + other.0)
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: Proportion) -> Proportion {
        Proportion(self.0.saturating_sub(other.0))
    }

    /// Scales the proportion by `factor` (clamped to `[0, 1000 ppt]`).
    pub fn scale(self, factor: f64) -> Proportion {
        Proportion::from_fraction(self.as_fraction() * factor.max(0.0))
    }
}

impl std::fmt::Display for Proportion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}‰", self.0)
    }
}

/// A scheduling period.
///
/// Periods are stored in microseconds so that sub-millisecond dispatch
/// intervals (Figure 8 sweeps down to 100 µs) can be represented exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Period(u64);

impl Period {
    /// The paper's default period for jobs with no better information:
    /// 30 milliseconds.
    pub const DEFAULT: Period = Period(30_000);

    /// Creates a period from microseconds.
    ///
    /// # Panics
    ///
    /// Panics if `us == 0`.
    pub fn from_micros(us: u64) -> Self {
        assert!(us > 0, "period must be non-zero");
        Self(us)
    }

    /// Creates a period from milliseconds.
    ///
    /// # Panics
    ///
    /// Panics if `ms == 0`.
    pub fn from_millis(ms: u64) -> Self {
        Self::from_micros(ms * 1000)
    }

    /// Returns the period in microseconds.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns the period in milliseconds (integer division).
    pub fn as_millis(self) -> u64 {
        self.0 / 1000
    }

    /// Returns the period in seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }
}

impl Default for Period {
    fn default() -> Self {
        Period::DEFAULT
    }
}

impl std::fmt::Display for Period {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.0.is_multiple_of(1000) {
            write!(f, "{}ms", self.0 / 1000)
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

/// The run state of a thread as seen by the dispatcher.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ThreadState {
    /// Runnable and waiting on the run queue.
    Ready,
    /// Currently executing.
    Running,
    /// Blocked on I/O or a full/empty queue; not runnable.
    Blocked,
    /// Exhausted its allocation for the current period and parked until the
    /// next period begins.
    Throttled,
    /// Removed from the scheduler.
    Exited,
}

impl ThreadState {
    /// Returns `true` if the thread can be placed on the run queue.
    pub fn is_runnable(self) -> bool {
        matches!(self, ThreadState::Ready | ThreadState::Running)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn proportion_conversions() {
        assert_eq!(Proportion::from_ppt(50).as_fraction(), 0.05);
        assert_eq!(Proportion::from_fraction(0.5).ppt(), 500);
        assert_eq!(Proportion::from_fraction(-1.0).ppt(), 0);
        assert_eq!(Proportion::from_fraction(2.0).ppt(), 1000);
        assert_eq!(Proportion::from_ppt(5000).ppt(), 1000);
        assert!(Proportion::ZERO.is_zero());
        assert!(!Proportion::MIN_NONZERO.is_zero());
    }

    #[test]
    fn proportion_arithmetic() {
        let a = Proportion::from_ppt(600);
        let b = Proportion::from_ppt(500);
        assert_eq!(a.saturating_add(b), Proportion::FULL);
        assert_eq!(a.saturating_sub(b).ppt(), 100);
        assert_eq!(b.saturating_sub(a).ppt(), 0);
        assert_eq!(a.scale(0.5).ppt(), 300);
        assert_eq!(a.scale(10.0), Proportion::FULL);
        assert_eq!(a.scale(-1.0), Proportion::ZERO);
    }

    #[test]
    fn proportion_display() {
        assert_eq!(Proportion::from_ppt(50).to_string(), "50‰");
    }

    #[test]
    fn period_conversions() {
        let p = Period::from_millis(30);
        assert_eq!(p.as_micros(), 30_000);
        assert_eq!(p.as_millis(), 30);
        assert_eq!(p.as_secs_f64(), 0.03);
        assert_eq!(p, Period::DEFAULT);
        assert_eq!(Period::default(), Period::DEFAULT);
    }

    #[test]
    fn period_display() {
        assert_eq!(Period::from_millis(5).to_string(), "5ms");
        assert_eq!(Period::from_micros(250).to_string(), "250us");
    }

    #[test]
    #[should_panic(expected = "period must be non-zero")]
    fn zero_period_rejected() {
        let _ = Period::from_micros(0);
    }

    #[test]
    fn thread_state_runnable() {
        assert!(ThreadState::Ready.is_runnable());
        assert!(ThreadState::Running.is_runnable());
        assert!(!ThreadState::Blocked.is_runnable());
        assert!(!ThreadState::Throttled.is_runnable());
        assert!(!ThreadState::Exited.is_runnable());
    }

    #[test]
    fn thread_id_display_and_raw() {
        let id = ThreadId(42);
        assert_eq!(id.to_string(), "t42");
        assert_eq!(id.raw(), 42);
    }

    #[test]
    fn cpu_id_display_and_index() {
        assert_eq!(CpuId(3).to_string(), "cpu3");
        assert_eq!(CpuId(3).index(), 3);
        assert_eq!(CpuId::ZERO, CpuId(0));
        assert!(CpuId(0) < CpuId(1));
    }

    proptest! {
        #[test]
        fn fraction_round_trip(ppt in 0u32..=1000) {
            let p = Proportion::from_ppt(ppt);
            let back = Proportion::from_fraction(p.as_fraction());
            prop_assert_eq!(p, back);
        }

        #[test]
        fn saturating_add_never_exceeds_full(a in 0u32..=1000, b in 0u32..=1000) {
            let sum = Proportion::from_ppt(a).saturating_add(Proportion::from_ppt(b));
            prop_assert!(sum.ppt() <= 1000);
        }

        #[test]
        fn scale_is_monotone(ppt in 0u32..=1000, f1 in 0.0f64..2.0, f2 in 0.0f64..2.0) {
            let p = Proportion::from_ppt(ppt);
            let (lo, hi) = if f1 <= f2 { (f1, f2) } else { (f2, f1) };
            prop_assert!(p.scale(lo).ppt() <= p.scale(hi).ppt());
        }
    }
}
