//! The Linux-style goodness function used at dispatch.
//!
//! The prototype RBS is layered on Linux 2.0.35's dispatcher: "Our policy
//! calculates goodness to ensure that threads it controls have higher
//! goodness than jobs under other policies, and that jobs with shorter
//! periods have higher goodness values" (§3.1).  This module reproduces
//! that ordering as a pure function so it can be tested exhaustively.

use crate::types::Period;

/// Base goodness for any runnable RBS-controlled thread.  It is far above
/// anything a best-effort thread can reach, so RBS threads always win.
pub const RBS_BASE_GOODNESS: i64 = 1_000_000_000;

/// Maximum goodness a best-effort thread can have (its remaining time slice
/// in microseconds plus a small bonus), well below [`RBS_BASE_GOODNESS`].
pub const BEST_EFFORT_MAX_GOODNESS: i64 = 1_000_000;

/// Goodness of an RBS thread with budget remaining in its current period.
///
/// Shorter periods produce strictly higher goodness (rate-monotonic order).
pub fn rbs_goodness(period: Period) -> i64 {
    // 1e12 / period_us: a 1 ms period scores 1e9 above base, a 1 s period
    // scores 1e6 above base; all are above RBS_BASE_GOODNESS and ordered by
    // period.
    RBS_BASE_GOODNESS + (1_000_000_000_000u64 / period.as_micros()) as i64
}

/// Goodness of a best-effort thread with the given remaining time slice in
/// microseconds.  Zero when the slice is exhausted (forcing a recalculation
/// pass, as in Linux).
pub fn best_effort_goodness(remaining_slice_us: u64) -> i64 {
    remaining_slice_us.min(BEST_EFFORT_MAX_GOODNESS as u64) as i64
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn rbs_always_beats_best_effort() {
        let long_period = rbs_goodness(Period::from_millis(10_000));
        let best_effort = best_effort_goodness(u64::MAX);
        assert!(long_period > best_effort);
    }

    #[test]
    fn shorter_period_wins() {
        let short = rbs_goodness(Period::from_millis(10));
        let long = rbs_goodness(Period::from_millis(30));
        assert!(short > long);
    }

    #[test]
    fn equal_periods_have_equal_goodness() {
        assert_eq!(
            rbs_goodness(Period::from_millis(30)),
            rbs_goodness(Period::from_micros(30_000))
        );
    }

    #[test]
    fn exhausted_best_effort_thread_scores_zero() {
        assert_eq!(best_effort_goodness(0), 0);
    }

    #[test]
    fn best_effort_goodness_is_capped() {
        assert_eq!(best_effort_goodness(u64::MAX), BEST_EFFORT_MAX_GOODNESS);
    }

    proptest! {
        #[test]
        fn rbs_goodness_is_monotone_in_period(a in 1u64..1_000_000, b in 1u64..1_000_000) {
            let ga = rbs_goodness(Period::from_micros(a));
            let gb = rbs_goodness(Period::from_micros(b));
            if a < b {
                prop_assert!(ga >= gb);
            }
        }

        #[test]
        fn any_rbs_beats_any_best_effort(period_us in 1u64..1_000_000_000, slice in 0u64..u64::MAX) {
            prop_assert!(rbs_goodness(Period::from_micros(period_us)) > best_effort_goodness(slice));
        }
    }
}
