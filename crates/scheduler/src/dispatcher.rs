//! The proportion/period dispatcher.
//!
//! This is the "low-level scheduler" of §3.1: at each dispatch point it
//! picks the runnable thread with the highest goodness, charges the running
//! thread for the CPU it consumed, throttles threads that have used their
//! allocation for the current period, and rolls per-thread periods when
//! their timers expire.  It is a pure state machine over an explicit clock
//! (`now_us`), driven either by the discrete-event simulator or by the
//! wall-clock executor.
//!
//! Internally threads live in dense slot-indexed storage (mirroring the
//! controller's `SlotTable`) and every runnable thread is kept ranked in a
//! goodness-indexed run queue, so a dispatch decision is an `O(1)` peek
//! plus an `O(log n)` re-rank instead of the original full scan over every
//! registered thread.  Re-ranking is lazy: a thread's queue entry is only
//! touched by the state changes that can affect it (block/unblock,
//! throttle, charge, reservation change, pick), so an idle dispatcher —
//! the paper's "no work unless at least one timer has expired" case —
//! re-dispatches in constant time.

use crate::accounting::UsageAccount;
use crate::admission::AdmissionControl;
use crate::error::SchedError;
use crate::goodness::{best_effort_goodness, rbs_goodness};
use crate::reservation::Reservation;
use crate::runqueue::{RunKey, RunQueue};
use crate::timerlist::TimerList;
use crate::types::{Proportion, ThreadId, ThreadState};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// How a thread is scheduled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadClass {
    /// Scheduled by the RBS with a proportion/period reservation.
    Reserved(Reservation),
    /// Scheduled best-effort (the default Linux policy); only runs when no
    /// reserved thread is runnable.
    BestEffort,
}

/// Configuration for the dispatcher.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct DispatcherConfig {
    /// The dispatch (timer) interval in microseconds; the paper's prototype
    /// uses 1 ms.
    pub dispatch_interval_us: u64,
    /// Admission threshold for reservations.
    pub admission_threshold_ppt: u32,
    /// Modelled cost of one dispatch decision (`schedule()` plus
    /// `do_timers()`), in microseconds.  Used for the Figure 8 overhead
    /// experiment; set to 0.0 to disable overhead modelling.
    pub dispatch_cost_us: f64,
    /// Additional modelled cost per context switch (cache and TLB refill),
    /// in microseconds.
    pub context_switch_cost_us: f64,
    /// Time slice granted to best-effort threads, in microseconds.
    pub best_effort_slice_us: u64,
}

impl Default for DispatcherConfig {
    fn default() -> Self {
        Self {
            dispatch_interval_us: 1_000,
            admission_threshold_ppt: AdmissionControl::DEFAULT_THRESHOLD_PPT,
            // Calibrated so that a 250 µs dispatch interval costs ≈ 2.7 % of
            // the CPU, matching the knee reported in Figure 8.
            dispatch_cost_us: 6.8,
            context_switch_cost_us: 1.9,
            best_effort_slice_us: 10_000,
        }
    }
}

/// Counters describing what the dispatcher has done so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct DispatchStats {
    /// Number of dispatch decisions taken.
    pub dispatches: u64,
    /// Number of dispatch decisions that switched to a different thread.
    pub context_switches: u64,
    /// Number of per-thread period boundaries processed.
    pub period_rollovers: u64,
    /// Number of missed deadlines detected at period boundaries.
    pub deadlines_missed: u64,
    /// Modelled scheduling overhead accumulated so far, in microseconds.
    pub overhead_us: f64,
    /// Time during which no thread was runnable, in microseconds.
    pub idle_us: u64,
}

/// The result of one dispatch decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DispatchOutcome {
    /// The thread selected to run, or `None` if nothing is runnable.
    pub thread: Option<ThreadId>,
    /// How long the selection is valid for, in microseconds: the caller
    /// should run the thread (or idle) for at most this long before calling
    /// [`Dispatcher::advance_to`] and dispatching again.
    pub quantum_us: u64,
}

#[derive(Debug)]
struct ThreadEntry {
    id: ThreadId,
    class: ThreadClass,
    state: ThreadState,
    account: UsageAccount,
    remaining_slice_us: u64,
    /// Monotonic sequence number of the last time this thread was picked;
    /// used to round-robin among equal-goodness best-effort threads.
    last_picked_seq: u64,
    /// Whether this entry currently contributes to
    /// [`Dispatcher::runnable_be_with_slice`]; kept on the entry so the
    /// counter can be adjusted incrementally on any state change.
    counted_be_slice: bool,
}

/// A thread lifted out of one dispatcher for insertion into another — the
/// payload of a cross-CPU migration.
///
/// Carries everything the destination CPU needs to continue the thread's
/// current period exactly where the source CPU left it: the class
/// (reservation), run state, the full usage account (budget, consumption,
/// lifetime totals), the remaining best-effort slice and the armed period
/// boundary.  Obtained from [`Dispatcher::take_thread`], consumed by
/// [`Dispatcher::inject_thread`].
#[derive(Debug, Clone, Copy)]
pub struct MigratedThread {
    /// The migrating thread's id.
    pub id: ThreadId,
    class: ThreadClass,
    state: ThreadState,
    account: UsageAccount,
    remaining_slice_us: u64,
    /// The expiry the source CPU had armed for the thread's next period
    /// boundary.  Carried verbatim so a mid-period reservation change
    /// (which re-arms from the change instant, not the period start)
    /// survives migration.
    next_boundary_us: Option<u64>,
}

impl MigratedThread {
    /// The thread's scheduling class (reservation or best-effort).
    pub fn class(&self) -> ThreadClass {
        self.class
    }

    /// The thread's run state at the moment it was taken.
    pub fn state(&self) -> ThreadState {
        self.state
    }

    /// The thread's usage account at the moment it was taken.
    pub fn account(&self) -> UsageAccount {
        self.account
    }
}

/// The reservation-based dispatcher.
///
/// # Examples
///
/// ```
/// use rrs_scheduler::{Dispatcher, DispatcherConfig, Period, Proportion, Reservation, ThreadClass, ThreadId};
///
/// let mut d = Dispatcher::new(DispatcherConfig::default());
/// let r = Reservation::new(Proportion::from_ppt(500), Period::from_millis(10));
/// d.add_thread(ThreadId(1), ThreadClass::Reserved(r)).unwrap();
/// let outcome = d.dispatch();
/// assert_eq!(outcome.thread, Some(ThreadId(1)));
/// ```
#[derive(Debug)]
pub struct Dispatcher {
    config: DispatcherConfig,
    admission: AdmissionControl,
    /// Dense slot-indexed thread storage; freed slots are reused LIFO.
    entries: Vec<Option<ThreadEntry>>,
    free: Vec<u32>,
    /// Id → dense slot, and the id-ordered iteration view.
    by_id: BTreeMap<ThreadId, u32>,
    /// Every runnable thread, ranked by the dispatch key.
    runnable: RunQueue,
    /// Number of registered best-effort threads.
    be_count: usize,
    /// Number of runnable best-effort threads with slice remaining — the
    /// `O(1)` form of the "does anything still have a slice?" scan that
    /// guards the Linux-style goodness recalculation pass.
    runnable_be_with_slice: usize,
    /// `true` while some best-effort slice may sit below its full value;
    /// when `false` the recalculation pass would be a no-op and is skipped,
    /// so repeated idle dispatches do no per-thread work.
    be_slices_dirty: bool,
    /// Running sum of reserved proportions, in parts per thousand.
    reserved_ppt: u32,
    timers: TimerList,
    now_us: u64,
    running: Option<ThreadId>,
    pick_seq: u64,
    stats: DispatchStats,
    missed_since_last_poll: u64,
}

impl Dispatcher {
    /// Creates a dispatcher with the given configuration.
    pub fn new(config: DispatcherConfig) -> Self {
        Self {
            admission: AdmissionControl::with_threshold(Proportion::from_ppt(
                config.admission_threshold_ppt,
            )),
            config,
            entries: Vec::new(),
            free: Vec::new(),
            by_id: BTreeMap::new(),
            runnable: RunQueue::new(),
            be_count: 0,
            runnable_be_with_slice: 0,
            be_slices_dirty: false,
            reserved_ppt: 0,
            timers: TimerList::new(),
            now_us: 0,
            running: None,
            pick_seq: 0,
            stats: DispatchStats::default(),
            missed_since_last_poll: 0,
        }
    }

    /// Current scheduler time in microseconds.
    pub fn now_us(&self) -> u64 {
        self.now_us
    }

    /// The configuration the dispatcher was created with.
    pub fn config(&self) -> DispatcherConfig {
        self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> DispatchStats {
        self.stats
    }

    /// Number of threads known to the dispatcher.
    pub fn thread_count(&self) -> usize {
        self.by_id.len()
    }

    /// All registered thread ids, in id order, without allocating.
    pub fn thread_ids(&self) -> impl Iterator<Item = ThreadId> + '_ {
        self.by_id.keys().copied()
    }

    /// Sum of the proportions of all reserved threads, in parts per
    /// thousand.  Unlike [`Proportion`], this is not clamped at 1000, so an
    /// oversubscribed system reports a value above 1000.  Maintained
    /// incrementally, so the admission test and least-loaded placement stay
    /// `O(1)` per query.
    pub fn total_reserved_ppt(&self) -> u32 {
        self.reserved_ppt
    }

    /// Sum of the proportions of all reserved threads, clamped to the full
    /// CPU.
    pub fn total_reserved(&self) -> Proportion {
        Proportion::from_ppt(self.total_reserved_ppt())
    }

    /// Returns `true` if the sum of reservations exceeds the admission
    /// threshold.
    pub fn is_overloaded(&self) -> bool {
        self.total_reserved_ppt() > self.admission.threshold().ppt()
    }

    /// The admission controller (threshold and headroom queries).
    pub fn admission(&self) -> AdmissionControl {
        self.admission
    }

    /// Resolves an id to its dense slot and entry, for the mutating paths.
    fn entry_mut_of(&mut self, id: ThreadId) -> Result<(u32, &mut ThreadEntry), SchedError> {
        let &idx = self.by_id.get(&id).ok_or(SchedError::UnknownThread(id))?;
        let entry = self.entries[idx as usize].as_mut().expect("slot is live");
        Ok((idx, entry))
    }

    fn entry_of(&self, id: ThreadId) -> Option<&ThreadEntry> {
        let &idx = self.by_id.get(&id)?;
        self.entries[idx as usize].as_ref()
    }

    /// Stores a fresh entry, indexes it, and returns its dense slot.
    fn link(&mut self, entry: ThreadEntry) -> u32 {
        let idx = match self.free.pop() {
            Some(i) => i,
            None => {
                self.entries.push(None);
                u32::try_from(self.entries.len() - 1).expect("fewer than 2^32 threads")
            }
        };
        match entry.class {
            ThreadClass::Reserved(r) => self.reserved_ppt += r.proportion.ppt(),
            ThreadClass::BestEffort => self.be_count += 1,
        }
        self.by_id.insert(entry.id, idx);
        self.entries[idx as usize] = Some(entry);
        self.reindex(idx);
        idx
    }

    /// Removes the entry at `idx` from every index and frees the slot.
    fn unlink(&mut self, idx: u32) -> ThreadEntry {
        let entry = self.entries[idx as usize].take().expect("slot is live");
        self.runnable.remove(idx);
        if entry.counted_be_slice {
            self.runnable_be_with_slice -= 1;
        }
        match entry.class {
            ThreadClass::Reserved(r) => self.reserved_ppt -= r.proportion.ppt(),
            ThreadClass::BestEffort => self.be_count -= 1,
        }
        self.by_id.remove(&entry.id);
        self.free.push(idx);
        entry
    }

    /// Re-derives the entry's run-queue membership, rank and recalc-counter
    /// contribution from its current state.  Called after every mutation
    /// that can affect them; `O(log n)`.
    fn reindex(&mut self, idx: u32) {
        let Some(entry) = self.entries[idx as usize].as_mut() else {
            return;
        };
        let runnable = entry.state.is_runnable();
        let counted = runnable
            && matches!(entry.class, ThreadClass::BestEffort)
            && entry.remaining_slice_us > 0;
        if counted != entry.counted_be_slice {
            entry.counted_be_slice = counted;
            if counted {
                self.runnable_be_with_slice += 1;
            } else {
                self.runnable_be_with_slice -= 1;
            }
        }
        if runnable {
            let goodness = match entry.class {
                ThreadClass::Reserved(r) => rbs_goodness(r.period),
                ThreadClass::BestEffort => best_effort_goodness(entry.remaining_slice_us),
            };
            let key = RunKey {
                neg_goodness: -goodness,
                last_picked_seq: entry.last_picked_seq,
                id: entry.id,
            };
            self.runnable.upsert(idx, key);
        } else {
            self.runnable.remove(idx);
        }
    }

    /// Registers a thread.  Reserved threads are subject to admission
    /// control; the new thread starts Ready with a full budget and a period
    /// timer armed at `now + period`.
    pub fn add_thread(&mut self, id: ThreadId, class: ThreadClass) -> Result<(), SchedError> {
        if self.by_id.contains_key(&id) {
            return Err(SchedError::DuplicateThread(id));
        }
        let account = match class {
            ThreadClass::Reserved(r) => {
                self.admission
                    .try_admit(self.total_reserved(), r.proportion)?;
                self.timers.arm(id, self.now_us + r.period.as_micros());
                UsageAccount::new(self.now_us, r.budget_micros())
            }
            ThreadClass::BestEffort => UsageAccount::new(self.now_us, 0),
        };
        let mut entry = ThreadEntry {
            id,
            class,
            state: ThreadState::Ready,
            account,
            remaining_slice_us: self.config.best_effort_slice_us,
            last_picked_seq: 0,
            counted_be_slice: false,
        };
        entry.account.mark_runnable();
        self.link(entry);
        Ok(())
    }

    /// Registers a thread whose reservation was already admitted by a
    /// higher authority (the adaptive controller), bypassing this
    /// dispatcher's own admission test.
    ///
    /// The controller squishes allocations instead of rejecting them, so
    /// its running jobs can legitimately sit at the admission threshold;
    /// re-checking here would spuriously reject late arrivals.  Fails only
    /// on a duplicate id.
    pub fn add_thread_preadmitted(
        &mut self,
        id: ThreadId,
        reservation: Reservation,
    ) -> Result<(), SchedError> {
        self.add_thread(id, ThreadClass::BestEffort)?;
        self.set_reservation(id, reservation)
            .expect("thread was just added");
        Ok(())
    }

    /// Lifts a thread out of this dispatcher for migration to another CPU,
    /// preserving its class, run state and usage account.
    ///
    /// A running thread is demoted to Ready (it is not running on the
    /// destination CPU); its period timer is cancelled here and re-armed by
    /// [`Dispatcher::inject_thread`].
    pub fn take_thread(&mut self, id: ThreadId) -> Result<MigratedThread, SchedError> {
        let &idx = self.by_id.get(&id).ok_or(SchedError::UnknownThread(id))?;
        let next_boundary_us = self.timers.expiry_of(id);
        self.timers.cancel(id);
        if self.running == Some(id) {
            self.running = None;
        }
        let entry = self.unlink(idx);
        let state = match entry.state {
            ThreadState::Running => ThreadState::Ready,
            other => other,
        };
        Ok(MigratedThread {
            id,
            class: entry.class,
            state,
            account: entry.account,
            remaining_slice_us: entry.remaining_slice_us,
            next_boundary_us,
        })
    }

    /// Inserts a migrated thread, continuing its current period.
    ///
    /// The period timer is re-armed at exactly the boundary the source CPU
    /// had scheduled (falling back to `period_start + period` for
    /// payloads with no armed timer); if that boundary has already passed
    /// on this CPU's clock it fires at the next
    /// [`Dispatcher::advance_to`].  Admission is not re-checked: placement
    /// is the migrating authority's responsibility, exactly like the
    /// controller's actuation path.
    pub fn inject_thread(&mut self, thread: MigratedThread) -> Result<(), SchedError> {
        if self.by_id.contains_key(&thread.id) {
            return Err(SchedError::DuplicateThread(thread.id));
        }
        if let ThreadClass::Reserved(r) = thread.class {
            let boundary = thread
                .next_boundary_us
                .unwrap_or(thread.account.period_start_us + r.period.as_micros());
            self.timers.arm(thread.id, boundary.max(self.now_us + 1));
        }
        if matches!(thread.class, ThreadClass::BestEffort)
            && thread.remaining_slice_us < self.config.best_effort_slice_us
        {
            self.be_slices_dirty = true;
        }
        self.link(ThreadEntry {
            id: thread.id,
            class: thread.class,
            state: thread.state,
            account: thread.account,
            remaining_slice_us: thread.remaining_slice_us,
            last_picked_seq: 0,
            counted_be_slice: false,
        });
        Ok(())
    }

    /// The earliest armed period timer, if any — the next instant at which
    /// an idle CPU has work to do.
    pub fn next_timer_expiry(&self) -> Option<u64> {
        self.timers.next_expiry()
    }

    /// Re-books idle time after an idle dispatch.
    ///
    /// An idle [`Dispatcher::dispatch`] charges its returned quantum to
    /// [`DispatchStats::idle_us`] on the assumption that the caller idles
    /// for exactly that long.  A lockstep driver may advance the shared
    /// clock by a different amount — less when another CPU's thread
    /// yielded early, more when it fast-forwards across a quiet gap — and
    /// calls this with what was recorded and what actually elapsed so the
    /// statistic stays truthful.
    pub fn rebook_idle_us(&mut self, recorded_us: u64, actual_us: u64) {
        self.stats.idle_us = self.stats.idle_us.saturating_sub(recorded_us) + actual_us;
    }

    /// Removes a thread from the dispatcher.
    pub fn remove_thread(&mut self, id: ThreadId) -> Result<(), SchedError> {
        let Some(&idx) = self.by_id.get(&id) else {
            return Err(SchedError::UnknownThread(id));
        };
        self.unlink(idx);
        self.timers.cancel(id);
        if self.running == Some(id) {
            self.running = None;
        }
        Ok(())
    }

    /// Changes a thread's reservation — the actuation path used by the
    /// controller every controller period.  The change takes effect
    /// immediately for the budget of future periods; the current period's
    /// budget is adjusted proportionally if it grows.
    ///
    /// Admission is *not* re-checked here: the controller is responsible for
    /// keeping the total under the threshold (it squishes allocations when
    /// the system would otherwise be oversubscribed).
    pub fn set_reservation(
        &mut self,
        id: ThreadId,
        reservation: Reservation,
    ) -> Result<(), SchedError> {
        let now = self.now_us;
        let (idx, entry) = self.entry_mut_of(id)?;
        let old_class = entry.class;
        entry.class = ThreadClass::Reserved(reservation);
        let new_budget = reservation.budget_micros();
        // Growing the budget mid-period can un-throttle the thread; a
        // shrinking budget only applies from the next period so work already
        // granted is not clawed back.
        if new_budget > entry.account.budget_us {
            entry.account.budget_us = new_budget;
            if entry.state == ThreadState::Throttled && !entry.account.exhausted() {
                entry.state = ThreadState::Ready;
                entry.account.mark_runnable();
            }
        }
        let old_period = match old_class {
            ThreadClass::Reserved(r) => {
                self.reserved_ppt -= r.proportion.ppt();
                Some(r.period)
            }
            ThreadClass::BestEffort => {
                self.be_count -= 1;
                None
            }
        };
        self.reserved_ppt += reservation.proportion.ppt();
        match old_period {
            Some(p) if p == reservation.period => {}
            _ => {
                // New period length: re-arm the period timer from now.
                self.timers.arm(id, now + reservation.period.as_micros());
            }
        }
        self.reindex(idx);
        Ok(())
    }

    /// Returns a thread's current reservation, if it is reserved.
    pub fn reservation(&self, id: ThreadId) -> Option<Reservation> {
        match self.entry_of(id)?.class {
            ThreadClass::Reserved(r) => Some(r),
            ThreadClass::BestEffort => None,
        }
    }

    /// Returns a thread's current state.
    pub fn thread_state(&self, id: ThreadId) -> Option<ThreadState> {
        self.entry_of(id).map(|t| t.state)
    }

    /// Returns a copy of a thread's usage account.
    pub fn usage(&self, id: ThreadId) -> Option<UsageAccount> {
        self.entry_of(id).map(|t| t.account)
    }

    /// Borrows a thread's usage account without copying — the controller's
    /// per-cycle accounting read.
    pub fn usage_ref(&self, id: ThreadId) -> Option<&UsageAccount> {
        self.entry_of(id).map(|t| &t.account)
    }

    /// Visits every thread's usage account in id order in one pass without
    /// allocating.  Drives the controller's usage feedback in the simulator
    /// and the wall-clock executor.
    pub fn for_each_usage(&self, mut f: impl FnMut(ThreadId, &UsageAccount)) {
        for (&id, &idx) in &self.by_id {
            let entry = self.entries[idx as usize].as_ref().expect("indexed");
            f(id, &entry.account);
        }
    }

    /// Marks a thread as blocked (waiting on I/O or a queue).
    pub fn block(&mut self, id: ThreadId) -> Result<(), SchedError> {
        let (idx, entry) = self.entry_mut_of(id)?;
        if entry.state == ThreadState::Exited {
            return Err(SchedError::InvalidState(id, "thread has exited"));
        }
        entry.state = ThreadState::Blocked;
        if self.running == Some(id) {
            self.running = None;
        }
        self.reindex(idx);
        Ok(())
    }

    /// Wakes a blocked thread.  Threads that are throttled stay throttled
    /// until their next period even if woken.
    pub fn unblock(&mut self, id: ThreadId) -> Result<(), SchedError> {
        let (idx, entry) = self.entry_mut_of(id)?;
        if entry.state == ThreadState::Blocked {
            if entry.account.exhausted() && matches!(entry.class, ThreadClass::Reserved(_)) {
                entry.state = ThreadState::Throttled;
            } else {
                entry.state = ThreadState::Ready;
                entry.account.mark_runnable();
            }
            self.reindex(idx);
        }
        Ok(())
    }

    /// Advances the scheduler clock to `now_us`, processing any period
    /// timers that expired on the way (`do_timers()` in the prototype).
    /// Constant-time when no timer has expired.
    pub fn advance_to(&mut self, now_us: u64) {
        if now_us <= self.now_us {
            return;
        }
        self.now_us = now_us;
        // Drain expired timers in expiry order, one at a time — re-armed
        // boundaries land strictly in the future, so the drain terminates
        // without collecting into an intermediate `Vec`.
        while let Some(id) = self.timers.pop_next_expired(now_us) {
            let Some(&idx) = self.by_id.get(&id) else {
                continue;
            };
            let Some(entry) = self.entries[idx as usize].as_mut() else {
                continue;
            };
            let ThreadClass::Reserved(r) = entry.class else {
                continue;
            };
            let missed = entry.account.roll_period(now_us, r.budget_micros());
            self.stats.period_rollovers += 1;
            if missed {
                self.stats.deadlines_missed += 1;
                self.missed_since_last_poll += 1;
            }
            if entry.state == ThreadState::Throttled {
                entry.state = ThreadState::Ready;
            }
            if entry.state.is_runnable() {
                entry.account.mark_runnable();
            }
            // Re-arm for the next period boundary.
            self.timers.arm(id, now_us + r.period.as_micros());
            self.reindex(idx);
        }
    }

    /// Returns (and clears) the number of deadlines missed since the last
    /// call.  The controller polls this to decide whether to grow its spare
    /// capacity by lowering the admission threshold.
    pub fn take_missed_deadlines(&mut self) -> u64 {
        std::mem::take(&mut self.missed_since_last_poll)
    }

    /// The Linux "recalculate goodness" pass: when every runnable
    /// best-effort thread has exhausted its slice, refill every best-effort
    /// slice.  Skipped in `O(1)` when some runnable slice remains or when
    /// every slice is already known to be full, so repeated idle dispatches
    /// touch no per-thread state.
    fn maybe_recalc(&mut self) {
        if self.runnable_be_with_slice > 0 {
            return;
        }
        if self.be_count == 0 || !self.be_slices_dirty {
            return;
        }
        let slice = self.config.best_effort_slice_us;
        for idx in 0..self.entries.len() {
            let is_be = self.entries[idx]
                .as_ref()
                .is_some_and(|e| matches!(e.class, ThreadClass::BestEffort));
            if is_be {
                self.entries[idx]
                    .as_mut()
                    .expect("just checked")
                    .remaining_slice_us = slice;
                self.reindex(idx as u32);
            }
        }
        self.be_slices_dirty = false;
    }

    /// Takes one dispatch decision: picks the runnable thread with the
    /// highest goodness and returns it together with the quantum it may run
    /// for.  Charges the modelled dispatch overhead.
    pub fn dispatch(&mut self) -> DispatchOutcome {
        self.stats.dispatches += 1;
        self.stats.overhead_us += self.config.dispatch_cost_us;

        // Recalculate best-effort slices when every runnable best-effort
        // thread has exhausted its slice (the Linux "recalculate goodness"
        // pass).
        self.maybe_recalc();

        // Pick the best runnable thread: highest goodness, ties broken by
        // least recently picked, then lowest id.
        let Some((key, idx)) = self.runnable.peek() else {
            // Nothing runnable: idle until the next timer or one dispatch
            // interval, whichever comes first.
            let quantum = self
                .timers
                .next_expiry()
                .map(|t| t.saturating_sub(self.now_us).max(1))
                .unwrap_or(self.config.dispatch_interval_us)
                .min(self.config.dispatch_interval_us.max(1));
            self.stats.idle_us += quantum;
            if self.running.is_some() {
                self.running = None;
            }
            return DispatchOutcome {
                thread: None,
                quantum_us: quantum,
            };
        };
        let picked = key.id;

        if self.running != Some(picked) {
            self.stats.context_switches += 1;
            self.stats.overhead_us += self.config.context_switch_cost_us;
        }
        self.running = Some(picked);
        self.pick_seq += 1;

        let pick_seq = self.pick_seq;
        let entry = self.entries[idx as usize]
            .as_mut()
            .expect("peeked slot is live");
        entry.last_picked_seq = pick_seq;
        entry.state = ThreadState::Running;
        entry.account.mark_runnable();

        let budget_cap = match entry.class {
            ThreadClass::Reserved(_) => entry.account.remaining_us().max(1),
            ThreadClass::BestEffort => entry.remaining_slice_us.max(1),
        };
        let quantum = self.config.dispatch_interval_us.max(1).min(budget_cap);
        self.reindex(idx);
        DispatchOutcome {
            thread: Some(picked),
            quantum_us: quantum,
        }
    }

    /// Charges `us` microseconds of CPU consumption to a thread, throttling
    /// it if its budget (or best-effort slice) is exhausted.
    pub fn charge(&mut self, id: ThreadId, us: u64) -> Result<(), SchedError> {
        let (idx, entry) = self.entry_mut_of(id)?;
        entry.account.charge(us);
        let mut throttled = false;
        let mut be_charged = false;
        match entry.class {
            ThreadClass::Reserved(_) => {
                if entry.account.exhausted() && entry.state.is_runnable() {
                    entry.state = ThreadState::Throttled;
                    throttled = true;
                } else if entry.state == ThreadState::Running {
                    entry.state = ThreadState::Ready;
                }
            }
            ThreadClass::BestEffort => {
                entry.remaining_slice_us = entry.remaining_slice_us.saturating_sub(us);
                be_charged = true;
                if entry.state == ThreadState::Running {
                    entry.state = ThreadState::Ready;
                }
            }
        }
        if be_charged {
            self.be_slices_dirty = true;
        }
        if throttled && self.running == Some(id) {
            self.running = None;
        }
        self.reindex(idx);
        Ok(())
    }

    /// Convenience: advances time by one quantum for the outcome of a
    /// dispatch where the selected thread ran for the full quantum.
    pub fn run_quantum(&mut self) -> DispatchOutcome {
        let outcome = self.dispatch();
        if let Some(id) = outcome.thread {
            self.charge(id, outcome.quantum_us).expect("thread exists");
        }
        self.advance_to(self.now_us + outcome.quantum_us);
        outcome
    }

    /// The pre-index full-scan pick, kept as the oracle for the property
    /// test: the run-queue peek must always agree with it.
    #[cfg(test)]
    fn oracle_pick(&mut self) -> Option<ThreadId> {
        self.maybe_recalc();
        let mut best: Option<(i64, u64, ThreadId)> = None;
        for (&id, &idx) in &self.by_id {
            let entry = self.entries[idx as usize].as_ref().expect("indexed");
            if !entry.state.is_runnable() {
                continue;
            }
            let g = match entry.class {
                ThreadClass::Reserved(r) => rbs_goodness(r.period),
                ThreadClass::BestEffort => best_effort_goodness(entry.remaining_slice_us),
            };
            let key = (g, u64::MAX - entry.last_picked_seq, id.0);
            match best {
                None => best = Some((key.0, key.1, id)),
                Some((bg, bseq, _)) if (key.0, key.1) > (bg, bseq) => {
                    best = Some((key.0, key.1, id))
                }
                _ => {}
            }
        }
        best.map(|(_, _, id)| id)
    }

    /// Cross-checks every derived index against a full recomputation.
    #[cfg(test)]
    fn assert_consistent(&self) {
        let mut reserved = 0u32;
        let mut be = 0usize;
        let mut be_with_slice = 0usize;
        let mut runnable = 0usize;
        for (&id, &idx) in &self.by_id {
            let entry = self.entries[idx as usize].as_ref().expect("indexed");
            assert_eq!(entry.id, id);
            match entry.class {
                ThreadClass::Reserved(r) => reserved += r.proportion.ppt(),
                ThreadClass::BestEffort => be += 1,
            }
            let counted = entry.state.is_runnable()
                && matches!(entry.class, ThreadClass::BestEffort)
                && entry.remaining_slice_us > 0;
            assert_eq!(
                entry.counted_be_slice, counted,
                "recalc flag stale for {id}"
            );
            if counted {
                be_with_slice += 1;
            }
            assert_eq!(
                self.runnable.contains(idx),
                entry.state.is_runnable(),
                "run-queue membership stale for {id}"
            );
            if entry.state.is_runnable() {
                runnable += 1;
            }
        }
        assert_eq!(self.reserved_ppt, reserved);
        assert_eq!(self.be_count, be);
        assert_eq!(self.runnable_be_with_slice, be_with_slice);
        assert_eq!(self.runnable.len(), runnable);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Period;
    use proptest::prelude::*;

    fn reserved(ppt: u32, period_ms: u64) -> ThreadClass {
        ThreadClass::Reserved(Reservation::new(
            Proportion::from_ppt(ppt),
            Period::from_millis(period_ms),
        ))
    }

    #[test]
    fn add_and_remove_threads() {
        let mut d = Dispatcher::new(DispatcherConfig::default());
        d.add_thread(ThreadId(1), reserved(100, 30)).unwrap();
        assert_eq!(
            d.add_thread(ThreadId(1), ThreadClass::BestEffort),
            Err(SchedError::DuplicateThread(ThreadId(1)))
        );
        assert_eq!(d.thread_count(), 1);
        assert_eq!(d.thread_ids().collect::<Vec<_>>(), vec![ThreadId(1)]);
        d.remove_thread(ThreadId(1)).unwrap();
        assert_eq!(
            d.remove_thread(ThreadId(1)),
            Err(SchedError::UnknownThread(ThreadId(1)))
        );
        assert_eq!(d.thread_ids().next(), None);
    }

    #[test]
    fn admission_control_rejects_oversubscription() {
        let mut d = Dispatcher::new(DispatcherConfig::default());
        d.add_thread(ThreadId(1), reserved(600, 30)).unwrap();
        let err = d.add_thread(ThreadId(2), reserved(500, 30)).unwrap_err();
        assert!(matches!(err, SchedError::Oversubscribed { .. }));
        // Best-effort threads are always admitted.
        d.add_thread(ThreadId(3), ThreadClass::BestEffort).unwrap();
        assert_eq!(d.total_reserved().ppt(), 600);
        assert!(!d.is_overloaded());
    }

    #[test]
    fn reserved_thread_beats_best_effort() {
        let mut d = Dispatcher::new(DispatcherConfig::default());
        d.add_thread(ThreadId(1), ThreadClass::BestEffort).unwrap();
        d.add_thread(ThreadId(2), reserved(100, 30)).unwrap();
        assert_eq!(d.dispatch().thread, Some(ThreadId(2)));
    }

    #[test]
    fn shorter_period_beats_longer_period() {
        let mut d = Dispatcher::new(DispatcherConfig::default());
        d.add_thread(ThreadId(1), reserved(100, 100)).unwrap();
        d.add_thread(ThreadId(2), reserved(100, 10)).unwrap();
        assert_eq!(d.dispatch().thread, Some(ThreadId(2)));
    }

    #[test]
    fn exhausted_thread_is_throttled_until_next_period() {
        let mut d = Dispatcher::new(DispatcherConfig::default());
        // 10 % of 10 ms = 1 ms budget, equal to one dispatch interval.
        d.add_thread(ThreadId(1), reserved(100, 10)).unwrap();
        let o = d.dispatch();
        assert_eq!(o.thread, Some(ThreadId(1)));
        assert_eq!(o.quantum_us, 1000);
        d.charge(ThreadId(1), 1000).unwrap();
        assert_eq!(d.thread_state(ThreadId(1)), Some(ThreadState::Throttled));
        // Nothing else to run.
        d.advance_to(2000);
        assert_eq!(d.dispatch().thread, None);
        // At the period boundary the thread is replenished.
        d.advance_to(10_000);
        assert_eq!(d.thread_state(ThreadId(1)), Some(ThreadState::Ready));
        assert_eq!(d.dispatch().thread, Some(ThreadId(1)));
    }

    #[test]
    fn quantum_is_capped_by_remaining_budget() {
        let mut d = Dispatcher::new(DispatcherConfig::default());
        // 5 % of 10 ms = 500 µs budget < 1 ms dispatch interval.
        d.add_thread(ThreadId(1), reserved(50, 10)).unwrap();
        let o = d.dispatch();
        assert_eq!(o.quantum_us, 500);
    }

    #[test]
    fn best_effort_threads_round_robin() {
        let config = DispatcherConfig {
            best_effort_slice_us: 2_000,
            ..DispatcherConfig::default()
        };
        let mut d = Dispatcher::new(config);
        d.add_thread(ThreadId(1), ThreadClass::BestEffort).unwrap();
        d.add_thread(ThreadId(2), ThreadClass::BestEffort).unwrap();
        let mut picks = Vec::new();
        for _ in 0..6 {
            let o = d.dispatch();
            let id = o.thread.unwrap();
            picks.push(id);
            d.charge(id, o.quantum_us).unwrap();
            d.advance_to(d.now_us() + o.quantum_us);
        }
        // Both threads get picked (no starvation of one by the other).
        assert!(picks.contains(&ThreadId(1)));
        assert!(picks.contains(&ThreadId(2)));
    }

    #[test]
    fn blocked_thread_is_not_dispatched() {
        let mut d = Dispatcher::new(DispatcherConfig::default());
        d.add_thread(ThreadId(1), reserved(100, 10)).unwrap();
        d.block(ThreadId(1)).unwrap();
        assert_eq!(d.dispatch().thread, None);
        d.unblock(ThreadId(1)).unwrap();
        assert_eq!(d.dispatch().thread, Some(ThreadId(1)));
    }

    #[test]
    fn unblocking_exhausted_thread_keeps_it_throttled() {
        let mut d = Dispatcher::new(DispatcherConfig::default());
        d.add_thread(ThreadId(1), reserved(100, 10)).unwrap();
        let o = d.dispatch();
        d.charge(ThreadId(1), o.quantum_us).unwrap();
        d.block(ThreadId(1)).unwrap();
        d.unblock(ThreadId(1)).unwrap();
        assert_eq!(d.thread_state(ThreadId(1)), Some(ThreadState::Throttled));
    }

    #[test]
    fn idle_system_reports_idle_time() {
        let mut d = Dispatcher::new(DispatcherConfig::default());
        let o = d.dispatch();
        assert_eq!(o.thread, None);
        assert!(o.quantum_us > 0);
        assert!(d.stats().idle_us > 0);
    }

    #[test]
    fn missed_deadline_detected_under_oversubscription() {
        // Two threads each wanting 60 % of a 10 ms period: only ~100 % is
        // available so someone must miss.
        let config = DispatcherConfig {
            admission_threshold_ppt: 1000,
            dispatch_cost_us: 0.0,
            context_switch_cost_us: 0.0,
            ..DispatcherConfig::default()
        };
        let mut d = Dispatcher::new(config);
        d.add_thread(ThreadId(1), reserved(600, 10)).unwrap();
        // Admission would reject a second 60 % reservation, so admit it
        // small and grow it through the controller's actuation path (which
        // does not re-check admission).
        d.add_thread(ThreadId(2), reserved(100, 10)).unwrap();
        d.set_reservation(
            ThreadId(2),
            Reservation::new(Proportion::from_ppt(600), Period::from_millis(10)),
        )
        .unwrap();
        assert!(d.is_overloaded());
        // Run for 30 ms of simulated time.
        while d.now_us() < 30_000 {
            d.run_quantum();
        }
        assert!(d.stats().deadlines_missed > 0);
        assert!(d.take_missed_deadlines() > 0);
        assert_eq!(d.take_missed_deadlines(), 0);
    }

    #[test]
    fn set_reservation_changes_budget_and_can_unthrottle() {
        let mut d = Dispatcher::new(DispatcherConfig::default());
        d.add_thread(ThreadId(1), reserved(100, 10)).unwrap();
        let o = d.dispatch();
        d.charge(ThreadId(1), o.quantum_us).unwrap();
        assert_eq!(d.thread_state(ThreadId(1)), Some(ThreadState::Throttled));
        // Doubling the proportion mid-period un-throttles the thread.
        d.set_reservation(
            ThreadId(1),
            Reservation::new(Proportion::from_ppt(200), Period::from_millis(10)),
        )
        .unwrap();
        assert_eq!(d.thread_state(ThreadId(1)), Some(ThreadState::Ready));
        assert_eq!(d.reservation(ThreadId(1)).unwrap().proportion.ppt(), 200);
    }

    #[test]
    fn set_reservation_on_unknown_thread_fails() {
        let mut d = Dispatcher::new(DispatcherConfig::default());
        let r = Reservation::new(Proportion::from_ppt(10), Period::from_millis(10));
        assert!(d.set_reservation(ThreadId(9), r).is_err());
    }

    #[test]
    fn best_effort_thread_can_become_reserved() {
        let mut d = Dispatcher::new(DispatcherConfig::default());
        d.add_thread(ThreadId(1), ThreadClass::BestEffort).unwrap();
        assert!(d.reservation(ThreadId(1)).is_none());
        d.set_reservation(
            ThreadId(1),
            Reservation::new(Proportion::from_ppt(50), Period::from_millis(30)),
        )
        .unwrap();
        assert_eq!(d.reservation(ThreadId(1)).unwrap().proportion.ppt(), 50);
        assert_eq!(d.total_reserved().ppt(), 50);
    }

    #[test]
    fn reserved_thread_gets_its_proportion_over_time() {
        let config = DispatcherConfig {
            dispatch_cost_us: 0.0,
            context_switch_cost_us: 0.0,
            ..DispatcherConfig::default()
        };
        let mut d = Dispatcher::new(config);
        // 30 % reservation competing with a best-effort hog.
        d.add_thread(ThreadId(1), reserved(300, 10)).unwrap();
        d.add_thread(ThreadId(2), ThreadClass::BestEffort).unwrap();
        while d.now_us() < 1_000_000 {
            d.run_quantum();
        }
        let usage = d.usage(ThreadId(1)).unwrap();
        let fraction = usage.total_used_us as f64 / 1_000_000.0;
        assert!(
            (fraction - 0.3).abs() < 0.02,
            "reserved thread got {fraction} of the CPU"
        );
        // The best-effort hog gets the rest.
        let hog = d.usage(ThreadId(2)).unwrap();
        let hog_fraction = hog.total_used_us as f64 / 1_000_000.0;
        assert!(hog_fraction > 0.6, "hog got {hog_fraction}");
    }

    #[test]
    fn overhead_accumulates_with_dispatches() {
        let mut d = Dispatcher::new(DispatcherConfig::default());
        d.add_thread(ThreadId(1), reserved(500, 10)).unwrap();
        for _ in 0..10 {
            d.run_quantum();
        }
        let stats = d.stats();
        assert_eq!(stats.dispatches, 10);
        assert!(stats.overhead_us >= 10.0 * 5.0);
    }

    #[test]
    fn preadmitted_thread_bypasses_admission_but_not_duplicates() {
        let mut d = Dispatcher::new(DispatcherConfig::default());
        d.add_thread(ThreadId(1), reserved(900, 10)).unwrap();
        // The regular path is full; a pre-admitted reservation still lands.
        let r = Reservation::new(Proportion::from_ppt(300), Period::from_millis(10));
        d.add_thread_preadmitted(ThreadId(2), r).unwrap();
        assert_eq!(d.reservation(ThreadId(2)), Some(r));
        assert!(d.is_overloaded());
        assert_eq!(
            d.add_thread_preadmitted(ThreadId(2), r),
            Err(SchedError::DuplicateThread(ThreadId(2)))
        );
    }

    #[test]
    fn usage_views_agree() {
        let mut d = Dispatcher::new(DispatcherConfig::default());
        d.add_thread(ThreadId(1), reserved(300, 10)).unwrap();
        d.add_thread(ThreadId(2), reserved(200, 10)).unwrap();
        for _ in 0..5 {
            d.run_quantum();
        }
        let mut visited = 0;
        d.for_each_usage(|id, acct| {
            visited += 1;
            assert_eq!(d.usage(id).unwrap().total_used_us, acct.total_used_us);
            assert_eq!(d.usage_ref(id).unwrap().total_used_us, acct.total_used_us);
        });
        assert_eq!(visited, 2);
        assert!(d.usage_ref(ThreadId(9)).is_none());
    }

    #[test]
    fn take_and_inject_preserve_account_and_throttle() {
        let mut src = Dispatcher::new(DispatcherConfig::default());
        let mut dst = Dispatcher::new(DispatcherConfig::default());
        src.add_thread(ThreadId(1), reserved(100, 10)).unwrap();
        // Exhaust the budget so the thread is throttled mid-period.
        let o = src.dispatch();
        src.charge(ThreadId(1), o.quantum_us).unwrap();
        assert_eq!(src.thread_state(ThreadId(1)), Some(ThreadState::Throttled));
        let used = src.usage(ThreadId(1)).unwrap().total_used_us;

        let taken = src.take_thread(ThreadId(1)).unwrap();
        assert_eq!(taken.state(), ThreadState::Throttled);
        assert!(src.take_thread(ThreadId(1)).is_err(), "already taken");
        dst.inject_thread(taken).unwrap();
        // Still throttled on the destination, with the account intact.
        assert_eq!(dst.thread_state(ThreadId(1)), Some(ThreadState::Throttled));
        assert_eq!(dst.usage(ThreadId(1)).unwrap().total_used_us, used);
        assert_eq!(dst.dispatch().thread, None);
        // The period boundary scheduled by the source replenishes it here.
        dst.advance_to(10_000);
        assert_eq!(dst.thread_state(ThreadId(1)), Some(ThreadState::Ready));
        assert_eq!(dst.dispatch().thread, Some(ThreadId(1)));
        // Duplicate injection is rejected.
        assert_eq!(
            dst.inject_thread(MigratedThread {
                id: ThreadId(1),
                class: reserved(10, 10),
                state: ThreadState::Ready,
                account: UsageAccount::new(0, 0),
                remaining_slice_us: 0,
                next_boundary_us: None,
            }),
            Err(SchedError::DuplicateThread(ThreadId(1)))
        );
    }

    #[test]
    fn taking_the_running_thread_demotes_it_to_ready() {
        let mut d = Dispatcher::new(DispatcherConfig::default());
        d.add_thread(ThreadId(1), reserved(500, 10)).unwrap();
        assert_eq!(d.dispatch().thread, Some(ThreadId(1)));
        let taken = d.take_thread(ThreadId(1)).unwrap();
        assert_eq!(taken.state(), ThreadState::Ready);
        assert!(matches!(taken.class(), ThreadClass::Reserved(_)));
        // The source no longer schedules it.
        assert_eq!(d.dispatch().thread, None);
    }

    #[test]
    fn next_timer_expiry_tracks_reserved_threads() {
        let mut d = Dispatcher::new(DispatcherConfig::default());
        assert_eq!(d.next_timer_expiry(), None);
        d.add_thread(ThreadId(1), reserved(100, 10)).unwrap();
        assert_eq!(d.next_timer_expiry(), Some(10_000));
    }

    #[test]
    fn advance_to_is_monotone() {
        let mut d = Dispatcher::new(DispatcherConfig::default());
        d.advance_to(1000);
        d.advance_to(500); // ignored
        assert_eq!(d.now_us(), 1000);
    }

    #[test]
    fn freed_slots_are_reused() {
        let mut d = Dispatcher::new(DispatcherConfig::default());
        d.add_thread(ThreadId(1), reserved(100, 10)).unwrap();
        d.add_thread(ThreadId(2), reserved(100, 20)).unwrap();
        d.remove_thread(ThreadId(1)).unwrap();
        d.add_thread(ThreadId(3), reserved(100, 30)).unwrap();
        assert_eq!(d.entries.len(), 2, "dense storage does not grow on reuse");
        assert_eq!(d.thread_count(), 2);
        d.assert_consistent();
    }

    proptest! {
        /// The tentpole's safety net: over arbitrary thread-state
        /// sequences, the goodness-indexed pick must equal the naive
        /// full-scan pick, and every derived index must stay consistent.
        ///
        /// Ops are encoded as `(selector, id, ppt, aux)` tuples because the
        /// vendored proptest miniature has no `prop_oneof`; selectors 8–10
        /// all dispatch so the pick comparison dominates the mix.
        #[test]
        fn indexed_pick_matches_naive_scan(
            ops in proptest::collection::vec((0u8..11, 0u64..12, 0u32..600, 1u64..60), 1..150),
        ) {
            let mut d = Dispatcher::new(DispatcherConfig::default());
            for (op, i, p, aux) in ops {
                match op {
                    0 => {
                        let _ = d.add_thread(ThreadId(i), reserved(p, aux));
                    }
                    1 => {
                        let _ = d.add_thread(ThreadId(i), ThreadClass::BestEffort);
                    }
                    2 => {
                        let _ = d.remove_thread(ThreadId(i));
                    }
                    3 => {
                        let _ = d.block(ThreadId(i));
                    }
                    4 => {
                        let _ = d.unblock(ThreadId(i));
                    }
                    5 => {
                        let _ = d.charge(ThreadId(i), p as u64 * 37);
                    }
                    6 => {
                        let r = Reservation::new(
                            Proportion::from_ppt(p),
                            Period::from_millis(aux),
                        );
                        let _ = d.set_reservation(ThreadId(i), r);
                    }
                    7 => d.advance_to(d.now_us() + aux * 499),
                    _ => {
                        let oracle = d.oracle_pick();
                        let outcome = d.dispatch();
                        prop_assert_eq!(
                            outcome.thread, oracle,
                            "indexed pick diverged from the full scan"
                        );
                        if let Some(t) = outcome.thread {
                            d.charge(t, outcome.quantum_us).expect("picked exists");
                        }
                    }
                }
                d.assert_consistent();
            }
        }

        /// Migration between two dispatchers keeps both sides' indices
        /// consistent and the picks oracle-true on the destination.
        #[test]
        fn migration_keeps_indices_consistent(
            seed_threads in proptest::collection::vec((0u32..400, 1u64..40), 1..8),
            moves in proptest::collection::vec(proptest::bool::ANY, 1..20),
        ) {
            let mut src = Dispatcher::new(DispatcherConfig::default());
            let mut dst = Dispatcher::new(src.config());
            for (i, &(ppt, ms)) in seed_threads.iter().enumerate() {
                // Oversubscribed seeds are rejected by admission; the
                // surviving population still migrates back and forth.
                let _ = src.add_thread(ThreadId(i as u64), reserved(ppt, ms));
            }
            let n = seed_threads.len() as u64;
            for (step, &forward) in moves.iter().enumerate() {
                let id = ThreadId(step as u64 % n);
                let (from, to) = if forward { (&mut src, &mut dst) } else { (&mut dst, &mut src) };
                if let Ok(taken) = from.take_thread(id) {
                    to.inject_thread(taken).unwrap();
                }
                src.advance_to(src.now_us() + 500);
                dst.advance_to(dst.now_us() + 500);
                let o_src = src.oracle_pick();
                prop_assert_eq!(src.dispatch().thread, o_src);
                let o_dst = dst.oracle_pick();
                prop_assert_eq!(dst.dispatch().thread, o_dst);
                src.assert_consistent();
                dst.assert_consistent();
            }
        }
    }
}
